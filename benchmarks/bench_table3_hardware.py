"""Table 3 — gate-count estimate of the Attack/Decay hardware."""

from conftest import save_results

from repro.control.hardware_cost import estimate_attack_decay_hardware
from repro.reporting.tables import format_table


def build_table3() -> str:
    model = estimate_attack_decay_hardware()
    rows = [(c, f, g) for c, f, g in model.table3_rows()]
    return format_table(
        ["Component", "Estimation", "Equivalent Gates"],
        rows,
        title="Table 3. Estimate of hardware resources to implement Attack/Decay.",
    )


def test_table3(benchmark):
    table = benchmark(build_table3)
    model = estimate_attack_decay_hardware()
    print("\n" + table)
    print(
        f"\nPer domain: {model.gates_per_domain} gates; "
        f"shared interval counter: {model.shared_gates}; "
        f"four-domain total: {model.total_gates} gates (< 2,500)"
    )
    save_results(
        "table3",
        {
            "rows": model.table3_rows(),
            "gates_per_domain": model.gates_per_domain,
            "total_gates": model.total_gates,
        },
    )
    # Paper's numbers.
    assert model.gates_per_domain == 476
    assert model.shared_gates == 112
    assert model.total_gates < 2500
