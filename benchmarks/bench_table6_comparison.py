"""Table 6 — Attack/Decay vs Dynamic-1 %/5 % vs Global(...).

The paper's headline comparison: performance degradation, energy
savings, energy-delay-product improvement and the power-savings to
performance-degradation ratio of each algorithm, all relative to the
baseline MCD processor (every domain at 1 GHz), averaged over the
30-benchmark suite.  The ``Global(...)`` rows run the fully synchronous
processor at the single chip-wide frequency whose average degradation
matches the corresponding algorithm.

Paper values: Attack/Decay 3.2 % / 19.0 % / 16.7 % / 4.6;
Dynamic-1 % 3.4 % / 21.9 % / 19.6 % / 5.1; Dynamic-5 % 8.7 % / 33.0 %
/ 27.5 % / 3.8; Global rows at ratio ~2.
"""

from conftest import pct, save_results

from repro.reporting.tables import format_table
from repro.sim.paper_results import compute_paper_results


def build_table6(runner):
    results = compute_paper_results(runner)
    rows = results.table6_rows()
    display = [
        (
            r.algorithm,
            pct(r.performance_degradation),
            pct(r.energy_savings),
            pct(r.edp_improvement),
            f"{r.power_performance_ratio:.1f}",
        )
        for r in rows
    ]
    table = format_table(
        [
            "Algorithm",
            "Performance Degradation",
            "Energy Savings",
            "Energy-Delay Improvement",
            "Power/Perf Ratio",
        ],
        display,
        title="Table 6. Comparison relative to a baseline MCD processor.",
    )
    return table, results


def test_table6(benchmark, runner):
    table, results = benchmark.pedantic(
        build_table6, args=(runner,), rounds=1, iterations=1
    )
    print("\n" + table)
    rows = {r.algorithm: r for r in results.table6_rows()}
    save_results(
        "table6",
        {
            "rows": {k: vars(v) for k, v in rows.items()},
            "global_frequency_mhz": results.global_frequency,
            "benchmarks": results.benchmarks,
        },
    )
    ad = rows["attack_decay"]
    d1 = rows["dynamic_1"]
    d5 = rows["dynamic_5"]
    # Shape assertions (who wins, roughly by how much):
    # the on-line algorithm keeps degradation small with a high ratio...
    assert 0.0 < ad.performance_degradation < 0.08
    assert ad.energy_savings > 0.05
    assert ad.power_performance_ratio > 3.0
    # ... Dynamic-5% saves more energy at much higher degradation ...
    assert d5.energy_savings > ad.energy_savings
    assert d5.performance_degradation > d1.performance_degradation
    # ... and global scaling is far less efficient than the MCD
    # algorithm it is matched against (paper: ratio ~2 vs 4-5, EDP
    # roughly halved).
    for algo in ("attack_decay", "dynamic_1", "dynamic_5"):
        g = rows[f"Global ({algo})"]
        assert g.power_performance_ratio < rows[algo].power_performance_ratio
        assert g.edp_improvement < rows[algo].edp_improvement
        assert g.energy_savings < rows[algo].energy_savings + 0.02
