"""End-to-end sweep throughput — runs/sec across orchestrator backends.

The paper's tables are cross-products (benchmarks x controllers x
seeds), so fleet throughput — not single-run speed — is what decides
how long a full reproduction takes.  This bench executes one
closed-loop sweep (the Attack/Decay controller, the configuration
behind the headline numbers) through each orchestrator backend:

* ``serial``  — one run at a time in the calling thread;
* ``process`` — the multiprocessing pool: spawn cost, per-worker npz
  trace loads, registry snapshots, results round-tripped through disk;
* ``thread``  — the thread pool over the GIL-releasing native loop:
  one process, shared compiled-trace cache, write-through result
  front (skipped when no C compiler is available).

Every backend must produce byte-identical ``ResultSet`` dictionaries —
a faster sweep that computes different numbers would be worthless.

Results land in ``results/bench_sweep_throughput.json`` and the
baseline table in ``docs/performance.md``.  Knobs: ``REPRO_SCALE``,
``REPRO_BENCHMARKS``, ``REPRO_WORKERS``, ``REPRO_BATCH`` (batch-cell
size; recorded runs carry it in their spec hash, so different batch
settings are separate trajectories in the result database).  The
acceptance floors (thread backend at least ``THREAD_FLOOR``x the
process backend, and process at least ``PROCESS_FLOOR``x serial, at
>= 4 workers) are asserted under pytest and by ``--check-floor``:

    PYTHONPATH=src python -m pytest benchmarks/bench_sweep_throughput.py -s
    PYTHONPATH=src REPRO_WORKERS=4 \
        python benchmarks/bench_sweep_throughput.py --check-floor
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

if str(Path(__file__).resolve().parent) not in sys.path:
    sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import save_bench

from repro.experiments import Orchestrator, Suite
from repro.experiments.executor import (
    benchmark_scale,
    default_batch,
    default_workers,
    quick_benchmarks,
)
from repro.uarch.native import load_hotpath

#: Representative closed-loop slice: compute-bound, branchy,
#: FP-phased and memory-bound applications.
SWEEP_BENCHMARKS = ["adpcm", "gsm", "epic", "mcf", "gcc", "swim"]

#: The closed-loop configuration behind the paper's headline tables.
SWEEP_CONFIGURATIONS = ["attack_decay"]

#: Two seeds double the matrix without re-generating traces — exactly
#: the reuse pattern the shared trace cache exists for.
SWEEP_SEEDS = [1, 2]

#: Acceptance floor: thread-backend throughput over the process
#: backend on the closed-loop sweep at >= FLOOR_WORKERS workers.
THREAD_FLOOR = 1.5
#: Acceptance floor: batched process-backend throughput over serial.
#: Binds on multi-core hosts (CI runners), where batch cells plus
#: shared-memory traces must at least pay for the pool's fixed costs;
#: on a single core a pool can only ever approach serial from below,
#: so the floor is skipped there.
PROCESS_FLOOR = 1.0
FLOOR_WORKERS = 4


def _sweep(backend: str, workers: int, suite: Suite, repeats: int = 2):
    """Fastest of ``repeats`` sweeps on ``backend``; returns (results, s)."""
    best = None
    results = None
    for _ in range(repeats):
        orchestrator = Orchestrator(
            workers=workers, backend=backend, use_cache=False
        )
        start = time.perf_counter()
        results = orchestrator.run(suite)
        elapsed = time.perf_counter() - start
        assert not results.errors, [o.error for o in results.errors]
        if best is None or elapsed < best:
            best = elapsed
    return results, best


def run_bench(check_floor: bool = False) -> dict:
    """Measure every available backend; returns the saved payload."""
    scale = benchmark_scale()
    native = load_hotpath() is not None
    if check_floor and not native:
        raise SystemExit(
            "bench_sweep_throughput: --check-floor needs the native loop, "
            "but no C compiler is available"
        )
    workers = default_workers()
    if check_floor:
        workers = max(workers, FLOOR_WORKERS)
    names = quick_benchmarks(default=SWEEP_BENCHMARKS)
    suite = Suite(
        benchmarks=names,
        configurations=SWEEP_CONFIGURATIONS,
        seeds=SWEEP_SEEDS,
        scale=scale,
        name="closed-loop-throughput",
    )
    total = len(suite.expand())

    backends = ["serial", "process"] + (["thread"] if native else [])
    seconds: dict[str, float] = {}
    reference = None
    for backend in backends:
        results, seconds[backend] = _sweep(
            backend, workers if backend != "serial" else 1, suite
        )
        payload = results.to_dict()
        if reference is None:
            reference = payload
        else:
            assert payload == reference, (
                f"{backend} backend diverged from the serial result set"
            )

    # default_batch() validates REPRO_BATCH; the orchestrators above
    # already resolved the same setting per backend.
    batch_setting = default_batch()
    batch_label = "auto" if batch_setting is None else str(batch_setting)
    # Recorded so the gate can tell whether the process-vs-serial
    # floor is meaningful for this run (it binds at >= 2 cores).
    cores = os.cpu_count() or 1
    aggregate = {
        "scenarios": total,
        "workers": workers,
        "scale": scale,
        "native": native,
        "batch": batch_label,
        "cores": cores,
    }
    for backend in backends:
        aggregate[f"{backend}_rps"] = total / seconds[backend]
        aggregate[f"{backend}_seconds"] = seconds[backend]
    aggregate["process_vs_serial"] = seconds["serial"] / seconds["process"]
    if native:
        aggregate["thread_vs_process"] = seconds["process"] / seconds["thread"]
        aggregate["thread_vs_serial"] = seconds["serial"] / seconds["thread"]

    print(
        f"\nClosed-loop sweep throughput ({total} runs, {workers} workers, "
        f"batch {batch_label}, best of 2):"
    )
    for backend in backends:
        print(
            f"  {backend:8s} {aggregate[f'{backend}_rps']:8.2f} runs/sec"
            f"  ({seconds[backend]:.2f}s)"
        )
    print(f"  process/serial: {aggregate['process_vs_serial']:.2f}x")
    if native:
        print(f"  thread/process: {aggregate['thread_vs_process']:.2f}x")

    # The batch setting is part of the measurement's identity: runs at
    # different cell sizes are separate trajectories in the result
    # database, never compared against each other by `repro check`.
    payload = save_bench(
        "bench_sweep_throughput",
        aggregate=aggregate,
        backend=f"batch={batch_label}",
    )

    if check_floor and native:
        assert workers >= FLOOR_WORKERS
        ratio = aggregate["thread_vs_process"]
        assert ratio >= THREAD_FLOOR, (
            f"thread backend is {ratio:.2f}x the process backend; "
            f"expected >= {THREAD_FLOOR}x at {workers} workers"
        )
        if cores > 1:
            ratio = aggregate["process_vs_serial"]
            assert ratio >= PROCESS_FLOOR, (
                f"process backend is {ratio:.2f}x serial; expected >= "
                f"{PROCESS_FLOOR}x at {workers} workers on {cores} cores"
            )
    return payload


def test_sweep_throughput():
    # The floor only binds when the native loop exists; without it the
    # bench still measures serial vs process and checks determinism.
    run_bench(check_floor=load_hotpath() is not None)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check-floor",
        action="store_true",
        help=(
            f"fail unless the thread backend >= {THREAD_FLOOR}x the "
            f"process backend (and, on multi-core hosts, process >= "
            f"{PROCESS_FLOOR}x serial) at >= {FLOOR_WORKERS} workers"
        ),
    )
    args = parser.parse_args(argv)
    run_bench(check_floor=args.check_floor)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
