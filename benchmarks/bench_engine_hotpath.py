"""Engine hot-path baseline — instructions/sec, generator vs compiled.

Measures the simulator's innermost loop on a representative slice of
the catalog (compute-bound, phased FP, memory-bound, stream and
pointer-chase behaviour) and records the result so the repository's
performance trajectory has a baseline (``results/bench_engine_hotpath
.json``, summarised in ``docs/performance.md``).

Three measurements per benchmark:

* ``generator`` — the pre-compilation reference path: per-instruction
  cursor over the lazily generated block trace;
* ``compiled`` — the batched fast path over the compiled columnar
  trace (native C loop when a compiler is available, pure-Python
  batched loop otherwise);
* equivalence — the two paths' ``RunSummary`` dictionaries must be
  byte-identical, every time.

Environment knobs: ``REPRO_SCALE``, ``REPRO_BENCHMARKS`` (subset),
``REPRO_NATIVE=0`` (force the pure-Python compiled path).  The
acceptance floor is asserted under pytest and by ``--check-floor``:

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_hotpath.py -s
    PYTHONPATH=src python benchmarks/bench_engine_hotpath.py --check-floor
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

if str(Path(__file__).resolve().parent) not in sys.path:
    sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import save_bench

from repro.config.algorithm import SCALED_OPERATING_POINT
from repro.config.processor import ProcessorConfig
from repro.control.attack_decay import AttackDecayController
from repro.experiments.executor import benchmark_scale, quick_benchmarks
from repro.metrics.summary import summarize
from repro.sim.engine import compiled_trace_for, scaled_mcd_config
from repro.uarch.core import CoreOptions, MCDCore
from repro.uarch.native import load_hotpath
from repro.workloads.catalog import get_benchmark

#: Compute-bound, phased-FP, memory-bound, streaming and pointer-chase
#: representatives — the hot path's behaviour differs across them.
HOTPATH_BENCHMARKS = ["adpcm", "epic", "gcc", "swim", "mcf"]

#: Required speedup of the compiled path (acceptance floor) when the
#: native loop is available; the pure-Python fallback must still win.
NATIVE_FLOOR = 3.0
PYTHON_FLOOR = 1.1


def _single_run(bench, trace, time_warmup: bool):
    """One warmed run over ``trace``; returns (CoreResult, seconds)."""
    options = CoreOptions(
        mcd=True,
        seed=1,
        interval_instructions=bench.interval_instructions,
    )
    core = MCDCore(
        processor=ProcessorConfig(),
        mcd_config=scaled_mcd_config(),
        trace=trace,
        controller=AttackDecayController(SCALED_OPERATING_POINT),
        options=options,
    )
    start = time.perf_counter()
    core.warm_up(trace, limit=trace.total_instructions)
    if not time_warmup:
        start = time.perf_counter()
    result = core.run()
    return result, time.perf_counter() - start


def _best_of(bench, trace, repeats: int = 3):
    """Fastest of ``repeats`` timed runs (noise-robust)."""
    best = None
    result = None
    for _ in range(repeats):
        result, elapsed = _single_run(bench, trace, time_warmup=False)
        if best is None or elapsed < best:
            best = elapsed
    return result, best


def run_bench(check_floor: bool = False) -> dict:
    """Measure both paths on every benchmark; returns the saved payload."""
    scale = benchmark_scale()
    names = quick_benchmarks(default=HOTPATH_BENCHMARKS)
    native = load_hotpath() is not None
    line_shift = ProcessorConfig().line_bytes.bit_length() - 1

    rows = []
    total_instr = 0
    total_gen = 0.0
    total_comp = 0.0
    for name in names:
        bench = get_benchmark(name)
        generator_trace = bench.build_trace(scale=scale)
        compiled = compiled_trace_for(bench, scale=scale, line_shift=line_shift)
        gen_result, gen_s = _best_of(bench, generator_trace)
        comp_result, comp_s = _best_of(bench, compiled)
        assert summarize(comp_result).to_dict() == summarize(gen_result).to_dict(), (
            f"{name}: compiled path diverged from the generator path"
        )
        instructions = gen_result.instructions
        total_instr += instructions
        total_gen += gen_s
        total_comp += comp_s
        rows.append(
            {
                "benchmark": name,
                "instructions": instructions,
                "generator_ips": instructions / gen_s,
                "compiled_ips": instructions / comp_s,
                "speedup": gen_s / comp_s,
            }
        )

    aggregate = {
        "generator_ips": total_instr / total_gen,
        "compiled_ips": total_instr / total_comp,
        "speedup": total_gen / total_comp,
        "native": native,
        "scale": scale,
    }

    print("\nEngine hot path (instructions/sec, best of 3):")
    for row in rows:
        print(
            f"  {row['benchmark']:8s} generator {row['generator_ips']:>11,.0f}"
            f"  compiled {row['compiled_ips']:>12,.0f}"
            f"  speedup {row['speedup']:5.1f}x"
        )
    print(
        f"  {'TOTAL':8s} generator {aggregate['generator_ips']:>11,.0f}"
        f"  compiled {aggregate['compiled_ips']:>12,.0f}"
        f"  speedup {aggregate['speedup']:5.1f}x"
        f"  (native loop: {native})"
    )

    payload = save_bench("bench_engine_hotpath", runs=rows, aggregate=aggregate)

    if check_floor:
        floor = NATIVE_FLOOR if native else PYTHON_FLOOR
        assert aggregate["speedup"] >= floor, (
            f"compiled hot path is {aggregate['speedup']:.2f}x the generator "
            f"path; expected >= {floor}x (native={native})"
        )
    return payload


def test_engine_hotpath():
    # The floor binds on every path: even the pure-Python batched loop
    # must beat the generator reference.
    run_bench(check_floor=True)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check-floor",
        action="store_true",
        help=f"fail unless compiled >= {NATIVE_FLOOR}x generator "
        f"(native) / {PYTHON_FLOOR}x (pure Python)",
    )
    args = parser.parse_args(argv)
    run_bench(check_floor=args.check_floor)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
