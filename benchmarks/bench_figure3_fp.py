"""Figure 3 — floating-point domain statistics for epic decode.

(a) FIQ utilization: zero outside two distinct floating-point phases;
(b) FP domain frequency: sustained decay while the FP unit is unused,
positive attack at each phase onset.
"""

from conftest import save_results

from repro.config.algorithm import SCALED_OPERATING_POINT
from repro.config.mcd import Domain
from repro.control.attack_decay import AttackDecayController
from repro.reporting.figures import ascii_chart, ascii_series
from repro.sim.engine import SimulationSpec, run_spec
from repro.workloads.catalog import get_benchmark


def run_epic_with_trace():
    controller = AttackDecayController(SCALED_OPERATING_POINT)
    spec = SimulationSpec(
        benchmark="epic", mcd=True, controller=controller, record_intervals=True
    )
    return run_spec(spec)


def test_figure3(benchmark):
    result = benchmark.pedantic(run_epic_with_trace, rounds=1, iterations=1)
    intervals = result.intervals
    fiq = [iv.queue_utilization[Domain.FLOATING_POINT] for iv in intervals]
    freq = [iv.frequencies_mhz[Domain.FLOATING_POINT] / 1000.0 for iv in intervals]
    ends = [iv.end_instruction for iv in intervals]

    print("\nFigure 3(a): FIQ utilization (entries, averaged per interval)")
    print("  " + ascii_series(fiq))
    print("Figure 3(b): floating-point domain frequency (GHz)")
    print(ascii_chart(ends, freq, x_label="instr", y_label="GHz"))

    # Locate the two FP bursts from the workload definition.
    spec = get_benchmark("epic")
    boundaries = []
    at = 0
    for phase in spec.phases:
        boundaries.append((phase.name, at, at + phase.instructions))
        at += phase.instructions

    def mean_over(lo: int, hi: int, series) -> float:
        values = [v for e, v in zip(ends, series) if lo < e <= hi]
        return sum(values) / len(values) if values else 0.0

    burst_util = [
        mean_over(lo, hi, fiq) for name, lo, hi in boundaries if "fp_burst" in name
    ]
    idle_util = [
        mean_over(lo, hi, fiq) for name, lo, hi in boundaries if "fp_burst" not in name
    ]
    burst_freq = [
        mean_over(lo, hi, freq) for name, lo, hi in boundaries if "fp_burst" in name
    ]
    tail_freq = mean_over(boundaries[-1][1], boundaries[-1][2], freq)

    save_results(
        "figure3",
        {
            "end_instruction": ends,
            "fiq_utilization": fiq,
            "fp_frequency_ghz": freq,
            "phase_boundaries": boundaries,
            "burst_mean_utilization": burst_util,
            "idle_mean_utilization": idle_util,
        },
    )
    # Shape: FP queue populated only in the two bursts; decay drags the
    # frequency down in idle stretches; attacks restore it in bursts.
    assert all(b > 0.5 for b in burst_util)
    assert all(i < 0.2 for i in idle_util)
    assert min(freq) < 0.9
    assert all(b > tail_freq for b in burst_freq) or min(burst_freq) > 0.85
