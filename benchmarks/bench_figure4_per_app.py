"""Figure 4 — per-application results, referenced to fully synchronous.

(a) performance degradation, (b) energy savings, (c) energy-delay
product improvement, for Baseline MCD, Dynamic-1 %, Dynamic-5 % and
Attack/Decay on every application plus the suite average.
"""

from conftest import pct, save_results

from repro.reporting.tables import format_table
from repro.sim.paper_results import compute_paper_results

CONFIGS = ("mcd_base", "dynamic_1", "dynamic_5", "attack_decay")


def build_figure4(runner):
    results = compute_paper_results(runner, include_globals=False)
    return results


def test_figure4(benchmark, runner):
    results = benchmark.pedantic(build_figure4, args=(runner,), rounds=1, iterations=1)
    benchmarks = results.benchmarks

    payload = {}
    for metric, attr in (
        ("performance_degradation", "performance_degradation"),
        ("energy_savings", "energy_savings"),
        ("edp_improvement", "edp_improvement"),
    ):
        rows = []
        data = {}
        for name in benchmarks:
            row = [name]
            data[name] = {}
            for config in CONFIGS:
                value = getattr(results.vs_sync[config][name], attr)
                row.append(pct(value))
                data[name][config] = value
            rows.append(row)
        averages = ["average"]
        data["average"] = {}
        for config in CONFIGS:
            values = [getattr(results.vs_sync[config][b], attr) for b in benchmarks]
            mean = sum(values) / len(values)
            averages.append(pct(mean))
            data["average"][config] = mean
        rows.append(averages)
        payload[metric] = data
        print(
            "\n"
            + format_table(
                ["Benchmark", "Baseline MCD", "Dynamic-1%", "Dynamic-5%", "Attack/Decay"],
                rows,
                title=f"Figure 4: {metric} (vs fully synchronous processor)",
            )
        )
    save_results("figure4", payload)

    avg = payload["performance_degradation"]["average"]
    # Shape: the baseline MCD degradation is small (paper: ~1.3 %)...
    assert -0.01 < avg["mcd_base"] < 0.03
    # ...algorithms add modest degradation on top...
    assert avg["attack_decay"] < 0.10
    assert avg["dynamic_5"] > avg["dynamic_1"]
    # ...and all three algorithms save energy on average.
    avg_e = payload["energy_savings"]["average"]
    for config in ("dynamic_1", "dynamic_5", "attack_decay"):
        assert avg_e[config] > 0.03
