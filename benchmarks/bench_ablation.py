"""Ablations of design choices called out in Section 3.1 / DESIGN.md.

* **literal vs corrected PerfDegThreshold guard** — as printed,
  Listing 1's guard is a tautology (DESIGN.md substitution #4);
  measuring both shows what the guard buys.
* **endstop forcing on/off** — the paper reports insensitivity between
  2 and 25 intervals but degradation with an infinite endstop.
* **fixed vs scaled-error attack** — the paper argues a fixed
  adjustment cannot oscillate; a huge ReactionChange emulates the
  overshoot a scaled error would risk.
"""

from conftest import SWEEP_BENCHMARKS, pct, save_results

from repro.config.algorithm import SCALED_OPERATING_POINT
from repro.metrics.aggregate import aggregate
from repro.reporting.tables import format_table

ABLATION_BENCHMARKS = SWEEP_BENCHMARKS[:5]


def measure(runner, label, **attack_decay_kwargs):
    comparisons = {}
    for bench in ABLATION_BENCHMARKS:
        record = runner.attack_decay(bench, **attack_decay_kwargs)
        comparisons[bench] = runner.compare_to_mcd_base(record)
    agg = aggregate(comparisons)
    return (
        label,
        pct(agg.performance_degradation),
        pct(agg.energy_savings),
        pct(agg.edp_improvement),
        f"{agg.power_performance_ratio:.1f}",
    )


def run_ablations(runner):
    rows = [
        measure(runner, "corrected guard (default)", params=SCALED_OPERATING_POINT),
        measure(
            runner,
            "literal Listing-1 guard",
            params=SCALED_OPERATING_POINT,
            literal_listing=True,
        ),
        measure(
            runner,
            "endstop effectively infinite",
            params=SCALED_OPERATING_POINT.with_(endstop_intervals=10_000),
        ),
        measure(
            runner,
            "overshooting attack (RC=15.5%)",
            params=SCALED_OPERATING_POINT.with_(reaction_change_pct=15.5),
        ),
        measure(
            runner,
            "timid attack (RC=0.5%)",
            params=SCALED_OPERATING_POINT.with_(reaction_change_pct=0.5),
        ),
    ]
    return rows


def test_ablations(benchmark, runner):
    rows = benchmark.pedantic(run_ablations, args=(runner,), rounds=1, iterations=1)
    table = format_table(
        ["Variant", "Perf Deg", "Energy Savings", "EDP Impr", "Ratio"],
        rows,
        title="Ablations (5-benchmark subset, vs baseline MCD).",
    )
    print("\n" + table)
    save_results("ablation", {"rows": rows})
    labels = [r[0] for r in rows]
    assert "corrected guard (default)" in labels
    assert len(rows) == 5
