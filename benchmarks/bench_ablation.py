"""Ablations of design choices called out in Section 3.1 / DESIGN.md.

* **literal vs corrected PerfDegThreshold guard** — as printed,
  Listing 1's guard is a tautology (DESIGN.md substitution #4);
  measuring both shows what the guard buys.
* **endstop forcing on/off** — the paper reports insensitivity between
  2 and 25 intervals but degradation with an infinite endstop.
* **fixed vs scaled-error attack** — the paper argues a fixed
  adjustment cannot oscillate; a huge ReactionChange emulates the
  overshoot a scaled error would risk.
"""

from conftest import SWEEP_BENCHMARKS, pct, save_results

from repro.config.algorithm import SCALED_OPERATING_POINT
from repro.experiments import Scenario
from repro.experiments.builtins import attack_decay_scenario
from repro.reporting.tables import format_table

ABLATION_BENCHMARKS = SWEEP_BENCHMARKS[:5]


def measure(orchestrator, label, params, literal_listing=False):
    scenarios = [Scenario(b, "mcd_base") for b in ABLATION_BENCHMARKS]
    scenarios += [
        attack_decay_scenario(b, params, literal_listing)
        for b in ABLATION_BENCHMARKS
    ]
    results = orchestrator.run(scenarios)
    agg = results.aggregate(scenarios[-1].configuration, reference="mcd_base")
    return (
        label,
        pct(agg.performance_degradation),
        pct(agg.energy_savings),
        pct(agg.edp_improvement),
        f"{agg.power_performance_ratio:.1f}",
    )


def run_ablations(orchestrator):
    rows = [
        measure(orchestrator, "corrected guard (default)", SCALED_OPERATING_POINT),
        measure(
            orchestrator,
            "literal Listing-1 guard",
            SCALED_OPERATING_POINT,
            literal_listing=True,
        ),
        measure(
            orchestrator,
            "endstop effectively infinite",
            SCALED_OPERATING_POINT.with_(endstop_intervals=10_000),
        ),
        measure(
            orchestrator,
            "overshooting attack (RC=15.5%)",
            SCALED_OPERATING_POINT.with_(reaction_change_pct=15.5),
        ),
        measure(
            orchestrator,
            "timid attack (RC=0.5%)",
            SCALED_OPERATING_POINT.with_(reaction_change_pct=0.5),
        ),
    ]
    return rows


def test_ablations(benchmark, orchestrator):
    rows = benchmark.pedantic(
        run_ablations, args=(orchestrator,), rounds=1, iterations=1
    )
    table = format_table(
        ["Variant", "Perf Deg", "Energy Savings", "EDP Impr", "Ratio"],
        rows,
        title="Ablations (5-benchmark subset, vs baseline MCD).",
    )
    print("\n" + table)
    save_results("ablation", {"rows": rows})
    labels = [r[0] for r in rows]
    assert "corrected guard (default)" in labels
    assert len(rows) == 5
