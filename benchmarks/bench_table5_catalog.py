"""Table 5 — the benchmark catalog (synthetic stand-ins, Table 5 shape)."""

from conftest import save_results

from repro.reporting.tables import format_table
from repro.workloads.catalog import BENCHMARKS


def build_table5() -> str:
    rows = [
        (
            s.name,
            s.suite,
            s.datasets,
            s.paper_window,
            f"{s.sim_instructions:,}",
            f"{s.interval_instructions}",
        )
        for s in BENCHMARKS.values()
    ]
    return format_table(
        ["Benchmark", "Suite", "Datasets", "Paper window", "Scaled window", "Interval"],
        rows,
        title="Table 5. Benchmark applications (paper windows; scaled windows simulated here).",
    )


def test_table5(benchmark):
    table = benchmark(build_table5)
    print("\n" + table)
    save_results(
        "table5",
        {
            s.name: {
                "suite": s.suite,
                "paper_window": s.paper_window,
                "scaled_window": s.sim_instructions,
                "weight_minstr": s.paper_minstructions,
            }
            for s in BENCHMARKS.values()
        },
    )
    assert len(BENCHMARKS) == 30
    suites = {s.suite for s in BENCHMARKS.values()}
    assert suites == {"MediaBench", "Olden", "Spec2000 INT", "Spec2000 FP"}
