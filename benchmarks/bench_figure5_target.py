"""Figure 5 — performance-degradation target analysis.

Sweeps PerfDegThreshold (the degradation target) with the figure's
legend configuration ``1.000_06.0_1.250_X.X`` and reports (a) achieved
vs requested degradation and (b) the energy-delay-product improvement
trend.
"""

from conftest import SWEEP_BENCHMARKS, save_results

from repro.reporting.figures import ascii_chart
from repro.sim.sweeps import sweep_perf_deg_target

TARGETS = [0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0]


def run_sweep(runner):
    return sweep_perf_deg_target(runner, TARGETS, SWEEP_BENCHMARKS)


def test_figure5(benchmark, runner):
    points = benchmark.pedantic(run_sweep, args=(runner,), rounds=1, iterations=1)
    targets = [p.value for p in points]
    achieved = [p.aggregate.performance_degradation * 100 for p in points]
    edp = [p.aggregate.edp_improvement * 100 for p in points]

    print("\nFigure 5(a): achieved vs target performance degradation (%)")
    print(ascii_chart(targets, achieved, x_label="target %", y_label="achieved %"))
    print("Figure 5(b): EDP improvement vs target (%)")
    print(ascii_chart(targets, edp, x_label="target %", y_label="EDP %"))

    save_results(
        "figure5",
        {
            "targets_pct": targets,
            "achieved_deg_pct": achieved,
            "edp_improvement_pct": edp,
            "benchmarks": SWEEP_BENCHMARKS,
        },
    )
    # Shape: degradation grows with the target (the guard loosens)...
    assert achieved[-1] > achieved[0]
    # ...and EDP improvement is positive through the mid-range.
    assert max(edp) > 0
