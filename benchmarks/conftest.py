"""Shared fixtures and helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper.  Simulation
results are cached on disk (``results/cache``), so a bench's *timed*
body is the assembly of the artifact; the first run populates the
cache.

There is one write path for bench artifacts: :func:`save_results`
publishes the legacy per-bench JSON (``results/<name>.json``,
atomically) *and* appends a provenance-stamped run to the versioned
result database (``results/db``) that ``repro report`` / ``repro
check`` operate on.  :func:`save_bench` assembles the canonical
``{"runs": ..., "aggregate": ...}`` payload on top of it.

Environment knobs: ``REPRO_SCALE`` (workload length multiplier),
``REPRO_BENCHMARKS`` (comma-separated subset), ``REPRO_CACHE=0``
(disable the cache), ``REPRO_WORKERS`` (orchestrator process count —
set it >1 to fan first-run simulation out across cores),
``REPRO_RESULTDB=0`` (skip the result-database append),
``REPRO_RESULTDB_DIR`` / ``REPRO_RESULTS_DIR`` (redirect the database
/ the legacy artifacts).
"""

from __future__ import annotations

import json
import logging
import os
from pathlib import Path

import pytest

from repro.experiments import Orchestrator
from repro.ioutil import atomic_write
from repro.resultdb import ResultDB
from repro.sim.experiment import ExperimentRunner

logger = logging.getLogger(__name__)

_DEFAULT_RESULTS_DIR = Path(__file__).resolve().parents[1] / "results"

#: Representative subset used by the sensitivity sweeps (Figures 5-7):
#: compute-bound, FP-phased, memory-bound and branchy applications.
SWEEP_BENCHMARKS = [
    "adpcm",
    "gsm",
    "epic",
    "mpeg2",
    "mcf",
    "health",
    "gcc",
    "swim",
]


def results_dir() -> Path:
    """Where legacy per-bench artifacts go (``REPRO_RESULTS_DIR`` aware)."""
    env = os.environ.get("REPRO_RESULTS_DIR")
    return Path(env) if env else _DEFAULT_RESULTS_DIR


#: Back-compat module constant; prefer :func:`results_dir` in new code.
RESULTS_DIR = _DEFAULT_RESULTS_DIR


def resultdb_enabled() -> bool:
    """Whether benches append to the result DB (``REPRO_RESULTDB`` != 0)."""
    return os.environ.get("REPRO_RESULTDB", "1") != "0"


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """One cached experiment runner shared by the whole bench session."""
    return ExperimentRunner()


@pytest.fixture(scope="session")
def orchestrator() -> Orchestrator:
    """A scenario orchestrator sharing the session cache (REPRO_WORKERS)."""
    return Orchestrator()


def save_results(name: str, payload: dict, backend: str | None = None) -> Path:
    """Persist a bench's artifact — the single write path.

    Publishes ``<results>/<name>.json`` atomically and appends a
    provenance-stamped run to the result database.  A database failure
    is logged, never fatal: the bench's artifact must survive even if
    the trajectory append cannot.
    """
    directory = results_dir()
    path = directory / f"{name}.json"
    with atomic_write(path, "w") as handle:
        handle.write(json.dumps(payload, indent=1, default=str))
    if resultdb_enabled():
        try:
            ResultDB().record_payload(name, payload, backend=backend)
        except Exception as exc:  # noqa: BLE001 - recording must not kill a bench
            logger.warning("result db append for %s failed (%s)", name, exc)
    return path


def save_bench(
    name: str,
    runs: list | None = None,
    aggregate: dict | None = None,
    backend: str | None = None,
) -> dict:
    """Assemble the canonical bench payload and persist it.

    The ``{"runs": [...], "aggregate": {...}}`` layout every perf bench
    used to hand-build; the aggregate's numeric scalars become the
    run's trajectory metrics.  Returns the payload.
    """
    payload: dict = {}
    if runs is not None:
        payload["runs"] = runs
    if aggregate is not None:
        payload["aggregate"] = aggregate
    save_results(name, payload, backend=backend)
    return payload


def pct(x: float) -> str:
    """Format a fraction as a paper-style percentage."""
    return f"{x * 100:.1f}%"
