"""Shared fixtures and helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper.  Simulation
results are cached on disk (``results/cache``), so a bench's *timed*
body is the assembly of the artifact; the first run populates the
cache.

Environment knobs: ``REPRO_SCALE`` (workload length multiplier),
``REPRO_BENCHMARKS`` (comma-separated subset), ``REPRO_CACHE=0``
(disable the cache), ``REPRO_WORKERS`` (orchestrator process count —
set it >1 to fan first-run simulation out across cores).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments import Orchestrator
from repro.sim.experiment import ExperimentRunner

RESULTS_DIR = Path(__file__).resolve().parents[1] / "results"

#: Representative subset used by the sensitivity sweeps (Figures 5-7):
#: compute-bound, FP-phased, memory-bound and branchy applications.
SWEEP_BENCHMARKS = [
    "adpcm",
    "gsm",
    "epic",
    "mpeg2",
    "mcf",
    "health",
    "gcc",
    "swim",
]


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """One cached experiment runner shared by the whole bench session."""
    return ExperimentRunner()


@pytest.fixture(scope="session")
def orchestrator() -> Orchestrator:
    """A scenario orchestrator sharing the session cache (REPRO_WORKERS)."""
    return Orchestrator()


def save_results(name: str, payload: dict) -> Path:
    """Persist a bench's artifact data under ``results/``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=1, default=str))
    return path


def pct(x: float) -> str:
    """Format a fraction as a paper-style percentage."""
    return f"{x * 100:.1f}%"
