"""Table 4 — architectural parameters of the simulated core."""

from conftest import save_results

from repro.config.processor import ProcessorConfig
from repro.reporting.tables import format_table


def build_table4() -> str:
    return format_table(
        ["Configuration Parameter", "Value"],
        ProcessorConfig().table4_rows(),
        title="Table 4. Architectural parameters for simulated Alpha 21264-like processor.",
    )


def test_table4(benchmark):
    table = benchmark(build_table4)
    print("\n" + table)
    save_results("table4", {"rows": ProcessorConfig().table4_rows()})
    for needle in (
        "1024 entries, history 10",
        "4096 sets, 2-way",
        "64KB, 2-way set associative",
        "1MB, direct mapped",
        "20 entries",
        "15 entries",
        "72 integer, 72 floating-point",
    ):
        assert needle in table
