"""Closed-loop control benchmark — runs/sec across the three paths.

The paper's headline numbers come from the *closed-loop* configuration
(the Attack/Decay controller driving per-domain DVFS), so this bench
measures exactly that: a warmed `MCDCore.run()` under the controller,
with no interval recording, on each execution path:

* ``generator`` — per-instruction reference path, controller in Python;
* ``python``    — batched loop over the compiled trace, controller in
  Python;
* ``native``    — C loop with the controller run *inside* C (zero
  per-interval Python crossings; skipped when no compiler is
  available).

Every measurement also asserts the paths' ``RunSummary`` dictionaries
are byte-identical — a closed-loop speedup that computes different
control decisions would be worthless.

Results land in ``results/bench_control_loop.json`` and the baseline
table in ``docs/performance.md``.  Knobs: ``REPRO_SCALE``,
``REPRO_BENCHMARKS``.  The acceptance floor (native closed-loop at
least ``NATIVE_FLOOR``x the batched-Python closed-loop) is asserted
under pytest and by ``--check-floor``:

    PYTHONPATH=src python -m pytest benchmarks/bench_control_loop.py -s
    PYTHONPATH=src python benchmarks/bench_control_loop.py --check-floor
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

if str(Path(__file__).resolve().parent) not in sys.path:
    sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import save_bench

from repro.config.algorithm import SCALED_OPERATING_POINT
from repro.config.processor import ProcessorConfig
from repro.control.attack_decay import AttackDecayController
from repro.experiments.executor import benchmark_scale, quick_benchmarks
from repro.metrics.summary import summarize
from repro.sim.engine import compiled_trace_for, scaled_mcd_config
from repro.uarch.core import CoreOptions, MCDCore
from repro.uarch.native import load_hotpath
from repro.workloads.catalog import get_benchmark

#: Same representative slice as the open-loop hot-path bench.
CONTROL_BENCHMARKS = ["adpcm", "epic", "gcc", "swim", "mcf"]

#: Acceptance floor: native closed-loop throughput over the batched
#: Python closed-loop path.
NATIVE_FLOOR = 3.0


def _closed_loop_run(bench, trace, path: str):
    """One warmed closed-loop run; returns (CoreResult, seconds)."""
    core = MCDCore(
        processor=ProcessorConfig(),
        mcd_config=scaled_mcd_config(),
        trace=trace,
        controller=AttackDecayController(SCALED_OPERATING_POINT),
        options=CoreOptions(
            mcd=True,
            seed=1,
            interval_instructions=bench.interval_instructions,
        ),
    )
    core.warm_up(trace, limit=trace.total_instructions)
    start = time.perf_counter()
    result = core.run(path=path)
    return result, time.perf_counter() - start


def _best_of(bench, trace, path: str, repeats: int = 3):
    """Fastest of ``repeats`` timed runs (noise-robust)."""
    best = None
    result = None
    for _ in range(repeats):
        result, elapsed = _closed_loop_run(bench, trace, path)
        if best is None or elapsed < best:
            best = elapsed
    return result, best


def run_bench(check_floor: bool = False) -> dict:
    """Measure all available paths; returns the saved results payload."""
    scale = benchmark_scale()
    names = quick_benchmarks(default=CONTROL_BENCHMARKS)
    native = load_hotpath() is not None
    if check_floor and not native:
        raise SystemExit(
            "bench_control_loop: --check-floor needs the native loop, "
            "but no C compiler is available"
        )
    line_shift = ProcessorConfig().line_bytes.bit_length() - 1
    paths = ["generator", "python"] + (["native"] if native else [])

    rows = []
    total_instr = 0
    totals = {path: 0.0 for path in paths}
    for name in names:
        bench = get_benchmark(name)
        generator_trace = bench.build_trace(scale=scale)
        compiled = compiled_trace_for(bench, scale=scale, line_shift=line_shift)
        results = {}
        seconds = {}
        for path in paths:
            trace = generator_trace if path == "generator" else compiled
            results[path], seconds[path] = _best_of(bench, trace, path)
        reference = summarize(results["generator"]).to_dict()
        for path in paths[1:]:
            assert summarize(results[path]).to_dict() == reference, (
                f"{name}: closed-loop {path} path diverged from the generator"
            )
        instructions = results["generator"].instructions
        total_instr += instructions
        row = {"benchmark": name, "instructions": instructions}
        for path in paths:
            totals[path] += seconds[path]
            row[f"{path}_ips"] = instructions / seconds[path]
        if native:
            row["native_vs_python"] = seconds["python"] / seconds["native"]
        rows.append(row)

    aggregate = {
        f"{path}_ips": total_instr / totals[path] for path in paths
    }
    aggregate["python_vs_generator"] = totals["generator"] / totals["python"]
    if native:
        aggregate["native_vs_python"] = totals["python"] / totals["native"]
        aggregate["native_vs_generator"] = totals["generator"] / totals["native"]
    aggregate["native"] = native
    aggregate["scale"] = scale

    print("\nClosed-loop control (instructions/sec, best of 3):")
    for row in rows:
        line = (
            f"  {row['benchmark']:8s}"
            f" generator {row['generator_ips']:>11,.0f}"
            f"  python {row['python_ips']:>11,.0f}"
        )
        if native:
            line += (
                f"  native {row['native_ips']:>12,.0f}"
                f"  native/python {row['native_vs_python']:5.1f}x"
            )
        print(line)
    line = (
        f"  {'TOTAL':8s}"
        f" generator {aggregate['generator_ips']:>11,.0f}"
        f"  python {aggregate['python_ips']:>11,.0f}"
    )
    if native:
        line += (
            f"  native {aggregate['native_ips']:>12,.0f}"
            f"  native/python {aggregate['native_vs_python']:5.1f}x"
        )
    print(line)

    payload = save_bench("bench_control_loop", runs=rows, aggregate=aggregate)

    if check_floor and native:
        ratio = aggregate["native_vs_python"]
        assert ratio >= NATIVE_FLOOR, (
            f"native closed loop is {ratio:.2f}x the batched Python closed "
            f"loop; expected >= {NATIVE_FLOOR}x"
        )
    return payload


def test_control_loop():
    # The floor only binds when the native loop exists; the bench still
    # measures and equivalence-checks the Python paths without it.
    run_bench(check_floor=load_hotpath() is not None)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check-floor",
        action="store_true",
        help=f"fail unless native closed-loop >= {NATIVE_FLOOR}x batched Python",
    )
    args = parser.parse_args(argv)
    run_bench(check_floor=args.check_floor)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
