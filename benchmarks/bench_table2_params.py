"""Table 2 — Attack/Decay configuration parameter ranges."""

from conftest import save_results

from repro.config.algorithm import (
    ATTACK_DECAY_PARAMETER_RANGES,
    PAPER_OPERATING_POINT,
    SCALED_OPERATING_POINT,
)
from repro.reporting.tables import format_table


def build_table2() -> str:
    rows = [
        (r.name, f"{r.low:g}-{r.high:g}{'%' if r.unit == '%' else ' ' + r.unit}")
        for r in ATTACK_DECAY_PARAMETER_RANGES.values()
    ]
    return format_table(
        ["Algorithm Parameter", "Range"],
        rows,
        title="Table 2. Attack/Decay configuration parameters.",
    )


def test_table2(benchmark):
    table = benchmark(build_table2)
    print("\n" + table)
    print(f"\nPaper operating point:  {PAPER_OPERATING_POINT.legend()}")
    print(f"Scaled operating point: {SCALED_OPERATING_POINT.legend()}")
    save_results(
        "table2",
        {
            "ranges": {
                k: (r.low, r.high) for k, r in ATTACK_DECAY_PARAMETER_RANGES.items()
            },
            "paper_point": PAPER_OPERATING_POINT.legend(),
            "scaled_point": SCALED_OPERATING_POINT.legend(),
        },
    )
    assert "0-2.5%" in table
    assert "0.5-15.5%" in table
    assert "0-2%" in table
    assert "0-12%" in table
    assert "1-25 intervals" in table
    # Both operating points sit inside the Table 2 sweep ranges.
    PAPER_OPERATING_POINT.validate_against_table2()
    SCALED_OPERATING_POINT.validate_against_table2()
