"""Figure 2 — load/store domain statistics for epic decode.

(a) per-interval change in LSQ utilization against the
+/-DeviationThreshold band; (b) the load/store domain frequency chosen
by Attack/Decay.  The paper's 4-5M instruction region is the scaled
``mem_swing`` phases of our epic workload: utilization swings beyond
the threshold drive attacks, small swings are held by attack/decay
cancellation.
"""

from conftest import save_results

from repro.config.algorithm import SCALED_OPERATING_POINT
from repro.config.mcd import Domain
from repro.control.attack_decay import AttackDecayController
from repro.reporting.figures import ascii_chart, ascii_series
from repro.sim.engine import SimulationSpec, run_spec


def run_epic_with_trace():
    controller = AttackDecayController(SCALED_OPERATING_POINT)
    spec = SimulationSpec(
        benchmark="epic", mcd=True, controller=controller, record_intervals=True
    )
    return run_spec(spec)


def test_figure2(benchmark):
    result = benchmark.pedantic(run_epic_with_trace, rounds=1, iterations=1)
    intervals = result.intervals
    lsq = [iv.queue_utilization[Domain.LOAD_STORE] for iv in intervals]
    freq = [iv.frequencies_mhz[Domain.LOAD_STORE] / 1000.0 for iv in intervals]
    ends = [iv.end_instruction for iv in intervals]
    # Percent change in LSQ utilization between successive intervals.
    diffs = []
    for i in range(1, len(lsq)):
        prev = lsq[i - 1]
        diffs.append(0.0 if prev == 0 else (lsq[i] - prev) / prev * 100.0)
    threshold = SCALED_OPERATING_POINT.deviation_threshold_pct

    print("\nFigure 2(a): % change in LSQ utilization (threshold "
          f"+/-{threshold}%)")
    print("  " + ascii_series(diffs))
    print("Figure 2(b): load/store domain frequency (GHz)")
    print(ascii_chart(ends[1:], freq[1:], x_label="instr", y_label="GHz"))

    exceed = sum(1 for x in diffs if abs(x) > threshold)
    save_results(
        "figure2",
        {
            "end_instruction": ends,
            "lsq_utilization": lsq,
            "lsq_pct_change": diffs,
            "ls_frequency_ghz": freq,
            "deviation_threshold_pct": threshold,
            "intervals_beyond_threshold": exceed,
        },
    )
    # Shape: utilization differences straddle the threshold band (both
    # attacks and holds occur), and the frequency actually moves.
    assert exceed > 0
    assert exceed < len(diffs)
    assert min(freq) < 1.0
    assert max(freq) > min(freq)
