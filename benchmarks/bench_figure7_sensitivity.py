"""Figure 7 — power/performance-ratio sensitivity (same sweeps as Fig 6)."""

from conftest import SWEEP_BENCHMARKS, save_results

from repro.reporting.figures import ascii_chart
from repro.sim.sweeps import sweep_attack_decay_parameter

SWEEPS = {
    "decay_pct": [0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0],
    "reaction_change_pct": [0.5, 2.5, 5.0, 7.5, 10.0, 12.5, 15.0],
    "deviation_threshold_pct": [0.0, 0.5, 1.0, 1.5, 2.0, 2.5],
}


def run_all(runner):
    results = {}
    for parameter, values in SWEEPS.items():
        results[parameter] = sweep_attack_decay_parameter(
            runner, parameter, values, SWEEP_BENCHMARKS
        )
    return results


def test_figure7(benchmark, runner):
    results = benchmark.pedantic(run_all, args=(runner,), rounds=1, iterations=1)
    payload = {}
    for parameter, points in results.items():
        xs = [p.value for p in points]
        ratios = [
            min(p.aggregate.power_performance_ratio, 20.0) for p in points
        ]
        payload[parameter] = {"values": xs, "power_perf_ratio": ratios}
        print(f"\nFigure 7: power/performance ratio vs {parameter}")
        print(ascii_chart(xs, ratios, x_label=parameter, y_label="ratio"))
    save_results("figure7", payload)

    # Shape: the ratio stays meaningfully above the global-scaling
    # baseline (~2) across the sensible mid-range of every parameter.
    for parameter, data in payload.items():
        mid = data["power_perf_ratio"][1:-1]
        assert max(mid) > 2.0, parameter
