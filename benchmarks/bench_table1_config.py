"""Table 1 — MCD processor configuration parameters."""

from conftest import save_results

from repro.config.mcd import MCDConfig
from repro.reporting.tables import format_table


def build_table1() -> str:
    config = MCDConfig()
    rows = config.table1_rows()
    return format_table(
        ["Parameter", "Value(s)"], rows, title="Table 1. MCD processor configuration parameters."
    )


def test_table1(benchmark):
    table = benchmark(build_table1)
    print("\n" + table)
    save_results("table1", {"rows": MCDConfig().table1_rows()})
    # Paper values, verbatim.
    assert "0.65 V - 1.20 V" in table
    assert "250 MHz - 1.0 GHz" in table
    assert "49.1 ns/MHz" in table
    assert "110ps" in table
    assert "30% of 1.0 GHz clock (300ps)" in table
