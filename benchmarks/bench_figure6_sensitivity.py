"""Figure 6 — EDP-improvement sensitivity to the algorithm parameters.

(a) Decay (legend 1.500_04.0_X.XXX_3.0), (b) ReactionChange
(1.500_XX.X_0.750_3.0), (c) DeviationThreshold (X.XXX_06.0_0.175_2.5).
The paper's finding: performance diminishes at both parameter extremes
with a broad flat optimum in between.
"""

from conftest import SWEEP_BENCHMARKS, save_results

from repro.reporting.figures import ascii_chart
from repro.sim.sweeps import sweep_attack_decay_parameter

SWEEPS = {
    "decay_pct": [0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0],
    "reaction_change_pct": [0.5, 2.5, 5.0, 7.5, 10.0, 12.5, 15.0],
    "deviation_threshold_pct": [0.0, 0.5, 1.0, 1.5, 2.0, 2.5],
}


def run_all(runner):
    results = {}
    for parameter, values in SWEEPS.items():
        results[parameter] = sweep_attack_decay_parameter(
            runner, parameter, values, SWEEP_BENCHMARKS
        )
    return results


def test_figure6(benchmark, runner):
    results = benchmark.pedantic(run_all, args=(runner,), rounds=1, iterations=1)
    payload = {}
    for parameter, points in results.items():
        xs = [p.value for p in points]
        ys = [p.aggregate.edp_improvement * 100 for p in points]
        payload[parameter] = {"values": xs, "edp_improvement_pct": ys}
        print(f"\nFigure 6: EDP improvement vs {parameter}")
        print(ascii_chart(xs, ys, x_label=parameter, y_label="EDP %"))
    save_results("figure6", payload)

    # Shape: some sweep point beats the extremes for decay (diminishing
    # at both ends, paper Figure 6(a)).
    decay = payload["decay_pct"]["edp_improvement_pct"]
    assert max(decay[1:-1]) >= max(decay[0], decay[-1]) - 0.5
    # ReactionChange: very small steps underperform the mid-range.
    rc = payload["reaction_change_pct"]["edp_improvement_pct"]
    assert max(rc[1:]) >= rc[0]
