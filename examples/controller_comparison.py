#!/usr/bin/env python3
"""Compare every frequency-control policy on a workload mix (Table 6 rows).

Runs a five-benchmark mix under: baseline MCD, Attack/Decay, the
off-line Dynamic-1 %/Dynamic-5 % schedules, and global DVFS matched to
Attack/Decay's degradation — then prints the Table 6 comparison lines.
Results cache under ``results/cache``, so the second run is instant.

Run:  python examples/controller_comparison.py [benchmark ...]
"""

import sys

from repro import ExperimentRunner, aggregate
from repro.config.algorithm import SCALED_OPERATING_POINT

DEFAULT_MIX = ["adpcm", "epic", "mcf", "gcc", "swim"]


def main() -> None:
    benchmarks = sys.argv[1:] or DEFAULT_MIX
    runner = ExperimentRunner()

    print(f"Benchmarks: {', '.join(benchmarks)}\n")
    lines: list[tuple[str, object]] = []

    for label, make in (
        (
            "Attack/Decay",
            lambda b: runner.attack_decay(b, SCALED_OPERATING_POINT),
        ),
        ("Dynamic-1%", lambda b: runner.dynamic(b, 1.0)),
        ("Dynamic-5%", lambda b: runner.dynamic(b, 5.0)),
    ):
        print(f"running {label} ...")
        comparisons = {b: runner.compare_to_mcd_base(make(b)) for b in benchmarks}
        lines.append((label, aggregate(comparisons)))

    attack_deg = lines[0][1].performance_degradation
    print("running Global (matched to Attack/Decay degradation) ...")
    mhz, records = runner.global_suite_matched(benchmarks, attack_deg)
    comparisons = {b: runner.compare_to_mcd_base(r) for b, r in records.items()}
    lines.append((f"Global @ {mhz:.0f} MHz", aggregate(comparisons)))

    print()
    header = f"{'Algorithm':22s} {'PerfDeg':>8s} {'EnergySav':>10s} {'EDP impr':>9s} {'Ratio':>6s}"
    print(header)
    print("-" * len(header))
    for label, agg in lines:
        print(
            f"{label:22s} {agg.performance_degradation:8.2%} "
            f"{agg.energy_savings:10.2%} {agg.edp_improvement:9.2%} "
            f"{agg.power_performance_ratio:6.1f}"
        )
    print(
        "\nThe MCD + Attack/Decay ratio should sit well above the global-"
        "scaling ratio of ~2 (paper Table 6: 4.6 vs 2.0)."
    )


if __name__ == "__main__":
    main()
