#!/usr/bin/env python3
"""The paper's running case study: epic decode (Figures 2 and 3).

The epic workload's floating-point unit is idle except for two distinct
bursts.  This example records the per-interval controller observables
and renders the paper's two figures as ASCII charts:

* Figure 3(a): FIQ utilization — two bursts, silence elsewhere.
* Figure 3(b): FP domain frequency — sustained decay while unused,
  positive attack at each burst.
* Figure 2(a): per-interval change in LSQ utilization against the
  +/-DeviationThreshold band.
* Figure 2(b): load/store domain frequency.

Run:  python examples/epic_decode_case_study.py
"""

from repro import AttackDecayController, Domain, SimulationSpec, run_spec
from repro.config.algorithm import SCALED_OPERATING_POINT
from repro.reporting.figures import ascii_chart, ascii_series


def main() -> None:
    controller = AttackDecayController(SCALED_OPERATING_POINT)
    print("Simulating epic under Attack/Decay with interval tracing...")
    result = run_spec(
        SimulationSpec(
            benchmark="epic", mcd=True, controller=controller, record_intervals=True
        )
    )
    intervals = result.intervals
    ends = [iv.end_instruction for iv in intervals]

    fiq = [iv.queue_utilization[Domain.FLOATING_POINT] for iv in intervals]
    fp_freq = [iv.frequencies_mhz[Domain.FLOATING_POINT] / 1000 for iv in intervals]
    print("\n== Figure 3(a): FIQ utilization (avg entries per interval) ==")
    print("  " + ascii_series(fiq))
    print("\n== Figure 3(b): FP domain frequency (GHz) ==")
    print(ascii_chart(ends, fp_freq, x_label="instructions", y_label="GHz"))

    lsq = [iv.queue_utilization[Domain.LOAD_STORE] for iv in intervals]
    diffs = [
        0.0 if lsq[i - 1] == 0 else (lsq[i] - lsq[i - 1]) / lsq[i - 1] * 100
        for i in range(1, len(lsq))
    ]
    threshold = SCALED_OPERATING_POINT.deviation_threshold_pct
    print(
        f"\n== Figure 2(a): % change in LSQ utilization "
        f"(deviation threshold +/-{threshold}%) =="
    )
    print("  " + ascii_series(diffs))
    beyond = sum(1 for x in diffs if abs(x) > threshold)
    print(
        f"  {beyond}/{len(diffs)} intervals beyond the threshold "
        "(attack mode); the rest hold or decay"
    )
    ls_freq = [iv.frequencies_mhz[Domain.LOAD_STORE] / 1000 for iv in intervals]
    print("\n== Figure 2(b): load/store domain frequency (GHz) ==")
    print(ascii_chart(ends[1:], ls_freq[1:], x_label="instructions", y_label="GHz"))

    print(
        f"\nRun: {result.instructions} instructions, CPI {result.cpi:.3f}, "
        f"energy {result.energy:.0f}, FP frequency span "
        f"{min(fp_freq):.2f}-{max(fp_freq):.2f} GHz"
    )


if __name__ == "__main__":
    main()
