#!/usr/bin/env python3
"""Explore Attack/Decay parameter sensitivity (Figures 5-7).

Sweeps one algorithm parameter across its Table 2 range on a small
benchmark mix and charts energy-delay-product improvement and the
power/performance ratio against the swept value.

Run:  python examples/sensitivity_explorer.py [parameter]
      parameter in {decay_pct, reaction_change_pct,
                    deviation_threshold_pct, perf_deg_threshold_pct}
"""

import sys

from repro import ExperimentRunner
from repro.reporting.figures import ascii_chart
from repro.sim.sweeps import sweep_attack_decay_parameter

MIX = ["adpcm", "epic", "mcf", "gsm"]

SWEEPS = {
    "decay_pct": [0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0],
    "reaction_change_pct": [0.5, 2.5, 5.0, 7.5, 10.0, 12.5, 15.0],
    "deviation_threshold_pct": [0.0, 0.5, 1.0, 1.5, 2.0, 2.5],
    "perf_deg_threshold_pct": [0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0],
}


def main() -> None:
    parameter = sys.argv[1] if len(sys.argv) > 1 else "decay_pct"
    if parameter not in SWEEPS:
        raise SystemExit(f"unknown parameter {parameter!r}; pick from {list(SWEEPS)}")
    values = SWEEPS[parameter]
    runner = ExperimentRunner()

    print(f"Sweeping {parameter} over {values} on {', '.join(MIX)} ...")
    points = sweep_attack_decay_parameter(runner, parameter, values, MIX)

    xs = [p.value for p in points]
    edp = [p.aggregate.edp_improvement * 100 for p in points]
    ratio = [min(p.aggregate.power_performance_ratio, 20.0) for p in points]

    print(f"\n== EDP improvement (%) vs {parameter} (cf. Figure 6) ==")
    print(ascii_chart(xs, edp, x_label=parameter, y_label="EDP %"))
    print(f"\n== Power/performance ratio vs {parameter} (cf. Figure 7) ==")
    print(ascii_chart(xs, ratio, x_label=parameter, y_label="ratio"))

    best = max(points, key=lambda p: p.aggregate.edp_improvement)
    print(
        f"\nBest EDP improvement {best.aggregate.edp_improvement:.2%} at "
        f"{parameter}={best.value} "
        f"(degradation {best.aggregate.performance_degradation:.2%}, "
        f"ratio {best.aggregate.power_performance_ratio:.1f})"
    )


if __name__ == "__main__":
    main()
