#!/usr/bin/env python3
"""Quickstart: declare a scenario suite, orchestrate it, read the dials.

Expands a small matrix — the ``gsm`` workload under the fully
synchronous baseline, the baseline MCD processor, and MCD under the
Attack/Decay controller — runs it through the parallel orchestrator,
and queries the result set for the paper's headline metrics.

Run:  python examples/quickstart.py
"""

from repro import Domain, Orchestrator, Scenario
from repro.experiments.builtins import attack_decay_scenario
from repro.config.algorithm import SCALED_OPERATING_POINT


def main() -> None:
    benchmark = "gsm"

    # Every configuration is a registry name (python -m repro
    # list-configurations); a Scenario pins one to a benchmark.
    # Parameterised operating points are named scenarios too —
    # attack_decay_scenario() encodes one.  (For uniform cross-products
    # over many benchmarks/configurations/seeds, declare a Suite
    # instead and pass it to the same Orchestrator.)
    attack_decay = attack_decay_scenario(benchmark, SCALED_OPERATING_POINT)
    scenarios = [
        Scenario(benchmark, "sync"),
        Scenario(benchmark, "mcd_base"),
        attack_decay,
    ]
    print(f"Orchestrating {len(scenarios)} scenarios for {benchmark!r}...")
    results = Orchestrator(workers=2, use_cache=False).run(scenarios)

    print()
    print(f"{'configuration':24s} {'CPI':>7s} {'EPI':>8s} {'energy':>10s}")
    for label, configuration in (
        ("fully synchronous", "sync"),
        ("baseline MCD", "mcd_base"),
        ("MCD + Attack/Decay", attack_decay.configuration),
    ):
        s = results.get(benchmark, configuration).summary
        print(f"{label:24s} {s.cpi:7.3f} {s.epi:8.3f} {s.energy:10.0f}")

    # ResultSet.compare/aggregate derive the paper's Section 5
    # statistics from any pair of configurations.
    inherent = results.compare("mcd_base", reference="sync")[benchmark]
    vs_mcd = results.compare(attack_decay.configuration, reference="mcd_base")[
        benchmark
    ]
    print()
    print(f"inherent MCD degradation: {inherent.performance_degradation:+.2%}")
    print("Attack/Decay vs baseline MCD:")
    print(f"  performance degradation: {vs_mcd.performance_degradation:+.2%}")
    print(f"  energy savings:          {vs_mcd.energy_savings:+.2%}")
    print(f"  EDP improvement:         {vs_mcd.edp_improvement:+.2%}")
    print(f"  power/perf ratio:        {vs_mcd.power_performance_ratio:.1f}")

    # Full results (domain frequencies, interval traces) come from a
    # direct run of the same spec the registry builds.
    from repro import run_spec
    from repro.experiments import CONFIGURATIONS, ExecutionContext

    ctx = ExecutionContext(use_cache=False)  # REPRO_SCALE-aware defaults
    factory, params = CONFIGURATIONS.resolve(attack_decay.configuration)
    spec = factory(
        ctx, benchmark, scale=ctx.scale, seed=ctx.seed,
        **{**params, **attack_decay.override_mapping()},
    )
    result = run_spec(spec)
    print()
    print("final domain frequencies under Attack/Decay (MHz):")
    for domain, mhz in result.final_frequencies_mhz.items():
        if domain is not Domain.EXTERNAL:
            print(f"  {domain.value:16s} {mhz:7.1f}")


if __name__ == "__main__":
    main()
