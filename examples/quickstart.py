#!/usr/bin/env python3
"""Quickstart: run one benchmark under Attack/Decay and read the dials.

Simulates the ``gsm`` workload three ways — fully synchronous baseline,
baseline MCD (all domains at 1 GHz), and MCD under the Attack/Decay
controller — then prints the paper's headline metrics.

Run:  python examples/quickstart.py
"""

from repro import (
    AttackDecayController,
    Domain,
    SimulationSpec,
    compare,
    run_spec,
    summarize,
)
from repro.config.algorithm import SCALED_OPERATING_POINT


def main() -> None:
    benchmark = "gsm"

    print(f"Simulating {benchmark!r} (fully synchronous baseline)...")
    sync = run_spec(SimulationSpec(benchmark=benchmark, mcd=False))

    print(f"Simulating {benchmark!r} (baseline MCD, all domains 1 GHz)...")
    mcd = run_spec(SimulationSpec(benchmark=benchmark, mcd=True))

    print(f"Simulating {benchmark!r} (MCD + Attack/Decay)...")
    controller = AttackDecayController(SCALED_OPERATING_POINT)
    controlled = run_spec(
        SimulationSpec(benchmark=benchmark, mcd=True, controller=controller)
    )

    print()
    print(f"{'configuration':24s} {'CPI':>7s} {'EPI':>8s} {'energy':>10s}")
    for label, result in (
        ("fully synchronous", sync),
        ("baseline MCD", mcd),
        ("MCD + Attack/Decay", controlled),
    ):
        print(
            f"{label:24s} {result.cpi:7.3f} {result.epi:8.3f} {result.energy:10.0f}"
        )

    inherent = compare(summarize(mcd), summarize(sync))
    vs_mcd = compare(summarize(controlled), summarize(mcd))
    print()
    print(f"inherent MCD degradation: {inherent.performance_degradation:+.2%}")
    print(f"Attack/Decay vs baseline MCD:")
    print(f"  performance degradation: {vs_mcd.performance_degradation:+.2%}")
    print(f"  energy savings:          {vs_mcd.energy_savings:+.2%}")
    print(f"  EDP improvement:         {vs_mcd.edp_improvement:+.2%}")
    print(f"  power/perf ratio:        {vs_mcd.power_performance_ratio:.1f}")

    print()
    print("final domain frequencies under Attack/Decay (MHz):")
    for domain, mhz in controlled.final_frequencies_mhz.items():
        if domain is not Domain.EXTERNAL:
            print(f"  {domain.value:16s} {mhz:7.1f}")


if __name__ == "__main__":
    main()
