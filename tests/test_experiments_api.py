"""Tests for the registry-driven scenario API and the orchestrator."""

import json

import pytest

from repro.config.algorithm import AttackDecayParams
from repro.control.attack_decay import AttackDecayController
from repro.errors import ExperimentError
from repro.experiments import (
    CONFIGURATIONS,
    CacheStore,
    ExecutionContext,
    Orchestrator,
    ResultSet,
    Scenario,
    Suite,
    register_configuration,
)
from repro.experiments.builtins import attack_decay_scenario
from repro.experiments.results import RunOutcome, RunRecord
from repro.metrics.summary import RunSummary, summarize
from repro.sim.engine import SimulationSpec, run_spec
from repro.sim.experiment import ExperimentRunner

#: A tiny scale so the whole module runs in seconds.
SCALE = 0.05


@pytest.fixture
def ctx(tmp_path) -> ExecutionContext:
    # use_cache pinned so an ambient REPRO_CACHE=0 cannot break the
    # cache-asserting tests.
    return ExecutionContext(cache_dir=tmp_path, scale=SCALE, seed=1, use_cache=True)


class TestRegistry:
    def test_paper_configurations_resolvable(self):
        for name in (
            "sync",
            "mcd_base",
            "attack_decay",
            "dynamic_1",
            "dynamic_5",
            "global@640.000",
        ):
            factory, params = CONFIGURATIONS.resolve(name)
            assert callable(factory), name

    def test_pattern_names_parse_parameters(self):
        _, params = CONFIGURATIONS.resolve("dynamic_5")
        assert params == {"target_pct": 5.0}
        _, params = CONFIGURATIONS.resolve("global@725.5")
        assert params == {"frequency_mhz": 725.5}
        _, params = CONFIGURATIONS.resolve("attack_decay[1.750_06.0_0.175_2.5][literal]")
        assert params["decay_pct"] == 0.175
        assert params["literal_listing"] is True

    def test_unknown_configuration_rejected(self):
        with pytest.raises(ExperimentError):
            CONFIGURATIONS.resolve("nonesuch")

    def test_duplicate_name_rejected(self):
        @register_configuration("test_dup_cfg")
        def first(ctx, benchmark, scale, seed):
            """Test entry."""
            return SimulationSpec(benchmark=benchmark, scale=scale, seed=seed)

        try:
            with pytest.raises(ExperimentError):

                @register_configuration("test_dup_cfg")
                def second(ctx, benchmark, scale, seed):
                    """Conflicting test entry."""
                    return SimulationSpec(benchmark=benchmark, scale=scale, seed=seed)

        finally:
            CONFIGURATIONS.unregister("test_dup_cfg")

    def test_contains_and_names(self):
        assert "sync" in CONFIGURATIONS
        assert "dynamic_2.5" in CONFIGURATIONS
        assert "bogus" not in CONFIGURATIONS
        assert "sync" in CONFIGURATIONS.names()


class TestSuite:
    def test_cross_product_expansion(self):
        suite = Suite(
            benchmarks=["adpcm", "gsm"],
            configurations=["sync", "mcd_base", "attack_decay"],
            seeds=[1, 2],
        )
        matrix = suite.expand()
        assert len(matrix) == len(suite) == 12
        # Deterministic order, configurations varying fastest.
        assert matrix[0] == Scenario("adpcm", "sync", seed=1)
        assert matrix[1] == Scenario("adpcm", "mcd_base", seed=1)
        assert {s.seed for s in matrix} == {1, 2}

    def test_override_axis(self):
        suite = Suite(
            benchmarks=["adpcm"],
            configurations=["attack_decay"],
            overrides=[{"decay_pct": 0.5}, {"decay_pct": 1.0}],
        )
        matrix = suite.expand()
        assert len(matrix) == 2
        assert matrix[0].overrides == (("decay_pct", 0.5),)

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ExperimentError):
            Suite(benchmarks=["nope"], configurations=["sync"]).expand()

    def test_unknown_configuration_rejected(self):
        with pytest.raises(ExperimentError):
            Suite(benchmarks=["adpcm"], configurations=["nope"]).expand()

    def test_empty_axes_rejected(self):
        with pytest.raises(ExperimentError):
            Suite(benchmarks=[], configurations=["sync"]).expand()
        with pytest.raises(ExperimentError):
            Suite(benchmarks=["adpcm"], configurations=["sync"], seeds=[]).expand()

    def test_scenario_round_trip(self):
        scenario = Scenario(
            "adpcm", "attack_decay", seed=3, scale=0.5, overrides={"decay_pct": 1.0}
        )
        assert Scenario.from_dict(scenario.to_dict()) == scenario


class TestCacheStore:
    def test_round_trip(self, tmp_path):
        store = CacheStore(tmp_path)
        key = store.key({"benchmark": "x", "configuration": "y"})
        assert store.load(key) is None
        store.store(key, {"value": 42})
        assert store.load(key) == {"value": 42}
        # No stray temp files after a completed write.
        assert list(tmp_path.glob("*.tmp")) == []

    def test_corrupt_entry_is_logged_miss(self, tmp_path, caplog):
        store = CacheStore(tmp_path)
        key = store.key({"benchmark": "x"})
        store.store(key, {"value": 1})
        (tmp_path / f"{key}.json").write_text("{truncated")
        with caplog.at_level("WARNING"):
            assert store.load(key) is None
        assert any("treating as miss" in r.message for r in caplog.records)

    def test_disabled_store_misses(self, tmp_path):
        store = CacheStore(tmp_path, enabled=False)
        key = store.key({"benchmark": "x"})
        store.store(key, {"value": 1})
        assert store.load(key) is None
        assert not any(tmp_path.iterdir())

    def test_key_distinguishes_overrides(self, ctx):
        plain = ctx.cache_key(Scenario("adpcm", "attack_decay"))
        tweaked = ctx.cache_key(
            Scenario("adpcm", "attack_decay", overrides={"decay_pct": 0.5})
        )
        assert plain != tweaked

    def test_key_rejects_non_serialisable_payload_values(self, tmp_path):
        """Regression: ``default=str`` silently collided distinct values.

        Two payload values with equal ``str()`` used to hash to one
        cache identity, so one configuration could be served the other
        one's results.  Non-JSON values must raise instead.
        """
        store = CacheStore(tmp_path)

        class Opaque:
            def __init__(self, value):
                self.value = value

            def __str__(self):  # identical str() for distinct values
                return "opaque"

        with pytest.raises(ExperimentError, match="JSON-serialisable"):
            store.key({"benchmark": "x", "knob": Opaque(1)})
        with pytest.raises(ExperimentError, match="JSON-serialisable"):
            store.key({"benchmark": "x", "knob": Opaque(2)})

    def test_key_separates_values_str_would_merge(self, tmp_path):
        """JSON-distinguishable values that stringify alike stay distinct."""
        store = CacheStore(tmp_path)
        as_string = store.key({"scale": "0.5"})
        as_number = store.key({"scale": 0.5})
        assert as_string != as_number


class TestExecutionContext:
    def test_run_matches_direct_spec(self, ctx):
        record = ctx.run(Scenario("adpcm", "sync"))
        direct = summarize(
            run_spec(SimulationSpec(benchmark="adpcm", mcd=False, scale=SCALE, seed=1))
        )
        assert record.summary == direct

    def test_cache_round_trip(self, ctx, tmp_path):
        first = ctx.run(Scenario("adpcm", "mcd_base"))
        other = ExecutionContext(
            cache_dir=tmp_path, scale=SCALE, seed=1, use_cache=True
        )
        second = other.run(Scenario("adpcm", "mcd_base"))
        assert first == second

    def test_scenario_scale_overrides_context(self, ctx):
        default = ctx.run(Scenario("adpcm", "sync"))
        bigger = ctx.run(Scenario("adpcm", "sync", scale=SCALE * 2))
        assert bigger.summary.instructions > default.summary.instructions

    def test_seed_in_cache_identity(self, ctx):
        assert ctx.cache_key(Scenario("adpcm", "mcd_base")) != ctx.cache_key(
            Scenario("adpcm", "mcd_base", seed=7)
        )


class TestOrchestrator:
    def test_parallel_matches_serial(self, tmp_path):
        suite = Suite(
            benchmarks=["adpcm", "gsm"],
            configurations=["sync", "mcd_base", "attack_decay"],
            scale=SCALE,
        )
        serial = Orchestrator(
            workers=1, cache_dir=tmp_path / "serial", use_cache=True
        ).run(suite)
        parallel = Orchestrator(
            workers=3, cache_dir=tmp_path / "par", use_cache=True
        ).run(suite)
        assert len(serial) == len(parallel) == 6
        assert [o.record.summary for o in serial] == [
            o.record.summary for o in parallel
        ]
        # Identical cache keys on disk, wherever a run was computed.
        assert sorted(p.name for p in (tmp_path / "serial").iterdir()) == sorted(
            p.name for p in (tmp_path / "par").iterdir()
        )

    def test_forced_spawn_reproduces_fork_over_runtime_registration(
        self, tmp_path
    ):
        """Regression: spawn workers silently dropped runtime workloads.

        The orchestrator hard-coded the fork start method because
        spawn re-imports only the built-ins; the fix ships a registry
        snapshot through the pool initializer.  A runtime-registered
        workload must therefore run — and produce the same summaries —
        under a forced-spawn pool as under fork/serial.
        """
        import multiprocessing

        from repro.workloads import algebra
        from repro.workloads.catalog import get_benchmark, register_benchmark

        if "spawn" not in multiprocessing.get_all_start_methods():
            pytest.skip("spawn start method unavailable")
        register_benchmark(
            algebra.scale(get_benchmark("adpcm"), 0.5, name="spawn_reg_bench"),
            replace=True,
        )
        matrix = [
            Scenario("spawn_reg_bench", "sync"),
            Scenario("spawn_reg_bench", "mcd_base"),
            Scenario("adpcm", "attack_decay"),
        ]
        spawned = Orchestrator(
            workers=2,
            cache_dir=tmp_path / "spawn",
            scale=SCALE,
            use_cache=False,
            start_method="spawn",
        ).run(matrix)
        assert not spawned.errors, [o.error for o in spawned.errors]
        serial = Orchestrator(
            workers=1, cache_dir=tmp_path / "serial", scale=SCALE, use_cache=False
        ).run(matrix)
        assert [o.record.summary for o in spawned] == [
            o.record.summary for o in serial
        ]

    def test_unknown_start_method_raises(self, tmp_path):
        with pytest.raises(ExperimentError, match="start method"):
            Orchestrator(
                workers=2, cache_dir=tmp_path, scale=SCALE, start_method="warp"
            ).run([Scenario("adpcm", "sync"), Scenario("gsm", "sync")])

    def test_rerun_hits_cache(self, tmp_path):
        suite = Suite(
            benchmarks=["adpcm"], configurations=["sync", "mcd_base"], scale=SCALE
        )
        orchestrator = Orchestrator(workers=1, cache_dir=tmp_path, use_cache=True)
        first = orchestrator.run(suite)
        before = {p.name: p.stat().st_mtime_ns for p in tmp_path.iterdir()}
        second = orchestrator.run(suite)
        after = {p.name: p.stat().st_mtime_ns for p in tmp_path.iterdir()}
        assert before == after  # nothing recomputed or rewritten
        assert [o.record for o in first] == [o.record for o in second]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_failing_run_is_isolated(self, tmp_path, workers):
        @register_configuration("test_explode")
        def exploding(ctx, benchmark, scale, seed):
            """Test entry that always fails."""
            raise RuntimeError("injected failure")

        try:
            scenarios = [
                Scenario("adpcm", "sync", scale=SCALE),
                Scenario("adpcm", "test_explode", scale=SCALE),
                Scenario("gsm", "sync", scale=SCALE),
            ]
            results = Orchestrator(workers=workers, cache_dir=tmp_path).run(scenarios)
        finally:
            CONFIGURATIONS.unregister("test_explode")
        assert len(results) == 3
        assert len(results.errors) == 1
        failed = results.errors[0]
        assert failed.scenario.configuration == "test_explode"
        assert "injected failure" in failed.error
        # The other runs completed and are queryable.
        assert results.get("adpcm", "sync").summary.instructions > 0
        assert results.get("gsm", "sync").summary.instructions > 0


class TestResultSet:
    @pytest.fixture(scope="class")
    def results(self, tmp_path_factory):
        suite = Suite(
            benchmarks=["adpcm", "gsm"],
            configurations=["sync", "mcd_base"],
            scale=SCALE,
        )
        return Orchestrator(
            workers=1, cache_dir=tmp_path_factory.mktemp("cache")
        ).run(suite)

    def test_filter_and_group(self, results):
        assert len(results.filter(benchmark="adpcm")) == 2
        assert len(results.filter(configuration="sync")) == 2
        groups = results.group_by("configuration")
        assert set(groups) == {"sync", "mcd_base"}
        assert all(len(g) == 2 for g in groups.values())

    def test_compare_and_aggregate(self, results):
        comparisons = results.compare("mcd_base", reference="sync")
        assert set(comparisons) == {"adpcm", "gsm"}
        agg = results.aggregate("mcd_base", reference="sync")
        assert agg.count == 2

    def test_aggregate_without_common_runs_rejected(self, results):
        with pytest.raises(ExperimentError):
            results.aggregate("sync", reference="dynamic_1")

    def test_get_requires_unique_match(self, results):
        with pytest.raises(ExperimentError):
            results.get("adpcm", "dynamic_1")

    def test_json_round_trip(self, results):
        data = json.loads(json.dumps(results.to_dict()))
        restored = ResultSet.from_dict(data)
        assert [o.record for o in restored] == [o.record for o in results]

    def test_outcome_round_trip(self):
        outcome = RunOutcome(
            scenario=Scenario("adpcm", "sync"),
            record=RunRecord("adpcm", "sync", RunSummary(1, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0)),
        )
        assert RunOutcome.from_dict(outcome.to_dict()) == outcome


class TestFacadeEquivalence:
    """ExperimentRunner must behave exactly as the seed runner did."""

    @pytest.fixture
    def runner(self, tmp_path) -> ExperimentRunner:
        return ExperimentRunner(cache_dir=tmp_path, scale=SCALE, seed=1)

    def test_sync_baseline(self, runner):
        direct = summarize(
            run_spec(SimulationSpec(benchmark="adpcm", mcd=False, scale=SCALE, seed=1))
        )
        assert runner.sync_baseline("adpcm").summary == direct

    def test_attack_decay_params_respected(self, runner):
        params = AttackDecayParams(decay_pct=1.0, interval_instructions=500)
        record = runner.attack_decay("adpcm", params)
        direct = summarize(
            run_spec(
                SimulationSpec(
                    benchmark="adpcm",
                    mcd=True,
                    controller=AttackDecayController(params),
                    scale=SCALE,
                    seed=1,
                )
            )
        )
        assert record.summary == direct
        assert record.configuration == f"attack_decay[{params.legend()}]"

    def test_attack_decay_non_legend_fields_in_cache_identity(self, runner):
        # The legend covers only four fields; the rest must still be
        # part of the cache identity (the seed runner collided them).
        coarse = attack_decay_scenario("adpcm", AttackDecayParams())
        fine = attack_decay_scenario(
            "adpcm", AttackDecayParams(interval_instructions=500)
        )
        assert coarse.configuration == fine.configuration
        assert runner.context.cache_key(coarse) != runner.context.cache_key(fine)

    def test_run_scenario_shares_cache_with_methods(self, runner):
        via_method = runner.mcd_baseline("adpcm")
        via_scenario = runner.run_scenario(Scenario("adpcm", "mcd_base"))
        assert via_method == via_scenario

    def test_attack_decay_scenario_helper_round_trip(self):
        params = AttackDecayParams(decay_pct=0.5, endstop_intervals=5)
        scenario = attack_decay_scenario("gsm", params)
        assert scenario.configuration == f"attack_decay[{params.legend()}]"
        assert dict(scenario.overrides) == {"endstop_intervals": 5}

    def test_attack_decay_exact_fractional_params(self, runner):
        # The legend string is fixed-precision; values it cannot
        # represent must still be simulated exactly (and cached
        # distinctly), via overrides that win over the parsed name.
        params = AttackDecayParams(reaction_change_pct=2.642857142857143)
        scenario = attack_decay_scenario("adpcm", params)
        assert dict(scenario.overrides) == {
            "reaction_change_pct": 2.642857142857143
        }
        rounded = attack_decay_scenario(
            "adpcm", AttackDecayParams(reaction_change_pct=2.6)
        )
        assert scenario.configuration == rounded.configuration
        assert runner.context.cache_key(scenario) != runner.context.cache_key(
            rounded
        )
        record = runner.attack_decay("adpcm", params)
        direct = summarize(
            run_spec(
                SimulationSpec(
                    benchmark="adpcm",
                    mcd=True,
                    controller=AttackDecayController(params),
                    scale=SCALE,
                    seed=1,
                )
            )
        )
        assert record.summary == direct


class TestEnvironmentValidation:
    def test_malformed_scale_rejected(self, monkeypatch):
        from repro.experiments.executor import benchmark_scale

        monkeypatch.setenv("REPRO_SCALE", "fast")
        with pytest.raises(ExperimentError, match="fast"):
            benchmark_scale()

    def test_non_positive_scale_rejected(self, monkeypatch):
        from repro.experiments.executor import benchmark_scale

        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ExperimentError, match="-1"):
            benchmark_scale()

    def test_unknown_benchmarks_rejected(self, monkeypatch):
        from repro.experiments.executor import quick_benchmarks

        monkeypatch.setenv("REPRO_BENCHMARKS", "adpcm,nonesuch")
        with pytest.raises(ExperimentError, match="nonesuch"):
            quick_benchmarks()

    def test_malformed_workers_rejected(self, monkeypatch):
        from repro.experiments.executor import default_workers

        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ExperimentError, match="many"):
            default_workers()
