"""Integration tests: the full pipeline on small traces."""

import pytest

from repro.config.mcd import Domain, MCDConfig
from repro.config.processor import ProcessorConfig
from repro.control.attack_decay import AttackDecayController
from repro.control.fixed import FixedFrequencyController
from repro.uarch.core import CoreOptions, MCDCore
from repro.uarch.isa import InstructionClass
from repro.uarch.trace import InstructionBlock, ListTrace
from repro.workloads.phases import INT_COMPUTE_MIX, FP_COMPUTE_MIX, Phase
from repro.workloads.synthetic import SyntheticTrace


def small_trace(n=5000, mix=INT_COMPUTE_MIX, **kw) -> SyntheticTrace:
    return SyntheticTrace([Phase("p", n, mix, **kw)], seed=11)


def run_core(trace, mcd=True, controller=None, interval=500, seed=1, **core_kw):
    options = CoreOptions(
        mcd=mcd, seed=seed, interval_instructions=interval, **core_kw
    )
    core = MCDCore(ProcessorConfig(), MCDConfig(), trace, controller, options)
    return core.run()


class TestBasicExecution:
    def test_all_instructions_retire(self):
        result = run_core(small_trace())
        assert result.instructions == 5000

    def test_time_and_energy_positive(self):
        result = run_core(small_trace())
        assert result.wall_time_ns > 0
        assert result.energy > 0
        assert result.cpi > 0.1

    def test_deterministic_given_seed(self):
        a = run_core(small_trace(), seed=5)
        b = run_core(small_trace(), seed=5)
        assert a.wall_time_ns == b.wall_time_ns
        assert a.energy == b.energy

    def test_different_seed_changes_mcd_timing(self):
        a = run_core(small_trace(), seed=5)
        b = run_core(small_trace(), seed=6)
        assert a.wall_time_ns != b.wall_time_ns

    def test_sync_baseline_is_seed_independent(self):
        a = run_core(small_trace(), mcd=False, seed=5)
        b = run_core(small_trace(), mcd=False, seed=6)
        assert a.wall_time_ns == b.wall_time_ns

    def test_single_instruction_trace(self):
        block = InstructionBlock()
        block.append(InstructionClass.INT_ALU)
        result = run_core(ListTrace([block]))
        assert result.instructions == 1

    def test_serial_dependency_chain_bounds_cpi(self):
        # Every instruction depends on its predecessor: CPI >= ~1.
        block = InstructionBlock()
        for _ in range(2000):
            block.append(InstructionClass.INT_ALU, src1=1)
        result = run_core(ListTrace([block]), mcd=False)
        assert result.cpi >= 0.99

    def test_independent_stream_exploits_width(self):
        block = InstructionBlock()
        for _ in range(2000):
            block.append(InstructionClass.INT_ALU)  # no deps
        result = run_core(ListTrace([block]), mcd=False)
        # 4 int ALUs, decode width 4: CPI should approach 1/4-ish.
        assert result.cpi < 0.6


class TestDomainBehaviour:
    def test_fp_domain_unused_for_integer_code(self):
        result = run_core(small_trace())
        assert result.domain_busy_cycles[Domain.FLOATING_POINT] == 0

    def test_fp_domain_busy_for_fp_code(self):
        result = run_core(small_trace(mix=FP_COMPUTE_MIX))
        assert result.domain_busy_cycles[Domain.FLOATING_POINT] > 0

    def test_idle_domain_still_burns_energy(self):
        result = run_core(small_trace())
        assert result.domain_energy[Domain.FLOATING_POINT] > 0

    def test_memory_misses_touch_external_domain(self):
        trace = small_trace(working_set_kb=8192, far_miss_fraction=0.3)
        result = run_core(trace)
        assert result.memory_accesses > 0
        assert result.domain_energy[Domain.EXTERNAL] > 0

    def test_mcd_carries_clock_energy_overhead(self):
        e_sync = run_core(small_trace(), mcd=False).clock_energy
        e_mcd = run_core(small_trace(), mcd=True).clock_energy
        # MCD clock trees cost ~10 % extra; timings differ slightly so
        # allow a loose band.
        assert e_mcd > e_sync * 1.02


class TestFrequencyControl:
    def test_fixed_controller_slows_everything(self):
        slow = FixedFrequencyController(
            {
                Domain.INTEGER: 500.0,
                Domain.FLOATING_POINT: 500.0,
                Domain.LOAD_STORE: 500.0,
            }
        )
        fast = run_core(small_trace())
        slowed = run_core(small_trace(), controller=slow)
        assert slowed.wall_time_ns > fast.wall_time_ns
        assert slowed.energy < fast.energy

    def test_half_frequency_integer_domain_roughly_halves_int_throughput(self):
        block = InstructionBlock()
        for _ in range(4000):
            block.append(InstructionClass.INT_ALU, src1=1)  # serial chain
        fast = run_core(ListTrace([block]), mcd=False)
        slow = run_core(
            ListTrace([block]),
            mcd=False,
            controller=FixedFrequencyController({Domain.INTEGER: 500.0}),
        )
        ratio = slow.wall_time_ns / fast.wall_time_ns
        assert ratio == pytest.approx(2.0, rel=0.25)

    def test_attack_decay_reduces_energy_on_integer_code(self):
        base = run_core(small_trace(20_000))
        controlled = run_core(
            small_trace(20_000), controller=AttackDecayController()
        )
        assert controlled.energy < base.energy
        assert controlled.final_frequencies_mhz[Domain.FLOATING_POINT] < 1000.0

    def test_front_end_stays_at_max_under_attack_decay(self):
        controlled = run_core(
            small_trace(10_000), controller=AttackDecayController()
        )
        assert controlled.final_frequencies_mhz[Domain.FRONT_END] == 1000.0

    def test_interval_trace_recorded(self):
        result = run_core(
            small_trace(10_000),
            controller=AttackDecayController(),
            record_interval_trace=True,
        )
        assert len(result.intervals) == pytest.approx(20, abs=2)
        record = result.intervals[0]
        assert record.ipc > 0
        assert Domain.INTEGER in record.queue_utilization


class TestWarmup:
    def test_warmup_improves_branch_accuracy(self):
        trace1 = small_trace(20_000)
        cold = run_core(trace1)
        core = MCDCore(
            ProcessorConfig(),
            MCDConfig(),
            small_trace(20_000),
            options=CoreOptions(interval_instructions=500),
        )
        core.warm_up(small_trace(20_000), limit=20_000)
        warm = core.run()
        assert warm.branch_accuracy >= cold.branch_accuracy

    def test_warmup_resets_statistics(self):
        core = MCDCore(
            ProcessorConfig(),
            MCDConfig(),
            small_trace(5000),
            options=CoreOptions(interval_instructions=500),
        )
        replayed = core.warm_up(small_trace(5000), limit=5000)
        assert replayed == 5000
        assert core.predictor.stats.lookups == 0
        assert core.hierarchy.l1d.stats.accesses == 0
