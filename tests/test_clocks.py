"""Tests for jitter models, domain clocks and the synchronizer."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clocks.domain_clock import DomainClock
from repro.clocks.jitter import GaussianJitter, NoJitter
from repro.clocks.synchronizer import Synchronizer, SynchronizerStats
from repro.config.mcd import Domain
from repro.errors import ClockError


class TestJitter:
    def test_no_jitter_is_zero(self):
        j = NoJitter()
        assert all(j.sample() == 0.0 for _ in range(100))

    def test_gaussian_jitter_statistics(self):
        j = GaussianJitter(sigma_ns=0.110, seed=42)
        samples = [j.sample() for _ in range(50_000)]
        mean = sum(samples) / len(samples)
        var = sum((s - mean) ** 2 for s in samples) / len(samples)
        assert abs(mean) < 0.005
        assert math.sqrt(var) == pytest.approx(0.110, rel=0.05)

    def test_gaussian_jitter_clipped(self):
        j = GaussianJitter(sigma_ns=0.110, seed=1, clip_sigmas=3.0)
        assert all(abs(j.sample()) <= 0.330 + 1e-12 for _ in range(100_000))

    def test_deterministic_for_same_seed(self):
        a = GaussianJitter(0.1, seed=7)
        b = GaussianJitter(0.1, seed=7)
        assert [a.sample() for _ in range(1000)] == [b.sample() for _ in range(1000)]

    def test_different_seeds_differ(self):
        a = GaussianJitter(0.1, seed=7)
        b = GaussianJitter(0.1, seed=8)
        assert [a.sample() for _ in range(10)] != [b.sample() for _ in range(10)]

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            GaussianJitter(-0.1)


class TestDomainClock:
    def test_initial_edge_at_phase(self):
        clock = DomainClock("x", 1000.0, phase_ns=0.25)
        assert clock.next_edge_ns == 0.25
        assert clock.cycle_index == 0

    def test_advance_steps_by_period(self):
        clock = DomainClock("x", 1000.0)
        clock.advance()
        assert clock.next_edge_ns == pytest.approx(1.0)
        clock.advance()
        assert clock.next_edge_ns == pytest.approx(2.0)
        assert clock.cycle_index == 2

    def test_frequency_round_trip(self):
        clock = DomainClock("x", 250.0)
        assert clock.frequency_mhz == pytest.approx(250.0)
        clock.set_frequency(500.0)
        assert clock.period_ns == pytest.approx(2.0)

    def test_bad_frequency_rejected(self):
        with pytest.raises(ClockError):
            DomainClock("x", 0.0)
        clock = DomainClock("x", 1000.0)
        with pytest.raises(ClockError):
            clock.set_frequency(-1.0)

    def test_negative_phase_rejected(self):
        with pytest.raises(ClockError):
            DomainClock("x", 1000.0, phase_ns=-1.0)

    @given(st.integers(min_value=1, max_value=2000))
    @settings(max_examples=30)
    def test_edges_strictly_monotone_with_jitter(self, n):
        clock = DomainClock("x", 1000.0, jitter=GaussianJitter(0.110, seed=3))
        last = clock.next_edge_ns
        for _ in range(n):
            now = clock.advance()
            assert now > last
            last = now

    def test_skip_idle_until_reaches_target(self):
        clock = DomainClock("x", 1000.0)
        skipped = clock.skip_idle_until(100.5)
        assert skipped == 101  # edges at 0,1,...: first edge >= 100.5 is 101
        assert clock.next_edge_ns >= 100.5
        assert clock.cycle_index == skipped

    def test_skip_idle_noop_when_in_past(self):
        clock = DomainClock("x", 1000.0, phase_ns=5.0)
        assert clock.skip_idle_until(2.0) == 0
        assert clock.next_edge_ns == 5.0

    @given(
        st.floats(min_value=0.1, max_value=100.0),
        st.floats(min_value=0.0, max_value=1000.0),
    )
    @settings(max_examples=100)
    def test_skip_idle_lands_within_one_period(self, period_ghz_inv, target):
        clock = DomainClock("x", 1e3 / period_ghz_inv)
        clock.skip_idle_until(target)
        assert clock.next_edge_ns >= target - 1e-9
        assert clock.next_edge_ns < target + period_ghz_inv + 1e-6


class TestSynchronizer:
    def test_window_rule(self):
        sync = Synchronizer(window_ns=0.3)
        assert sync.visible(write_time_ns=0.0, dst_edge_ns=0.3)
        assert not sync.visible(write_time_ns=0.0, dst_edge_ns=0.29)
        assert sync.visible(write_time_ns=0.0, dst_edge_ns=1.0)

    def test_zero_window_always_visible_at_or_after(self):
        sync = Synchronizer(window_ns=0.0)
        assert sync.visible(1.0, 1.0)
        assert not sync.visible(1.0, 0.5)

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            Synchronizer(-0.1)

    def test_stats_record_deferrals(self):
        sync = Synchronizer(window_ns=0.3)
        sync.visible_recorded(0.0, 0.1, Domain.FRONT_END, Domain.INTEGER)
        sync.visible_recorded(0.0, 0.5, Domain.FRONT_END, Domain.INTEGER)
        assert sync.stats.attempts == 2
        assert sync.stats.deferrals == 1
        assert sync.stats.deferral_rate == pytest.approx(0.5)
        assert sync.stats.by_edge[("front_end", "integer")] == 1

    def test_earlier_edges_not_counted_as_attempts(self):
        sync = Synchronizer(window_ns=0.3)
        sync.visible_recorded(1.0, 0.5, Domain.INTEGER, Domain.FRONT_END)
        assert sync.stats.attempts == 0

    def test_empty_stats(self):
        stats = SynchronizerStats()
        assert stats.deferral_rate == 0.0
