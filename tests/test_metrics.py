"""Tests for run summaries, comparisons and aggregation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.metrics.aggregate import aggregate
from repro.metrics.summary import Comparison, RunSummary, compare


def summary(time_ns: float, energy: float, instructions: int = 1000) -> RunSummary:
    return RunSummary(
        instructions=instructions,
        wall_time_ns=time_ns,
        energy=energy,
        cpi=time_ns / instructions,
        epi=energy / instructions,
        power=energy / time_ns,
        edp=energy * time_ns,
    )


class TestCompare:
    def test_identical_runs_compare_to_zero(self):
        ref = summary(1000.0, 500.0)
        c = compare(ref, ref)
        assert c.performance_degradation == 0.0
        assert c.energy_savings == 0.0
        assert c.edp_improvement == 0.0

    def test_slower_run_degrades(self):
        c = compare(summary(1100.0, 500.0), summary(1000.0, 500.0))
        assert c.performance_degradation == pytest.approx(0.10)

    def test_cheaper_run_saves_energy(self):
        c = compare(summary(1000.0, 400.0), summary(1000.0, 500.0))
        assert c.energy_savings == pytest.approx(0.20)
        assert c.epi_reduction == pytest.approx(0.20)

    def test_paper_arithmetic_example(self):
        # 3.2 % slower, 19 % less energy => EDP improves ~16.4 %,
        # power/perf ratio ~6.8 (power saved 21.5 % / 3.2 %).
        run = summary(1032.0, 810.0)
        ref = summary(1000.0, 1000.0)
        c = compare(run, ref)
        assert c.edp_improvement == pytest.approx(1 - 0.81 * 1.032, abs=1e-9)
        assert c.power_savings == pytest.approx(1 - 0.81 / 1.032, abs=1e-9)

    def test_mismatched_instruction_counts_rejected(self):
        with pytest.raises(SimulationError):
            compare(summary(1, 1, instructions=10), summary(1, 1, instructions=20))

    def test_zero_reference_rejected(self):
        zero_ref = RunSummary(
            instructions=1000,
            wall_time_ns=0.0,
            energy=0.0,
            cpi=0.0,
            epi=0.0,
            power=0.0,
            edp=0.0,
        )
        with pytest.raises(SimulationError):
            compare(summary(1000, 500), zero_ref)

    def test_ratio_infinite_without_degradation(self):
        c = compare(summary(1000.0, 400.0), summary(1000.0, 500.0))
        assert c.power_performance_ratio == float("inf")

    def test_round_trip_dict(self):
        s = summary(123.0, 456.0)
        assert RunSummary.from_dict(s.to_dict()) == s

    @given(
        st.floats(min_value=1.0, max_value=1e6),
        st.floats(min_value=1.0, max_value=1e6),
        st.floats(min_value=1.0, max_value=1e6),
        st.floats(min_value=1.0, max_value=1e6),
    )
    @settings(max_examples=100)
    def test_edp_consistent_with_parts(self, t1, e1, t0, e0):
        c = compare(summary(t1, e1), summary(t0, e0))
        edp_ratio = (e1 * t1) / (e0 * t0)
        assert c.edp_improvement == pytest.approx(1 - edp_ratio, rel=1e-9)


class TestAggregate:
    def _comparison(self, deg: float, save: float) -> Comparison:
        return Comparison(
            performance_degradation=deg,
            energy_savings=save,
            epi_reduction=save,
            edp_improvement=save - deg,
            power_savings=save - deg / 2,
        )

    def test_unweighted_mean(self):
        agg = aggregate([self._comparison(0.02, 0.1), self._comparison(0.04, 0.3)])
        assert agg.performance_degradation == pytest.approx(0.03)
        assert agg.energy_savings == pytest.approx(0.2)
        assert agg.count == 2

    def test_weighted_mean(self):
        comps = {"a": self._comparison(0.0, 0.0), "b": self._comparison(0.04, 0.4)}
        agg = aggregate(comps, weights={"a": 3.0, "b": 1.0})
        assert agg.performance_degradation == pytest.approx(0.01)
        assert agg.energy_savings == pytest.approx(0.1)

    def test_ratio_from_averages(self):
        agg = aggregate([self._comparison(0.02, 0.1)])
        assert agg.power_performance_ratio == pytest.approx(
            agg.power_savings / agg.performance_degradation
        )

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            aggregate([])

    def test_weights_require_names(self):
        with pytest.raises(SimulationError):
            aggregate([self._comparison(0.1, 0.1)], weights={"a": 1.0})
