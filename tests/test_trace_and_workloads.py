"""Tests for the trace format, synthetic generator and catalog."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceError, WorkloadError
from repro.uarch.isa import InstructionClass
from repro.uarch.trace import MAX_DEP_DISTANCE, InstructionBlock, ListTrace
from repro.workloads.catalog import BENCHMARKS, benchmark_names, get_benchmark
from repro.workloads.phases import INT_COMPUTE_MIX, Phase
from repro.workloads.synthetic import SyntheticTrace


class TestInstructionBlock:
    def test_append_and_len(self):
        b = InstructionBlock()
        b.append(InstructionClass.INT_ALU, src1=1)
        b.append(InstructionClass.LOAD, addr=64)
        assert len(b) == 2
        b.validate()

    def test_validate_rejects_mismatched_arrays(self):
        b = InstructionBlock(kinds=[0, 1], src1=[0])
        with pytest.raises(TraceError):
            b.validate()

    def test_validate_rejects_bad_class(self):
        b = InstructionBlock()
        b.append(InstructionClass.INT_ALU)
        b.kinds[0] = 99
        with pytest.raises(TraceError):
            b.validate()

    def test_validate_rejects_excess_dep_distance(self):
        b = InstructionBlock()
        b.append(InstructionClass.INT_ALU, src1=MAX_DEP_DISTANCE + 1)
        with pytest.raises(TraceError):
            b.validate()

    def test_class_counts(self):
        b = InstructionBlock()
        b.append(InstructionClass.LOAD)
        b.append(InstructionClass.LOAD)
        b.append(InstructionClass.BRANCH)
        counts = b.class_counts()
        assert counts[InstructionClass.LOAD] == 2
        assert counts[InstructionClass.BRANCH] == 1


class TestListTrace:
    def test_total_and_iteration(self):
        b = InstructionBlock()
        b.append(InstructionClass.INT_ALU)
        trace = ListTrace([b, b])
        assert trace.total_instructions == 2
        assert len(list(trace.blocks())) == 2


class TestPhase:
    def test_mix_must_sum_to_one(self):
        with pytest.raises(WorkloadError):
            Phase("p", 100, {InstructionClass.INT_ALU: 0.5})

    def test_negative_instructions_rejected(self):
        with pytest.raises(WorkloadError):
            Phase("p", 0, INT_COMPUTE_MIX)

    def test_fraction_fields_validated(self):
        with pytest.raises(WorkloadError):
            Phase("p", 100, INT_COMPUTE_MIX, dep_density=1.5)

    def test_scaled_rounds_and_clamps(self):
        p = Phase("p", 1000, INT_COMPUTE_MIX)
        assert p.scaled(0.5).instructions == 500
        assert p.scaled(0.00001).instructions == 1


class TestSyntheticTrace:
    def _trace(self, **kw) -> SyntheticTrace:
        phase = Phase("p", 10_000, INT_COMPUTE_MIX, **kw)
        return SyntheticTrace([phase], seed=3)

    def test_exact_length(self):
        t = self._trace()
        total = sum(len(b) for b in t.blocks())
        assert total == t.total_instructions == 10_000

    def test_blocks_are_valid(self):
        t = self._trace()
        for block in t.blocks():
            block.validate()

    def test_deterministic(self):
        a = self._trace()
        b = self._trace()
        for ba, bb in zip(a.blocks(), b.blocks()):
            assert ba.kinds == bb.kinds
            assert ba.addrs == bb.addrs
            assert ba.taken == bb.taken

    def test_mix_fractions_approximated(self):
        t = self._trace()
        counts = dict.fromkeys(InstructionClass, 0)
        total = 0
        for block in t.blocks():
            for k, v in block.class_counts().items():
                counts[k] += v
            total += len(block)
        for klass, expect in INT_COMPUTE_MIX.items():
            got = counts[klass] / total
            assert got == pytest.approx(expect, abs=0.05)

    def test_static_program_image_stable(self):
        # A given pc must always carry the same instruction class.
        t = self._trace()
        seen: dict[int, int] = {}
        for block in t.blocks():
            for pc, kind in zip(block.pcs, block.kinds):
                assert seen.setdefault(pc, kind) == kind

    def test_branch_targets_stable_per_pc(self):
        t = self._trace()
        seen: dict[int, int] = {}
        for block in t.blocks():
            for i, kind in enumerate(block.kinds):
                if kind == int(InstructionClass.BRANCH) and block.taken[i]:
                    pc, tgt = block.pcs[i], block.targets[i]
                    assert seen.setdefault(pc, tgt) == tgt

    def test_memory_ops_have_addresses(self):
        t = self._trace()
        for block in t.blocks():
            for i, kind in enumerate(block.kinds):
                if kind in (int(InstructionClass.LOAD), int(InstructionClass.STORE)):
                    assert block.addrs[i] > 0

    def test_far_fraction_produces_far_addresses(self):
        t = self._trace(far_miss_fraction=0.5)
        far = near = 0
        for block in t.blocks():
            for i, kind in enumerate(block.kinds):
                if kind in (int(InstructionClass.LOAD), int(InstructionClass.STORE)):
                    if block.addrs[i] >= 1 << 32:
                        far += 1
                    else:
                        near += 1
        assert far / (far + near) == pytest.approx(0.5, abs=0.1)

    def test_empty_phases_rejected(self):
        with pytest.raises(WorkloadError):
            SyntheticTrace([])


class TestCatalog:
    def test_thirty_benchmarks(self):
        assert len(BENCHMARKS) == 30

    def test_suites_match_table5(self):
        suites = {s.suite for s in BENCHMARKS.values()}
        assert suites == {"MediaBench", "Olden", "Spec2000 INT", "Spec2000 FP"}
        assert len(benchmark_names("MediaBench")) == 9
        assert len(benchmark_names("Olden")) == 10
        assert len(benchmark_names("Spec2000 INT")) == 7
        assert len(benchmark_names("Spec2000 FP")) == 4

    def test_unknown_benchmark_raises(self):
        with pytest.raises(WorkloadError):
            get_benchmark("nonesuch")

    def test_windows_are_scaled_sensibly(self):
        for spec in BENCHMARKS.values():
            assert 50_000 <= spec.sim_instructions <= 200_000, spec.name
            # Hundreds of control intervals per run.
            intervals = spec.sim_instructions / spec.interval_instructions
            assert intervals >= 100, spec.name

    def test_traces_build_and_have_exact_length(self):
        spec = get_benchmark("adpcm")
        trace = spec.build_trace()
        assert trace.total_instructions == spec.sim_instructions

    def test_scale_shrinks_trace(self):
        spec = get_benchmark("adpcm")
        assert spec.build_trace(scale=0.1).total_instructions == pytest.approx(
            spec.sim_instructions * 0.1, rel=0.01
        )

    def test_epic_has_two_fp_bursts(self):
        spec = get_benchmark("epic")
        fp_phases = [p for p in spec.phases if "fp_burst" in p.name]
        assert len(fp_phases) == 2

    def test_weights_positive(self):
        assert all(s.paper_minstructions > 0 for s in BENCHMARKS.values())
