"""Tests for ISA mapping, trace cursor, functional units, Table 4 config."""

import pytest

from repro.config.mcd import Domain
from repro.config.processor import ProcessorConfig
from repro.errors import ConfigError
from repro.uarch.frontend import TraceCursor
from repro.uarch.functional_units import FunctionalUnitPool, build_pools, is_complex
from repro.uarch.isa import NUM_CLASSES, InstructionClass
from repro.uarch.trace import InstructionBlock, ListTrace


class TestISA:
    def test_seven_classes(self):
        assert NUM_CLASSES == 7

    def test_domain_mapping(self):
        assert InstructionClass.INT_ALU.domain is Domain.INTEGER
        assert InstructionClass.BRANCH.domain is Domain.INTEGER
        assert InstructionClass.FP_MULT.domain is Domain.FLOATING_POINT
        assert InstructionClass.LOAD.domain is Domain.LOAD_STORE

    def test_memory_predicate(self):
        assert InstructionClass.LOAD.is_memory
        assert InstructionClass.STORE.is_memory
        assert not InstructionClass.INT_ALU.is_memory

    def test_fp_predicate(self):
        assert InstructionClass.FP_ALU.is_floating_point
        assert not InstructionClass.LOAD.is_floating_point

    def test_codes_are_stable(self):
        # Trace-format constants: changing these breaks stored traces.
        assert int(InstructionClass.INT_ALU) == 0
        assert int(InstructionClass.BRANCH) == 6


class TestTraceCursor:
    def _trace(self):
        a = InstructionBlock()
        a.append(InstructionClass.INT_ALU, src1=2, pc=4)
        b = InstructionBlock()
        b.append(InstructionClass.LOAD, addr=64, pc=8)
        return ListTrace([a, InstructionBlock(), b])  # empty block skipped

    def test_walks_across_blocks(self):
        cursor = TraceCursor(self._trace())
        assert cursor.kind == int(InstructionClass.INT_ALU)
        assert cursor.src1 == 2
        cursor.pop()
        assert cursor.kind == int(InstructionClass.LOAD)
        assert cursor.addr == 64
        cursor.pop()
        assert cursor.exhausted
        assert cursor.consumed == 2

    def test_total_instructions(self):
        assert TraceCursor(self._trace()).total_instructions == 2


class TestFunctionalUnits:
    def test_slots_per_cycle(self):
        pool = FunctionalUnitPool(simple_units=2, complex_units=1)
        pool.begin_cycle()
        assert pool.try_issue(False)
        assert pool.try_issue(False)
        assert not pool.try_issue(False)
        assert pool.try_issue(True)
        assert not pool.try_issue(True)
        assert not pool.any_free

    def test_begin_cycle_resets(self):
        pool = FunctionalUnitPool(1, 0)
        pool.begin_cycle()
        pool.try_issue(False)
        pool.begin_cycle()
        assert pool.try_issue(False)

    def test_stats_counted(self):
        pool = FunctionalUnitPool(2, 1)
        pool.begin_cycle()
        pool.try_issue(False)
        pool.try_issue(True)
        assert pool.stats.simple_ops == 1
        assert pool.stats.complex_ops == 1

    def test_build_pools_matches_table4(self, processor_config):
        pools = build_pools(processor_config)
        assert pools["integer"].simple_units == 4
        assert pools["integer"].complex_units == 1
        assert pools["floating_point"].simple_units == 2
        assert pools["load_store"].simple_units == 2
        assert pools["load_store"].complex_units == 0

    def test_is_complex(self):
        assert is_complex(int(InstructionClass.INT_MULT))
        assert is_complex(int(InstructionClass.FP_MULT))
        assert not is_complex(int(InstructionClass.LOAD))

    def test_bad_widths_rejected(self):
        with pytest.raises(ConfigError):
            FunctionalUnitPool(0, 1)
        with pytest.raises(ConfigError):
            FunctionalUnitPool(1, -1)


class TestProcessorConfig:
    def test_table4_defaults(self, processor_config):
        p = processor_config
        assert p.decode_width == 4
        assert p.issue_width == 6
        assert p.retire_width == 11
        assert p.int_issue_queue_size == 20
        assert p.fp_issue_queue_size == 15
        assert p.load_store_queue_size == 64
        assert p.reorder_buffer_size == 80
        assert p.branch_mispredict_penalty == 7
        assert p.l1_latency_cycles == 2
        assert p.l2_latency_cycles == 12

    def test_table4_rows_complete(self, processor_config):
        rows = dict(processor_config.table4_rows())
        assert rows["Decode Width"] == "4"
        assert rows["L2 Unified Cache"] == "1MB, direct mapped"
        assert rows["Integer ALUs"] == "4 + 1 mult/div unit"
        assert rows["Physical Register File Size"] == "72 integer, 72 floating-point"
        assert len(rows) == 21

    def test_bad_geometry_rejected(self):
        with pytest.raises(ConfigError):
            ProcessorConfig(l1d_kb=3, l1d_ways=7, line_bytes=64)

    def test_non_positive_field_rejected(self):
        with pytest.raises(ConfigError):
            ProcessorConfig(decode_width=0)
