"""Tests for the engine, experiment runner and sweeps (small scale)."""

import pytest

from repro.config.algorithm import AttackDecayParams
from repro.config.mcd import Domain
from repro.control.attack_decay import AttackDecayController
from repro.errors import ExperimentError
from repro.sim.engine import SimulationSpec, run_spec
from repro.sim.experiment import ExperimentRunner, RunRecord
from repro.sim.sweeps import sweep_attack_decay_parameter

#: A tiny scale so the whole module runs in seconds.
SCALE = 0.08


@pytest.fixture
def runner(tmp_path) -> ExperimentRunner:
    return ExperimentRunner(cache_dir=tmp_path, scale=SCALE, seed=1)


class TestEngine:
    def test_run_spec_basic(self):
        result = run_spec(SimulationSpec(benchmark="adpcm", scale=SCALE))
        assert result.instructions == pytest.approx(80_000 * SCALE, rel=0.01)

    def test_unknown_benchmark_raises(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            run_spec(SimulationSpec(benchmark="nope"))

    def test_unknown_path_raises(self):
        with pytest.raises(ExperimentError, match="execution path"):
            run_spec(SimulationSpec(benchmark="adpcm", scale=SCALE, path="warp"))

    def test_explicit_paths_match_auto(self):
        from repro.metrics.summary import summarize
        from repro.uarch.native import load_hotpath

        auto = summarize(run_spec(SimulationSpec(benchmark="adpcm", scale=SCALE)))
        for path in ("generator", "python") + (
            ("native",) if load_hotpath() is not None else ()
        ):
            forced = summarize(
                run_spec(SimulationSpec(benchmark="adpcm", scale=SCALE, path=path))
            )
            assert forced == auto, f"{path} path diverged from auto"

    def test_generator_path_on_compiled_core_raises(self):
        from repro.errors import SimulationError
        from repro.sim.engine import compiled_trace_for, scaled_mcd_config
        from repro.uarch.core import MCDCore
        from repro.workloads.catalog import get_benchmark
        from repro.config.processor import ProcessorConfig

        bench = get_benchmark("adpcm")
        shift = ProcessorConfig().line_bytes.bit_length() - 1
        core = MCDCore(
            ProcessorConfig(),
            scaled_mcd_config(),
            compiled_trace_for(bench, scale=SCALE, line_shift=shift),
        )
        with pytest.raises(SimulationError, match="generator path"):
            core.run(path="generator")
        with pytest.raises(SimulationError, match="unknown execution path"):
            core.run(path="warp")

    def test_python_path_on_generator_core_raises(self):
        from repro.errors import SimulationError
        from repro.sim.engine import scaled_mcd_config
        from repro.uarch.core import MCDCore
        from repro.workloads.catalog import get_benchmark
        from repro.config.processor import ProcessorConfig

        bench = get_benchmark("adpcm")
        core = MCDCore(
            ProcessorConfig(), scaled_mcd_config(), bench.build_trace(scale=SCALE)
        )
        with pytest.raises(SimulationError, match="compiled trace"):
            core.run(path="python")

    def test_global_frequency_applies_to_all_domains(self):
        result = run_spec(
            SimulationSpec(
                benchmark="adpcm", mcd=False, global_frequency_mhz=500.0, scale=SCALE
            )
        )
        assert all(
            f == pytest.approx(500.0, abs=2.0)
            for f in result.final_frequencies_mhz.values()
        )

    def test_global_frequency_out_of_range_rejected(self):
        with pytest.raises(ExperimentError):
            run_spec(
                SimulationSpec(benchmark="adpcm", global_frequency_mhz=100.0)
            )

    def test_global_run_slower_and_cheaper(self):
        full = run_spec(SimulationSpec(benchmark="adpcm", mcd=False, scale=SCALE))
        slow = run_spec(
            SimulationSpec(
                benchmark="adpcm", mcd=False, global_frequency_mhz=600.0, scale=SCALE
            )
        )
        assert slow.wall_time_ns > full.wall_time_ns
        assert slow.energy < full.energy


class TestExperimentRunner:
    def test_cache_round_trip(self, runner):
        first = runner.sync_baseline("adpcm")
        second = runner.sync_baseline("adpcm")
        assert first.summary == second.summary
        # A fresh runner sharing the cache dir loads from disk.
        other = ExperimentRunner(cache_dir=runner.cache_dir, scale=SCALE, seed=1)
        third = other.sync_baseline("adpcm")
        assert third.summary == first.summary

    def test_cache_key_distinguishes_configurations(self, runner):
        sync = runner.sync_baseline("adpcm")
        mcd = runner.mcd_baseline("adpcm")
        assert sync.summary != mcd.summary

    def test_attack_decay_record(self, runner):
        record = runner.attack_decay("adpcm", AttackDecayParams(decay_pct=1.0))
        comparison = runner.compare_to_mcd_base(record)
        assert -0.05 < comparison.performance_degradation < 0.5

    def test_dynamic_targets_monotone(self, runner):
        d1 = runner.dynamic("gsm", 1.0, iterations=2)
        d5 = runner.dynamic("gsm", 5.0, iterations=2)
        assert d5.summary.energy <= d1.summary.energy

    def test_global_matched_converges(self, runner):
        base = runner.mcd_baseline("adpcm").summary
        target = base.wall_time_ns * 1.05
        record = runner.global_matched("adpcm", target)
        assert record.summary.wall_time_ns == pytest.approx(target, rel=0.04)

    def test_run_record_round_trip(self):
        from repro.metrics.summary import RunSummary

        record = RunRecord(
            benchmark="x",
            configuration="y",
            summary=RunSummary(1, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0),
        )
        assert RunRecord.from_dict(record.to_dict()) == record


class TestSweeps:
    def test_sweep_produces_points(self, runner):
        points = sweep_attack_decay_parameter(
            runner, "decay_pct", [0.5, 1.0], ["adpcm"]
        )
        assert len(points) == 2
        assert points[0].value == 0.5
        assert points[0].aggregate.count == 1

    def test_out_of_range_value_rejected(self, runner):
        with pytest.raises(ExperimentError):
            sweep_attack_decay_parameter(runner, "decay_pct", [5.0], ["adpcm"])

    def test_unknown_parameter_rejected(self, runner):
        with pytest.raises(ExperimentError):
            sweep_attack_decay_parameter(runner, "nope", [0.5], ["adpcm"])

    def test_empty_benchmarks_rejected(self, runner):
        with pytest.raises(ExperimentError):
            sweep_attack_decay_parameter(runner, "decay_pct", [0.5], [])
