"""Workload algebra: operator laws plus the differential fuzz harness.

The load-bearing property of the whole workload subsystem is that a
*composed* workload — any combination of ``concat``/``interleave``/
``repeat``/``scale``/``perturb``/``splice`` over catalog entries — runs
byte-identically through all three core execution paths (generator
reference, batched Python, native C).  The fuzz harness below draws ~50
seeded random compositions and asserts exactly that, so new operators
or derived scenarios can never silently drift results between paths.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.config.algorithm import SCALED_OPERATING_POINT
from repro.config.processor import ProcessorConfig
from repro.control.attack_decay import AttackDecayController
from repro.errors import WorkloadError
from repro.metrics.summary import summarize
from repro.sim.engine import scaled_mcd_config
from repro.uarch import native
from repro.uarch.compiled_trace import compile_trace
from repro.uarch.core import CoreOptions, MCDCore
from repro.workloads import algebra
from repro.workloads.catalog import (
    BENCHMARKS,
    CATALOG_INTERVAL_INSTRUCTIONS,
    get_benchmark,
)
from repro.workloads.derived import DERIVED_BENCHMARKS

LINE_SHIFT = ProcessorConfig().line_bytes.bit_length() - 1


# ------------------------------------------------------------- operators
class TestConcat:
    def test_lengths_add(self):
        a, b = get_benchmark("adpcm"), get_benchmark("gsm")
        combined = algebra.concat(a, b)
        assert combined.sim_instructions == a.sim_instructions + b.sim_instructions
        assert len(combined.phases) == len(a.phases) + len(b.phases)

    def test_needs_two_operands(self):
        with pytest.raises(WorkloadError):
            algebra.concat(get_benchmark("adpcm"))

    def test_operands_unchanged(self):
        a = get_benchmark("adpcm")
        before = a.phases
        algebra.concat(a, get_benchmark("gsm"))
        assert a.phases == before


class TestRepeat:
    def test_multiplies_length(self):
        spec = algebra.repeat(get_benchmark("adpcm"), 3)
        assert spec.sim_instructions == 3 * get_benchmark("adpcm").sim_instructions

    def test_rejects_zero(self):
        with pytest.raises(WorkloadError):
            algebra.repeat(get_benchmark("adpcm"), 0)


class TestScale:
    def test_scales_every_phase(self):
        spec = algebra.scale(get_benchmark("epic"), 0.5)
        for scaled_p, orig_p in zip(spec.phases, get_benchmark("epic").phases):
            assert scaled_p.instructions == max(1, round(orig_p.instructions * 0.5))

    def test_rejects_nonpositive(self):
        with pytest.raises(WorkloadError):
            algebra.scale(get_benchmark("epic"), 0.0)


class TestInterleave:
    def test_preserves_total_length(self):
        a, b = get_benchmark("adpcm"), get_benchmark("swim")
        spec = algebra.interleave(a, b, quantum=3000)
        assert spec.sim_instructions == a.sim_instructions + b.sim_instructions

    def test_alternates_sources(self):
        a, b = get_benchmark("adpcm"), get_benchmark("swim")
        spec = algebra.interleave(a, b, quantum=5000)
        origins = [p.name.split(".")[0] for p in spec.phases]
        assert origins[0] != origins[1]  # the head actually alternates
        assert {"adpcm", "swim"} == set(origins)

    def test_rejects_bad_quantum(self):
        with pytest.raises(WorkloadError):
            algebra.interleave(
                get_benchmark("adpcm"), get_benchmark("swim"), quantum=0
            )


class TestSplice:
    def test_preserves_material(self):
        outer, inner = get_benchmark("gsm"), get_benchmark("adpcm")
        spec = algebra.splice(outer, inner, at=40_000)
        assert spec.sim_instructions == (
            outer.sim_instructions + inner.sim_instructions
        )
        # The cut phase appears twice (head + tail around the insert).
        assert len(spec.phases) == len(outer.phases) + len(inner.phases) + 1

    def test_rejects_out_of_range_offsets(self):
        outer, inner = get_benchmark("gsm"), get_benchmark("adpcm")
        for at in (0, outer.sim_instructions, -5):
            with pytest.raises(WorkloadError):
                algebra.splice(outer, inner, at=at)


class TestSplitPhase:
    def test_halves_sum(self):
        phase = get_benchmark("adpcm").phases[0]
        head, tail = algebra.split_phase(phase, 1000)
        assert head.instructions == 1000
        assert head.instructions + tail.instructions == phase.instructions
        assert head.mix == phase.mix

    def test_rejects_degenerate_cuts(self):
        phase = get_benchmark("adpcm").phases[0]
        with pytest.raises(WorkloadError):
            algebra.split_phase(phase, phase.instructions)


class TestPerturb:
    def test_deterministic(self):
        a = algebra.perturb(get_benchmark("epic"), seed=3)
        b = algebra.perturb(get_benchmark("epic"), seed=3)
        assert a.phases == b.phases

    def test_seed_changes_result(self):
        a = algebra.perturb(get_benchmark("epic"), seed=3)
        b = algebra.perturb(get_benchmark("epic"), seed=4)
        assert a.phases != b.phases

    def test_always_valid(self):
        # Even extreme strengths must stay inside Phase's legal ranges
        # (Phase.__post_init__ would raise otherwise).
        for seed in range(8):
            spec = algebra.perturb(get_benchmark("mcf"), seed=seed, strength=1.5)
            spec.build_trace()

    def test_rejects_nonpositive_strength(self):
        with pytest.raises(WorkloadError):
            algebra.perturb(get_benchmark("epic"), seed=1, strength=0.0)


class TestDerivedCatalog:
    def test_at_least_twenty_registered(self):
        assert len(DERIVED_BENCHMARKS) >= 20

    def test_names_resolve_through_get_benchmark(self):
        for name in DERIVED_BENCHMARKS:
            assert get_benchmark(name).name == name

    def test_no_catalog_collisions(self):
        assert not set(DERIVED_BENCHMARKS) & set(BENCHMARKS)

    def test_derived_names_cannot_be_squatted(self):
        # Even before anything touched the derived catalog in this
        # process, registering one of its names must fail: the registry
        # resolves the derived catalog first.
        from repro.workloads.catalog import register_benchmark

        with pytest.raises(WorkloadError):
            register_benchmark(
                algebra.derived_spec(
                    "memory_wall", list(get_benchmark("adpcm").phases), seed=1
                )
            )

    def test_all_build_valid_traces(self):
        for spec in DERIVED_BENCHMARKS.values():
            trace = spec.build_trace(scale=0.01)
            assert trace.total_instructions > 0

    def test_marks_partition_traces(self):
        for spec in DERIVED_BENCHMARKS.values():
            marks = spec.phase_marks(0.05)
            trace = spec.build_trace(scale=0.05)
            assert marks[-1][1] == trace.total_instructions


# ------------------------------------------------------- differential fuzz
#: Small bases the fuzzer composes (scaled right down so ~50 cases
#: stay fast); chosen to span int/fp/memory/branchy characters.
_BASES = ("adpcm", "epic", "mcf", "swim", "parser", "art", "g721", "health")


def _random_composition(rng: random.Random):
    """One seeded random composed workload, ~1-4k instructions."""
    a = algebra.scale(
        get_benchmark(rng.choice(_BASES)), rng.uniform(0.008, 0.02)
    )
    b = algebra.scale(
        get_benchmark(rng.choice(_BASES)), rng.uniform(0.008, 0.02)
    )
    op = rng.randrange(6)
    if op == 0:
        spec = algebra.concat(a, b)
    elif op == 1:
        spec = algebra.interleave(a, b, quantum=rng.randrange(200, 1200))
    elif op == 2:
        spec = algebra.repeat(a, rng.randrange(2, 4))
    elif op == 3:
        spec = algebra.scale(a, rng.uniform(0.5, 2.0))
    elif op == 4:
        spec = algebra.perturb(a, seed=rng.randrange(1000), strength=rng.uniform(0.1, 0.8))
    else:
        total = a.sim_instructions
        spec = algebra.splice(a, b, at=rng.randrange(1, total))
    if rng.random() < 0.3:  # occasionally stack a second operator
        spec = algebra.perturb(spec, seed=rng.randrange(1000))
    return spec


def _run_path(spec, trace, mcd: bool, controller: bool, seed: int):
    core = MCDCore(
        processor=ProcessorConfig(),
        mcd_config=scaled_mcd_config(),
        trace=trace,
        controller=(
            AttackDecayController(SCALED_OPERATING_POINT) if controller else None
        ),
        options=CoreOptions(
            mcd=mcd,
            seed=seed,
            interval_instructions=CATALOG_INTERVAL_INSTRUCTIONS,
            record_interval_trace=True,
        ),
    )
    core.warm_up(trace, limit=trace.total_instructions)
    return core.run()


class TestDifferentialFuzz:
    """Seeded compositions are byte-identical on every execution path."""

    @pytest.mark.parametrize("case", range(50))
    def test_three_paths_agree(self, case, monkeypatch):
        rng = random.Random(6400 + case)
        spec = _random_composition(rng)
        mcd = case % 3 != 2  # mostly MCD, every third fully synchronous
        controller = mcd and case % 2 == 0
        seed = 1 + case % 5

        generator_trace = spec.build_trace()
        compiled = compile_trace(spec.build_trace(), LINE_SHIFT)

        reference = _run_path(spec, generator_trace, mcd, controller, seed)

        monkeypatch.setattr(native, "_cached", None)
        monkeypatch.setattr(native, "_attempted", True)
        batched = _run_path(spec, compiled, mcd, controller, seed)
        monkeypatch.undo()

        results = {"generator": reference, "python": batched}
        if native.load_hotpath() is not None:
            results["native"] = _run_path(spec, compiled, mcd, controller, seed)

        ref_summary = summarize(reference)
        for label, result in results.items():
            assert summarize(result) == ref_summary, (
                f"case {case} ({spec.datasets}): {label} path diverged"
            )
            # Interval samples (incl. cumulative energy) must align too:
            # per-phase attribution depends on them being path-invariant.
            assert [
                (r.end_instruction, r.end_time_ns, r.energy, r.memory_accesses)
                for r in result.intervals
            ] == [
                (r.end_instruction, r.end_time_ns, r.energy, r.memory_accesses)
                for r in reference.intervals
            ], f"case {case} ({spec.datasets}): {label} intervals diverged"


class TestClosedLoopNativeFuzz:
    """Closed-loop attack/decay runs are byte-identical on every path.

    Unlike :class:`TestDifferentialFuzz` (which records interval
    traces, forcing the native loop onto its per-interval Python
    callback), these cases run without interval recording — the exact
    configuration where the native loop executes Listing 1 *inside C*
    with zero per-interval Python crossings.  Each case asserts the
    RunSummary, the per-domain controller diagnostics
    (``DomainControlState``), the regulator request statistics and the
    smoothed-IPC registers all match the generator reference, for both
    ``literal_listing`` variants; on the native path it additionally
    asserts ``on_interval`` was never called.
    """

    @pytest.mark.parametrize("case", range(16))
    def test_paths_and_diagnostics_agree(self, case, monkeypatch):
        rng = random.Random(7300 + case)
        spec = _random_composition(rng)
        literal = case % 2 == 1
        mcd = case % 4 != 3  # mostly MCD, every fourth fully synchronous
        seed = 1 + case % 5

        calls = {"n": 0}
        orig_on_interval = AttackDecayController.on_interval

        def counting(self, snapshot):
            calls["n"] += 1
            return orig_on_interval(self, snapshot)

        monkeypatch.setattr(AttackDecayController, "on_interval", counting)

        def run(path):
            if path == "generator":
                trace = spec.build_trace()
            else:
                trace = compile_trace(spec.build_trace(), LINE_SHIFT)
            controller = AttackDecayController(
                SCALED_OPERATING_POINT, literal_listing=literal
            )
            core = MCDCore(
                processor=ProcessorConfig(),
                mcd_config=scaled_mcd_config(),
                trace=trace,
                controller=controller,
                options=CoreOptions(
                    mcd=mcd,
                    seed=seed,
                    interval_instructions=CATALOG_INTERVAL_INSTRUCTIONS,
                ),
            )
            core.warm_up(trace, limit=trace.total_instructions)
            result = core.run(path="auto" if path == "generator" else path)
            return (
                summarize(result),
                {d: dataclasses.asdict(s) for d, s in controller.states.items()},
                [dataclasses.asdict(r.stats) for r in core.regulators],
                controller.prev_ipc,
                controller._smoothed_ipc,
            )

        reference = run("generator")
        assert calls["n"] > 0, f"case {case}: no control intervals exercised"
        calls["n"] = 0
        batched = run("python")
        assert calls["n"] > 0
        assert batched == reference, f"case {case}: python path diverged"
        if native.load_hotpath() is not None:
            calls["n"] = 0
            native_run = run("native")
            assert calls["n"] == 0, (
                f"case {case}: native closed loop crossed into Python"
            )
            assert native_run == reference, f"case {case}: native path diverged"


class TestRuntimeRegistrationIdentity:
    """Re-registering a name must not be served the old trace's cache."""

    def test_cache_key_tracks_reregistered_trace(self, tmp_path):
        from repro.experiments.executor import ExecutionContext
        from repro.experiments.scenario import Scenario
        from repro.workloads.catalog import register_benchmark

        ctx = ExecutionContext(cache_dir=tmp_path, scale=0.05, seed=1)
        scenario = Scenario("rereg_test", "mcd_base")
        register_benchmark(
            algebra.scale(get_benchmark("adpcm"), 0.5, name="rereg_test"),
            replace=True,
        )
        key_a = ctx.cache_key(scenario)
        register_benchmark(
            algebra.scale(get_benchmark("swim"), 0.5, name="rereg_test"),
            replace=True,
        )
        key_b = ctx.cache_key(scenario)
        assert key_a != key_b
        # Catalog names keep their stable name-based identity.
        catalog_key = ctx.cache_key(Scenario("adpcm", "mcd_base"))
        assert catalog_key == ctx.cache_key(Scenario("adpcm", "mcd_base"))


class TestEtfReExport:
    def test_imported_trace_re_exports(self, tmp_path):
        """ExternalBenchmark survives export_benchmark (no generator seed)."""
        from repro.uarch.etf import export_benchmark, read_etf

        first = tmp_path / "a.etf"
        export_benchmark(get_benchmark("adpcm"), first, scale=0.05)
        imported = read_etf(first)
        second = tmp_path / "b.etf"
        checksum = export_benchmark(imported, second)
        again = read_etf(second)
        assert again.checksum == checksum == imported.checksum
        assert again.phase_marks() == imported.phase_marks()
        assert again.meta["source"] == "re-exported ETF"


class TestEtfRoundTripFuzz:
    """Composed workloads survive export -> import bit-exactly."""

    @pytest.mark.parametrize("case", range(5))
    def test_round_trip_reproduces_summary(self, case, tmp_path):
        from repro.uarch.compiled_trace import trace_columns
        from repro.uarch.etf import export_trace, read_etf

        rng = random.Random(900 + case)
        spec = _random_composition(rng)
        columns = trace_columns(spec.build_trace())
        path = tmp_path / f"fuzz{case}.etf"
        export_trace(
            path,
            columns,
            name=spec.name,
            interval_instructions=spec.interval_instructions,
            phases=spec.phase_marks(),
        )
        imported = read_etf(path)
        original = _run_path(
            spec, compile_trace(spec.build_trace(), LINE_SHIFT), True, True, 1
        )
        replayed = _run_path(
            imported,
            compile_trace(imported.build_trace(), LINE_SHIFT),
            True,
            True,
            1,
        )
        assert summarize(replayed) == summarize(original)
        assert imported.phase_marks() == spec.phase_marks()
