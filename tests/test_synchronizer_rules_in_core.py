"""Focused tests of the crossing rules inside the core.

These pin the timing semantics DESIGN.md §4 describes: the synchronous
baseline's crossing threshold degenerates to the classic next-edge
pipeline stage, and MCD crossings pay the Sjogren-Myers window.
"""

import pytest

from repro.config.mcd import MCDConfig
from repro.config.processor import ProcessorConfig
from repro.uarch.core import CoreOptions, MCDCore
from repro.uarch.isa import InstructionClass
from repro.uarch.trace import InstructionBlock, ListTrace


def run_chain(n: int, mcd: bool, seed: int = 1, dist: int = 1):
    """A pure serial INT_ALU chain of length n."""
    block = InstructionBlock()
    for _ in range(n):
        block.append(InstructionClass.INT_ALU, src1=dist)
    core = MCDCore(
        ProcessorConfig(),
        MCDConfig(),
        ListTrace([block]),
        options=CoreOptions(mcd=mcd, seed=seed, interval_instructions=10_000),
    )
    return core.run()


class TestSyncBaselineTiming:
    def test_serial_chain_is_one_cycle_per_link(self):
        # Same-domain back-to-back ALU ops: cycle-exact 1 CPI, plus a
        # small pipeline fill/drain allowance.
        result = run_chain(2000, mcd=False)
        assert result.cpi == pytest.approx(1.0, abs=0.05)

    def test_chain_timing_independent_of_dep_distance_when_saturated(self):
        # dist=2 gives two independent chains -> ~0.5 CPI.
        result = run_chain(2000, mcd=False, dist=2)
        assert result.cpi == pytest.approx(0.5, abs=0.05)


class TestMCDTiming:
    def test_mcd_serial_chain_close_to_sync(self):
        # Same-domain chains are tracked in cycles: jitter cannot slow
        # them.  Only dispatch/retire crossings differ slightly.
        sync = run_chain(2000, mcd=False)
        mcd = run_chain(2000, mcd=True)
        assert mcd.wall_time_ns == pytest.approx(sync.wall_time_ns, rel=0.05)

    def test_mcd_jitter_changes_timing_across_seeds(self):
        a = run_chain(1000, mcd=True, seed=1)
        b = run_chain(1000, mcd=True, seed=2)
        assert a.wall_time_ns != b.wall_time_ns

    def test_load_use_chain_crossing_band(self):
        # LOAD -> INT_ALU -> LOAD ... alternating domains every link.
        # Sync pays exactly one cycle per crossing (next aligned edge);
        # MCD pays the first edge >= fin + window — on average ~0.8
        # cycles plus jitter, so a crossing-dominated chain can come
        # out slightly *faster* or slower than sync.  What matters is
        # the band: well within a cycle per link either way (the
        # suite-level inherent degradation is separately calibrated).
        def build(mcd: bool, seed: int = 3):
            block = InstructionBlock()
            for i in range(3000):
                if i % 2 == 0:
                    block.append(InstructionClass.LOAD, src1=1, addr=64 * (i % 32))
                else:
                    block.append(InstructionClass.INT_ALU, src1=1)
            core = MCDCore(
                ProcessorConfig(),
                MCDConfig(),
                ListTrace([block]),
                options=CoreOptions(mcd=mcd, seed=seed, interval_instructions=10_000),
            )
            return core.run()

        sync = build(mcd=False)
        times = [build(mcd=True, seed=s).wall_time_ns for s in range(3, 8)]
        mean_mcd = sum(times) / len(times)
        ratio = mean_mcd / sync.wall_time_ns
        assert 0.80 < ratio < 1.35
