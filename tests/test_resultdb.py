"""The versioned result database: store, query, gate, report, CLI.

Mirrors the robustness contract of the PR 3 CacheStore/TraceStore
corruption tests: a damaged entry in the trajectory is a logged,
recoverable skip — never a crash — and concurrent appenders cannot
lose each other's runs.
"""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.cli import main
from repro.errors import ResultDBError
from repro.resultdb import (
    DB_SCHEMA_VERSION,
    ResultDB,
    StoredRun,
    check_bench,
    check_metric,
    extract_metrics,
    gated_metrics,
    host_fingerprint,
    provenance,
)
from repro.resultdb import query
from repro.resultdb.gate import BOOTSTRAP_BASELINES, GatedMetric
from repro.resultdb.report import comparison_rows, overview_rows, render
from repro.version import __version__


@pytest.fixture()
def db(tmp_path):
    return ResultDB(tmp_path / "db")


def record_speedup(db, value, bench="bench_control_loop", metric="native_vs_python",
                   scale=1.0, **kwargs):
    """Append one single-metric run (the gate tests' workhorse)."""
    return db.record(bench, {metric: value}, scale=scale, **kwargs)


# ----------------------------------------------------------------- provenance
class TestProvenance:
    def test_host_fingerprint_fields(self):
        fp = host_fingerprint()
        assert set(fp) == {"hostname", "os", "machine", "python", "cpu_count", "host_id"}
        assert len(fp["host_id"]) == 12

    def test_host_id_is_stable(self):
        assert host_fingerprint()["host_id"] == host_fingerprint()["host_id"]

    def test_provenance_carries_version_and_compiler(self):
        stamp = provenance()
        assert stamp["version"] == __version__
        assert isinstance(stamp["native_enabled"], bool)
        # A compiler exists in CI and dev containers; when present the
        # stamp must carry the resolved path and a banner line.
        if stamp["compiler"] is not None:
            assert stamp["compiler"]["path"]
            assert "banner" in stamp["compiler"]


# ---------------------------------------------------------------------- store
class TestStore:
    def test_round_trip_with_full_provenance(self, db):
        run = db.record(
            "bench_control_loop",
            {"native_vs_python": 9.5, "native": True, "note": "x"},
            payload={"aggregate": {"native_vs_python": 9.5, "scale": 0.2, "native": True}},
            backend="thread",
        )
        loaded = db.runs()
        assert len(loaded) == 1
        got = loaded[0]
        assert got == run
        assert got.schema == DB_SCHEMA_VERSION
        assert got.version == __version__
        assert got.host_id == host_fingerprint()["host_id"]
        assert got.backend == "thread"
        # scale/native lift out of the payload aggregate automatically.
        assert got.scale == 0.2
        assert got.native is True
        # Non-numeric metric entries are dropped, not stored.
        assert got.metrics == {"native_vs_python": 9.5}

    def test_record_without_numeric_metrics_is_an_error(self, db):
        with pytest.raises(ResultDBError, match="no numeric metrics"):
            db.record("bench_x", {"note": "nothing numeric"})

    def test_append_only_files_sort_chronologically(self, db):
        for value in (1.0, 2.0, 3.0):
            record_speedup(db, value)
        names = sorted(p.name for p in db.runs_dir.glob("*.json"))
        by_file = [json.loads((db.runs_dir / n).read_text())["metrics"] for n in names]
        assert [m["native_vs_python"] for m in by_file] == [1.0, 2.0, 3.0]
        assert [r.metric("native_vs_python") for r in db.runs()] == [1.0, 2.0, 3.0]

    def test_ingest_artifact_file(self, db, tmp_path):
        artifact = tmp_path / "bench_engine_hotpath.json"
        artifact.write_text(json.dumps(
            {"runs": [], "aggregate": {"speedup": 19.1, "scale": 1.0, "native": True}}
        ))
        run = db.ingest(artifact)
        assert run.bench == "bench_engine_hotpath"
        assert run.metrics["speedup"] == 19.1
        assert run.scale == 1.0

    def test_ingest_rejects_garbage(self, db, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ResultDBError, match="not valid JSON"):
            db.ingest(bad)
        missing = tmp_path / "missing.json"
        with pytest.raises(ResultDBError, match="cannot read"):
            db.ingest(missing)
        wrong = tmp_path / "wrong.json"
        wrong.write_text("[1, 2]")
        with pytest.raises(ResultDBError, match="expected an object"):
            db.ingest(wrong)

    def test_extract_metrics_prefers_aggregate(self):
        payload = {"aggregate": {"rps": 54.0, "native": True}, "top": 1.0}
        assert extract_metrics(payload) == {"rps": 54.0}
        assert extract_metrics({"rps": 54.0, "note": "x"}) == {"rps": 54.0}


class TestStoreRobustness:
    """Damaged trajectory entries are logged skips, never crashes."""

    def seed(self, db, values=(5.0, 6.0)):
        for value in values:
            record_speedup(db, value)

    def test_truncated_entry_is_skipped_and_logged(self, db, caplog):
        self.seed(db)
        victim = sorted(db.runs_dir.glob("*.json"))[0]
        victim.write_text(victim.read_text()[: 40])
        with caplog.at_level("WARNING"):
            runs = db.runs()
        assert [r.metric("native_vs_python") for r in runs] == [6.0]
        assert any("skipping" in rec.message for rec in caplog.records)

    def test_binary_garbage_entry_is_skipped(self, db, caplog):
        self.seed(db)
        (db.runs_dir / "zzz-garbage.json").write_bytes(b"\xff\xfe\x00garbage\x80")
        with caplog.at_level("WARNING"):
            runs = db.runs()
        assert len(runs) == 2

    def test_wrong_shape_entry_is_skipped(self, db, caplog):
        self.seed(db, values=(5.0,))
        (db.runs_dir / "zzz-shape.json").write_text('["a", "list"]')
        (db.runs_dir / "zzz-empty.json").write_text("{}")
        with caplog.at_level("WARNING"):
            assert len(db.runs()) == 1

    def test_newer_schema_entry_is_skipped(self, db, caplog):
        self.seed(db, values=(5.0,))
        record = db.runs()[0].to_dict()
        record["schema"] = DB_SCHEMA_VERSION + 1
        (db.runs_dir / "zzz-future.json").write_text(json.dumps(record))
        with caplog.at_level("WARNING"):
            assert len(db.runs()) == 1
        assert any("newer than supported" in rec.message for rec in caplog.records)

    def test_missing_db_directory_reads_empty(self, tmp_path):
        assert ResultDB(tmp_path / "nowhere").runs() == []

    def test_concurrent_appends_lose_no_runs(self, db):
        def append(worker):
            for i in range(8):
                db.record("bench_concurrent", {"value": worker * 100.0 + i})

        with ThreadPoolExecutor(max_workers=6) as pool:
            list(pool.map(append, range(6)))
        runs = db.runs()
        assert len(runs) == 48
        assert len({r.run_id for r in runs}) == 48
        assert sorted(r.metric("value") for r in runs) == sorted(
            float(w * 100 + i) for w in range(6) for i in range(8)
        )


# ---------------------------------------------------------------------- query
class TestQuery:
    def seed(self, db):
        record_speedup(db, 9.0, backend=None)
        record_speedup(db, 10.0, backend="thread")
        db.record("bench_sweep_throughput", {"thread_vs_process": 1.6}, scale=0.05)

    def test_filters(self, db):
        self.seed(db)
        runs = db.runs()
        assert len(query.filter_runs(runs, bench="bench_control_loop")) == 2
        assert len(query.filter_runs(runs, backend="thread")) == 1
        assert len(query.filter_runs(runs, metric="thread_vs_process")) == 1
        assert len(query.filter_runs(runs, version=__version__)) == 3
        assert query.filter_runs(runs, version="0.0.0") == []
        assert len(query.filter_runs(runs, scale=0.05)) == 1
        assert query.benches(runs) == ["bench_control_loop", "bench_sweep_throughput"]

    def test_trajectory_and_latest(self, db):
        self.seed(db)
        runs = db.runs()
        series = query.trajectory(runs, "bench_control_loop", "native_vs_python")
        assert [value for _, value in series] == [9.0, 10.0]
        assert query.latest_run(runs, "bench_control_loop").metric("native_vs_python") == 10.0
        assert query.latest_run(runs, "bench_nope") is None
        per_host = query.latest_per_host(runs, "bench_control_loop")
        assert list(per_host.values())[0].metric("native_vs_python") == 10.0

    def test_best_value_prefers_own_host(self, db):
        record_speedup(db, 5.0)
        runs = db.runs()
        fast_host = dict(runs[0].host, host_id="fasthost0000")
        other = StoredRun(**{**runs[0].to_dict(), "run_id": "x" * 20, "host": fast_host})
        db.append(other)
        runs = db.runs()
        mine = runs[0].host_id
        value, source = query.best_value(runs, "bench_control_loop",
                                         "native_vs_python", host_id=mine)
        assert (value, source) == (5.0, f"history:{mine}")
        value, source = query.best_value(runs, "bench_control_loop",
                                         "native_vs_python", host_id="unseenhost00")
        assert source == "history:any-host"
        assert query.best_value(runs, "bench_nope", "native_vs_python") is None


# ----------------------------------------------------------------------- gate
class TestGate:
    def test_bootstrap_covers_the_ci_floors(self):
        floors = {(g.bench, g.metric): g.floor for g in BOOTSTRAP_BASELINES}
        assert floors == {
            ("bench_engine_hotpath", "speedup"): 3.0,
            ("bench_control_loop", "native_vs_python"): 3.0,
            ("bench_sweep_throughput", "thread_vs_process"): 1.5,
            ("bench_sweep_throughput", "process_vs_serial"): 1.0,
        }
        assert gated_metrics("bench_control_loop") == ["native_vs_python"]
        assert gated_metrics("bench_sweep_throughput") == [
            "thread_vs_process",
            "process_vs_serial",
        ]
        assert gated_metrics("bench_figure2_lsq") == []
        # The process-vs-serial floor only means something on multicore
        # hosts; the run records its core count for the gate to check.
        requirements = {
            (g.bench, g.metric): g.requires
            for g in BOOTSTRAP_BASELINES
            if g.requires is not None
        }
        assert requirements == {
            ("bench_sweep_throughput", "process_vs_serial"): ("cores", 2),
        }

    def test_bootstrap_floor_precondition(self, db):
        # A single-core run skips the conditional floor (a pool can
        # only approach serial from below there) instead of failing it.
        db.record(
            "bench_sweep_throughput",
            {"thread_vs_process": 1.6, "process_vs_serial": 0.5, "cores": 1},
        )
        results = {r.metric: r for r in check_bench(db.runs(), "bench_sweep_throughput")}
        assert results["process_vs_serial"].passed
        assert results["process_vs_serial"].source == "unchecked"
        assert results["thread_vs_process"].passed
        # The same numbers measured on four cores bind the floor.
        db.record(
            "bench_sweep_throughput",
            {"thread_vs_process": 1.6, "process_vs_serial": 0.5, "cores": 4},
        )
        results = {r.metric: r for r in check_bench(db.runs(), "bench_sweep_throughput")}
        assert not results["process_vs_serial"].passed
        assert "bootstrap floor" in results["process_vs_serial"].message

    def test_empty_history_gates_on_bootstrap(self, db):
        record_speedup(db, 3.4)
        (result,) = check_bench(db.runs(), "bench_control_loop")
        assert result.passed and result.source == "bootstrap"
        record_speedup(db, 2.9)
        results = check_bench(db.runs(), "bench_control_loop", tolerance=0.5)
        assert not results[0].passed
        assert "bootstrap floor" in results[0].message

    def test_history_regression_fails_within_tolerance_passes(self, db):
        record_speedup(db, 10.0)
        record_speedup(db, 9.0)  # within 15% of 10.0
        (result,) = check_bench(db.runs(), "bench_control_loop")
        assert result.passed and result.source.startswith("history:")
        record_speedup(db, 8.0)  # 20% below best
        (result,) = check_bench(db.runs(), "bench_control_loop")
        assert not result.passed
        assert "regressed" in result.message

    def test_different_scale_is_a_separate_trajectory(self, db):
        record_speedup(db, 19.0, scale=1.0)
        record_speedup(db, 4.0, scale=0.05)  # not gated by the 19.0 history
        (result,) = check_bench(db.runs(), "bench_control_loop")
        assert result.passed and result.source == "bootstrap"

    def test_unregistered_bench_gates_all_metrics_vs_history(self, db):
        db.record("bench_custom", {"rps": 100.0, "latency": 1.0})
        db.record("bench_custom", {"rps": 50.0, "latency": 1.0})
        results = {r.metric: r.passed for r in check_bench(db.runs(), "bench_custom")}
        assert results == {"rps": False, "latency": True}

    def test_missing_metric_fails_loudly(self, db):
        record_speedup(db, 9.0)
        (result,) = check_bench(db.runs(), "bench_control_loop", metrics=["nope"])
        assert not result.passed
        assert "no metric 'nope'" in result.message

    def test_no_runs_is_an_error(self, db):
        with pytest.raises(ResultDBError, match="no recorded runs"):
            check_bench(db.runs(), "bench_control_loop")

    def test_lower_is_better_direction(self, db):
        db.record("bench_lat", {"latency_ms": 10.0})
        db.record("bench_lat", {"latency_ms": 25.0})
        gated = GatedMetric("bench_lat", "latency_ms", 50.0, direction="lower")
        runs = db.runs()
        candidate = query.latest_run(runs, "bench_lat")
        import repro.resultdb.gate as gate_mod

        original = gate_mod.BOOTSTRAP_BASELINES
        gate_mod.BOOTSTRAP_BASELINES = (*original, gated)
        try:
            result = check_metric(runs, candidate, "latency_ms", tolerance=0.15)
        finally:
            gate_mod.BOOTSTRAP_BASELINES = original
        # 25 ms against a best of 10 ms: regressed for a lower-is-better metric.
        assert not result.passed


# --------------------------------------------------------------------- report
class TestReport:
    def seed(self, db):
        record_speedup(db, 9.5, backend="thread", scale=0.2)
        record_speedup(db, 10.5, backend="thread", scale=0.2)
        db.record("bench_sweep_throughput", {"thread_vs_process": 1.6}, scale=0.05)

    def test_overview(self, db):
        self.seed(db)
        headers, rows = overview_rows(db.runs())
        assert headers[0] == "Bench"
        assert [row[0] for row in rows] == ["bench_control_loop", "bench_sweep_throughput"]
        assert rows[0][1] == "2"  # two runs
        assert "native_vs_python" in rows[0][-1]

    def test_comparison_and_renderers(self, db):
        self.seed(db)
        headers, rows = comparison_rows(db.runs(), "bench_control_loop")
        assert headers[-1] == "native_vs_python"
        assert [row[-1] for row in rows] == ["9.5", "10.5"]
        text = render(headers, rows, "text", title="T")
        assert text.startswith("T\n") and "thread" in text
        csv_out = render(headers, rows, "csv")
        assert csv_out.splitlines()[0].startswith("Recorded (UTC),")
        html_out = render(headers, rows, "html", title="<T&>")
        assert "&lt;T&amp;&gt;" in html_out and "<td>9.5</td>" in html_out

    def test_explicit_metric_columns_and_errors(self, db):
        self.seed(db)
        headers, rows = comparison_rows(
            db.runs(), "bench_control_loop", metrics=["native_vs_python", "nope"]
        )
        assert rows[0][-1] == "-"
        with pytest.raises(ResultDBError, match="no recorded runs"):
            comparison_rows(db.runs(), "bench_nope")
        with pytest.raises(ResultDBError, match="unknown report format"):
            render(headers, rows, "pdf")


# ------------------------------------------------------------------------ cli
class TestCLI:
    def ingest(self, tmp_path, value=9.5, bench="bench_control_loop",
               metric="native_vs_python", scale=1.0):
        artifact = tmp_path / f"{bench}.json"
        artifact.write_text(json.dumps(
            {"aggregate": {metric: value, "scale": scale, "native": True}}
        ))
        return artifact

    def test_record_report_check_round_trip(self, tmp_path, capsys):
        db_dir = str(tmp_path / "db")
        artifact = self.ingest(tmp_path)
        assert main(["record", str(artifact), "--db", db_dir, "--backend", "thread"]) == 0
        out = capsys.readouterr().out
        assert "recorded bench_control_loop run" in out

        assert main(["report", "--db", db_dir]) == 0
        assert "bench_control_loop" in capsys.readouterr().out
        assert main(["report", "--db", db_dir, "--bench", "bench_control_loop",
                     "--format", "csv"]) == 0
        assert "native_vs_python" in capsys.readouterr().out

        assert main(["check", "--db", db_dir]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_check_fails_on_synthetic_regression(self, tmp_path, capsys):
        db_dir = str(tmp_path / "db")
        good = self.ingest(tmp_path, value=9.5)
        assert main(["record", str(good), "--db", db_dir]) == 0
        regressed = self.ingest(tmp_path, value=0.95)
        assert main(["record", str(regressed), "--db", db_dir]) == 0
        capsys.readouterr()
        assert main(["check", "--db", db_dir]) == 1
        captured = capsys.readouterr()
        assert "FAIL" in captured.out
        assert "regressed" in captured.out

    def test_record_nothing_errors(self, capsys):
        assert main(["record"]) == 2
        assert "nothing to record" in capsys.readouterr().err

    def test_record_bad_file_errors(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        assert main(["record", str(bad), "--db", str(tmp_path / "db")]) == 2
        assert "record: error:" in capsys.readouterr().err

    def test_report_empty_db_errors(self, tmp_path, capsys):
        assert main(["report", "--db", str(tmp_path / "db")]) == 2
        assert "no readable runs" in capsys.readouterr().err

    def test_report_unknown_bench_errors(self, tmp_path, capsys):
        artifact = self.ingest(tmp_path)
        db_dir = str(tmp_path / "db")
        assert main(["record", str(artifact), "--db", db_dir]) == 0
        assert main(["report", "--db", db_dir, "--bench", "nope"]) == 2
        assert "report: error:" in capsys.readouterr().err

    def test_check_empty_db_errors(self, tmp_path, capsys):
        assert main(["check", "--db", str(tmp_path / "db")]) == 2
        assert "check: error:" in capsys.readouterr().err

    def test_check_unregistered_bench_needs_history(self, tmp_path, capsys):
        db_dir = str(tmp_path / "db")
        artifact = self.ingest(tmp_path, bench="bench_custom", metric="rps", value=5.0)
        assert main(["record", str(artifact), "--db", db_dir]) == 0
        capsys.readouterr()
        # Nothing with a registered floor in the DB -> usage error.
        assert main(["check", "--db", db_dir]) == 2
        # Explicit bench: gated against history alone (first run passes).
        assert main(["check", "--db", db_dir, "--bench", "bench_custom"]) == 0

    def test_record_run_unknown_harness(self, monkeypatch, tmp_path, capsys):
        # Point the CLI at a directory without the benchmarks harness.
        import repro.cli as cli_mod

        monkeypatch.setattr(
            cli_mod, "PERF_BENCHES", {"hotpath": "not_a_real_bench_module"}
        )
        assert main(["record", "--run", "hotpath", "--db", str(tmp_path)]) == 2
        assert "record: error:" in capsys.readouterr().err


class TestHarnessWritePath:
    """benchmarks/conftest.py routes every artifact through the store."""

    def load_harness(self):
        import importlib.util
        from pathlib import Path

        root = Path(__file__).resolve().parents[1] / "benchmarks" / "conftest.py"
        spec = importlib.util.spec_from_file_location("bench_conftest", root)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_save_bench_writes_artifact_and_db_run(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
        monkeypatch.setenv("REPRO_RESULTDB_DIR", str(tmp_path / "db"))
        harness = self.load_harness()
        payload = harness.save_bench(
            "bench_demo",
            runs=[{"benchmark": "adpcm"}],
            aggregate={"speedup": 4.2, "scale": 0.1, "native": False},
            backend="serial",
        )
        assert payload == {
            "runs": [{"benchmark": "adpcm"}],
            "aggregate": {"speedup": 4.2, "scale": 0.1, "native": False},
        }
        artifact = json.loads((tmp_path / "results" / "bench_demo.json").read_text())
        assert artifact == payload
        runs = ResultDB(tmp_path / "db").runs()
        assert len(runs) == 1
        # Every numeric aggregate scalar becomes a trajectory metric.
        assert runs[0].metrics == {"speedup": 4.2, "scale": 0.1}
        assert runs[0].backend == "serial"
        assert runs[0].native is False
        assert runs[0].scale == 0.1

    def test_resultdb_opt_out(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
        monkeypatch.setenv("REPRO_RESULTDB_DIR", str(tmp_path / "db"))
        monkeypatch.setenv("REPRO_RESULTDB", "0")
        harness = self.load_harness()
        harness.save_results("bench_demo", {"aggregate": {"x": 1.0}})
        assert (tmp_path / "results" / "bench_demo.json").exists()
        assert ResultDB(tmp_path / "db").runs() == []

    def test_db_failure_never_kills_the_bench(self, tmp_path, monkeypatch, caplog):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
        monkeypatch.setenv("REPRO_RESULTDB_DIR", str(tmp_path / "db"))
        harness = self.load_harness()
        # No numeric metrics -> ResultDBError inside the append; the
        # artifact must still land and the failure must only be logged.
        with caplog.at_level("WARNING"):
            harness.save_results("bench_demo", {"note": "nothing numeric"})
        assert (tmp_path / "results" / "bench_demo.json").exists()
        assert any("result db append" in rec.message for rec in caplog.records)
