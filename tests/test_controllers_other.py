"""Tests for fixed, global, offline controllers and hardware cost."""

import pytest

from repro.config.mcd import CONTROLLED_DOMAINS, Domain, MCDConfig
from repro.control.base import IntervalSnapshot
from repro.control.fixed import FixedFrequencyController
from repro.control.global_dvfs import GlobalDVFSController
from repro.control.hardware_cost import (
    HardwareCostModel,
    estimate_attack_decay_hardware,
)
from repro.control.offline import (
    OfflineController,
    OfflineProfile,
    OfflineProfiler,
    build_offline_schedule,
)
from repro.errors import ControlError


def snapshot(index: int, busy=None, qutil=None, ipc=1.0) -> IntervalSnapshot:
    return IntervalSnapshot(
        index=index,
        instructions=500,
        time_ns=(index + 1) * 500.0,
        duration_ns=500.0,
        ipc=ipc,
        queue_utilization=qutil or {},
        busy_fraction=busy or {},
    )


class TestFixedController:
    def test_applies_once(self):
        ctl = FixedFrequencyController({Domain.INTEGER: 500.0})
        ctl.begin(MCDConfig(), {})
        assert ctl.on_interval(snapshot(0)) == {Domain.INTEGER: 500.0}
        assert ctl.on_interval(snapshot(1)) == {}

    def test_empty_mapping_never_targets(self):
        ctl = FixedFrequencyController()
        ctl.begin(MCDConfig(), {})
        assert ctl.on_interval(snapshot(0)) == {}


class TestGlobalController:
    def test_targets_all_onchip_domains(self):
        ctl = GlobalDVFSController(700.0)
        ctl.begin(MCDConfig(), {})
        targets = ctl.on_interval(snapshot(0))
        assert set(targets) == {
            Domain.FRONT_END,
            Domain.INTEGER,
            Domain.FLOATING_POINT,
            Domain.LOAD_STORE,
        }
        assert all(v == 700.0 for v in targets.values())
        assert ctl.on_interval(snapshot(1)) == {}

    def test_clamped_into_range(self):
        ctl = GlobalDVFSController(100.0)
        ctl.begin(MCDConfig(), {})
        assert ctl.frequency_mhz == 250.0

    def test_non_positive_rejected(self):
        with pytest.raises(ControlError):
            GlobalDVFSController(0.0)


class TestOffline:
    def _profile(self, intervals: int = 10, busy: float = 0.5) -> OfflineProfile:
        profiler = OfflineProfiler()
        profiler.begin(MCDConfig(), {})
        for i in range(intervals):
            profiler.on_interval(
                snapshot(
                    i,
                    busy={d: busy for d in CONTROLLED_DOMAINS},
                    qutil={d: 1.0 for d in CONTROLLED_DOMAINS},
                )
            )
        return profiler.profile

    def test_profiler_records_everything(self):
        profile = self._profile(7)
        assert len(profile) == 7
        assert len(profile.ipc) == 7

    def test_schedule_length_matches_profile(self):
        profile = self._profile(9)
        schedule = build_offline_schedule(profile, MCDConfig(), 1.0)
        assert len(schedule) == 9

    def test_busier_profile_gets_higher_frequencies(self):
        lo = build_offline_schedule(self._profile(busy=0.2), MCDConfig(), 1.0)
        hi = build_offline_schedule(self._profile(busy=0.9), MCDConfig(), 1.0)
        assert hi[0][Domain.INTEGER] > lo[0][Domain.INTEGER]

    def test_higher_target_scales_lower(self):
        p = self._profile()
        d1 = build_offline_schedule(p, MCDConfig(), 1.0)
        d5 = build_offline_schedule(p, MCDConfig(), 5.0)
        assert d5[0][Domain.INTEGER] <= d1[0][Domain.INTEGER]

    def test_aggressiveness_zero_keeps_max(self):
        p = self._profile()
        s = build_offline_schedule(p, MCDConfig(), 5.0, aggressiveness=0.0)
        assert all(v == 1000.0 for v in s[0].values())

    def test_frequencies_always_legal(self):
        config = MCDConfig()
        p = self._profile(busy=0.01)
        for step in build_offline_schedule(p, config, 5.0, aggressiveness=2.0):
            for mhz in step.values():
                assert config.min_frequency_mhz <= mhz <= config.max_frequency_mhz
                assert config.is_legal_frequency(mhz)

    def test_controller_replays_and_holds_last(self):
        schedule = [{Domain.INTEGER: 500.0}, {Domain.INTEGER: 600.0}]
        ctl = OfflineController(schedule)
        ctl.begin(MCDConfig(), {})
        assert ctl.on_interval(snapshot(0))[Domain.INTEGER] == 500.0
        assert ctl.on_interval(snapshot(1))[Domain.INTEGER] == 600.0
        assert ctl.on_interval(snapshot(2))[Domain.INTEGER] == 600.0  # held

    def test_controller_is_instantaneous(self):
        assert OfflineController([{}]).instantaneous is True

    def test_empty_schedule_rejected(self):
        with pytest.raises(ControlError):
            OfflineController([])

    def test_negative_target_rejected(self):
        with pytest.raises(ControlError):
            build_offline_schedule(self._profile(), MCDConfig(), -1.0)


class TestHardwareCost:
    def test_table3_per_domain_gates(self):
        model = estimate_attack_decay_hardware()
        # Paper: accumulator 176 + comparators 192 + multiplier 80 +
        # endstop 28 = 476 gates per domain.
        assert model.gates_per_domain == 476

    def test_table3_interval_counter(self):
        assert estimate_attack_decay_hardware().shared_gates == 112

    def test_fewer_than_2500_gates_total(self):
        model = estimate_attack_decay_hardware(domains=4)
        assert model.total_gates < 2500
        assert model.total_gates == 4 * 476 + 112  # paper: 2016 gates

    def test_table3_rows_match_paper(self):
        rows = {r[0]: r[2] for r in HardwareCostModel().table3_rows()}
        assert rows["Queue Utilization Counter (Accumulator)"] == 176
        assert rows["Comparators (2 required)"] == 192
        assert rows["Multiplier (partial-product accumulation)"] == 80
        assert rows["Interval Counter (14-bit)"] == 112
        assert rows["Endstop Counter (4-bit)"] == 28

    def test_scaling_with_width(self):
        wide = HardwareCostModel(device_bits=32)
        assert wide.gates_per_domain > HardwareCostModel().gates_per_domain
