"""Tests for Attack/Decay parameters (paper Table 2)."""

import pytest

from repro.config.algorithm import (
    ATTACK_DECAY_PARAMETER_RANGES,
    PAPER_OPERATING_POINT,
    AttackDecayParams,
    ParameterRange,
)
from repro.errors import ConfigError


class TestPaperOperatingPoint:
    def test_section5_values(self):
        p = PAPER_OPERATING_POINT
        assert p.deviation_threshold_pct == 1.75
        assert p.reaction_change_pct == 6.0
        assert p.decay_pct == 0.175
        assert p.perf_deg_threshold_pct == 2.5
        assert p.endstop_intervals == 10
        assert p.interval_instructions == 10_000

    def test_fraction_properties(self):
        p = PAPER_OPERATING_POINT
        assert p.deviation_threshold == pytest.approx(0.0175)
        assert p.reaction_change == pytest.approx(0.06)
        assert p.decay == pytest.approx(0.00175)
        assert p.perf_deg_threshold == pytest.approx(0.025)

    def test_legend_format(self):
        assert PAPER_OPERATING_POINT.legend() == "1.750_06.0_0.175_2.5"

    def test_within_table2(self):
        PAPER_OPERATING_POINT.validate_against_table2()


class TestTable2Ranges:
    def test_all_five_parameters_present(self):
        assert set(ATTACK_DECAY_PARAMETER_RANGES) == {
            "deviation_threshold",
            "reaction_change",
            "decay",
            "perf_deg_threshold",
            "endstop_count",
        }

    def test_range_bounds(self):
        r = ATTACK_DECAY_PARAMETER_RANGES
        assert (r["deviation_threshold"].low, r["deviation_threshold"].high) == (0.0, 2.5)
        assert (r["reaction_change"].low, r["reaction_change"].high) == (0.5, 15.5)
        assert (r["decay"].low, r["decay"].high) == (0.0, 2.0)
        assert (r["perf_deg_threshold"].low, r["perf_deg_threshold"].high) == (0.0, 12.0)
        assert (r["endstop_count"].low, r["endstop_count"].high) == (1, 25)

    def test_sweep_endpoints(self):
        rng = ParameterRange("x", 1.0, 3.0)
        values = list(rng.sweep(5))
        assert values[0] == 1.0
        assert values[-1] == 3.0
        assert len(values) == 5

    def test_sweep_single_point(self):
        rng = ParameterRange("x", 1.0, 3.0)
        assert list(rng.sweep(1)) == [1.0]

    def test_sweep_zero_points_raises(self):
        with pytest.raises(ConfigError):
            list(ParameterRange("x", 0, 1).sweep(0))

    def test_inverted_range_raises(self):
        with pytest.raises(ConfigError):
            ParameterRange("x", 2.0, 1.0)


class TestValidation:
    def test_out_of_table2_detected(self):
        params = AttackDecayParams(reaction_change_pct=20.0)
        with pytest.raises(ConfigError):
            params.validate_against_table2()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deviation_threshold_pct": -1.0},
            {"reaction_change_pct": 0.0},
            {"decay_pct": -0.1},
            {"perf_deg_threshold_pct": -1.0},
            {"endstop_intervals": 0},
            {"interval_instructions": 0},
        ],
    )
    def test_illegal_values_raise(self, kwargs):
        with pytest.raises(ConfigError):
            AttackDecayParams(**kwargs)

    def test_with_returns_modified_copy(self):
        base = AttackDecayParams()
        changed = base.with_(decay_pct=1.0)
        assert changed.decay_pct == 1.0
        assert base.decay_pct == 0.175
        assert changed.reaction_change_pct == base.reaction_change_pct
