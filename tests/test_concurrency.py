"""Direct unit tests for the shared concurrency primitives.

:mod:`repro.concurrency` is load-bearing under every backend (result
memory fronts, profile memoisation, and now scenario dedup), but until
now was only exercised through its consumers.  These tests pin the
contracts those consumers rely on: LRU recency/eviction order, the
``entries == 0`` disable path, and single-flight arbitration including
the failed-build handoff.
"""

from __future__ import annotations

import threading

import pytest

from repro.concurrency import LockedLRU, SingleFlight


class TestLockedLRU:
    def test_get_refreshes_recency_and_put_evicts_oldest(self):
        lru = LockedLRU(2)
        lru.put("a", 1)
        lru.put("b", 2)
        assert lru.get("a") == 1  # refresh: "b" is now the oldest
        lru.put("c", 3)
        assert lru.get("b") is None  # evicted
        assert lru.get("a") == 1
        assert lru.get("c") == 3
        assert len(lru) == 2

    def test_put_overwrites_in_place(self):
        lru = LockedLRU(2)
        lru.put("a", 1)
        lru.put("a", 2)
        assert lru.get("a") == 2
        assert len(lru) == 1

    def test_zero_entries_disables_everything(self):
        lru = LockedLRU(0)
        lru.put("a", 1)
        assert lru.get("a") is None
        assert len(lru) == 0

    def test_negative_entries_clamp_to_disabled(self):
        lru = LockedLRU(-3)
        assert lru.entries == 0
        lru.put("a", 1)
        assert lru.get("a") is None


class TestSingleFlight:
    def test_hit_skips_build(self):
        flight = SingleFlight()
        cache = {"k": "cached"}
        value, hit = flight.run(
            "k", lambda: cache.get("k"),
            lambda: pytest.fail("must not build on a hit"),
            lambda v: cache.__setitem__("k", v),
        )
        assert (value, hit) == ("cached", True)

    def test_concurrent_callers_build_exactly_once(self):
        flight = SingleFlight()
        cache: dict = {}
        builds = []
        build_entered = threading.Event()
        release_build = threading.Event()
        results = []

        def build():
            builds.append(threading.get_ident())
            build_entered.set()
            release_build.wait(10)
            return "built"

        def caller():
            value, hit = flight.run(
                "k", lambda: cache.get("k"), build,
                lambda v: cache.__setitem__("k", v),
            )
            results.append((value, hit))

        threads = [threading.Thread(target=caller) for _ in range(6)]
        threads[0].start()
        assert build_entered.wait(10)
        for t in threads[1:]:  # all of these must wait, not build
            t.start()
        release_build.set()
        for t in threads:
            t.join(10)
        assert len(builds) == 1
        assert sorted(r[0] for r in results) == ["built"] * 6
        # Exactly one caller reports a build; the waiters all hit.
        assert sorted(r[1] for r in results) == [False] + [True] * 5

    def test_failed_build_hands_off_to_a_waiter(self):
        flight = SingleFlight()
        cache: dict = {}
        attempts = []
        first_entered = threading.Event()
        release_first = threading.Event()
        outcomes: dict[str, object] = {}

        def build():
            attempts.append(threading.get_ident())
            if len(attempts) == 1:
                first_entered.set()
                release_first.wait(10)
                raise RuntimeError("injected build failure")
            return "second-try"

        def first():
            try:
                flight.run(
                    "k", lambda: cache.get("k"), build,
                    lambda v: cache.__setitem__("k", v),
                )
            except RuntimeError as exc:
                outcomes["first"] = exc

        def second():
            outcomes["second"] = flight.run(
                "k", lambda: cache.get("k"), build,
                lambda v: cache.__setitem__("k", v),
            )

        t1 = threading.Thread(target=first)
        t1.start()
        assert first_entered.wait(10)
        t2 = threading.Thread(target=second)
        t2.start()
        release_first.set()
        t1.join(10)
        t2.join(10)
        # The failure propagated to the failed builder only; the waiter
        # woke up, took over the build, and published.
        assert isinstance(outcomes["first"], RuntimeError)
        assert outcomes["second"] == ("second-try", False)
        assert cache["k"] == "second-try"
        assert len(attempts) == 2

    def test_distinct_keys_do_not_serialise(self):
        flight = SingleFlight()
        cache: dict = {}
        a_entered = threading.Event()
        release_a = threading.Event()

        def build_a():
            a_entered.set()
            release_a.wait(10)
            return "a"

        t = threading.Thread(
            target=flight.run,
            args=("a", lambda: cache.get("a"), build_a, lambda v: cache.__setitem__("a", v)),
        )
        t.start()
        assert a_entered.wait(10)
        # While "a" is mid-build, "b" proceeds immediately.
        value, hit = flight.run(
            "b", lambda: cache.get("b"), lambda: "b",
            lambda v: cache.__setitem__("b", v),
        )
        assert (value, hit) == ("b", False)
        release_a.set()
        t.join(10)
        assert cache == {"a": "a", "b": "b"}
