"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_catalog_parses(self):
        args = build_parser().parse_args(["catalog"])
        assert args.command == "catalog"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "adpcm"])
        assert args.benchmark == "adpcm"
        assert args.algorithm == "attack-decay"
        assert not args.sync

    def test_compare_requires_benchmarks(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare"])

    def test_no_command_prints_usage(self, capsys):
        # A bare ``python -m repro`` is a help request, not an error:
        # usage goes to stdout and the exit status is 2.
        assert main([]) == 2
        assert "usage: repro" in capsys.readouterr().out

    def test_version_flag(self, capsys):
        from repro.version import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestExecution:
    def test_catalog_lists_thirty(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "adpcm" in out
        assert "voronoi" in out

    def test_hardware_prints_table3(self, capsys):
        assert main(["hardware"]) == 0
        out = capsys.readouterr().out
        assert "476" in out
        assert "2016" in out or "2,016" in out

    def test_run_tiny(self, capsys):
        assert main(["run", "adpcm", "--scale", "0.05", "--algorithm", "none"]) == 0
        out = capsys.readouterr().out
        assert "CPI:" in out
        assert "final domain frequencies" in out

    def test_run_unknown_benchmark_raises(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            main(["run", "nonesuch"])

    def test_list_scenarios(self, capsys):
        assert main(["list-scenarios"]) == 0
        out = capsys.readouterr().out
        assert "adpcm" in out  # catalog
        assert "phase_thrash" in out  # derived
        assert "Derived" in out

    def test_list_scenarios_family_filter(self, capsys):
        assert main(["list-scenarios", "--family", "Derived"]) == 0
        out = capsys.readouterr().out
        assert "phase_thrash" in out
        assert "MediaBench" not in out

    def test_run_derived_scenario(self, capsys):
        assert main(["run", "adv_sawtooth", "--scale", "0.02",
                     "--algorithm", "none"]) == 0
        assert "CPI:" in capsys.readouterr().out

    def test_run_phases_prints_attribution(self, capsys):
        assert main(["run", "epic", "--scale", "0.05", "--phases"]) == 0
        out = capsys.readouterr().out
        assert "Per-phase attribution" in out
        assert "fp_burst_1" in out
        assert "dominant phase (energy):" in out


class TestSweepErrorPaths:
    """User errors in sweep exit with a message, never a traceback."""

    def test_unknown_configuration(self, capsys):
        rc = main(["sweep", "--benchmarks", "adpcm",
                   "--configurations", "not_a_config"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "sweep: error:" in err
        assert "not_a_config" in err

    def test_unknown_benchmark(self, capsys):
        rc = main(["sweep", "--benchmarks", "not_a_bench",
                   "--configurations", "sync"])
        assert rc == 2
        assert "not_a_bench" in capsys.readouterr().err

    def test_malformed_repro_scale(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "fast")
        rc = main(["sweep", "--benchmarks", "adpcm", "--configurations", "sync"])
        assert rc == 2
        assert "REPRO_SCALE" in capsys.readouterr().err

    def test_negative_repro_scale(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "-1")
        rc = main(["sweep", "--benchmarks", "adpcm", "--configurations", "sync"])
        assert rc == 2
        assert "REPRO_SCALE" in capsys.readouterr().err

    def test_malformed_repro_workers(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        rc = main(["sweep", "--benchmarks", "adpcm", "--configurations", "sync"])
        assert rc == 2
        assert "REPRO_WORKERS" in capsys.readouterr().err

    def test_malformed_repro_benchmarks(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCHMARKS", "adpcm,bogus")
        rc = main(["sweep", "--configurations", "sync"])
        assert rc == 2
        assert "bogus" in capsys.readouterr().err

    def test_malformed_repro_backend(self, capsys, monkeypatch):
        # The bad value must be rejected when the orchestrator is
        # built, before any cell runs — not deep inside run().
        monkeypatch.setenv("REPRO_BACKEND", "quantum")
        rc = main(["sweep", "--benchmarks", "adpcm", "--configurations", "sync"])
        assert rc == 2
        assert "REPRO_BACKEND" in capsys.readouterr().err

    def test_malformed_repro_batch(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "heaps")
        rc = main(["sweep", "--benchmarks", "adpcm", "--configurations", "sync"])
        assert rc == 2
        assert "REPRO_BATCH" in capsys.readouterr().err

    def test_malformed_repro_start_method(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_START_METHOD", "teleport")
        rc = main(["sweep", "--benchmarks", "adpcm", "--configurations", "sync"])
        assert rc == 2
        assert "REPRO_START_METHOD" in capsys.readouterr().err


class TestTraceCommands:
    """export-trace / import-trace, including the failure paths."""

    def test_export_then_import_round_trip(self, tmp_path, capsys):
        path = tmp_path / "adpcm.etf"
        assert main(["export-trace", "adpcm", str(path), "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "checksum:" in out
        assert path.exists()
        assert main(["import-trace", str(path), "--run",
                     "--algorithm", "none"]) == 0
        out = capsys.readouterr().out
        assert "imported" in out
        assert "adpcm@etf" in out
        assert "CPI:" in out

    def test_import_round_trip_reproduces_summary(self, tmp_path):
        """export -> import -> run equals the original run exactly."""
        from repro.metrics.summary import summarize
        from repro.sim.engine import SimulationSpec, run_spec
        from repro.uarch.etf import read_etf
        from repro.workloads.catalog import register_benchmark

        path = tmp_path / "gsm.etf"
        assert main(["export-trace", "gsm", str(path), "--scale", "0.05"]) == 0
        import dataclasses

        imported = dataclasses.replace(read_etf(path), name="gsm@roundtrip")
        register_benchmark(imported, replace=True)
        original = summarize(
            run_spec(SimulationSpec(benchmark="gsm", scale=0.05, seed=3))
        )
        replayed = summarize(
            run_spec(SimulationSpec(benchmark="gsm@roundtrip", seed=3))
        )
        assert replayed == original

    def test_export_unknown_benchmark(self, tmp_path):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            main(["export-trace", "nonesuch", str(tmp_path / "x.etf")])

    def test_import_missing_file(self, tmp_path, capsys):
        rc = main(["import-trace", str(tmp_path / "absent.etf")])
        assert rc == 2
        assert "no such file" in capsys.readouterr().err

    def test_import_garbage_file(self, tmp_path, capsys):
        path = tmp_path / "garbage.etf"
        path.write_bytes(b"this is not an ETF archive")
        rc = main(["import-trace", str(path)])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_import_truncated_file(self, tmp_path, capsys):
        path = tmp_path / "trunc.etf"
        assert main(["export-trace", "adpcm", str(path), "--scale", "0.05"]) == 0
        capsys.readouterr()
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        rc = main(["import-trace", str(path)])
        assert rc == 2
        assert "unreadable" in capsys.readouterr().err

    def test_import_checksum_mismatch(self, tmp_path, capsys):
        """A well-formed archive whose columns were tampered with."""
        import numpy as np

        path = tmp_path / "tampered.etf"
        assert main(["export-trace", "adpcm", str(path), "--scale", "0.05"]) == 0
        capsys.readouterr()
        with np.load(path) as data:
            members = {k: data[k] for k in data.files}
        members["addrs"] = members["addrs"].copy()
        members["addrs"][0] += 64
        with open(path, "wb") as handle:  # np.savez(path) would add .npz
            np.savez(handle, **members)
        rc = main(["import-trace", str(path)])
        assert rc == 2
        assert "checksum mismatch" in capsys.readouterr().err

    def test_import_bad_phase_marks(self, tmp_path, capsys):
        """Marks that do not partition the trace are a read-time error."""
        import json

        import numpy as np

        path = tmp_path / "marks.etf"
        assert main(["export-trace", "adpcm", str(path), "--scale", "0.05"]) == 0
        capsys.readouterr()
        with np.load(path) as data:
            members = {k: data[k] for k in data.files}
        header = json.loads(bytes(members["header"]).decode())
        header["phases"] = [["a", 10], ["b", 5]]  # non-ascending, short
        members["header"] = np.frombuffer(
            json.dumps(header).encode(), dtype=np.uint8
        )
        with open(path, "wb") as handle:
            np.savez(handle, **members)
        rc = main(["import-trace", str(path), "--run", "--phases"])
        assert rc == 2
        assert "phase marks" in capsys.readouterr().err

    def test_import_bad_version(self, tmp_path, capsys):
        import json

        import numpy as np

        path = tmp_path / "future.etf"
        assert main(["export-trace", "adpcm", str(path), "--scale", "0.05"]) == 0
        capsys.readouterr()
        with np.load(path) as data:
            members = {k: data[k] for k in data.files}
        header = json.loads(bytes(members["header"]).decode())
        header["version"] = 99
        members["header"] = np.frombuffer(
            json.dumps(header).encode(), dtype=np.uint8
        )
        with open(path, "wb") as handle:  # np.savez(path) would add .npz
            np.savez(handle, **members)
        rc = main(["import-trace", str(path)])
        assert rc == 2
        assert "unsupported ETF version" in capsys.readouterr().err
