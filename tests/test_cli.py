"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_catalog_parses(self):
        args = build_parser().parse_args(["catalog"])
        assert args.command == "catalog"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "adpcm"])
        assert args.benchmark == "adpcm"
        assert args.algorithm == "attack-decay"
        assert not args.sync

    def test_compare_requires_benchmarks(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare"])

    def test_no_command_prints_usage(self, capsys):
        # A bare ``python -m repro`` is a help request, not an error:
        # usage goes to stdout and the exit status is 2.
        assert main([]) == 2
        assert "usage: repro" in capsys.readouterr().out

    def test_version_flag(self, capsys):
        from repro.version import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestExecution:
    def test_catalog_lists_thirty(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "adpcm" in out
        assert "voronoi" in out

    def test_hardware_prints_table3(self, capsys):
        assert main(["hardware"]) == 0
        out = capsys.readouterr().out
        assert "476" in out
        assert "2016" in out or "2,016" in out

    def test_run_tiny(self, capsys):
        assert main(["run", "adpcm", "--scale", "0.05", "--algorithm", "none"]) == 0
        out = capsys.readouterr().out
        assert "CPI:" in out
        assert "final domain frequencies" in out

    def test_run_unknown_benchmark_raises(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            main(["run", "nonesuch"])
