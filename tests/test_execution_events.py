"""The event-driven execution core.

Pins the contracts the daemon and the campaign layer build on: exact
JSON round-trips for every event type, the bus's ordering/filter/
propagation semantics, cooperative cancellation, and — the load-bearing
one — that the event stream is an *observation* of execution, not a
different execution: every backend produces the same ResultSet whether
consumed through events or the legacy ``on_result`` callback, and a
campaign resumed through the subscriber checkpoint publishes
byte-identical results with an equivalent journal.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.errors import ExperimentError
from repro.execution import (
    EVENT_TYPES,
    TERMINAL_EVENTS,
    CancelToken,
    CellFailed,
    CellFinished,
    CellStarted,
    EventBus,
    ExecutionCancelled,
    JobCancelled,
    JobFinished,
    JobManager,
    JobSubmitted,
    event_from_dict,
)
from repro.experiments.executor import ExecutionContext
from repro.experiments.orchestrator import Orchestrator
from repro.experiments.scenario import Scenario, Suite

SCALE = 0.02


def small_suite(name: str = "events") -> Suite:
    return Suite(
        benchmarks=["adpcm", "gsm"],
        configurations=["sync", "mcd_base"],
        seeds=[1],
        scale=SCALE,
        name=name,
    )


class TestEventRoundTrip:
    def test_every_type_is_registered_with_a_unique_tag(self):
        assert sorted(EVENT_TYPES) == [
            "cell_failed",
            "cell_finished",
            "cell_started",
            "job_cancelled",
            "job_finished",
            "job_submitted",
        ]
        assert set(TERMINAL_EVENTS) == {"job_cancelled", "job_finished"}

    @pytest.mark.parametrize(
        "event",
        [
            JobSubmitted(job="j1", label="nightly", total=12),
            CellStarted(job="j1", cell=3, total=12, run_id="adpcm/sync/s1"),
            JobCancelled(job="j1", done=4, total=12),
            JobFinished(job="j1", total=12, succeeded=11, failed=1, elapsed_s=2.5),
            JobFinished(job="j1", total=12, error="Traceback ..."),
        ],
    )
    def test_json_round_trip_is_exact(self, event):
        data = json.loads(json.dumps(event.to_dict()))
        assert event_from_dict(data) == event
        assert data["event"] == event.kind

    def test_outcome_payloads_round_trip(self):
        ctx = ExecutionContext(scale=SCALE, use_cache=False)
        outcome = ctx.run_isolated(Scenario("adpcm", "sync"))
        assert outcome.ok
        for cls in (CellFinished, CellFailed):
            event = cls(job="j1", cell=0, total=1, outcome=outcome)
            rebuilt = event_from_dict(json.loads(json.dumps(event.to_dict())))
            assert rebuilt.outcome.to_dict() == outcome.to_dict()
            assert rebuilt.outcome.scenario == outcome.scenario

    def test_unknown_tag_and_malformed_payloads_fail_loudly(self):
        with pytest.raises(ExperimentError, match="unknown event tag"):
            event_from_dict({"event": "job_started"})
        with pytest.raises(ExperimentError, match="must be a dict"):
            event_from_dict(["job_finished"])
        with pytest.raises(ExperimentError, match="malformed"):
            event_from_dict(
                {"event": "cell_finished", "job": "j", "outcome": {"bogus": 1}}
            )


class TestEventBus:
    def test_delivery_in_subscription_order(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda e: seen.append(("first", e.job)))
        bus.subscribe(lambda e: seen.append(("second", e.job)))
        bus.publish(JobSubmitted(job="a"))
        assert seen == [("first", "a"), ("second", "a")]

    def test_job_filter(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, job="a")
        bus.publish(JobSubmitted(job="a"))
        bus.publish(JobSubmitted(job="b"))
        assert [e.job for e in seen] == ["a"]

    def test_unsubscribe_and_idempotent_subscribe(self):
        bus = EventBus()
        handler = lambda e: None  # noqa: E731
        bus.subscribe(handler)
        bus.subscribe(handler)  # no-op, not a double registration
        assert len(bus) == 1
        assert bus.unsubscribe(handler) is True
        assert bus.unsubscribe(handler) is False
        assert len(bus) == 0

    def test_subscribed_scope(self):
        bus = EventBus()
        seen = []
        with bus.subscribed(seen.append):
            bus.publish(JobSubmitted(job="in"))
        bus.publish(JobSubmitted(job="out"))
        assert [e.job for e in seen] == ["in"]

    def test_subscriber_exception_propagates_and_halts_delivery(self):
        bus = EventBus()
        later = []

        def boom(event):
            raise RuntimeError("subscriber cancelled the run")

        bus.subscribe(boom)
        bus.subscribe(later.append)
        with pytest.raises(RuntimeError):
            bus.publish(JobSubmitted(job="a"))
        assert later == []  # delivery aborted at the raising subscriber


class TestCancelToken:
    def test_one_way_flag(self):
        token = CancelToken()
        assert not token.cancelled
        token.raise_if_cancelled()  # no-op while live
        assert token.wait(0.01) is False
        token.cancel()
        token.cancel()  # idempotent
        assert token.cancelled
        assert token.wait(0.01) is True
        with pytest.raises(ExecutionCancelled):
            token.raise_if_cancelled()


@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
class TestEventCallbackDifferential:
    """Events and callbacks must observe one and the same execution."""

    def _knobs(self, backend, tmp_path, sub):
        return dict(
            backend=backend,
            workers=2,
            batch=2,
            scale=SCALE,
            cache_dir=tmp_path / sub,
            use_cache=False,
        )

    def test_event_stream_matches_on_result(self, backend, tmp_path):
        suite = small_suite()
        callback_outcomes = []
        reference = Orchestrator(
            on_result=callback_outcomes.append,
            **self._knobs(backend, tmp_path, "cb"),
        ).run(suite)

        bus = EventBus()
        events = []
        bus.subscribe(events.append)
        streamed = Orchestrator(
            events=bus, job_id="diff", **self._knobs(backend, tmp_path, "ev")
        ).run(suite)

        # Identical ResultSets, cell for cell, whichever way observed.
        assert streamed.to_dict() == reference.to_dict()

        total = len(suite.expand())
        finished = [e for e in events if isinstance(e, (CellFinished, CellFailed))]
        started = [e for e in events if isinstance(e, CellStarted)]
        assert len(finished) == total
        assert sorted(e.cell for e in finished) == list(range(total))
        assert all(e.total == total and e.job == "diff" for e in events)
        # The finish events carry exactly the callback-visible outcomes.
        assert sorted(e.outcome.scenario.run_id for e in finished) == sorted(
            o.scenario.run_id for o in callback_outcomes
        )
        # Per cell, started precedes its finish event on every backend.
        first_started = {}
        for position, event in enumerate(events):
            if isinstance(event, CellStarted):
                first_started.setdefault(event.cell, position)
        for position, event in enumerate(events):
            if isinstance(event, (CellFinished, CellFailed)):
                assert first_started[event.cell] < position

    def test_cancel_token_stops_the_matrix(self, backend, tmp_path):
        suite = small_suite("cancel")
        token = CancelToken()
        bus = EventBus()
        finished = []

        def cancel_after_one(event):
            if isinstance(event, (CellFinished, CellFailed)):
                finished.append(event)
                token.cancel()

        bus.subscribe(cancel_after_one)
        orchestrator = Orchestrator(
            events=bus,
            cancel=token,
            job_id="cancel",
            batch=1,
            **{
                k: v
                for k, v in self._knobs(backend, tmp_path, "tok").items()
                if k != "batch"
            },
        )
        with pytest.raises(ExecutionCancelled):
            orchestrator.run(suite)
        # At least one cell completed (and was announced) before the
        # token was honoured; the matrix did not run to completion.
        assert 1 <= len(finished) < len(suite.expand())


class TestCampaignEventCheckpoint:
    """The journal checkpoint is a subscriber; resume stays exact."""

    CAMPAIGN = """
[campaign]
name = "evented"

[matrix]
benchmarks = ["adpcm", "gsm"]
configurations = ["sync", "mcd_base"]
seeds = [1]
scale = 0.02

[execution]
backend = "serial"
use_cache = false
"""

    def _journal_lines(self, path):
        lines = []
        for raw in path.read_text().splitlines():
            data = json.loads(raw)
            data.pop("utc", None)  # timestamps differ run to run
            lines.append(data)
        return lines

    def test_interrupted_resume_matches_uninterrupted_run(self, tmp_path):
        from repro.campaigns import CampaignRunner, CampaignSpec

        campaign = tmp_path / "campaign.toml"
        campaign.write_text(self.CAMPAIGN)

        reference_spec = CampaignSpec.load(
            campaign, output_dir=tmp_path / "reference"
        )
        CampaignRunner(reference_spec).run()

        spec = CampaignSpec.load(campaign, output_dir=tmp_path / "evented")
        runner = CampaignRunner(spec)

        class StopAfterTwo(Exception):
            pass

        seen = []

        def interrupt_after_two(index, outcome):
            seen.append(index)
            if len(seen) == 2:
                raise StopAfterTwo()

        with pytest.raises(StopAfterTwo):
            runner.run(on_result=interrupt_after_two)
        assert len(runner.state().completed) == 2  # journalled first

        report = runner.run(resume=True)
        assert report.ok
        assert report.restored == 2 and report.executed == 2

        # Byte-identical results; journal identical modulo timestamps.
        assert (
            spec.results_path.read_bytes()
            == reference_spec.results_path.read_bytes()
        )
        assert self._journal_lines(spec.journal_path) == self._journal_lines(
            reference_spec.journal_path
        )

    def test_external_bus_observes_the_journalled_stream(self, tmp_path):
        from repro.campaigns import CampaignRunner, CampaignSpec

        campaign = tmp_path / "campaign.toml"
        campaign.write_text(self.CAMPAIGN)
        spec = CampaignSpec.load(campaign, output_dir=tmp_path / "watched")
        bus = EventBus()
        events = []
        bus.subscribe(events.append, job="campaign:evented")
        report = CampaignRunner(spec).run(bus=bus)
        assert report.ok
        finished = [e for e in events if isinstance(e, CellFinished)]
        assert len(finished) == report.total
        assert {e.outcome.scenario.run_id for e in finished} == {
            o.scenario.run_id for o in report.results
        }


class TestJobManager:
    def test_submit_runs_to_a_terminal_finished_event(self, tmp_path):
        manager = JobManager(cache_dir=tmp_path / "cache", scale=SCALE)
        job = manager.submit(small_suite("managed"), backend="serial")
        assert job.wait(120)
        kinds = [e.kind for e in job.events_since(0)]
        assert kinds[0] == "job_submitted"
        assert kinds[-1] == "job_finished"
        assert kinds.count("cell_finished") == 4
        assert job.state == "finished"
        assert len(job.results) == 4
        payload = job.status_payload()
        assert payload["done"] == 4 and payload["failed"] == 0
        assert payload["state"] == "finished"
        # A late joiner replays the identical stream from the top.
        assert [e.kind for e in job.events_since(0)] == kinds

    def test_identical_concurrent_jobs_share_one_execution(self, tmp_path):
        from repro.experiments import CONFIGURATIONS, register_configuration

        gate = threading.Event()

        @register_configuration("gated_cfg")
        def gated(ctx, benchmark, scale, seed):
            """Sync run that waits for the test's gate (forces overlap)."""
            gate.wait(30)
            factory = CONFIGURATIONS.get("sync")
            return factory(ctx, benchmark, scale=scale, seed=seed)

        try:
            manager = JobManager(cache_dir=tmp_path / "cache", scale=SCALE)
            suite = Suite(
                benchmarks=["adpcm", "gsm"],
                configurations=["gated_cfg"],
                seeds=[1],
                scale=SCALE,
                name="dedup",
            )
            first = manager.submit(suite, backend="thread", workers=2)
            second = manager.submit(suite, backend="thread", workers=2)
            time.sleep(0.2)  # both jobs reach the gate before it opens
            gate.set()
            assert first.wait(120) and second.wait(120)
            assert first.state == second.state == "finished"
            assert first.results.to_dict() == second.results.to_dict()
            # 2 unique cells across 4 requests: exactly 2 executions.
            stats = manager.stats()
            assert stats["dedup_builds"] == 2
            assert stats["dedup_hits"] == 2
        finally:
            CONFIGURATIONS.unregister("gated_cfg")

    def test_cancel_mid_flight_terminates_with_job_cancelled(self, tmp_path):
        from repro.experiments import CONFIGURATIONS, register_configuration

        second_cell_entered = threading.Event()
        release = threading.Event()
        calls = []

        @register_configuration("slow_cfg")
        def slow(ctx, benchmark, scale, seed):
            """Sync run; every cell after the first blocks on a gate."""
            calls.append(benchmark)
            if len(calls) > 1:
                second_cell_entered.set()
                release.wait(30)
            factory = CONFIGURATIONS.get("sync")
            return factory(ctx, benchmark, scale=scale, seed=seed)

        try:
            manager = JobManager(
                cache_dir=tmp_path / "cache", use_cache=False, scale=SCALE
            )
            suite = Suite(
                benchmarks=["adpcm", "gsm", "phase_thrash"],
                configurations=["slow_cfg"],
                seeds=[1, 2],
                scale=SCALE,
                name="doomed",
            )
            job = manager.submit(suite, backend="serial")
            # Cell 1 is announced by the time cell 2 enters the gate;
            # cancel fires while cell 2 is mid-flight, so the serial
            # backend honours the token before cell 3.
            assert second_cell_entered.wait(60)
            assert manager.cancel(job.id)
            release.set()
            assert job.wait(60)
            events = job.events_since(0)
            assert events[-1].kind == "job_cancelled"
            assert job.state == "cancelled"
            assert job.results is None
            done = job.status_payload()["done"]
            assert 1 <= done < len(suite.expand())
            assert events[-1].done == done
            assert manager.cancel("job-nonesuch") is False
        finally:
            CONFIGURATIONS.unregister("slow_cfg")
