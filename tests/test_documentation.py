"""Documentation conventions: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if "__main__" not in name
]


def public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if getattr(obj, "__module__", None) == module.__name__:
                yield name, obj


def test_every_module_has_a_docstring():
    missing = []
    for name in MODULES:
        module = importlib.import_module(name)
        if not (module.__doc__ or "").strip():
            missing.append(name)
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_class_and_function_has_a_docstring():
    missing = []
    for name in MODULES:
        module = importlib.import_module(name)
        for member_name, obj in public_members(module):
            if not (obj.__doc__ or "").strip():
                missing.append(f"{name}.{member_name}")
    assert not missing, f"public items without docstrings: {missing}"


def test_public_methods_documented():
    missing = []
    for name in MODULES:
        module = importlib.import_module(name)
        for member_name, obj in public_members(module):
            if not inspect.isclass(obj):
                continue
            for meth_name, meth in vars(obj).items():
                if meth_name.startswith("_") or not inspect.isfunction(meth):
                    continue
                if not (meth.__doc__ or "").strip():
                    missing.append(f"{name}.{member_name}.{meth_name}")
    assert not missing, f"public methods without docstrings: {missing}"
