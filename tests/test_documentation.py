"""Documentation conventions and the documentation surface itself.

Two layers of enforcement:

* conventions — every public ``repro.*`` module, class, function and
  method carries a docstring;
* the documentation surface — ``README.md`` exists, its Python code
  blocks actually execute, and every relative link in the README and
  ``docs/`` resolves to a real file.
"""

import importlib
import inspect
import pkgutil
import re
from pathlib import Path

import repro

REPO = Path(__file__).resolve().parents[1]

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if "__main__" not in name
]


def public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if getattr(obj, "__module__", None) == module.__name__:
                yield name, obj


def test_every_module_has_a_docstring():
    missing = []
    for name in MODULES:
        module = importlib.import_module(name)
        if not (module.__doc__ or "").strip():
            missing.append(name)
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_class_and_function_has_a_docstring():
    missing = []
    for name in MODULES:
        module = importlib.import_module(name)
        for member_name, obj in public_members(module):
            if not (obj.__doc__ or "").strip():
                missing.append(f"{name}.{member_name}")
    assert not missing, f"public items without docstrings: {missing}"


def test_public_methods_documented():
    missing = []
    for name in MODULES:
        module = importlib.import_module(name)
        for member_name, obj in public_members(module):
            if not inspect.isclass(obj):
                continue
            for meth_name, meth in vars(obj).items():
                if meth_name.startswith("_") or not inspect.isfunction(meth):
                    continue
                if not (meth.__doc__ or "").strip():
                    missing.append(f"{name}.{member_name}.{meth_name}")
    assert not missing, f"public methods without docstrings: {missing}"


# ----------------------------------------------------------- the docs surface
def _python_blocks(text: str) -> list[str]:
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def _markdown_links(text: str) -> list[str]:
    return re.findall(r"\[[^\]]*\]\(([^)\s]+)\)", text)


def test_readme_exists_with_required_sections():
    readme = (REPO / "README.md").read_text()
    for needle in (
        "## Install",
        "## Quickstart",
        "## Command line",
        "## Layer map",
        "bench_engine_hotpath",
        "docs/architecture.md",
        "docs/performance.md",
        "docs/experiments.md",
    ):
        assert needle in readme, f"README.md is missing {needle!r}"


def test_readme_python_blocks_execute(capsys, monkeypatch):
    """Every ```python block in the README runs as written."""
    monkeypatch.setenv("REPRO_CACHE", "0")
    blocks = _python_blocks((REPO / "README.md").read_text())
    assert blocks, "README.md has no python examples"
    for i, block in enumerate(blocks):
        namespace: dict = {"__name__": f"readme_block_{i}"}
        try:
            exec(compile(block, f"README.md[python#{i}]", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            raise AssertionError(
                f"README python block {i} failed: {exc}\n{block}"
            ) from exc


def test_markdown_links_resolve():
    """Relative links in README.md and docs/ point at real files."""
    broken = []
    for doc in [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]:
        for target in _markdown_links(doc.read_text()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = (doc.parent / target.split("#", 1)[0]).resolve()
            if not path.exists():
                broken.append(f"{doc.relative_to(REPO)} -> {target}")
    assert not broken, f"broken documentation links: {broken}"
