"""The campaign subsystem: spec, journal, and kill-and-resume.

The contract under test is the one the docs promise: a campaign
interrupted at *any* point — simulated in-process, or a real SIGINT to
a subprocess mid-matrix — resumes from its journal, executes exactly
the cells that were missing, and publishes a ``results.json``
byte-identical to an uninterrupted run of the same file.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.campaigns import (
    CampaignJournal,
    CampaignRunner,
    CampaignSpec,
    _minitoml,
)
from repro.cli import main
from repro.errors import CampaignError
from repro.experiments.results import RunOutcome
from repro.experiments.scenario import Scenario

SRC_DIR = Path(__file__).resolve().parents[1] / "src"

SMALL_CAMPAIGN = """
[campaign]
name = "small"

[matrix]
benchmarks = ["adpcm", "gsm"]
configurations = ["sync", "mcd_base"]
seeds = [1]
scale = 0.02

[execution]
backend = "serial"
use_cache = false
"""


def write_campaign(tmp_path: Path, text: str = SMALL_CAMPAIGN) -> Path:
    path = tmp_path / "campaign.toml"
    path.write_text(text)
    return path


class TestMiniToml:
    """The bundled 3.10 fallback must agree with tomllib exactly."""

    SAMPLES = [
        SMALL_CAMPAIGN,
        textwrap.dedent(
            """
            # comment
            [campaign]
            name = "x"          # trailing comment
            [matrix]
            benchmarks = [
              "a", "b",
            ]
            configurations = ["c"]
            seeds = [1, 2, 1_000]
            scale = 0.05
            [[matrix.overrides]]
            [[matrix.overrides]]
            decay_pct = 0.5
            deep = -3
            flag = true
            other = false
            label = "with \\"quotes\\" and \\\\ backslash"
            """
        ),
    ]

    @pytest.mark.skipif(
        sys.version_info < (3, 11), reason="tomllib is the 3.11+ reference"
    )
    @pytest.mark.parametrize("sample", SAMPLES)
    def test_matches_tomllib(self, sample):
        import tomllib

        assert _minitoml.loads(sample) == tomllib.loads(sample)

    def test_parses_the_campaign_format(self):
        data = _minitoml.loads(self.SAMPLES[1])
        assert data["campaign"]["name"] == "x"
        assert data["matrix"]["seeds"] == [1, 2, 1000]
        assert data["matrix"]["overrides"][1]["decay_pct"] == 0.5

    @pytest.mark.parametrize(
        "bad",
        [
            "name = ",  # missing value
            "[unclosed",  # unterminated table header
            'a = "unterminated',  # unterminated string
            "a = [1, 2",  # unterminated array
            "a.b = 1\na.b = 2",  # duplicate key
            "= 3",  # no key
        ],
    )
    def test_rejects_malformed_input(self, bad):
        with pytest.raises(_minitoml.TOMLDecodeError):
            _minitoml.loads(bad)

    def test_errors_carry_line_numbers(self):
        with pytest.raises(_minitoml.TOMLDecodeError, match="line 3"):
            _minitoml.loads('[a]\nx = 1\ny = "broken')


class TestCampaignSpec:
    def test_load_parses_fields_and_defaults(self, tmp_path):
        spec = CampaignSpec.load(write_campaign(tmp_path))
        assert spec.name == "small"
        assert spec.benchmarks == ("adpcm", "gsm")
        assert spec.configurations == ("sync", "mcd_base")
        assert spec.seeds == (1,)
        assert spec.scale == 0.02
        assert spec.backend == "serial"
        assert spec.use_cache is False
        assert spec.campaign_dir == tmp_path / "small.campaign"
        assert spec.journal_path == tmp_path / "small.campaign" / "journal.jsonl"
        assert len(spec) == 4
        assert len(spec.suite().expand()) == 4

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CampaignError, match="cannot read"):
            CampaignSpec.load(tmp_path / "nope.toml")

    def test_invalid_toml_raises(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text("[campaign\nname=")
        with pytest.raises(CampaignError, match="not valid TOML"):
            CampaignSpec.load(path)

    def test_unknown_section_raises(self, tmp_path):
        path = write_campaign(tmp_path, SMALL_CAMPAIGN + "\n[matrxi]\nx = 1\n")
        with pytest.raises(CampaignError, match="matrxi"):
            CampaignSpec.load(path)

    def test_unknown_key_raises(self, tmp_path):
        text = SMALL_CAMPAIGN.replace("benchmarks =", "bencmarks =")
        with pytest.raises(CampaignError, match="bencmarks"):
            CampaignSpec.load(write_campaign(tmp_path, text))

    @pytest.mark.parametrize(
        "mutation, message",
        [
            (("name = \"small\"", "name = 3"), "name"),
            (("benchmarks = [\"adpcm\", \"gsm\"]", "benchmarks = []"),
             "benchmarks"),
            (("seeds = [1]", "seeds = [true]"), "seeds"),
            (("scale = 0.02", "scale = -1"), "scale"),
        ],
    )
    def test_wrong_typed_values_raise(self, tmp_path, mutation, message):
        old, new = mutation
        with pytest.raises(CampaignError, match=message):
            CampaignSpec.load(
                write_campaign(tmp_path, SMALL_CAMPAIGN.replace(old, new))
            )

    def test_relative_paths_resolve_against_file(self, tmp_path):
        text = SMALL_CAMPAIGN + "\ncache_dir = \"sub/cache\"\n"
        spec = CampaignSpec.load(write_campaign(tmp_path, text))
        assert spec.cache_dir == tmp_path / "sub" / "cache"

    def test_output_dir_override(self, tmp_path):
        spec = CampaignSpec.load(
            write_campaign(tmp_path), output_dir=tmp_path / "elsewhere"
        )
        assert spec.campaign_dir == tmp_path / "elsewhere"

    def test_spec_hash_ignores_execution_knobs(self, tmp_path):
        base = CampaignSpec.load(write_campaign(tmp_path))
        threaded = CampaignSpec.load(
            write_campaign(
                tmp_path, SMALL_CAMPAIGN.replace('"serial"', '"thread"')
            )
        )
        assert base.spec_hash == threaded.spec_hash

    def test_spec_hash_tracks_matrix_changes(self, tmp_path):
        base = CampaignSpec.load(write_campaign(tmp_path))
        changed = CampaignSpec.load(
            write_campaign(tmp_path, SMALL_CAMPAIGN.replace("[1]", "[1, 2]"))
        )
        assert base.spec_hash != changed.spec_hash

    def test_spec_hash_tracks_env_scale_when_unset(self, tmp_path, monkeypatch):
        text = SMALL_CAMPAIGN.replace("scale = 0.02\n", "")
        path = write_campaign(tmp_path, text)
        monkeypatch.setenv("REPRO_SCALE", "0.05")
        first = CampaignSpec.load(path).spec_hash
        monkeypatch.setenv("REPRO_SCALE", "0.1")
        assert CampaignSpec.load(path).spec_hash != first


def _outcome(benchmark="adpcm", configuration="sync", ok=True) -> RunOutcome:
    scenario = Scenario(benchmark, configuration, scale=0.02)
    if ok:
        from repro.experiments.executor import execute_scenario

        return execute_scenario(
            scenario, cache_dir=None, use_cache=False, scale=0.02, seed=1
        )
    return RunOutcome(scenario=scenario, error="injected failure")


class TestJournal:
    def test_round_trip_restores_outcomes(self, tmp_path):
        journal = CampaignJournal(tmp_path / "journal.jsonl")
        journal.begin("small", "hash", 4)
        good, bad = _outcome(ok=True), _outcome("gsm", ok=False)
        journal.record(0, good)
        journal.record(3, bad)
        state = journal.load()
        assert state.header["campaign"] == "small"
        assert set(state.completed) == {0}
        assert set(state.quarantined) == {3}
        assert state.completed[0].to_dict() == good.to_dict()
        assert state.quarantined[3].error == "injected failure"

    def test_later_entries_supersede(self, tmp_path):
        journal = CampaignJournal(tmp_path / "journal.jsonl")
        journal.begin("small", "hash", 4)
        journal.record(1, _outcome(ok=False))
        journal.record(1, _outcome(ok=True))
        state = journal.load()
        assert set(state.completed) == {1}
        assert not state.quarantined

    def test_truncated_trailing_line_is_pending(self, tmp_path):
        journal = CampaignJournal(tmp_path / "journal.jsonl")
        journal.begin("small", "hash", 4)
        journal.record(0, _outcome())
        with open(journal.path, "a") as handle:
            handle.write('{"cell": 1, "ok": true, "outco')  # crash mid-append
        state = journal.load()
        assert set(state.completed) == {0}

    def test_corrupt_interior_line_is_skipped(self, tmp_path):
        journal = CampaignJournal(tmp_path / "journal.jsonl")
        journal.begin("small", "hash", 4)
        with open(journal.path, "a") as handle:
            handle.write("not json at all\n")
        journal.record(2, _outcome())
        state = journal.load()
        assert set(state.completed) == {2}

    def test_spec_hash_mismatch_refuses(self, tmp_path):
        journal = CampaignJournal(tmp_path / "journal.jsonl")
        journal.begin("small", "old-hash", 4)
        with pytest.raises(CampaignError, match="different campaign"):
            journal.validate(journal.load(), "new-hash", 4)

    def test_total_mismatch_refuses(self, tmp_path):
        journal = CampaignJournal(tmp_path / "journal.jsonl")
        journal.begin("small", "hash", 4)
        with pytest.raises(CampaignError, match="4 cells"):
            journal.validate(journal.load(), "hash", 6)

    def test_newer_schema_refuses(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"journal": 99, "campaign": "x"}\n')
        with pytest.raises(CampaignError, match="schema 99"):
            CampaignJournal(path).load()


class TestCampaignRunner:
    def test_full_run_publishes_results(self, tmp_path):
        spec = CampaignSpec.load(write_campaign(tmp_path))
        report = CampaignRunner(spec).run()
        assert report.ok
        assert report.executed == 4 and report.restored == 0
        assert spec.journal_path.is_file()
        published = json.loads(spec.results_path.read_text())
        assert len(published["outcomes"]) == 4

    def test_rerun_without_resume_refuses(self, tmp_path):
        spec = CampaignSpec.load(write_campaign(tmp_path))
        runner = CampaignRunner(spec)
        runner.run()
        with pytest.raises(CampaignError, match="resume"):
            runner.run()

    def test_force_restarts_from_scratch(self, tmp_path):
        spec = CampaignSpec.load(write_campaign(tmp_path))
        runner = CampaignRunner(spec)
        runner.run()
        report = runner.run(force=True)
        assert report.executed == 4 and report.restored == 0

    def test_resume_restores_everything(self, tmp_path):
        spec = CampaignSpec.load(write_campaign(tmp_path))
        runner = CampaignRunner(spec)
        first = runner.run()
        again = runner.run(resume=True)
        assert again.executed == 0 and again.restored == 4
        assert again.results.to_dict() == first.results.to_dict()

    def test_interrupt_then_resume_is_byte_identical(self, tmp_path):
        """In-process interrupt after two cells; resume finishes the rest."""
        reference_spec = CampaignSpec.load(
            write_campaign(tmp_path), output_dir=tmp_path / "reference"
        )
        CampaignRunner(reference_spec).run()
        reference_bytes = reference_spec.results_path.read_bytes()

        spec = CampaignSpec.load(write_campaign(tmp_path))
        runner = CampaignRunner(spec)

        def interrupt_after_two(index, outcome):
            if len(runner.journal.load().completed) >= 2:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            runner.run(on_result=interrupt_after_two)

        completed = set(runner.state().completed)
        assert len(completed) == 2  # journalled before the interrupt

        report = runner.run(resume=True)
        assert report.ok
        assert report.restored == 2
        assert report.executed == 2  # exactly the missing cells
        assert spec.results_path.read_bytes() == reference_bytes

    def test_quarantined_cells_are_requeued_on_resume(self, tmp_path):
        from repro.experiments import CONFIGURATIONS, register_configuration

        marker = tmp_path / "poison.marker"
        marker.touch()

        @register_configuration("flaky_cfg")
        def flaky(ctx, benchmark, scale, seed):
            """Test entry that fails while the marker file exists."""
            if marker.exists():
                raise RuntimeError("injected campaign failure")
            factory = CONFIGURATIONS.get("sync")
            return factory(ctx, benchmark, scale=scale, seed=seed)

        text = SMALL_CAMPAIGN.replace('"mcd_base"', '"flaky_cfg"')
        try:
            spec = CampaignSpec.load(write_campaign(tmp_path, text))
            runner = CampaignRunner(spec)
            report = runner.run()
            assert not report.ok
            assert report.quarantined == 2
            state = runner.state()
            assert len(state.quarantined) == 2

            marker.unlink()  # heal the flake
            healed = runner.run(resume=True)
            assert healed.ok
            assert healed.restored == 2  # the healthy sync cells
            assert healed.executed == 2  # the re-queued quarantined pair

            reference_spec = CampaignSpec.load(
                write_campaign(tmp_path, text),
                output_dir=tmp_path / "reference",
            )
            CampaignRunner(reference_spec).run()
            assert (
                spec.results_path.read_bytes()
                == reference_spec.results_path.read_bytes()
            )
        finally:
            CONFIGURATIONS.unregister("flaky_cfg")


def _shm_segments() -> set[str]:
    shm = Path("/dev/shm")
    if not shm.is_dir():
        return set()
    return {p.name for p in shm.glob("psm_*")}


DRIVER = """
import os, sys, time
from repro.experiments import CONFIGURATIONS, register_configuration


@register_configuration("sleepy")
def sleepy(ctx, benchmark, scale, seed):
    \"\"\"Sync run, slowed so the parent can interrupt mid-matrix.\"\"\"
    time.sleep(float(os.environ.get("SLEEPY_DELAY", "0")))
    return CONFIGURATIONS.get("sync")(ctx, benchmark, scale=scale, seed=seed)


from repro.cli import main

sys.exit(main(sys.argv[1:]))
"""

SLEEPY_CAMPAIGN = """
[campaign]
name = "sigint"

[matrix]
benchmarks = ["adpcm", "gsm", "phase_thrash"]
configurations = ["sleepy"]
seeds = [1, 2]
scale = 0.02

[execution]
backend = "process"
workers = "2"
use_cache = false
"""


@pytest.mark.skipif(os.name != "posix", reason="signals are POSIX-only")
class TestRealSigint:
    """A real SIGINT mid-matrix: exit 130, clean /dev/shm, exact resume."""

    def _run_driver(self, tmp_path, *cli, env=None, **popen_kwargs):
        driver = tmp_path / "driver.py"
        driver.write_text(DRIVER)
        full_env = {
            **os.environ,
            "PYTHONPATH": str(SRC_DIR),
            "SLEEPY_DELAY": "0",
            **(env or {}),
        }
        return subprocess.Popen(
            [sys.executable, str(driver), *cli],
            env=full_env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            **popen_kwargs,
        )

    def test_sigint_exits_130_and_resume_is_byte_identical(self, tmp_path):
        campaign = tmp_path / "sigint.toml"
        campaign.write_text(SLEEPY_CAMPAIGN)
        journal = tmp_path / "sigint.campaign" / "journal.jsonl"
        before = _shm_segments()

        proc = self._run_driver(
            tmp_path, "campaign", "run", str(campaign),
            env={"SLEEPY_DELAY": "0.3"},
        )
        # Wait for the first journalled cell, then interrupt mid-matrix.
        deadline = time.time() + 60
        while time.time() < deadline:
            if journal.is_file() and len(journal.read_text().splitlines()) >= 2:
                break
            time.sleep(0.05)
        else:
            proc.kill()
            pytest.fail("campaign never journalled its first cell")
        proc.send_signal(signal.SIGINT)
        stdout, stderr = proc.communicate(timeout=60)

        assert proc.returncode == 130, (stdout, stderr)
        assert "Traceback" not in stderr, stderr
        assert "interrupted" in stderr
        assert "resume" in stderr  # the hint names the continuation
        assert _shm_segments() <= before, "leaked /dev/shm segments"

        state = CampaignJournal(journal).load()
        completed = set(state.completed)
        assert completed, "no cells were checkpointed before the interrupt"
        assert len(completed) < 6, "interrupt landed after the whole matrix"

        resume = self._run_driver(
            tmp_path, "campaign", "resume", str(campaign)
        )
        stdout, stderr = resume.communicate(timeout=120)
        assert resume.returncode == 0, (stdout, stderr)
        assert f"{len(completed)} restored" in stdout
        assert _shm_segments() <= before

        reference = self._run_driver(
            tmp_path, "campaign", "run", str(campaign),
            "--output", str(tmp_path / "reference"),
        )
        stdout, stderr = reference.communicate(timeout=120)
        assert reference.returncode == 0, (stdout, stderr)
        assert (
            (tmp_path / "sigint.campaign" / "results.json").read_bytes()
            == (tmp_path / "reference" / "results.json").read_bytes()
        )


class TestCampaignCLI:
    def test_dry_run_prints_plan_without_running(self, tmp_path, capsys):
        path = write_campaign(tmp_path)
        assert main(["campaign", "run", str(path), "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "4 cells" in out
        assert "adpcm:sync#s1" in out
        assert "nothing was run" in out
        assert not (tmp_path / "small.campaign").exists()

    def test_run_status_resume_round_trip(self, tmp_path, capsys):
        path = write_campaign(tmp_path)
        assert main(["campaign", "run", str(path)]) == 0
        out = capsys.readouterr().out
        assert "4/4 cells ok" in out
        assert main(["campaign", "status", str(path)]) == 0
        assert "4/4 cells done" in capsys.readouterr().out
        assert main(["campaign", "resume", str(path)]) == 0
        assert "4 restored" in capsys.readouterr().out

    def test_status_before_start(self, tmp_path, capsys):
        path = write_campaign(tmp_path)
        assert main(["campaign", "status", str(path)]) == 1
        assert "not started" in capsys.readouterr().out

    def test_rerun_without_resume_is_usage_error(self, tmp_path, capsys):
        path = write_campaign(tmp_path)
        assert main(["campaign", "run", str(path)]) == 0
        capsys.readouterr()
        assert main(["campaign", "run", str(path)]) == 2
        err = capsys.readouterr().err
        assert "campaign: error:" in err
        assert "resume" in err

    def test_force_restarts(self, tmp_path, capsys):
        path = write_campaign(tmp_path)
        assert main(["campaign", "run", str(path)]) == 0
        capsys.readouterr()
        assert main(["campaign", "run", str(path), "--force"]) == 0
        assert "4 executed" in capsys.readouterr().out

    def test_bad_toml_is_usage_error(self, tmp_path, capsys):
        path = tmp_path / "bad.toml"
        path.write_text("[campaign]\nname = \"x\"\nbogus_key = 1\n")
        assert main(["campaign", "run", str(path)]) == 2
        assert "campaign: error:" in capsys.readouterr().err

    def test_unknown_benchmark_is_usage_error(self, tmp_path, capsys):
        text = SMALL_CAMPAIGN.replace('"adpcm"', '"nonesuch"')
        path = write_campaign(tmp_path, text)
        assert main(["campaign", "run", str(path)]) == 2
        assert "nonesuch" in capsys.readouterr().err

    def test_bad_repro_backend_is_usage_error(
        self, tmp_path, capsys, monkeypatch
    ):
        text = SMALL_CAMPAIGN.replace('backend = "serial"\n', "")
        path = write_campaign(tmp_path, text)
        monkeypatch.setenv("REPRO_BACKEND", "quantum")
        assert main(["campaign", "run", str(path), "--dry-run"]) == 2
        assert "REPRO_BACKEND" in capsys.readouterr().err

    def test_quarantined_failures_exit_one(self, tmp_path, capsys):
        from repro.experiments import CONFIGURATIONS, register_configuration

        @register_configuration("cli_explode")
        def exploding(ctx, benchmark, scale, seed):
            """Test entry that always fails."""
            raise RuntimeError("injected CLI failure")

        text = SMALL_CAMPAIGN.replace('"mcd_base"', '"cli_explode"')
        try:
            path = write_campaign(tmp_path, text)
            assert main(["campaign", "run", str(path)]) == 1
            out = capsys.readouterr().out
            assert "2 quarantined" in out
            assert "injected CLI failure" in out
        finally:
            CONFIGURATIONS.unregister("cli_explode")
