"""Tests for the energy table, gating model and accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.mcd import Domain, MCDConfig
from repro.errors import ConfigError
from repro.power.accounting import EnergyAccounting
from repro.power.gating import ClockGatingModel
from repro.power.wattch import DEFAULT_ENERGIES, AccessEnergies


class TestAccessEnergies:
    def test_defaults_non_negative(self):
        for name, value in DEFAULT_ENERGIES.__dict__.items():
            assert value >= 0, name

    def test_negative_energy_rejected(self):
        with pytest.raises(ConfigError):
            AccessEnergies(l1d_access=-0.1)

    def test_external_domain_has_no_clock(self):
        assert DEFAULT_ENERGIES.clock_energy(Domain.EXTERNAL) == 0.0

    def test_each_domain_has_clock_energy(self):
        for domain in (
            Domain.FRONT_END,
            Domain.INTEGER,
            Domain.FLOATING_POINT,
            Domain.LOAD_STORE,
        ):
            assert DEFAULT_ENERGIES.clock_energy(domain) > 0

    def test_idle_overhead_positive_on_chip(self):
        assert DEFAULT_ENERGIES.idle_overhead(Domain.FLOATING_POINT) > 0
        assert DEFAULT_ENERGIES.idle_overhead(Domain.EXTERNAL) == 0.0


class TestGating:
    def test_busy_cycle_full_energy(self):
        g = ClockGatingModel(idle_residual=0.2)
        assert g.cycle_clock_energy(1.0, busy=True) == 1.0

    def test_idle_cycle_residual(self):
        g = ClockGatingModel(idle_residual=0.2)
        assert g.cycle_clock_energy(1.0, busy=False) == pytest.approx(0.2)

    def test_residual_bounds(self):
        with pytest.raises(ConfigError):
            ClockGatingModel(idle_residual=1.5)
        with pytest.raises(ConfigError):
            ClockGatingModel(idle_residual=-0.1)


class TestAccounting:
    def test_busy_cycle_charges_clock_plus_structure(self, mcd_config):
        acct = EnergyAccounting(mcd_config, mcd_clocking=False)
        charged = acct.charge_cycle(Domain.INTEGER, 1.20, access_energy=0.5, busy=True)
        expected = DEFAULT_ENERGIES.clock_integer + 0.5
        assert charged == pytest.approx(expected)

    def test_voltage_scaling_quadratic(self, mcd_config):
        full = EnergyAccounting(mcd_config, mcd_clocking=False)
        half = EnergyAccounting(mcd_config, mcd_clocking=False)
        e_full = full.charge_cycle(Domain.INTEGER, 1.20, 1.0, True)
        e_half = half.charge_cycle(Domain.INTEGER, 0.60, 1.0, True)
        assert e_half == pytest.approx(e_full * 0.25)

    def test_mcd_clock_overhead_applied_to_clock_only(self, mcd_config):
        sync = EnergyAccounting(mcd_config, mcd_clocking=False)
        mcd = EnergyAccounting(mcd_config, mcd_clocking=True)
        e_sync = sync.charge_cycle(Domain.INTEGER, 1.20, 1.0, True)
        e_mcd = mcd.charge_cycle(Domain.INTEGER, 1.20, 1.0, True)
        clock = DEFAULT_ENERGIES.clock_integer
        assert e_mcd - e_sync == pytest.approx(0.10 * clock)

    def test_idle_cheaper_than_busy(self, mcd_config):
        acct = EnergyAccounting(mcd_config)
        busy = acct.charge_cycle(Domain.FLOATING_POINT, 1.20, 0.0, True)
        idle = acct.charge_cycle(Domain.FLOATING_POINT, 1.20, 0.0, False)
        assert idle < busy

    def test_bulk_idle_matches_per_cycle_idle(self, mcd_config):
        a = EnergyAccounting(mcd_config)
        b = EnergyAccounting(mcd_config)
        for _ in range(100):
            a.charge_cycle(Domain.LOAD_STORE, 0.9, 0.0, False)
        b.charge_bulk_idle(Domain.LOAD_STORE, 0.9, 100)
        assert a.total_energy == pytest.approx(b.total_energy)
        assert a.meters[Domain.LOAD_STORE].idle_cycles == 100
        assert b.meters[Domain.LOAD_STORE].idle_cycles == 100

    def test_memory_access_charged_to_external(self, mcd_config):
        acct = EnergyAccounting(mcd_config)
        acct.charge_memory_access()
        assert acct.meters[Domain.EXTERNAL].structure_energy == pytest.approx(
            DEFAULT_ENERGIES.memory_access
        )

    def test_domain_shares_sum_to_one(self, mcd_config):
        acct = EnergyAccounting(mcd_config)
        acct.charge_cycle(Domain.INTEGER, 1.2, 1.0, True)
        acct.charge_cycle(Domain.LOAD_STORE, 1.2, 2.0, True)
        acct.charge_memory_access()
        assert sum(acct.domain_shares().values()) == pytest.approx(1.0)

    def test_empty_accounting_zero_shares(self, mcd_config):
        acct = EnergyAccounting(mcd_config)
        assert acct.total_energy == 0.0
        assert acct.clock_energy_share() == 0.0

    @given(
        st.floats(min_value=0.65, max_value=1.2),
        st.floats(min_value=0.0, max_value=10.0),
        st.booleans(),
    )
    @settings(max_examples=100)
    def test_charge_is_non_negative_and_accumulates(self, v, access, busy):
        acct = EnergyAccounting(MCDConfig())
        before = acct.total_energy
        charged = acct.charge_cycle(Domain.INTEGER, v, access, busy)
        assert charged >= 0
        assert acct.total_energy == pytest.approx(before + charged)
