"""Tests for the MCD configuration (paper Table 1)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config.mcd import CONTROLLED_DOMAINS, Domain, MCDConfig
from repro.errors import ConfigError


class TestTable1Defaults:
    def test_frequency_range(self, mcd_config):
        assert mcd_config.min_frequency_mhz == 250.0
        assert mcd_config.max_frequency_mhz == 1000.0

    def test_voltage_range(self, mcd_config):
        assert mcd_config.min_voltage_v == 0.65
        assert mcd_config.max_voltage_v == 1.20

    def test_320_frequency_points(self, mcd_config):
        assert mcd_config.frequency_points == 320

    def test_slew_rate_is_xscale(self, mcd_config):
        assert mcd_config.slew_ns_per_mhz == 49.1

    def test_jitter_sigma_110ps(self, mcd_config):
        assert mcd_config.jitter_sigma_ns == pytest.approx(0.110)

    def test_sync_window_is_30pct_of_fastest_clock(self, mcd_config):
        assert mcd_config.sync_window_ns == pytest.approx(
            0.30 * mcd_config.min_period_ns
        )

    def test_mcd_clock_overhead_10pct(self, mcd_config):
        assert mcd_config.mcd_clock_energy_overhead == pytest.approx(1.10)

    def test_table1_rows_render(self, mcd_config):
        rows = dict(mcd_config.table1_rows())
        assert rows["Domain Voltage"] == "0.65 V - 1.20 V"
        assert "49.1" in rows["Frequency Change Rate"]
        assert "300ps" in rows["Synchronization Window"]


class TestVoltageMap:
    def test_linear_endpoints(self, mcd_config):
        assert mcd_config.voltage_for_frequency(250.0) == pytest.approx(0.65)
        assert mcd_config.voltage_for_frequency(1000.0) == pytest.approx(1.20)

    def test_midpoint(self, mcd_config):
        assert mcd_config.voltage_for_frequency(625.0) == pytest.approx(0.925)

    def test_out_of_range_raises(self, mcd_config):
        with pytest.raises(ConfigError):
            mcd_config.voltage_for_frequency(100.0)
        with pytest.raises(ConfigError):
            mcd_config.voltage_for_frequency(1100.0)

    @given(st.floats(min_value=250.0, max_value=1000.0))
    def test_voltage_monotone_and_in_range(self, f):
        config = MCDConfig()
        v = config.voltage_for_frequency(f)
        assert 0.65 - 1e-9 <= v <= 1.20 + 1e-9


class TestQuantization:
    def test_endpoints_are_legal(self, mcd_config):
        assert mcd_config.is_legal_frequency(250.0)
        assert mcd_config.is_legal_frequency(1000.0)

    def test_step_size(self, mcd_config):
        assert mcd_config.frequency_step_mhz == pytest.approx(750.0 / 319)

    def test_quantize_clamps(self, mcd_config):
        assert mcd_config.quantize_frequency(10.0) == 250.0
        assert mcd_config.quantize_frequency(5000.0) == 1000.0

    @given(st.floats(min_value=0.0, max_value=2000.0, allow_nan=False))
    def test_quantize_idempotent(self, f):
        config = MCDConfig()
        once = config.quantize_frequency(f)
        assert config.quantize_frequency(once) == pytest.approx(once, abs=1e-9)

    @given(st.floats(min_value=250.0, max_value=1000.0))
    def test_quantize_error_bounded_by_half_step(self, f):
        config = MCDConfig()
        q = config.quantize_frequency(f)
        assert abs(q - f) <= config.frequency_step_mhz / 2 + 1e-9

    def test_slew_time_symmetric(self, mcd_config):
        assert mcd_config.slew_time_ns(250.0, 1000.0) == pytest.approx(
            mcd_config.slew_time_ns(1000.0, 250.0)
        )
        assert mcd_config.slew_time_ns(250.0, 1000.0) == pytest.approx(750 * 49.1)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_frequency_mhz": -1.0},
            {"max_frequency_mhz": 100.0},  # below min
            {"min_voltage_v": 0.0},
            {"max_voltage_v": 0.1},  # below min
            {"frequency_points": 1},
            {"slew_ns_per_mhz": -1.0},
            {"jitter_sigma_ns": -0.1},
            {"sync_window_ns": -0.1},
            {"mcd_clock_energy_overhead": 0.9},
        ],
    )
    def test_bad_values_raise(self, kwargs):
        with pytest.raises(ConfigError):
            MCDConfig(**kwargs)


class TestDomains:
    def test_five_domains(self):
        assert len(Domain) == 5

    def test_external_not_controllable(self):
        assert not Domain.EXTERNAL.is_controllable
        assert Domain.INTEGER.is_controllable

    def test_controlled_domains_excludes_front_end_and_external(self):
        assert Domain.FRONT_END not in CONTROLLED_DOMAINS
        assert Domain.EXTERNAL not in CONTROLLED_DOMAINS
        assert len(CONTROLLED_DOMAINS) == 3
