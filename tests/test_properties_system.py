"""System-level property tests: invariants of whole simulations."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config.mcd import Domain, MCDConfig
from repro.config.processor import ProcessorConfig
from repro.control.fixed import FixedFrequencyController
from repro.uarch.core import CoreOptions, MCDCore
from repro.uarch.isa import InstructionClass
from repro.workloads.phases import Phase
from repro.workloads.synthetic import SyntheticTrace

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def random_phase(draw) -> Phase:
    int_frac = draw(st.floats(min_value=0.1, max_value=0.6))
    fp_frac = draw(st.floats(min_value=0.0, max_value=0.3))
    load_frac = draw(st.floats(min_value=0.1, max_value=0.4))
    branch_frac = draw(st.floats(min_value=0.02, max_value=0.2))
    store_frac = 0.05
    mix = {
        InstructionClass.INT_ALU: int_frac,
        InstructionClass.FP_ALU: fp_frac,
        InstructionClass.LOAD: load_frac,
        InstructionClass.STORE: store_frac,
        InstructionClass.BRANCH: branch_frac,
    }
    total = sum(mix.values())
    mix = {k: v / total for k, v in mix.items()}
    return Phase(
        "random",
        draw(st.integers(min_value=1500, max_value=4000)),
        mix,
        dep_density=draw(st.floats(min_value=0.2, max_value=0.9)),
        dep_mean_distance=draw(st.floats(min_value=2.0, max_value=12.0)),
        working_set_kb=draw(st.sampled_from([8, 64, 512, 4096])),
        far_miss_fraction=draw(st.floats(min_value=0.0, max_value=0.2)),
        branch_noise=draw(st.floats(min_value=0.0, max_value=0.3)),
    )


@st.composite
def phases_strategy(draw):
    return [random_phase(draw) for _ in range(draw(st.integers(1, 3)))]


def run(phases, seed=1, mcd=True, controller=None):
    trace = SyntheticTrace(phases, seed=seed)
    core = MCDCore(
        ProcessorConfig(),
        MCDConfig(),
        trace,
        controller,
        CoreOptions(mcd=mcd, seed=seed, interval_instructions=500),
    )
    return core.run()


class TestWholeRunInvariants:
    @given(phases_strategy())
    @SLOW
    def test_all_instructions_retire_exactly_once(self, phases):
        result = run(phases)
        assert result.instructions == sum(p.instructions for p in phases)

    @given(phases_strategy())
    @SLOW
    def test_time_bounded_below_by_fetch_width(self, phases):
        result = run(phases)
        # 4-wide fetch at 1 GHz: at least N/4 ns.
        assert result.wall_time_ns >= result.instructions / 4.0 - 1.0

    @given(phases_strategy())
    @SLOW
    def test_energy_positive_and_split_consistent(self, phases):
        result = run(phases)
        assert result.energy > 0
        assert sum(result.domain_energy.values()) == pytest.approx(result.energy)
        assert 0 < result.clock_energy < result.energy

    @given(phases_strategy())
    @SLOW
    def test_busy_cycles_do_not_exceed_total_cycles(self, phases):
        result = run(phases)
        for domain in Domain:
            busy = result.domain_busy_cycles[domain]
            assert busy <= result.domain_cycles[domain]

    @given(phases_strategy(), st.integers(min_value=1, max_value=100))
    @SLOW
    def test_mcd_determinism_per_seed(self, phases, seed):
        a = run(phases, seed=seed)
        b = run(phases, seed=seed)
        assert a.wall_time_ns == b.wall_time_ns
        assert a.energy == b.energy


class TestFrequencyScalingProperties:
    @given(st.sampled_from([400.0, 600.0, 800.0]))
    @SLOW
    def test_slowing_all_domains_costs_time_saves_energy(self, mhz):
        phases = [
            Phase(
                "p",
                3000,
                {
                    InstructionClass.INT_ALU: 0.5,
                    InstructionClass.LOAD: 0.3,
                    InstructionClass.STORE: 0.1,
                    InstructionClass.BRANCH: 0.1,
                },
            )
        ]
        fast = run(phases, mcd=False)
        controller = FixedFrequencyController(
            {
                Domain.INTEGER: mhz,
                Domain.FLOATING_POINT: mhz,
                Domain.LOAD_STORE: mhz,
            }
        )
        slow = run(phases, mcd=False, controller=controller)
        assert slow.wall_time_ns > fast.wall_time_ns
        assert slow.energy < fast.energy
