"""Tests for the engine's scaled slew and global memory tracking."""

import pytest

from repro.sim.engine import (
    SCALED_SLEW_NS_PER_MHZ,
    SimulationSpec,
    run_spec,
    scaled_mcd_config,
)

SCALE = 0.08


class TestScaledSlew:
    def test_catalog_config_uses_compressed_slew(self):
        config = scaled_mcd_config()
        assert config.slew_ns_per_mhz == SCALED_SLEW_NS_PER_MHZ
        # Everything else is Table 1.
        assert config.max_frequency_mhz == 1000.0
        assert config.sync_window_ns == pytest.approx(0.3)

    def test_full_range_transition_spans_a_few_intervals(self):
        # The compression rationale: a full 750 MHz swing should take
        # on the order of the paper's ~3.7 control intervals (interval
        # ~ 500 instructions ~ 300-500 ns at IPC 1-2).
        config = scaled_mcd_config()
        assert 2.0 <= config.slew_time_ns(250.0, 1000.0) / 400.0 <= 8.0


class TestGlobalMemoryTracking:
    def test_memory_tracking_slows_memory_bound_runs(self):
        fixed = run_spec(
            SimulationSpec(
                benchmark="mcf",
                mcd=False,
                global_frequency_mhz=500.0,
                memory_tracks_global=False,
                scale=SCALE,
            )
        )
        tracked = run_spec(
            SimulationSpec(
                benchmark="mcf",
                mcd=False,
                global_frequency_mhz=500.0,
                memory_tracks_global=True,
                scale=SCALE,
            )
        )
        # Doubling effective memory latency must hurt a pointer-chaser.
        assert tracked.wall_time_ns > fixed.wall_time_ns * 1.3

    def test_tracking_is_noop_at_full_frequency(self):
        a = run_spec(
            SimulationSpec(
                benchmark="adpcm",
                mcd=False,
                global_frequency_mhz=1000.0,
                memory_tracks_global=True,
                scale=SCALE,
            )
        )
        b = run_spec(
            SimulationSpec(
                benchmark="adpcm",
                mcd=False,
                global_frequency_mhz=1000.0,
                memory_tracks_global=False,
                scale=SCALE,
            )
        )
        assert a.wall_time_ns == b.wall_time_ns

    def test_tracking_ignored_without_global_frequency(self):
        a = run_spec(
            SimulationSpec(benchmark="adpcm", memory_tracks_global=True, scale=SCALE)
        )
        b = run_spec(
            SimulationSpec(benchmark="adpcm", memory_tracks_global=False, scale=SCALE)
        )
        assert a.wall_time_ns == b.wall_time_ns
