"""Free-threaded sweep engine: determinism, reentrancy, shared caches.

The thread-pool backend only exists because three layers promise to be
concurrency-safe: the C hot loop releases the GIL over reentrant
per-call state, the compiled-trace layer shares instances across
threads (native: read-only; Python path: leased templates), and the
result cache front is write-through.  These tests hold each layer to
that promise:

* a three-backend differential suite (serial / process / thread) over
  one scenario matrix, asserting byte-identical result sets;
* an N-thread stress test hammering one shared ``CompiledTrace`` with
  closed-loop runs, comparing summaries, controller diagnostics and
  regulator statistics against the serial reference;
* unit coverage for the template lease, the process-wide trace cache
  (single-flight, LRU bound), the ``TraceStore`` column memo, the
  ``CacheStore`` memory front, ``workers='auto'`` resolution, backend
  selection, and the compiler-identity build stamp.
"""

from __future__ import annotations

import dataclasses
import threading

import pytest

from repro.config.algorithm import SCALED_OPERATING_POINT
from repro.config.processor import ProcessorConfig
from repro.control.attack_decay import AttackDecayController
from repro.errors import ExperimentError
from repro.experiments import Orchestrator, Suite
from repro.experiments.cache import CacheStore
from repro.experiments.executor import default_workers, parse_workers
from repro.experiments.orchestrator import default_backend
from repro.metrics.summary import summarize
from repro.sim.engine import TraceCache, compiled_trace_for, scaled_mcd_config
from repro.uarch import native
from repro.uarch.compiled_trace import TraceStore, compile_trace, trace_columns
from repro.uarch.core import CoreOptions, MCDCore
from repro.workloads.catalog import get_benchmark

SCALE = 0.05
LINE_SHIFT = ProcessorConfig().line_bytes.bit_length() - 1


# ---------------------------------------------------------------------------
# Three-backend differential suite
# ---------------------------------------------------------------------------


class TestBackendDeterminism:
    """serial == process == thread, byte for byte, per scenario."""

    @pytest.fixture(scope="class")
    def suite(self):
        return Suite(
            benchmarks=["adpcm", "gsm"],
            configurations=["sync", "mcd_base", "attack_decay"],
            seeds=[1],
            scale=SCALE,
            name="backend-differential",
        )

    @pytest.fixture(scope="class")
    def serial_reference(self, suite, tmp_path_factory):
        cache_dir = tmp_path_factory.mktemp("serial")
        return Orchestrator(
            workers=1, backend="serial", cache_dir=cache_dir, use_cache=False
        ).run(suite)

    @pytest.mark.parametrize("backend,workers", [("thread", 4), ("process", 2)])
    def test_backend_matches_serial(
        self, suite, serial_reference, backend, workers, tmp_path
    ):
        results = Orchestrator(
            workers=workers, backend=backend, cache_dir=tmp_path, use_cache=False
        ).run(suite)
        assert not results.errors, [o.error for o in results.errors]
        # to_dict covers scenarios, order and every RunSummary field.
        assert results.to_dict() == serial_reference.to_dict()

    def test_thread_backend_isolates_failures(self, tmp_path):
        from repro.experiments import CONFIGURATIONS, Scenario, register_configuration

        @register_configuration("thread_explode")
        def exploding(ctx, benchmark, scale, seed):
            """Test entry that always fails."""
            raise RuntimeError("injected thread failure")

        try:
            scenarios = [
                Scenario("adpcm", "sync", scale=SCALE),
                Scenario("adpcm", "thread_explode", scale=SCALE),
                Scenario("gsm", "sync", scale=SCALE),
            ]
            results = Orchestrator(
                workers=3, backend="thread", cache_dir=tmp_path, use_cache=False
            ).run(scenarios)
        finally:
            CONFIGURATIONS.unregister("thread_explode")
        assert len(results) == 3
        assert len(results.errors) == 1
        assert "injected thread failure" in results.errors[0].error
        assert results.get("adpcm", "sync").summary.instructions > 0
        assert results.get("gsm", "sync").summary.instructions > 0


# ---------------------------------------------------------------------------
# Shared-trace reentrancy stress
# ---------------------------------------------------------------------------


def _closed_loop_fingerprint(trace, path: str, seed: int = 1):
    """One warmed closed-loop run over ``trace``; full observable state."""
    bench = get_benchmark("adpcm")
    controller = AttackDecayController(SCALED_OPERATING_POINT)
    core = MCDCore(
        processor=ProcessorConfig(),
        mcd_config=scaled_mcd_config(),
        trace=trace,
        controller=controller,
        options=CoreOptions(
            mcd=True,
            seed=seed,
            interval_instructions=bench.interval_instructions,
        ),
    )
    core.warm_up(trace, limit=trace.total_instructions)
    result = core.run(path=path)
    return (
        summarize(result),
        {d: dataclasses.asdict(s) for d, s in controller.states.items()},
        [dataclasses.asdict(r.stats) for r in core.regulators],
    )


class TestSharedTraceStress:
    """N threads hammering one CompiledTrace stay byte-identical."""

    @pytest.fixture(scope="class")
    def shared_trace(self):
        bench = get_benchmark("adpcm")
        return compiled_trace_for(bench, scale=SCALE, line_shift=LINE_SHIFT)

    @pytest.mark.parametrize(
        "path,threads",
        [
            pytest.param(
                "native",
                8,
                marks=pytest.mark.skipif(
                    native.load_hotpath() is None, reason="no native loop"
                ),
            ),
            ("python", 4),
        ],
    )
    def test_concurrent_runs_match_serial(self, shared_trace, path, threads):
        reference = _closed_loop_fingerprint(shared_trace, path)
        outcomes: list = [None] * threads
        barrier = threading.Barrier(threads)

        def worker(i: int) -> None:
            try:
                barrier.wait()  # maximise overlap
                outcomes[i] = _closed_loop_fingerprint(shared_trace, path)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                outcomes[i] = exc

        pool = [
            threading.Thread(target=worker, args=(i,)) for i in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        for i, outcome in enumerate(outcomes):
            assert not isinstance(outcome, BaseException), (
                f"thread {i} raised: {outcome!r}"
            )
            assert outcome == reference, f"thread {i} diverged on {path} path"
        # The shared templates must be returned once every lease ends.
        assert shared_trace._templates_leased is False


class TestTemplateLease:
    def test_serial_lease_is_shared_and_returned(self):
        bench = get_benchmark("adpcm")
        compiled = compile_trace(bench.build_trace(scale=0.02), LINE_SHIFT)
        templates, owned = compiled.lease_templates()
        assert owned and templates is compiled.templates
        compiled.release_templates(owned)
        templates2, owned2 = compiled.lease_templates()
        assert owned2 and templates2 is compiled.templates
        compiled.release_templates(owned2)

    def test_concurrent_lease_gets_equivalent_copy(self):
        bench = get_benchmark("adpcm")
        compiled = compile_trace(bench.build_trace(scale=0.02), LINE_SHIFT)
        shared, owned = compiled.lease_templates()
        copy, owned2 = compiled.lease_templates()
        assert owned and not owned2
        assert copy is not shared
        assert copy == [
            [row[0], row[1], 0.0, row[3], row[4], row[5], 0.0] for row in shared
        ]
        # Releasing a copy must not free the shared lease...
        compiled.release_templates(owned2)
        templates3, owned3 = compiled.lease_templates()
        assert not owned3
        # ...and releasing the owner must.
        compiled.release_templates(owned)
        templates4, owned4 = compiled.lease_templates()
        assert owned4 and templates4 is compiled.templates
        compiled.release_templates(owned4)


# ---------------------------------------------------------------------------
# Process-wide trace cache
# ---------------------------------------------------------------------------


class TestTraceCache:
    def test_single_flight_builds_once(self):
        cache = TraceCache(entries=4)
        builds = []
        gate = threading.Event()

        def build():
            builds.append(threading.current_thread().name)
            gate.wait(timeout=5)  # hold every waiter on the event path
            return "trace"

        results = [None] * 6

        def worker(i: int) -> None:
            if i == 5:
                gate.set()
            results[i] = cache.get_or_build(("k", 6), build)

        pool = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
        for thread in pool:
            thread.start()
        gate.set()
        for thread in pool:
            thread.join()
        assert builds and len(builds) == 1
        assert results == ["trace"] * 6
        assert cache.hits == 5 and cache.misses == 1

    def test_lru_bound_evicts_oldest(self):
        cache = TraceCache(entries=2)
        for i in range(3):
            cache.get_or_build(("k", i), lambda i=i: f"t{i}")
        assert cache.evictions == 1
        # Oldest key rebuilt, newest two served from cache.
        rebuilt = []
        cache.get_or_build(("k", 0), lambda: rebuilt.append(1) or "t0")
        assert rebuilt == [1]
        cache.get_or_build(("k", 2), lambda: pytest.fail("should be cached"))

    def test_failed_build_releases_waiters(self):
        cache = TraceCache(entries=2)

        def boom():
            raise RuntimeError("build failed")

        with pytest.raises(RuntimeError):
            cache.get_or_build(("k", 6), boom)
        # The key is buildable again (no stuck in-flight marker).
        assert cache.get_or_build(("k", 6), lambda: "ok") == "ok"

    def test_malformed_env_capacity_rejected(self, monkeypatch):
        from repro.sim.engine import trace_cache_entries

        monkeypatch.setenv("REPRO_TRACE_CACHE", "plenty")
        with pytest.raises(ExperimentError, match="plenty"):
            trace_cache_entries()


# ---------------------------------------------------------------------------
# Store-level memos
# ---------------------------------------------------------------------------


class TestTraceStoreMemo:
    def _columns(self):
        bench = get_benchmark("adpcm")
        return trace_columns(bench.build_trace(scale=0.02))

    def test_memo_skips_disk_reread(self, tmp_path):
        store = TraceStore(tmp_path, memo_entries=2)
        columns = self._columns()
        key = store.key({"x": 1})
        store.store(key, columns)
        first = store.load(key, LINE_SHIFT)
        assert first is not None
        # Remove the archive: a memo hit must still serve the trace.
        (tmp_path / f"{key}.npz").unlink()
        again = store.load(key, LINE_SHIFT)
        assert again is not None
        assert again.kinds == first.kinds and again.pcs == first.pcs

    def test_memo_serves_other_line_shifts(self, tmp_path):
        store = TraceStore(tmp_path, memo_entries=2)
        key = store.key({"x": 2})
        store.store(key, self._columns())
        (tmp_path / f"{key}.npz").unlink()
        narrow = store.load(key, LINE_SHIFT)
        wide = store.load(key, LINE_SHIFT + 1)
        assert narrow is not None and wide is not None
        assert narrow.newline != wide.newline  # geometry re-derived

    def test_default_store_has_no_memo(self, tmp_path):
        store = TraceStore(tmp_path)
        key = store.key({"x": 3})
        store.store(key, self._columns())
        (tmp_path / f"{key}.npz").unlink()
        assert store.load(key, LINE_SHIFT) is None


class TestCacheStoreMemoryFront:
    def test_write_through_serves_from_memory(self, tmp_path):
        store = CacheStore(tmp_path, memory_entries=4)
        key = store.key({"scenario": "a"})
        store.store(key, {"value": 42})
        assert (tmp_path / f"{key}.json").exists()  # still persisted
        (tmp_path / f"{key}.json").unlink()
        assert store.load(key) == {"value": 42}

    def test_front_is_bounded(self, tmp_path):
        store = CacheStore(tmp_path, memory_entries=2)
        keys = [store.key({"scenario": i}) for i in range(3)]
        for key, i in zip(keys, range(3)):
            store.store(key, {"value": i})
        for key in keys:
            (tmp_path / f"{key}.json").unlink()
        assert store.load(keys[0]) is None  # evicted, disk gone -> miss
        assert store.load(keys[1]) == {"value": 1}
        assert store.load(keys[2]) == {"value": 2}

    def test_disk_hit_primes_the_front(self, tmp_path):
        seeded = CacheStore(tmp_path)
        key = seeded.key({"scenario": "b"})
        seeded.store(key, {"value": 7})
        fronted = CacheStore(tmp_path, memory_entries=4)
        assert fronted.load(key) == {"value": 7}  # from disk
        (tmp_path / f"{key}.json").unlink()
        assert fronted.load(key) == {"value": 7}  # from memory

    def test_default_store_has_no_front(self, tmp_path):
        store = CacheStore(tmp_path)
        key = store.key({"scenario": "c"})
        store.store(key, {"value": 1})
        (tmp_path / f"{key}.json").unlink()
        assert store.load(key) is None


# ---------------------------------------------------------------------------
# Worker/backend resolution
# ---------------------------------------------------------------------------


class TestWorkerResolution:
    def test_parse_workers_accepts_auto_and_ints(self):
        import os

        assert parse_workers(None) == 1
        assert parse_workers(3) == 3
        assert parse_workers("3") == 3
        assert parse_workers("auto") == max(1, os.cpu_count() or 1)

    def test_parse_workers_rejects_garbage(self):
        with pytest.raises(ExperimentError, match="plenty"):
            parse_workers("plenty", "REPRO_WORKERS")

    def test_repro_workers_auto(self, monkeypatch):
        import os

        monkeypatch.setenv("REPRO_WORKERS", "auto")
        assert default_workers() == max(1, os.cpu_count() or 1)

    def test_orchestrator_accepts_auto(self):
        import os

        orchestrator = Orchestrator(workers="auto")
        assert orchestrator.workers == max(1, os.cpu_count() or 1)

    def test_cli_accepts_auto_workers(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "sweep",
                "--benchmarks",
                "adpcm",
                "--configurations",
                "sync",
                "--workers",
                "auto",
                "--backend",
                "serial",
                "--scale",
                "0.02",
                "--no-cache",
            ]
        )
        assert rc == 0
        assert "adpcm" in capsys.readouterr().out


class TestBackendSelection:
    def test_unknown_backend_rejected_at_construction(self):
        with pytest.raises(ExperimentError, match="warp"):
            Orchestrator(backend="warp")

    def test_unknown_env_backend_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "hyperdrive")
        with pytest.raises(ExperimentError, match="hyperdrive"):
            default_backend()

    def test_serial_degenerations(self):
        orchestrator = Orchestrator(workers=4, backend="thread")
        assert orchestrator._resolve_backend(total=1) == "serial"
        assert Orchestrator(workers=1, backend="thread")._resolve_backend(4) == "serial"
        assert Orchestrator(workers=4, backend="serial")._resolve_backend(4) == "serial"

    def test_auto_with_start_method_means_processes(self):
        orchestrator = Orchestrator(workers=4, start_method="spawn")
        assert orchestrator._resolve_backend(total=4) == "process"

    @pytest.mark.skipif(native.load_hotpath() is None, reason="no native loop")
    def test_auto_picks_threads_with_native_loop(self):
        assert Orchestrator(workers=4)._resolve_backend(total=4) == "thread"

    def test_auto_falls_back_to_processes_without_native(self, monkeypatch):
        monkeypatch.setattr(native, "_cached", None)
        monkeypatch.setattr(native, "_attempted", True)
        assert Orchestrator(workers=4)._resolve_backend(total=4) == "process"


# ---------------------------------------------------------------------------
# Build-stamp compiler identity
# ---------------------------------------------------------------------------


class TestBuildStamp:
    def test_stamp_tracks_compiler_identity(self, monkeypatch):
        identities = {"ccA": b"/usr/bin/ccA\nccA 1.0", "ccB": b"/usr/bin/ccB\nccB 2.0"}
        monkeypatch.setattr(
            native, "_compiler_identity", lambda compiler: identities[compiler]
        )
        assert native._build_stamp("ccA") != native._build_stamp("ccB")
        assert native._build_stamp("ccA") == native._build_stamp("ccA")

    def test_identity_includes_resolved_path_and_banner(self):
        compiler = native._resolve_compiler()
        if compiler is None:
            pytest.skip("no C compiler on this host")
        identity = native._compiler_identity(compiler)
        import shutil

        resolved = shutil.which(compiler) or compiler
        assert identity.startswith(resolved.encode())
        assert len(identity) > len(resolved) + 1  # --version banner present
