"""Tests for the frequency scale and the slewing regulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.mcd import MCDConfig
from repro.dvfs.regulator import RegulatorState, VoltageFrequencyRegulator
from repro.dvfs.scale import FrequencyScale
from repro.errors import RegulatorError


class TestFrequencyScale:
    def test_320_points(self, mcd_config):
        scale = FrequencyScale(mcd_config)
        assert len(scale) == 320
        assert scale.frequencies_mhz[0] == pytest.approx(250.0)
        assert scale.frequencies_mhz[-1] == pytest.approx(1000.0)

    def test_voltage_tracks_frequency(self, mcd_config):
        scale = FrequencyScale(mcd_config)
        assert scale.voltages_v[0] == pytest.approx(0.65)
        assert scale.voltages_v[-1] == pytest.approx(1.20)
        # strictly increasing
        assert all(
            scale.voltages_v[i] < scale.voltages_v[i + 1] for i in range(len(scale) - 1)
        )

    def test_index_of_clamps(self, mcd_config):
        scale = FrequencyScale(mcd_config)
        assert scale.index_of(0.0) == 0
        assert scale.index_of(2000.0) == len(scale) - 1

    def test_step_from_clamps_at_ends(self, mcd_config):
        scale = FrequencyScale(mcd_config)
        assert scale.step_from(250.0, -5) == pytest.approx(250.0)
        assert scale.step_from(1000.0, +5) == pytest.approx(1000.0)

    def test_require_legal_accepts_grid_points(self, mcd_config):
        scale = FrequencyScale(mcd_config)
        f = float(scale.frequencies_mhz[17])
        assert scale.require_legal(f) == pytest.approx(f)

    def test_require_legal_rejects_off_grid(self, mcd_config):
        scale = FrequencyScale(mcd_config)
        with pytest.raises(RegulatorError):
            scale.require_legal(251.0)

    @given(st.floats(min_value=250, max_value=1000))
    @settings(max_examples=200)
    def test_quantize_matches_config(self, f):
        config = MCDConfig()
        scale = FrequencyScale(config)
        assert scale.quantize(f) == pytest.approx(config.quantize_frequency(f), abs=1e-9)


class TestRegulator:
    def test_starts_at_max_steady(self, mcd_config):
        reg = VoltageFrequencyRegulator(mcd_config)
        assert reg.current_mhz == pytest.approx(1000.0)
        assert reg.state is RegulatorState.STEADY
        assert reg.voltage_v == pytest.approx(1.20)

    def test_request_quantizes(self, mcd_config):
        reg = VoltageFrequencyRegulator(mcd_config)
        target = reg.request(501.3)
        assert mcd_config.is_legal_frequency(target, tol=1e-6)

    def test_slew_rate_honoured(self, mcd_config):
        reg = VoltageFrequencyRegulator(mcd_config)
        reg.request(500.0)
        # After 49.1 ns the frequency may have moved at most 1 MHz.
        reg.advance_to(49.1)
        assert reg.current_mhz == pytest.approx(999.0, abs=1e-6)
        assert reg.state is RegulatorState.SLEWING

    def test_slew_completes(self, mcd_config):
        reg = VoltageFrequencyRegulator(mcd_config)
        target = reg.request(500.0)
        needed = mcd_config.slew_time_ns(1000.0, target)
        reg.advance_to(needed + 1.0)
        assert reg.current_mhz == pytest.approx(target)
        assert reg.state is RegulatorState.STEADY

    def test_execute_through_intermediate_frequencies(self, mcd_config):
        reg = VoltageFrequencyRegulator(mcd_config)
        reg.request(250.0)
        previous = reg.current_mhz
        for step in range(1, 20):
            f = reg.advance_to(step * 500.0)
            assert f <= previous + 1e-12  # monotone descent
            previous = f
            # Voltage always consistent with the instantaneous frequency.
            expected_v = mcd_config.voltage_for_frequency(f)
            assert reg.voltage_v == pytest.approx(expected_v)

    def test_snap_to_is_instant(self, mcd_config):
        reg = VoltageFrequencyRegulator(mcd_config)
        reg.snap_to(250.0)
        assert reg.current_mhz == pytest.approx(250.0)
        assert reg.state is RegulatorState.STEADY

    def test_time_backwards_rejected(self, mcd_config):
        reg = VoltageFrequencyRegulator(mcd_config)
        reg.advance_to(100.0)
        with pytest.raises(RegulatorError):
            reg.advance_to(50.0)

    def test_direction_change_counted(self, mcd_config):
        reg = VoltageFrequencyRegulator(mcd_config)
        reg.request(500.0)
        reg.advance_to(1000.0)
        reg.request(990.0)  # reverse direction mid-slew
        assert reg.stats.direction_changes == 1

    def test_zero_slew_rate_is_instant(self):
        config = MCDConfig(slew_ns_per_mhz=0.0)
        reg = VoltageFrequencyRegulator(config)
        reg.request(250.0)
        reg.advance_to(1e-9)
        assert reg.current_mhz == pytest.approx(250.0)

    @given(
        st.lists(st.floats(min_value=250, max_value=1000), min_size=1, max_size=20),
        st.lists(st.floats(min_value=0.1, max_value=5000), min_size=20, max_size=20),
    )
    @settings(max_examples=50)
    def test_frequency_always_within_range(self, requests, dts):
        config = MCDConfig()
        reg = VoltageFrequencyRegulator(config)
        now = 0.0
        for i, dt in enumerate(dts):
            if i < len(requests):
                reg.request(requests[i])
            now += dt
            f = reg.advance_to(now)
            assert config.min_frequency_mhz - 1e-9 <= f <= config.max_frequency_mhz + 1e-9
