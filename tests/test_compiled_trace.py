"""Compiled-trace correctness: representation, store, and equivalence.

The load-bearing guarantee of the trace compilation layer is that the
batched core paths are *byte-identical* to the per-instruction
generator reference path — every benchmark, every clocking mode, every
execution backend.  These tests pin that, plus the columnar
representation itself and the on-disk store.
"""

from dataclasses import asdict

import pytest

from repro.config.algorithm import SCALED_OPERATING_POINT
from repro.config.processor import ProcessorConfig
from repro.control.attack_decay import AttackDecayController
from repro.errors import SimulationError
from repro.metrics.summary import summarize
from repro.sim.engine import (
    SimulationSpec,
    compiled_trace_for,
    run_spec,
    scaled_mcd_config,
)
from repro.uarch import native
from repro.uarch.compiled_trace import TraceStore, compile_trace, trace_columns
from repro.uarch.core import CoreOptions, MCDCore
from repro.workloads.catalog import BENCHMARKS, get_benchmark

LINE_SHIFT = ProcessorConfig().line_bytes.bit_length() - 1
SCALE = 0.05


def _run(trace, bench, mcd=True, controller=True, record=False):
    options = CoreOptions(
        mcd=mcd,
        seed=2,
        interval_instructions=bench.interval_instructions,
        record_interval_trace=record,
    )
    core = MCDCore(
        processor=ProcessorConfig(),
        mcd_config=scaled_mcd_config(),
        trace=trace,
        controller=AttackDecayController(SCALED_OPERATING_POINT)
        if controller
        else None,
        options=options,
    )
    core.warm_up(trace, limit=trace.total_instructions)
    return core.run()


@pytest.fixture
def python_path(monkeypatch):
    """Force the pure-Python batched loop (no native extension)."""
    monkeypatch.setattr(native, "_cached", None)
    monkeypatch.setattr(native, "_attempted", True)
    yield


# ---------------------------------------------------------------- columns
class TestRepresentation:
    def test_columns_match_blocks(self):
        trace = get_benchmark("epic").build_trace(scale=SCALE)
        kinds, src1, src2, pcs, addrs, taken, targets = trace_columns(trace)
        flat = {"kinds": [], "src1": [], "pcs": [], "addrs": [], "taken": [], "targets": []}
        for block in trace.blocks():
            flat["kinds"] += block.kinds
            flat["src1"] += block.src1
            flat["pcs"] += block.pcs
            flat["addrs"] += block.addrs
            flat["taken"] += block.taken
            flat["targets"] += block.targets
        assert kinds.tolist() == flat["kinds"]
        assert src1.tolist() == flat["src1"]
        assert pcs.tolist() == flat["pcs"]
        assert addrs.tolist() == flat["addrs"]
        assert [bool(x) for x in taken.tolist()] == flat["taken"]
        assert targets.tolist() == flat["targets"]

    def test_compiled_trace_is_a_trace_stream(self):
        trace = get_benchmark("adpcm").build_trace(scale=SCALE)
        compiled = compile_trace(trace, LINE_SHIFT)
        assert compiled.total_instructions == trace.total_instructions
        blocks = list(compiled.blocks())
        assert sum(len(b) for b in blocks) == compiled.n

    def test_newline_marks_fetch_line_changes(self):
        trace = get_benchmark("adpcm").build_trace(scale=SCALE)
        compiled = compile_trace(trace, LINE_SHIFT)
        lines = [pc >> LINE_SHIFT for pc in compiled.pcs]
        expect = [1] + [int(lines[i] != lines[i - 1]) for i in range(1, compiled.n)]
        assert compiled.newline == expect

    def test_templates_resolve_dependencies(self):
        trace = get_benchmark("gsm").build_trace(scale=SCALE)
        compiled = compile_trace(trace, LINE_SHIFT)
        for i in (0, 1, len(compiled.templates) - 1):
            seq, kind, t0, p1, p2, addr, retry = compiled.templates[i]
            assert seq == i + 1
            assert kind == compiled.kinds[i]
            assert addr == compiled.addrs[i]
            s1 = compiled.src1[i]
            assert p1 == (seq - s1 if 0 < s1 <= i else 0)

    def test_line_shift_mismatch_rejected(self):
        trace = get_benchmark("adpcm").build_trace(scale=SCALE)
        compiled = compile_trace(trace, LINE_SHIFT + 1)
        with pytest.raises(SimulationError):
            MCDCore(ProcessorConfig(), scaled_mcd_config(), compiled)


# ------------------------------------------------------------------ store
class TestTraceStore:
    def test_round_trip(self, tmp_path):
        store = TraceStore(tmp_path)
        trace = get_benchmark("epic").build_trace(scale=SCALE)
        columns = trace_columns(trace)
        key = store.key({"benchmark": "epic", "scale": SCALE})
        assert store.load(key, LINE_SHIFT) is None
        store.store(key, columns)
        loaded = store.load(key, LINE_SHIFT)
        fresh = compile_trace(trace, LINE_SHIFT)
        assert loaded.kinds == fresh.kinds
        assert loaded.pcs == fresh.pcs
        assert loaded.addrs == fresh.addrs
        assert loaded.taken == fresh.taken
        assert loaded.newline == fresh.newline
        assert loaded.templates == fresh.templates

    def test_disabled_store_misses(self, tmp_path):
        store = TraceStore(tmp_path, enabled=False)
        columns = trace_columns(get_benchmark("adpcm").build_trace(scale=SCALE))
        key = store.key({"x": 1})
        store.store(key, columns)
        assert store.load(key, LINE_SHIFT) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = TraceStore(tmp_path)
        key = store.key({"x": 2})
        (tmp_path / f"{key}.npz").write_bytes(b"not an npz")
        assert store.load(key, LINE_SHIFT) is None

    def test_keys_separate_identities(self):
        store = TraceStore()
        a = store.key({"benchmark": "epic", "scale": 1.0})
        b = store.key({"benchmark": "epic", "scale": 0.5})
        assert a != b


class TestTraceStoreCorruption:
    """Injected on-disk damage must mean recompute, never a crash.

    A truncated ``.npz`` raises ``zipfile.BadZipFile`` (not OSError)
    from ``np.load`` — the exact failure a killed orchestrator worker
    or full disk leaves behind — so these tests damage real entries in
    every representative way and assert the store falls back to a miss
    and the engine regenerates identical results.
    """

    def _stored(self, tmp_path):
        store = TraceStore(tmp_path)
        columns = trace_columns(get_benchmark("adpcm").build_trace(scale=SCALE))
        key = store.key({"benchmark": "adpcm", "scale": SCALE})
        store.store(key, columns)
        return store, key, tmp_path / f"{key}.npz"

    def test_truncated_entry_is_a_miss(self, tmp_path):
        store, key, path = self._stored(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        assert store.load(key, LINE_SHIFT) is None

    def test_tail_truncated_entry_is_a_miss(self, tmp_path):
        # Cut inside the zip central directory rather than a member.
        store, key, path = self._stored(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[:-20])
        assert store.load(key, LINE_SHIFT) is None

    def test_bitflipped_entry_is_a_miss_or_loads(self, tmp_path):
        # Flipping bytes mid-archive corrupts a member's zlib stream.
        store, key, path = self._stored(tmp_path)
        data = bytearray(path.read_bytes())
        mid = len(data) // 2
        for i in range(mid, mid + 64):
            data[i] ^= 0xFF
        path.write_bytes(bytes(data))
        store.load(key, LINE_SHIFT)  # must not raise

    def test_missing_column_is_a_miss(self, tmp_path):
        import numpy as np

        store, key, path = self._stored(tmp_path)
        with np.load(path) as data:
            partial = {k: data[k] for k in list(data.files)[:-1]}
        np.savez(path, **partial)
        assert store.load(key, LINE_SHIFT) is None

    def test_mismatched_lengths_are_a_miss(self, tmp_path):
        import numpy as np

        store, key, path = self._stored(tmp_path)
        with np.load(path) as data:
            damaged = {k: data[k] for k in data.files}
        damaged["pcs"] = damaged["pcs"][:-5]
        np.savez(path, **damaged)
        assert store.load(key, LINE_SHIFT) is None

    def test_empty_file_is_a_miss(self, tmp_path):
        store, key, path = self._stored(tmp_path)
        path.write_bytes(b"")
        assert store.load(key, LINE_SHIFT) is None

    def test_engine_recomputes_through_corruption(self, tmp_path, monkeypatch):
        """End to end: corrupt the shared store entry, run_spec still works."""
        import repro.sim.engine as engine

        store = TraceStore(tmp_path)
        monkeypatch.setattr(engine, "_TRACE_STORE", store)
        monkeypatch.setattr(engine, "_TRACE_MEMO", type(engine._TRACE_MEMO)())
        spec = SimulationSpec(benchmark="adpcm", scale=SCALE, seed=2)
        first = summarize(run_spec(spec))
        entries = list(tmp_path.glob("*.npz"))
        assert entries, "run should have populated the store"
        for entry in entries:
            data = entry.read_bytes()
            entry.write_bytes(data[: len(data) // 3])
        monkeypatch.setattr(engine, "_TRACE_MEMO", type(engine._TRACE_MEMO)())
        again = summarize(run_spec(spec))
        assert again == first


class TestResultCacheCorruption:
    """CacheStore: binary garbage and truncation are misses, not crashes."""

    def test_binary_garbage_is_a_miss(self, tmp_path):
        from repro.experiments.cache import CacheStore

        store = CacheStore(tmp_path)
        key = store.key({"x": 1})
        store.store(key, {"value": 42})
        (tmp_path / f"{key}.json").write_bytes(b"\xff\xfe\x00garbage\x80")
        assert store.load(key) is None

    def test_truncated_json_is_a_miss(self, tmp_path):
        from repro.experiments.cache import CacheStore

        store = CacheStore(tmp_path)
        key = store.key({"x": 2})
        store.store(key, {"value": [1, 2, 3]})
        path = tmp_path / f"{key}.json"
        path.write_text(path.read_text()[:10])
        assert store.load(key) is None

    def test_wrong_shape_is_a_miss(self, tmp_path):
        from repro.experiments.cache import CacheStore

        store = CacheStore(tmp_path)
        key = store.key({"x": 3})
        (tmp_path / f"{key}.json").write_text("[1, 2, 3]")
        assert store.load(key) is None


# ------------------------------------------------------------ equivalence
class TestEquivalence:
    """Compiled and generator paths produce identical CoreResults."""

    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_catalog_identical(self, name):
        bench = get_benchmark(name)
        trace = bench.build_trace(scale=SCALE)
        compiled = compile_trace(trace, LINE_SHIFT)
        reference = _run(trace, bench, record=True)
        fast = _run(compiled, bench, record=True)
        assert asdict(fast) == asdict(reference)

    @pytest.mark.parametrize("name", ["epic", "mcf"])
    def test_python_batched_path_identical(self, name, python_path):
        bench = get_benchmark(name)
        trace = bench.build_trace(scale=SCALE)
        compiled = compile_trace(trace, LINE_SHIFT)
        assert asdict(_run(compiled, bench)) == asdict(_run(trace, bench))

    def test_synchronous_baseline_identical(self):
        bench = get_benchmark("gcc")
        trace = bench.build_trace(scale=SCALE)
        compiled = compile_trace(trace, LINE_SHIFT)
        reference = _run(trace, bench, mcd=False)
        assert asdict(_run(compiled, bench, mcd=False)) == asdict(reference)

    def test_no_controller_identical(self):
        bench = get_benchmark("swim")
        trace = bench.build_trace(scale=SCALE)
        compiled = compile_trace(trace, LINE_SHIFT)
        reference = _run(trace, bench, controller=False)
        assert asdict(_run(compiled, bench, controller=False)) == asdict(reference)

    @pytest.mark.parametrize(
        "configuration",
        ["sync", "mcd_base", "attack_decay", "global@725.000"],
    )
    def test_registered_configurations_identical(self, configuration):
        from dataclasses import replace

        from repro.experiments import CONFIGURATIONS
        from repro.experiments.executor import ExecutionContext

        factory, parsed = CONFIGURATIONS.resolve(configuration)
        context = ExecutionContext(scale=SCALE, use_cache=False)
        spec = factory(context, "epic", scale=SCALE, seed=1, **parsed)
        assert isinstance(spec, SimulationSpec)
        fast = summarize(run_spec(replace(spec, compiled=True))).to_dict()
        reference = summarize(run_spec(replace(spec, compiled=False))).to_dict()
        assert fast == reference


# ------------------------------------------------------------- engine glue
class TestCompiledTraceFor:
    def test_memoised_within_process(self):
        bench = get_benchmark("adpcm")
        a = compiled_trace_for(bench, scale=SCALE, line_shift=LINE_SHIFT)
        b = compiled_trace_for(bench, scale=SCALE, line_shift=LINE_SHIFT)
        assert a is b

    def test_run_spec_uses_compiled_by_default(self):
        fast = run_spec(SimulationSpec(benchmark="adpcm", scale=SCALE))
        reference = run_spec(
            SimulationSpec(benchmark="adpcm", scale=SCALE, compiled=False)
        )
        assert asdict(fast) == asdict(reference)
