"""Tests for table and figure rendering."""

import pytest

from repro.reporting.figures import ascii_chart, ascii_series
from repro.reporting.tables import format_table


class TestFormatTable:
    def test_basic_render(self):
        out = format_table(
            ["Name", "Value"], [["alpha", 1.5], ["beta", 20]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "Name" in lines[1]
        assert "-" in lines[2]
        assert "alpha" in lines[3]

    def test_numeric_right_aligned(self):
        out = format_table(["A"], [["5"], ["500"]])
        rows = out.splitlines()[2:]
        assert rows[0].endswith("5")
        assert rows[1].endswith("500")

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["A", "B"], [["only-one"]])

    def test_percent_cells_treated_numeric(self):
        out = format_table(["P"], [["1.5%"], ["10.0%"]])
        assert out.splitlines()[2].endswith("1.5%")


class TestAsciiFigures:
    def test_series_length(self):
        s = ascii_series([1, 2, 3, 4, 5] * 100, width=50)
        assert len(s) == 50

    def test_series_flat_input(self):
        s = ascii_series([3.0] * 10)
        assert len(set(s)) == 1

    def test_series_empty(self):
        assert ascii_series([]) == ""

    def test_series_shorter_than_width(self):
        assert len(ascii_series([1.0, 5.0], width=80)) == 2

    def test_chart_renders_grid(self):
        out = ascii_chart([0, 1, 2], [0, 1, 4], height=5, width=20)
        assert "o" in out
        assert out.count("\n") >= 6

    def test_chart_rejects_mismatch(self):
        with pytest.raises(ValueError):
            ascii_chart([1, 2], [1])

    def test_chart_single_point(self):
        out = ascii_chart([1.0], [2.0])
        assert "o" in out
