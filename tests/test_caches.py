"""Tests for the set-associative caches and the hierarchy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.processor import ProcessorConfig
from repro.errors import ConfigError
from repro.uarch.caches import CacheHierarchy, MemoryLevel, SetAssociativeCache


class TestSetAssociativeCache:
    def test_compulsory_miss_then_hit(self):
        c = SetAssociativeCache(size_kb=4, ways=2, line_bytes=64, name="t")
        assert not c.access(0x1000)
        assert c.access(0x1000)
        assert c.stats.accesses == 2
        assert c.stats.misses == 1

    def test_same_line_different_offset_hits(self):
        c = SetAssociativeCache(4, 2, 64, "t")
        c.access(0x1000)
        assert c.access(0x103F)  # same 64B line

    def test_lru_eviction_within_set(self):
        # Direct-mapped, 2 sets: lines mapping to the same set conflict.
        c = SetAssociativeCache(size_kb=1, ways=8, line_bytes=64, name="t")
        # 1KB/64B = 16 lines, 8 ways -> 2 sets.  Even lines map to set 0.
        addresses = [i * 128 for i in range(9)]  # nine lines in set 0
        for a in addresses:
            c.access(a)
        assert not c.probe(addresses[0])  # evicted (LRU)
        assert c.probe(addresses[-1])

    def test_probe_does_not_allocate_or_count(self):
        c = SetAssociativeCache(4, 2, 64, "t")
        assert not c.probe(0x5000)
        assert c.stats.accesses == 0
        assert not c.access(0x5000)  # still a miss: probe didn't allocate

    def test_miss_rate(self):
        c = SetAssociativeCache(4, 2, 64, "t")
        c.access(0)
        c.access(0)
        assert c.stats.miss_rate == pytest.approx(0.5)

    def test_zero_accesses_zero_miss_rate(self):
        c = SetAssociativeCache(4, 2, 64, "t")
        assert c.stats.miss_rate == 0.0

    def test_bad_geometry_rejected(self):
        with pytest.raises(ConfigError):
            SetAssociativeCache(1, 32, 64, "t")  # 16 lines, 32 ways
        with pytest.raises(ConfigError):
            SetAssociativeCache(4, 2, 60, "t")  # non power-of-two line

    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=500))
    @settings(max_examples=50)
    def test_capacity_invariant(self, addresses):
        c = SetAssociativeCache(4, 2, 64, "t")
        for a in addresses:
            c.access(a)
        total_lines = sum(len(s) for s in c._sets)
        assert total_lines <= 4 * 1024 // 64
        assert all(len(s) <= c.ways for s in c._sets)

    @given(st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1, max_size=300))
    @settings(max_examples=50)
    def test_immediate_rereference_always_hits(self, addresses):
        c = SetAssociativeCache(64, 2, 64, "t")
        for a in addresses:
            c.access(a)
            assert c.probe(a)


class TestHierarchy:
    def test_table4_geometry(self, processor_config):
        h = CacheHierarchy(processor_config)
        assert h.l1d.sets * h.l1d.ways == 64 * 1024 // 64
        assert h.l1i.sets * h.l1i.ways == 64 * 1024 // 64
        assert h.l2.ways == 1
        assert h.l2.sets == 1024 * 1024 // 64

    def test_miss_path_reaches_memory(self, processor_config):
        h = CacheHierarchy(processor_config)
        assert h.data_access(0xDEAD000) is MemoryLevel.MEMORY
        assert h.data_access(0xDEAD000) is MemoryLevel.L1

    def test_l2_serves_l1_evictions(self, processor_config):
        h = CacheHierarchy(processor_config)
        # Fill L1D set 0 beyond associativity; lines remain in L2.
        step = h.l1d.sets * 64
        addresses = [i * step for i in range(4)]
        for a in addresses:
            h.data_access(a)
        level = h.data_access(addresses[0])
        assert level in (MemoryLevel.L1, MemoryLevel.L2)
        assert level is not MemoryLevel.MEMORY

    def test_instruction_and_data_share_l2(self, processor_config):
        h = CacheHierarchy(processor_config)
        h.instruction_access(0x40000)
        # Same line via the data path: L1D misses, L2 hits.
        assert h.data_access(0x40000) is MemoryLevel.L2
