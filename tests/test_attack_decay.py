"""Tests for the Attack/Decay controller (paper Listing 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.algorithm import AttackDecayParams
from repro.config.mcd import CONTROLLED_DOMAINS, Domain, MCDConfig
from repro.control.attack_decay import AttackDecayController
from repro.control.base import IntervalSnapshot
from repro.errors import ControlError


def make_snapshot(
    index: int,
    utilization: dict[Domain, float],
    ipc: float = 1.0,
) -> IntervalSnapshot:
    return IntervalSnapshot(
        index=index,
        instructions=10_000,
        time_ns=(index + 1) * 10_000.0,
        duration_ns=10_000.0,
        ipc=ipc,
        queue_utilization=utilization,
    )


def started_controller(params=None, **kwargs) -> AttackDecayController:
    ctl = AttackDecayController(params or AttackDecayParams(), **kwargs)
    ctl.begin(MCDConfig(), {d: 1000.0 for d in CONTROLLED_DOMAINS})
    return ctl


class TestConstruction:
    def test_requires_controllable_domains(self):
        with pytest.raises(ControlError):
            AttackDecayController(domains=(Domain.EXTERNAL,))

    def test_requires_some_domain(self):
        with pytest.raises(ControlError):
            AttackDecayController(domains=())

    def test_on_interval_before_begin_rejected(self):
        ctl = AttackDecayController()
        with pytest.raises(ControlError):
            ctl.on_interval(make_snapshot(0, {}))

    def test_bad_alpha_rejected(self):
        with pytest.raises(ControlError):
            AttackDecayController(smoothing_alpha=0.0)


class TestAttackMode:
    def test_utilization_rise_attacks_frequency_up(self):
        # Frequency starts below max so an increase is visible.
        ctl = started_controller()
        ctl.states[Domain.INTEGER].frequency_mhz = 500.0
        ctl.on_interval(make_snapshot(0, {Domain.INTEGER: 2.0}))
        before = ctl.states[Domain.INTEGER].frequency_mhz
        ctl.on_interval(make_snapshot(1, {Domain.INTEGER: 4.0}))  # +100 %
        after = ctl.states[Domain.INTEGER].frequency_mhz
        assert after > before
        # Period scaled by 1 - ReactionChange: frequency / (1 - rc).
        assert after == pytest.approx(before / (1.0 - 0.06))

    def test_utilization_fall_attacks_frequency_down(self):
        ctl = started_controller()
        ctl.on_interval(make_snapshot(0, {Domain.INTEGER: 4.0}))
        before = ctl.states[Domain.INTEGER].frequency_mhz
        ctl.on_interval(make_snapshot(1, {Domain.INTEGER: 1.0}))  # -75 %
        after = ctl.states[Domain.INTEGER].frequency_mhz
        assert after == pytest.approx(before / 1.06)

    def test_small_change_decays(self):
        ctl = started_controller()
        ctl.on_interval(make_snapshot(0, {Domain.INTEGER: 4.0}))
        before = ctl.states[Domain.INTEGER].frequency_mhz
        # Change below the 1.75 % deviation threshold.
        ctl.on_interval(make_snapshot(1, {Domain.INTEGER: 4.01}))
        after = ctl.states[Domain.INTEGER].frequency_mhz
        assert after == pytest.approx(before / 1.00175)

    def test_unused_domain_decays_to_minimum(self):
        ctl = started_controller(AttackDecayParams(decay_pct=2.0))
        for i in range(400):
            ctl.on_interval(make_snapshot(i, {Domain.FLOATING_POINT: 0.0}))
        state = ctl.states[Domain.FLOATING_POINT]
        assert state.frequency_mhz == pytest.approx(250.0)

    def test_frequency_clamped_to_range(self):
        ctl = started_controller()
        for i in range(5):
            # Huge utilization increases force attacks up.
            ctl.on_interval(make_snapshot(i, {Domain.INTEGER: 4.0 * 3**i}))
        assert ctl.states[Domain.INTEGER].frequency_mhz <= 1000.0


class TestPerfDegGuard:
    def test_ipc_drop_blocks_decay(self):
        ctl = started_controller(smoothing_alpha=1.0)
        ctl.on_interval(make_snapshot(0, {Domain.INTEGER: 4.0}, ipc=1.0))
        before = ctl.states[Domain.INTEGER].frequency_mhz
        # IPC fell 10 % >> PerfDegThreshold 2.5 %: decay must be blocked.
        ctl.on_interval(make_snapshot(1, {Domain.INTEGER: 4.0}, ipc=0.9))
        assert ctl.states[Domain.INTEGER].frequency_mhz == before
        assert ctl.states[Domain.INTEGER].holds >= 1

    def test_steady_ipc_allows_decay(self):
        ctl = started_controller(smoothing_alpha=1.0)
        ctl.on_interval(make_snapshot(0, {Domain.INTEGER: 4.0}, ipc=1.0))
        before = ctl.states[Domain.INTEGER].frequency_mhz
        ctl.on_interval(make_snapshot(1, {Domain.INTEGER: 4.0}, ipc=1.0))
        assert ctl.states[Domain.INTEGER].frequency_mhz < before

    def test_literal_listing_guard_is_tautological(self):
        # As printed, (PrevIPC/IPC) >= 0.025 is true for any realistic
        # ratio, so the listing's guard never blocks (substitution #4).
        ctl = started_controller(literal_listing=True, smoothing_alpha=1.0)
        ctl.on_interval(make_snapshot(0, {Domain.INTEGER: 4.0}, ipc=1.0))
        before = ctl.states[Domain.INTEGER].frequency_mhz
        ctl.on_interval(make_snapshot(1, {Domain.INTEGER: 4.0}, ipc=0.5))
        assert ctl.states[Domain.INTEGER].frequency_mhz < before


class TestEndstops:
    def test_pinned_at_max_forces_attack_down(self):
        params = AttackDecayParams(decay_pct=0.0)  # nothing else moves it
        ctl = started_controller(params)
        # Utilization rising every interval pins the commanded frequency
        # at the maximum; after 10 intervals the endstop forces a drop.
        freqs = []
        for i in range(14):
            ctl.on_interval(make_snapshot(i, {Domain.INTEGER: 4.0 + i}))
            freqs.append(ctl.states[Domain.INTEGER].frequency_mhz)
        assert any(f < 1000.0 for f in freqs[10:])

    def test_pinned_at_min_forces_attack_up(self):
        ctl = started_controller(AttackDecayParams(decay_pct=2.0))
        for i in range(600):
            ctl.on_interval(make_snapshot(i, {Domain.FLOATING_POINT: 0.0}))
        # After reaching the floor the endstop periodically kicks it up;
        # attacks_up counts those forced attacks.
        assert ctl.states[Domain.FLOATING_POINT].attacks_up > 0

    def test_endstop_counter_resets_off_extreme(self):
        ctl = started_controller()
        state = ctl.states[Domain.INTEGER]
        state.frequency_mhz = 500.0
        ctl.on_interval(make_snapshot(0, {Domain.INTEGER: 1.0}))
        assert state.upper_endstop == 0
        assert state.lower_endstop == 0


class TestIndependence:
    def test_domains_with_identical_inputs_match(self):
        ctl = started_controller()
        for i in range(30):
            ctl.on_interval(
                make_snapshot(i, {Domain.INTEGER: 4.0, Domain.FLOATING_POINT: 4.0})
            )
        int_f = ctl.states[Domain.INTEGER].frequency_mhz
        fp_f = ctl.states[Domain.FLOATING_POINT].frequency_mhz
        assert fp_f < 1000.0  # steady utilization decays
        assert int_f == pytest.approx(fp_f)

    def test_domains_with_different_inputs_diverge(self):
        ctl = started_controller()
        for i in range(30):
            ctl.on_interval(
                make_snapshot(
                    i, {Domain.INTEGER: 4.0 + (i % 3), Domain.FLOATING_POINT: 0.0}
                )
            )
        assert (
            ctl.states[Domain.INTEGER].frequency_mhz
            != ctl.states[Domain.FLOATING_POINT].frequency_mhz
        )

    def test_targets_only_for_changed_domains(self):
        ctl = started_controller(AttackDecayParams(decay_pct=0.0), smoothing_alpha=1.0)
        ctl.on_interval(make_snapshot(0, {Domain.INTEGER: 0.0}, ipc=1.0))
        targets = ctl.on_interval(make_snapshot(1, {Domain.INTEGER: 0.0}, ipc=0.5))
        # Decay disabled and IPC guard active: nothing changes.
        assert targets == {}


class TestStateProperties:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=30.0), min_size=5, max_size=120
        ),
        st.lists(
            st.floats(min_value=0.1, max_value=4.0), min_size=5, max_size=120
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_frequency_always_in_legal_range(self, utils, ipcs):
        ctl = started_controller()
        n = min(len(utils), len(ipcs))
        for i in range(n):
            ctl.on_interval(
                make_snapshot(i, {Domain.INTEGER: utils[i]}, ipc=ipcs[i])
            )
            f = ctl.states[Domain.INTEGER].frequency_mhz
            assert 250.0 - 1e-9 <= f <= 1000.0 + 1e-9

    @given(st.lists(st.floats(min_value=0, max_value=20), min_size=3, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_mode_counters_account_for_all_intervals(self, utils):
        ctl = started_controller()
        for i, u in enumerate(utils):
            ctl.on_interval(make_snapshot(i, {Domain.INTEGER: u}))
        s = ctl.states[Domain.INTEGER]
        assert s.attacks_up + s.attacks_down + s.decays + s.holds == len(utils)


class TestNativeSpec:
    """Eligibility contract for running the controller inside the C loop."""

    def test_stock_started_controller_is_eligible(self):
        ctl = started_controller()
        spec = ctl.native_spec()
        assert spec is not None
        assert spec["controlled"] == [0, 1, 1, 1]
        assert spec["frequency_mhz"][1:] == [1000.0, 1000.0, 1000.0]
        assert spec["literal_listing"] == 0
        assert spec["endstop_intervals"] == AttackDecayParams().endstop_intervals

    def test_literal_listing_flag_exported(self):
        assert started_controller(literal_listing=True).native_spec()[
            "literal_listing"
        ] == 1

    def test_unstarted_controller_is_ineligible(self):
        assert AttackDecayController(AttackDecayParams()).native_spec() is None

    def test_subclass_is_ineligible(self):
        class Custom(AttackDecayController):
            def on_interval(self, snapshot):
                return super().on_interval(snapshot)

        ctl = Custom(AttackDecayParams())
        ctl.begin(MCDConfig(), {d: 1000.0 for d in CONTROLLED_DOMAINS})
        assert ctl.native_spec() is None

    def test_instance_hook_override_is_ineligible(self):
        ctl = started_controller()
        ctl.on_interval = lambda snapshot: {}
        assert ctl.native_spec() is None

    def test_instantaneous_instance_is_ineligible(self):
        ctl = started_controller()
        ctl.instantaneous = True
        assert ctl.native_spec() is None

    def test_absorb_round_trips_state(self):
        ctl = started_controller()
        ctl.absorb_native_state(
            prev_ipc=1.5,
            smoothed_ipc=1.25,
            frequency_mhz=[0.0, 900.0, 800.0, 700.0],
            prev_queue_utilization=[0.0, 1.0, 2.0, 3.0],
            upper_endstop=[0, 1, 0, 0],
            lower_endstop=[0, 0, 2, 0],
            attacks_up=[0, 4, 0, 0],
            attacks_down=[0, 0, 5, 0],
            decays=[0, 0, 0, 6],
            holds=[0, 1, 1, 1],
        )
        assert ctl.prev_ipc == 1.5
        state = ctl.states[Domain.INTEGER]
        assert state.frequency_mhz == 900.0
        assert state.prev_queue_utilization == 1.0
        assert state.upper_endstop == 1
        assert state.attacks_up == 4
        ls = ctl.states[Domain.LOAD_STORE]
        assert ls.decays == 6 and ls.holds == 1
