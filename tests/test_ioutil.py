"""Crash-safety contract of :func:`repro.ioutil.atomic_write`.

The module docstring promises readers never observe a truncated entry,
even across a power loss.  That requires a specific syscall order:
write → flush → fsync(temp file) → rename → fsync(directory).  These
tests pin the order by instrumenting the os-level calls — a regression
that drops or reorders the fsync would silently reopen the
publish-a-partial-file window the docstring rules out.
"""

from __future__ import annotations

import os
import stat
import time

import pytest

from repro.ioutil import atomic_write


class TestAtomicWriteBasics:
    def test_writes_and_overwrites(self, tmp_path):
        target = tmp_path / "entry.json"
        with atomic_write(target, "w") as handle:
            handle.write("one")
        assert target.read_text() == "one"
        with atomic_write(target, "w") as handle:
            handle.write("two")
        assert target.read_text() == "two"

    def test_creates_missing_directories(self, tmp_path):
        target = tmp_path / "a" / "b" / "entry.bin"
        with atomic_write(target) as handle:
            handle.write(b"\x00\x01")
        assert target.read_bytes() == b"\x00\x01"

    def test_exception_leaves_destination_untouched(self, tmp_path):
        target = tmp_path / "entry.json"
        target.write_text("intact")
        with pytest.raises(RuntimeError):
            with atomic_write(target, "w") as handle:
                handle.write("partial")
                raise RuntimeError("writer crashed")
        assert target.read_text() == "intact"
        assert list(tmp_path.glob("*.tmp")) == []


class TestFsyncOrdering:
    def test_temp_file_is_fsynced_before_replace(self, tmp_path, monkeypatch):
        """The payload must be durable before the rename publishes it."""
        events: list[tuple[str, str]] = []
        real_fsync = os.fsync
        real_replace = os.replace

        def recording_fsync(fd):
            mode = os.fstat(fd).st_mode
            kind = "dir" if stat.S_ISDIR(mode) else "file"
            events.append(("fsync", kind))
            return real_fsync(fd)

        def recording_replace(src, dst):
            events.append(("replace", os.path.basename(dst)))
            return real_replace(src, dst)

        monkeypatch.setattr(os, "fsync", recording_fsync)
        monkeypatch.setattr(os, "replace", recording_replace)

        target = tmp_path / "entry.json"
        with atomic_write(target, "w") as handle:
            handle.write("durable")

        assert target.read_text() == "durable"
        replace_at = events.index(("replace", "entry.json"))
        file_syncs = [
            i for i, e in enumerate(events) if e == ("fsync", "file")
        ]
        assert file_syncs and file_syncs[0] < replace_at, (
            f"temp file was not fsynced before os.replace: {events}"
        )
        # Best-effort directory fsync follows the rename, making the
        # rename itself durable.
        assert ("fsync", "dir") in events[replace_at + 1 :]

    def test_no_replace_without_fsync(self, tmp_path, monkeypatch):
        """If fsync fails, the entry must not be published at all."""

        def failing_fsync(fd):
            raise OSError("disk gone")

        monkeypatch.setattr(os, "fsync", failing_fsync)
        target = tmp_path / "entry.json"
        with pytest.raises(OSError):
            with atomic_write(target, "w") as handle:
                handle.write("lost")
        assert not target.exists()


class TestAppendLine:
    def test_appends_newline_terminated_records(self, tmp_path):
        from repro.ioutil import append_line

        journal = tmp_path / "deep" / "journal.jsonl"
        append_line(journal, "one")
        append_line(journal, "two\n")  # caller-supplied newline not doubled
        assert journal.read_text() == "one\ntwo\n"

    def test_record_is_fsynced(self, tmp_path, monkeypatch):
        from repro.ioutil import append_line

        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))[1]
        )
        append_line(tmp_path / "journal.jsonl", "entry")
        assert synced, "append_line returned without fsyncing the record"


class TestStaleTmpSweep:
    """Crashed writers' *.tmp droppings are reaped, live ones spared."""

    def _plant(self, directory, name, age_seconds):
        path = directory / name
        path.write_text("partial")
        old = time.time() - age_seconds
        os.utime(path, (old, old))
        return path

    def test_removes_stale_keeps_fresh_and_non_tmp(self, tmp_path):
        from repro.ioutil import sweep_stale_tmp

        stale = self._plant(tmp_path, "entry.abc123.tmp", 7200)
        fresh = self._plant(tmp_path, "entry.def456.tmp", 5)
        data = tmp_path / "entry.json"
        data.write_text("{}")

        removed = sweep_stale_tmp(tmp_path, once_per_process=False)

        assert removed == 1
        assert not stale.exists()
        assert fresh.exists(), "a live writer's tmp file was reaped"
        assert data.exists()

    def test_swept_once_per_process_by_default(self, tmp_path):
        from repro.ioutil import sweep_stale_tmp

        self._plant(tmp_path, "first.xyz.tmp", 7200)
        assert sweep_stale_tmp(tmp_path) == 1
        # Second plant after the memoised sweep stays: the constructor
        # path scans each directory once per process.
        self._plant(tmp_path, "second.xyz.tmp", 7200)
        assert sweep_stale_tmp(tmp_path) == 0

    def test_missing_directory_is_noop(self, tmp_path):
        from repro.ioutil import sweep_stale_tmp

        assert sweep_stale_tmp(tmp_path / "nonexistent",
                               once_per_process=False) == 0

    def test_cache_store_open_sweeps(self, tmp_path):
        from repro.experiments.cache import CacheStore

        stale = self._plant(tmp_path, "deadbeef.ghi789.tmp", 7200)
        CacheStore(directory=tmp_path)
        assert not stale.exists()

    def test_resultdb_open_sweeps(self, tmp_path):
        from repro.resultdb import ResultDB

        db = ResultDB(tmp_path)
        db.runs_dir.mkdir(parents=True, exist_ok=True)
        stale = self._plant(db.runs_dir, "run.jkl012.tmp", 7200)
        # Sweeps are memoised per directory per process, so open a
        # second store on a fresh view of the same path.
        from repro.ioutil import _SWEPT_DIRS

        _SWEPT_DIRS.discard(db.runs_dir)
        ResultDB(tmp_path)
        assert not stale.exists()
