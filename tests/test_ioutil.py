"""Crash-safety contract of :func:`repro.ioutil.atomic_write`.

The module docstring promises readers never observe a truncated entry,
even across a power loss.  That requires a specific syscall order:
write → flush → fsync(temp file) → rename → fsync(directory).  These
tests pin the order by instrumenting the os-level calls — a regression
that drops or reorders the fsync would silently reopen the
publish-a-partial-file window the docstring rules out.
"""

from __future__ import annotations

import os
import stat

import pytest

from repro.ioutil import atomic_write


class TestAtomicWriteBasics:
    def test_writes_and_overwrites(self, tmp_path):
        target = tmp_path / "entry.json"
        with atomic_write(target, "w") as handle:
            handle.write("one")
        assert target.read_text() == "one"
        with atomic_write(target, "w") as handle:
            handle.write("two")
        assert target.read_text() == "two"

    def test_creates_missing_directories(self, tmp_path):
        target = tmp_path / "a" / "b" / "entry.bin"
        with atomic_write(target) as handle:
            handle.write(b"\x00\x01")
        assert target.read_bytes() == b"\x00\x01"

    def test_exception_leaves_destination_untouched(self, tmp_path):
        target = tmp_path / "entry.json"
        target.write_text("intact")
        with pytest.raises(RuntimeError):
            with atomic_write(target, "w") as handle:
                handle.write("partial")
                raise RuntimeError("writer crashed")
        assert target.read_text() == "intact"
        assert list(tmp_path.glob("*.tmp")) == []


class TestFsyncOrdering:
    def test_temp_file_is_fsynced_before_replace(self, tmp_path, monkeypatch):
        """The payload must be durable before the rename publishes it."""
        events: list[tuple[str, str]] = []
        real_fsync = os.fsync
        real_replace = os.replace

        def recording_fsync(fd):
            mode = os.fstat(fd).st_mode
            kind = "dir" if stat.S_ISDIR(mode) else "file"
            events.append(("fsync", kind))
            return real_fsync(fd)

        def recording_replace(src, dst):
            events.append(("replace", os.path.basename(dst)))
            return real_replace(src, dst)

        monkeypatch.setattr(os, "fsync", recording_fsync)
        monkeypatch.setattr(os, "replace", recording_replace)

        target = tmp_path / "entry.json"
        with atomic_write(target, "w") as handle:
            handle.write("durable")

        assert target.read_text() == "durable"
        replace_at = events.index(("replace", "entry.json"))
        file_syncs = [
            i for i, e in enumerate(events) if e == ("fsync", "file")
        ]
        assert file_syncs and file_syncs[0] < replace_at, (
            f"temp file was not fsynced before os.replace: {events}"
        )
        # Best-effort directory fsync follows the rename, making the
        # rename itself durable.
        assert ("fsync", "dir") in events[replace_at + 1 :]

    def test_no_replace_without_fsync(self, tmp_path, monkeypatch):
        """If fsync fails, the entry must not be published at all."""

        def failing_fsync(fd):
            raise OSError("disk gone")

        monkeypatch.setattr(os, "fsync", failing_fsync)
        target = tmp_path / "entry.json"
        with pytest.raises(OSError):
            with atomic_write(target, "w") as handle:
                handle.write("lost")
        assert not target.exists()
