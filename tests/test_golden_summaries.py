"""Golden-value regression pins: exact RunSummary numbers.

Six representative catalog benchmarks (one per behavioural family:
DSP, the Figure 2/3 case study, bimodal compile, pointer-chase,
streaming FP, dependency-bound sort) x both clocking modes, pinned to
the *exact* floats the simulator produced when these goldens were
recorded.  A second table pins closed-loop Attack/Decay runs — three
benchmarks x both ``literal_listing`` variants at a second seed — on
the configuration where the native loop runs the controller inside C,
locking the Listing-1 migration to exact numbers.  Any change to the generator, the trace compiler, any of the
three core paths, the energy accounting or the controller that moves a
result — even in the last ulp — fails here, turning silent drift into
an explicit decision: either fix the regression or re-record the
goldens in the same commit that justifies the change.

The simulator is deterministic by contract (seeded numpy PCG64 streams,
FP contraction disabled in the native build, accumulation order pinned
across paths), so exact equality is the right assertion, not an
approximation.
"""

from __future__ import annotations

import pytest

from repro.config.algorithm import SCALED_OPERATING_POINT
from repro.control.attack_decay import AttackDecayController
from repro.metrics.summary import RunSummary, summarize
from repro.sim.engine import SimulationSpec, run_spec

SCALE = 0.05
SEED = 1

#: (benchmark, clocking mode) -> the exact recorded summary.
#: "sync" is the fully synchronous baseline (no controller); "mcd" is
#: the MCD processor under the Attack/Decay controller at the scaled
#: operating point - the repository's two headline configurations.
GOLDEN: dict[tuple[str, str], RunSummary] = {
    ("adpcm", "sync"): RunSummary(
        instructions=4000,
        wall_time_ns=1469.0,
        energy=2545.4847999999965,
        cpi=0.36725,
        epi=0.6363711999999991,
        power=1.7328010891763082,
        edp=3739317.171199995,
    ),
    ("adpcm", "mcd"): RunSummary(
        instructions=4000,
        wall_time_ns=1490.851950289555,
        energy=2555.0464999796204,
        cpi=0.37271298757238874,
        epi=0.6387616249949051,
        power=1.7138163849759707,
        edp=3809196.0575751183,
    ),
    ("epic", "sync"): RunSummary(
        instructions=8000,
        wall_time_ns=3917.0,
        energy=5718.837199999925,
        cpi=0.489625,
        epi=0.7148546499999907,
        power=1.4600043911156306,
        edp=22400685.312399708,
    ),
    ("epic", "mcd"): RunSummary(
        instructions=8000,
        wall_time_ns=4060.743447584904,
        energy=5636.979272007078,
        cpi=0.507592930948113,
        epi=0.7046224090008848,
        power=1.3881643459548345,
        edp=22890326.642974664,
    ),
    ("gcc", "sync"): RunSummary(
        instructions=6000,
        wall_time_ns=5839.0,
        energy=5752.144499999954,
        cpi=0.9731666666666666,
        epi=0.9586907499999924,
        power=0.9851249357766662,
        edp=33586771.73549973,
    ),
    ("gcc", "mcd"): RunSummary(
        instructions=6000,
        wall_time_ns=5888.587358034442,
        energy=5734.274321866538,
        cpi=0.9814312263390738,
        epi=0.9557123869777564,
        power=0.9737945577121552,
        edp=33766775.279244825,
    ),
    ("mcf", "sync"): RunSummary(
        instructions=5000,
        wall_time_ns=12976.0,
        energy=8123.17029999974,
        cpi=2.5952,
        epi=1.624634059999948,
        power=0.6260149737977605,
        edp=105406257.81279662,
    ),
    ("mcf", "mcd"): RunSummary(
        instructions=5000,
        wall_time_ns=13074.839507126399,
        energy=8138.7221242587875,
        cpi=2.61496790142528,
        epi=1.6277444248517574,
        power=0.6224720479224853,
        edp=106412485.56778248,
    ),
    ("swim", "sync"): RunSummary(
        instructions=5000,
        wall_time_ns=1861.0,
        energy=3493.5838999999833,
        cpi=0.3722,
        epi=0.6987167799999967,
        power=1.8772616335303511,
        edp=6501559.637899969,
    ),
    ("swim", "mcd"): RunSummary(
        instructions=5000,
        wall_time_ns=1864.1585680017442,
        energy=3480.0124896143734,
        cpi=0.37283171360034884,
        epi=0.6960024979228747,
        power=1.8668006838842677,
        edp=6487295.099267716,
    ),
    ("bisort", "sync"): RunSummary(
        instructions=4000,
        wall_time_ns=8549.0,
        energy=5979.902500000007,
        cpi=2.13725,
        epi=1.494975625000002,
        power=0.6994856123523228,
        edp=51122186.47250006,
    ),
    ("bisort", "mcd"): RunSummary(
        instructions=4000,
        wall_time_ns=8682.422218325304,
        energy=5930.038178302735,
        cpi=2.170605554581326,
        epi=1.4825095445756837,
        power=0.6829935275189303,
        edp=51487095.23481298,
    ),
}


#: (benchmark, literal_listing) -> exact closed-loop summary at seed 3.
#: These pin the Attack/Decay *controller itself* — both Listing-1
#: comparison variants — on runs where the native loop executes the
#: controller inside C (no interval recording), so the C migration of
#: Listing 1 is locked to exact numbers on every path.
GOLDEN_CLOSED_LOOP: dict[tuple[str, bool], RunSummary] = {
    ("adpcm", False): RunSummary(
        instructions=4000,
        wall_time_ns=1486.6324725636607,
        energy=2552.213521429926,
        cpi=0.3716581181409152,
        epi=0.6380533803574815,
        power=1.7167750392460466,
        edp=3794203.4978737785,
    ),
    ("adpcm", True): RunSummary(
        instructions=4000,
        wall_time_ns=1495.5363192937343,
        energy=2538.154496597878,
        cpi=0.3738840798234336,
        epi=0.6345386241494695,
        power=1.6971533648855275,
        edp=3795902.2336408314,
    ),
    ("gcc", False): RunSummary(
        instructions=6000,
        wall_time_ns=5889.401105321532,
        energy=5739.104586297339,
        cpi=0.981566850886922,
        epi=0.9565174310495564,
        power=0.9744801693183389,
        edp=33799888.89409542,
    ),
    ("gcc", True): RunSummary(
        instructions=6000,
        wall_time_ns=5946.26078267097,
        energy=5648.861780599396,
        cpi=0.991043463778495,
        epi=0.9414769634332327,
        power=0.9499855433622629,
        edp=33589605.2727071,
    ),
    ("mcf", False): RunSummary(
        instructions=5000,
        wall_time_ns=13039.466305094486,
        energy=8176.527145992073,
        cpi=2.607893261018897,
        epi=1.6353054291984146,
        power=0.6270599543477884,
        edp=106617550.21285401,
    ),
    ("mcf", True): RunSummary(
        instructions=5000,
        wall_time_ns=13184.422166955512,
        energy=7967.202232644357,
        cpi=2.6368844333911023,
        epi=1.5934404465288714,
        power=0.6042890717359446,
        edp=105042957.7246937,
    ),
}


def _spec(benchmark: str, mode: str) -> SimulationSpec:
    return SimulationSpec(
        benchmark=benchmark,
        mcd=(mode == "mcd"),
        controller=(
            AttackDecayController(SCALED_OPERATING_POINT) if mode == "mcd" else None
        ),
        scale=SCALE,
        seed=SEED,
    )


@pytest.mark.parametrize("bench_name,mode", sorted(GOLDEN))
def test_summary_matches_golden(bench_name: str, mode: str):
    actual = summarize(run_spec(_spec(bench_name, mode)))
    expected = GOLDEN[(bench_name, mode)]
    assert actual == expected, (
        f"{bench_name}/{mode} drifted:\n  expected {expected}\n  actual   {actual}\n"
        "If this change is intentional, re-record the goldens "
        "(see this file's docstring) in the same commit."
    )


def _closed_loop_spec(benchmark: str, literal: bool) -> SimulationSpec:
    return SimulationSpec(
        benchmark=benchmark,
        mcd=True,
        controller=AttackDecayController(
            SCALED_OPERATING_POINT, literal_listing=literal
        ),
        scale=SCALE,
        seed=3,
    )


@pytest.mark.parametrize("bench_name,literal", sorted(GOLDEN_CLOSED_LOOP))
def test_closed_loop_summary_matches_golden(bench_name: str, literal: bool):
    actual = summarize(run_spec(_closed_loop_spec(bench_name, literal)))
    expected = GOLDEN_CLOSED_LOOP[(bench_name, literal)]
    assert actual == expected, (
        f"{bench_name}/literal_listing={literal} drifted:\n"
        f"  expected {expected}\n  actual   {actual}\n"
        "If this change is intentional, re-record the goldens "
        "(see this file's docstring) in the same commit."
    )


def test_closed_loop_goldens_cover_both_listing_variants():
    benchmarks = {b for b, _ in GOLDEN_CLOSED_LOOP}
    assert len(benchmarks) >= 3
    for benchmark in benchmarks:
        assert (benchmark, False) in GOLDEN_CLOSED_LOOP
        assert (benchmark, True) in GOLDEN_CLOSED_LOOP


def test_closed_loop_goldens_hold_on_python_path_spotcheck():
    """The closed-loop pins hold with the controller back in Python."""
    for benchmark, literal in (("adpcm", True), ("mcf", False)):
        spec = _closed_loop_spec(benchmark, literal)
        spec.path = "python"
        assert summarize(run_spec(spec)) == GOLDEN_CLOSED_LOOP[(benchmark, literal)]


def test_goldens_cover_both_modes_evenly():
    benchmarks = {b for b, _ in GOLDEN}
    assert len(benchmarks) == 6
    for benchmark in benchmarks:
        assert (benchmark, "sync") in GOLDEN
        assert (benchmark, "mcd") in GOLDEN


def test_generator_path_matches_goldens_spotcheck():
    """The pinned numbers hold on the reference path too (not just compiled)."""
    for benchmark, mode in (("adpcm", "mcd"), ("epic", "sync")):
        spec = _spec(benchmark, mode)
        spec.compiled = False
        assert summarize(run_spec(spec)) == GOLDEN[(benchmark, mode)]
