"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.config.algorithm import AttackDecayParams
from repro.config.mcd import MCDConfig
from repro.config.processor import ProcessorConfig


@pytest.fixture
def mcd_config() -> MCDConfig:
    """The paper's Table 1 configuration."""
    return MCDConfig()


@pytest.fixture
def processor_config() -> ProcessorConfig:
    """The paper's Table 4 configuration."""
    return ProcessorConfig()


@pytest.fixture
def paper_params() -> AttackDecayParams:
    """The Section 5 operating point."""
    return AttackDecayParams()
