"""Tests for the combining branch predictor and BTB."""

import pytest

from repro.config.processor import ProcessorConfig
from repro.uarch.branch_predictor import (
    BranchStats,
    BranchTargetBuffer,
    CombiningBranchPredictor,
    _counter_update,
)


class TestCounterUpdate:
    def test_saturates_high(self):
        assert _counter_update(3, True) == 3

    def test_saturates_low(self):
        assert _counter_update(0, False) == 0

    def test_moves_toward_taken(self):
        assert _counter_update(1, True) == 2

    def test_moves_toward_not_taken(self):
        assert _counter_update(2, False) == 1


class TestBTB:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(sets=16, ways=2)
        assert btb.lookup(0x1000) is None
        btb.update(0x1000, 0x2000)
        assert btb.lookup(0x1000) == 0x2000

    def test_lru_eviction(self):
        btb = BranchTargetBuffer(sets=1, ways=2)
        btb.update(0x10, 1)
        btb.update(0x20, 2)
        btb.update(0x30, 3)  # evicts 0x10 (LRU)
        assert btb.lookup(0x10) is None
        assert btb.lookup(0x20) == 2
        assert btb.lookup(0x30) == 3

    def test_lookup_refreshes_lru(self):
        btb = BranchTargetBuffer(sets=1, ways=2)
        btb.update(0x10, 1)
        btb.update(0x20, 2)
        btb.lookup(0x10)  # refresh
        btb.update(0x30, 3)  # now evicts 0x20
        assert btb.lookup(0x10) == 1
        assert btb.lookup(0x20) is None

    def test_update_replaces_target(self):
        btb = BranchTargetBuffer(sets=4, ways=2)
        btb.update(0x40, 100)
        btb.update(0x40, 200)
        assert btb.lookup(0x40) == 200

    def test_word_indexing_uses_all_sets(self):
        # 4-byte-aligned pcs must not alias onto a quarter of the sets.
        btb = BranchTargetBuffer(sets=4, ways=1)
        for i in range(4):
            btb.update(i * 4, i)
        assert all(btb.lookup(i * 4) == i for i in range(4))

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(sets=0, ways=2)


class TestPredictor:
    def test_learns_always_taken(self, processor_config):
        p = CombiningBranchPredictor(processor_config)
        for _ in range(100):
            p.access(0x1000, taken=True, target=0x2000)
        assert p.stats.accuracy > 0.95

    def test_learns_always_not_taken(self, processor_config):
        p = CombiningBranchPredictor(processor_config)
        for _ in range(100):
            p.access(0x1000, taken=False, target=0)
        assert p.stats.accuracy > 0.95

    def test_learns_short_loop_pattern(self, processor_config):
        p = CombiningBranchPredictor(processor_config)
        for i in range(4000):
            taken = (i % 8) != 0
            p.access(0x1000, taken=taken, target=0x2000)
        # Two-level predictor captures a period-8 pattern in 10-bit history.
        late = BranchStats()
        for i in range(4000, 5000):
            taken = (i % 8) != 0
            if p.access(0x1000, taken=taken, target=0x2000):
                late.direction_mispredicts += 1
            late.lookups += 1
        assert 1.0 - late.direction_mispredicts / late.lookups > 0.9

    def test_btb_target_miss_counts_as_mispredict(self, processor_config):
        p = CombiningBranchPredictor(processor_config)
        # Train direction taken.
        for _ in range(10):
            p.access(0x1000, taken=True, target=0x2000)
        before = p.stats.mispredicts
        # Same direction, changed target: one BTB target miss.
        p.access(0x1000, taken=True, target=0x3000)
        assert p.stats.btb_target_misses >= 1
        assert p.stats.mispredicts > before

    def test_not_taken_never_checks_btb(self, processor_config):
        p = CombiningBranchPredictor(processor_config)
        for _ in range(50):
            p.access(0x1000, taken=False, target=0)
        assert p.stats.btb_target_misses == 0

    def test_distinct_sites_independent(self, processor_config):
        p = CombiningBranchPredictor(processor_config)
        for _ in range(200):
            p.access(0x1000, taken=True, target=0x2000)
            p.access(0x2004, taken=False, target=0)
        assert p.stats.accuracy > 0.9

    def test_stats_accuracy_empty(self):
        assert BranchStats().accuracy == 1.0
