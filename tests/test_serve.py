"""The ``repro serve`` daemon, end to end over real HTTP.

Every test runs a :class:`~repro.execution.serve.BackgroundServer` on
an ephemeral port and speaks to it with :mod:`http.client` — the same
wire a curl user sees: job submission, ordered NDJSON event streams,
result retrieval, dedup of concurrent identical jobs, and mid-flight
cancellation that leaves ``/dev/shm`` clean.
"""

from __future__ import annotations

import json
import threading
import time
from http.client import HTTPConnection
from pathlib import Path

import pytest

from repro.execution.jobs import JobManager
from repro.execution.serve import BackgroundServer

SCALE = 0.02

MATRIX_BODY = {
    "benchmarks": ["adpcm", "gsm"],
    "configurations": ["sync", "mcd_base"],
    "seeds": [1],
    "scale": SCALE,
    "backend": "serial",
    "label": "http-test",
}


def request(server, method, path, body=None, timeout=120):
    """One HTTP round-trip; returns (status, parsed JSON or NDJSON list)."""
    conn = HTTPConnection(server.host, server.port, timeout=timeout)
    try:
        payload = json.dumps(body) if body is not None else None
        conn.request(
            method, path, body=payload,
            headers={"Content-Type": "application/json"} if payload else {},
        )
        response = conn.getresponse()
        raw = response.read().decode()
        if response.getheader("Content-Type", "").startswith(
            "application/x-ndjson"
        ):
            return response.status, [
                json.loads(line) for line in raw.splitlines() if line
            ]
        return response.status, json.loads(raw) if raw else None
    finally:
        conn.close()


def submit(server, body=MATRIX_BODY):
    status, payload = request(server, "POST", "/jobs", body=body)
    assert status == 201, payload
    return payload["id"]


def _shm_segments() -> set[str]:
    shm = Path("/dev/shm")
    if not shm.is_dir():
        return set()
    return {p.name for p in shm.glob("psm_*")}


@pytest.fixture
def server(tmp_path):
    with BackgroundServer(JobManager(cache_dir=tmp_path / "cache")) as bg:
        yield bg


class TestServeBasics:
    def test_healthz(self, server):
        from repro.version import __version__

        status, payload = request(server, "GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["version"] == __version__
        assert payload["jobs"] == 0

    def test_submit_stream_and_results(self, server):
        job_id = submit(server)
        status, events = request(server, "GET", f"/jobs/{job_id}/events")
        assert status == 200
        kinds = [e["event"] for e in events]
        assert kinds[0] == "job_submitted"
        assert kinds[-1] == "job_finished"
        assert kinds.count("cell_finished") == 4
        # Per cell, started precedes finished in the streamed order.
        started = {}
        for position, event in enumerate(events):
            if event["event"] == "cell_started":
                started.setdefault(event["cell"], position)
        for position, event in enumerate(events):
            if event["event"] == "cell_finished":
                assert started[event["cell"]] < position
        final = events[-1]
        assert final["succeeded"] == 4 and final["failed"] == 0

        status, payload = request(server, "GET", f"/jobs/{job_id}/results")
        assert status == 200
        assert len(payload["results"]["outcomes"]) == 4

        status, payload = request(server, "GET", f"/jobs/{job_id}")
        assert status == 200
        assert payload["state"] == "finished" and payload["done"] == 4

        status, payload = request(server, "GET", "/jobs")
        assert status == 200
        assert [j["id"] for j in payload["jobs"]] == [job_id]

    def test_event_stream_offset_resumes_mid_stream(self, server):
        job_id = submit(server)
        status, full = request(server, "GET", f"/jobs/{job_id}/events")
        assert status == 200
        status, tail = request(
            server, "GET", f"/jobs/{job_id}/events?offset=3"
        )
        assert status == 200
        assert tail == full[3:]

    def test_campaign_toml_body(self, server):
        toml_text = (
            '[campaign]\nname = "fromtoml"\n'
            "[matrix]\n"
            'benchmarks = ["adpcm"]\n'
            'configurations = ["sync", "mcd_base"]\n'
            "scale = 0.02\n"
            "[execution]\n"
            'backend = "serial"\n'
        )
        status, payload = request(
            server, "POST", "/jobs", body={"campaign": toml_text}
        )
        assert status == 201
        assert payload["label"] == "fromtoml"
        assert payload["total"] == 2
        status, events = request(
            server, "GET", f"/jobs/{payload['id']}/events"
        )
        assert events[-1]["event"] == "job_finished"
        assert events[-1]["succeeded"] == 2


class TestServeErrors:
    def test_unknown_routes_and_jobs(self, server):
        assert request(server, "GET", "/nonesuch")[0] == 404
        assert request(server, "GET", "/jobs/job-999")[0] == 404
        assert request(server, "GET", "/jobs/job-999/events")[0] == 404
        assert request(server, "PUT", "/jobs")[0] == 405

    def test_bad_bodies(self, server):
        assert request(server, "POST", "/jobs")[0] == 400  # no body
        status, payload = request(server, "POST", "/jobs", body={"seeds": [1]})
        assert status == 400
        assert "benchmarks" in payload["error"]
        status, payload = request(
            server, "POST", "/jobs", body={"campaign": "[unclosed"}
        )
        assert status == 400
        assert "TOML" in payload["error"]
        status, payload = request(
            server,
            "POST",
            "/jobs",
            body={**MATRIX_BODY, "backend": "bogus"},
        )
        assert status == 400
        assert "backend" in payload["error"]

    def test_results_conflict_while_running(self, server):
        from repro.experiments import CONFIGURATIONS, register_configuration

        gate = threading.Event()

        @register_configuration("gated_http")
        def gated(ctx, benchmark, scale, seed):
            """Sync run held behind the test's gate."""
            gate.wait(30)
            factory = CONFIGURATIONS.get("sync")
            return factory(ctx, benchmark, scale=scale, seed=seed)

        try:
            job_id = submit(
                server,
                body={
                    "benchmarks": ["adpcm"],
                    "configurations": ["gated_http"],
                    "scale": SCALE,
                    "backend": "serial",
                },
            )
            status, payload = request(server, "GET", f"/jobs/{job_id}/results")
            assert status == 409
            assert "no results" in payload["error"]
            gate.set()
            request(server, "GET", f"/jobs/{job_id}/events")
            status, _ = request(server, "GET", f"/jobs/{job_id}/results")
            assert status == 200
        finally:
            gate.set()
            CONFIGURATIONS.unregister("gated_http")


class TestServeDedup:
    def test_identical_concurrent_jobs_execute_once(self, server):
        from repro.experiments import CONFIGURATIONS, register_configuration

        gate = threading.Event()

        @register_configuration("gated_dedup")
        def gated(ctx, benchmark, scale, seed):
            """Sync run held behind the gate so both jobs overlap."""
            gate.wait(30)
            factory = CONFIGURATIONS.get("sync")
            return factory(ctx, benchmark, scale=scale, seed=seed)

        body = {
            "benchmarks": ["adpcm", "gsm"],
            "configurations": ["gated_dedup"],
            "scale": SCALE,
            "backend": "thread",
            "workers": 2,
            "label": "twin",
        }
        try:
            first = submit(server, body)
            second = submit(server, body)
            assert first != second
            time.sleep(0.2)  # let both jobs reach the gate
            gate.set()
            _, events_a = request(server, "GET", f"/jobs/{first}/events")
            _, events_b = request(server, "GET", f"/jobs/{second}/events")
            assert events_a[-1]["event"] == "job_finished"
            assert events_b[-1]["event"] == "job_finished"
            _, first_results = request(server, "GET", f"/jobs/{first}/results")
            _, second_results = request(server, "GET", f"/jobs/{second}/results")
            assert first_results["results"] == second_results["results"]
            # 2 unique cells, 4 requests: the daemon executed each once.
            _, health = request(server, "GET", "/healthz")
            assert health["dedup_builds"] == 2
            assert health["dedup_hits"] == 2
        finally:
            gate.set()
            CONFIGURATIONS.unregister("gated_dedup")


class TestServeCancel:
    # Forking pool workers from the daemon's threaded process trips the
    # 3.12 multi-threaded-fork DeprecationWarning; irrelevant here.
    @pytest.mark.filterwarnings("ignore::DeprecationWarning")
    def test_cancel_mid_flight_frees_shared_memory(self, server):
        from repro.experiments import CONFIGURATIONS, register_configuration

        @register_configuration("sleepy_http")
        def sleepy(ctx, benchmark, scale, seed):
            """Sync run slowed enough to cancel mid-matrix (fork-safe)."""
            time.sleep(0.3)
            factory = CONFIGURATIONS.get("sync")
            return factory(ctx, benchmark, scale=scale, seed=seed)

        before = _shm_segments()
        try:
            job_id = submit(
                server,
                body={
                    "benchmarks": ["adpcm", "gsm", "phase_thrash"],
                    "configurations": ["sleepy_http"],
                    "seeds": [1, 2],
                    "scale": SCALE,
                    "backend": "process",
                    "workers": 2,
                    "batch": 1,
                    "label": "doomed",
                },
            )
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                _, payload = request(server, "GET", f"/jobs/{job_id}")
                if payload["done"] >= 1 or payload["state"] != "running":
                    break
                time.sleep(0.05)
            assert payload["state"] == "running", payload
            status, payload = request(server, "DELETE", f"/jobs/{job_id}")
            assert status == 200 and payload["cancelled"] is True

            _, events = request(server, "GET", f"/jobs/{job_id}/events")
            assert events[-1]["event"] == "job_cancelled"
            assert 1 <= events[-1]["done"] < 6
            _, payload = request(server, "GET", f"/jobs/{job_id}")
            assert payload["state"] == "cancelled"
            status, _ = request(server, "GET", f"/jobs/{job_id}/results")
            assert status == 409
            assert _shm_segments() <= before, "leaked /dev/shm segments"
        finally:
            CONFIGURATIONS.unregister("sleepy_http")
