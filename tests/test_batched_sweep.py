"""Batched native sweeps + shared-memory traces: the differential harness.

The batch entry point (``_hotpath.run_batch``) and the shared-memory
trace layer only earn their keep if they are invisible in the results:
a batched sweep must be byte-identical to the per-run paths on every
backend, at every batch size, for every controller variant — and a
sweep must never leak a ``/dev/shm`` segment, however it ends.  This
module locks both properties down:

* an engine-level differential fuzz — a seeded matrix of specs
  (catalog + derived stressor benchmarks, both ``literal_listing``
  controller variants, mixed seeds) executed through
  :func:`~repro.sim.engine.run_specs_batch` at batch sizes {1, 3,
  matrix} and compared summary-for-summary against per-run
  :func:`~repro.sim.engine.run_spec`, plus the batched-Python and
  generator reference paths (>= 30 compared cases in total);
* an orchestrator-level differential: serial / thread / process
  backends x batch sizes {1, 3, matrix, > matrix}, fork and spawn,
  all equal to the serial per-run reference, with per-scenario error
  isolation inside a batch cell;
* shared-memory lifecycle: segment round-trip, read-only views,
  idempotent unlink, attach-failure fallback (logged, non-fatal),
  owner-side cleanup after normal sweeps and after a worker raises
  mid-batch — asserted against the OS segment namespace (``psutil``
  when available, else a ``/dev/shm`` scan);
* unit coverage for ``parse_batch`` / ``default_batch``,
  ``Orchestrator._resolve_batch`` / ``_batch_cells`` edge cases
  (serial with an explicit batch, batch > matrix, the 32-cell cap),
  and CLI exit code 2 on malformed ``--batch`` / ``REPRO_BATCH``.
"""

from __future__ import annotations

import dataclasses
import logging
import random
from pathlib import Path

import pytest

from repro.config.algorithm import AttackDecayParams
from repro.control.attack_decay import AttackDecayController
from repro.errors import ExperimentError
from repro.experiments import Orchestrator, Scenario, Suite
from repro.experiments.executor import default_batch, parse_batch
from repro.metrics.summary import summarize
from repro.sim.engine import (
    SimulationSpec,
    export_shared_trace,
    run_spec,
    run_specs_batch,
)
from repro.uarch import shared_trace
from repro.uarch.compiled_trace import _BASE_COLUMNS
from repro.workloads.catalog import get_benchmark

SCALE = 0.05
#: Legend-labelled configuration names select the controller variant:
#: the trailing ``[literal]`` runs the paper's listing verbatim.
_LEGEND = AttackDecayParams().legend()
CONFIG_PLAIN = f"attack_decay[{_LEGEND}]"
CONFIG_LITERAL = f"attack_decay[{_LEGEND}][literal]"


def _shm_segments() -> set[str] | None:
    """Live POSIX shared-memory segment names, or None when unknowable.

    ``psutil`` has no first-class shm API, but its presence confirms a
    POSIX host where ``/dev/shm`` is authoritative; without either
    signal (non-POSIX platforms) leak checks are skipped.
    """
    try:
        import psutil  # noqa: F401  - availability probe only
    except ImportError:
        pass
    root = Path("/dev/shm")
    if not root.is_dir():
        return None
    return {entry.name for entry in root.glob("psm_*")}


def _summary_dict(result) -> dict:
    """A run's full observable surface, as plain data."""
    return dataclasses.asdict(summarize(result))


def _spec(benchmark: str, *, seed: int, literal: bool, controller: bool = True,
          path: str = "auto", compiled: bool = True) -> SimulationSpec:
    """One closed-loop spec; controllers are built fresh per spec."""
    ctrl = (
        AttackDecayController(AttackDecayParams(), literal_listing=literal)
        if controller
        else None
    )
    return SimulationSpec(
        benchmark=benchmark,
        controller=ctrl,
        scale=SCALE,
        seed=seed,
        path=path,
        compiled=compiled,
    )


def _fuzz_matrix() -> list[dict]:
    """A seeded spec matrix: catalog + derived stressors, both
    ``literal_listing`` variants, mixed seeds and plain-MCD runs."""
    rng = random.Random(0x5EED)
    benchmarks = ["adpcm", "gsm", "phase_thrash", "adv_sawtooth"]
    matrix = []
    for index in range(10):
        matrix.append(
            {
                "benchmark": benchmarks[index % len(benchmarks)],
                "seed": rng.randint(1, 5),
                "literal": rng.random() < 0.5,
                "controller": index != 7,  # one uncontrolled MCD run
            }
        )
    # Guarantee both controller variants appear regardless of the draw.
    matrix[0]["literal"] = False
    matrix[1]["literal"] = True
    return matrix


# ---------------------------------------------------------------------------
# Engine-level differential fuzz
# ---------------------------------------------------------------------------


class TestBatchedEngineDifferential:
    """run_specs_batch == [run_spec(...)] at every batch size and path."""

    @pytest.fixture(scope="class")
    def reference(self):
        return [
            _summary_dict(run_spec(_spec(**case))) for case in _fuzz_matrix()
        ]

    def test_batch_sizes_match_per_run(self, reference):
        cases = _fuzz_matrix()
        compared = 0
        for batch in (1, 3, len(cases)):
            summaries = []
            for start in range(0, len(cases), batch):
                cell = [_spec(**case) for case in cases[start : start + batch]]
                summaries.extend(
                    _summary_dict(result) for result in run_specs_batch(cell)
                )
            assert summaries == reference, f"batch size {batch} diverged"
            compared += len(summaries)
        # The harness promises a >= 30-case differential; hold it to that.
        assert compared >= 30

    def test_python_and_generator_paths_match(self, reference):
        cases = _fuzz_matrix()
        for index in (0, 1, 7):  # plain, literal, uncontrolled
            python = _summary_dict(run_spec(_spec(**cases[index], path="python")))
            generator = _summary_dict(
                run_spec(_spec(**cases[index], path="generator", compiled=False))
            )
            assert python == reference[index]
            assert generator == reference[index]

    def test_non_batchable_specs_fall_back(self):
        # Generator-path specs cannot take the native batch; the vector
        # must silently run per-spec with identical results.
        cell = [
            _spec(benchmark="adpcm", seed=1, literal=False, path="generator",
                  compiled=False),
            _spec(benchmark="adpcm", seed=2, literal=False, path="generator",
                  compiled=False),
        ]
        expected = [
            _summary_dict(run_spec(_spec(benchmark="adpcm", seed=seed,
                                         literal=False, path="generator",
                                         compiled=False)))
            for seed in (1, 2)
        ]
        assert [_summary_dict(r) for r in run_specs_batch(cell)] == expected


# ---------------------------------------------------------------------------
# Orchestrator-level differential
# ---------------------------------------------------------------------------


class TestBatchedBackends:
    """Every backend x batch size reproduces the serial per-run sweep."""

    @pytest.fixture(scope="class")
    def suite(self):
        return Suite(
            benchmarks=["adpcm", "phase_thrash"],
            configurations=[CONFIG_PLAIN, CONFIG_LITERAL],
            seeds=[1, 2],
            scale=SCALE,
            name="batched-differential",
        )

    @pytest.fixture(scope="class")
    def serial_reference(self, suite, tmp_path_factory):
        cache_dir = tmp_path_factory.mktemp("serial-ref")
        results = Orchestrator(
            workers=1, backend="serial", batch=1,
            cache_dir=cache_dir, use_cache=False,
        ).run(suite)
        assert not results.errors, [o.error for o in results.errors]
        return results.to_dict()

    @pytest.mark.parametrize(
        "backend,workers,batch,start_method",
        [
            ("serial", 1, 3, None),
            ("serial", 1, 8, None),
            ("thread", 2, 3, None),
            ("thread", 2, 8, None),
            ("process", 2, 1, None),
            ("process", 2, 3, None),
            ("process", 2, 99, None),  # batch > matrix clamps, still one cell set
            ("process", 2, 8, "spawn"),
        ],
    )
    def test_backend_batch_matches_serial(
        self, suite, serial_reference, backend, workers, batch, start_method,
        tmp_path,
    ):
        results = Orchestrator(
            workers=workers, backend=backend, batch=batch,
            start_method=start_method, cache_dir=tmp_path, use_cache=False,
        ).run(suite)
        assert not results.errors, [o.error for o in results.errors]
        assert results.to_dict() == serial_reference

    def test_batch_cell_isolates_failures(self, suite, serial_reference, tmp_path):
        from repro.experiments import CONFIGURATIONS, register_configuration

        @register_configuration("batch_explode")
        def exploding(ctx, benchmark, scale, seed):
            """Test entry that always fails."""
            raise RuntimeError("injected batch failure")

        scenarios = list(suite.expand())
        poison = Scenario("adpcm", "batch_explode", scale=SCALE)
        try:
            results = Orchestrator(
                workers=2, backend="process", batch=3,
                cache_dir=tmp_path, use_cache=False,
            ).run([*scenarios, poison])
        finally:
            CONFIGURATIONS.unregister("batch_explode")
        assert len(results) == len(scenarios) + 1
        assert len(results.errors) == 1
        assert "injected batch failure" in results.errors[0].error
        healthy = results.to_dict()
        healthy["outcomes"] = healthy["outcomes"][:-1]
        reference = dict(serial_reference)
        assert healthy["outcomes"] == reference["outcomes"]


# ---------------------------------------------------------------------------
# Batch resolution and chunking
# ---------------------------------------------------------------------------


class TestBatchResolution:
    def test_parse_batch(self):
        assert parse_batch(None) is None
        assert parse_batch("auto") is None
        assert parse_batch(4) == 4
        assert parse_batch("4") == 4
        with pytest.raises(ExperimentError, match="malformed batch"):
            parse_batch("bogus")
        with pytest.raises(ExperimentError, match=">= 1"):
            parse_batch(0)
        with pytest.raises(ExperimentError, match="REPRO_BATCH"):
            parse_batch("-2", "REPRO_BATCH")

    def test_default_batch_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH", raising=False)
        assert default_batch() is None
        monkeypatch.setenv("REPRO_BATCH", "auto")
        assert default_batch() is None
        monkeypatch.setenv("REPRO_BATCH", "6")
        assert default_batch() == 6
        monkeypatch.setenv("REPRO_BATCH", "zero")
        with pytest.raises(ExperimentError, match="REPRO_BATCH"):
            default_batch()

    def test_resolve_batch_explicit_applies_everywhere(self):
        orch = Orchestrator(workers=1, batch=5)
        # A 1-worker orchestrator resolves to the serial backend, and
        # an explicit batch still applies there, clamped to the matrix.
        assert orch._resolve_backend(total=3) == "serial"
        assert orch._resolve_batch(3, "serial") == 3
        assert orch._resolve_batch(12, "serial") == 5
        assert orch._resolve_batch(0, "serial") == 1

    def test_resolve_batch_auto_per_backend(self):
        orch = Orchestrator(workers=4, batch="auto")
        assert orch._resolve_batch(12, "serial") == 1
        assert orch._resolve_batch(12, "thread") == 3
        assert orch._resolve_batch(12, "process") == 3
        assert orch._resolve_batch(2, "process") == 1
        # Huge matrices keep load-balancing granularity via the cap.
        assert orch._resolve_batch(100_000, "process") == 32

    def test_batch_cells_group_by_trace_identity(self):
        scenarios = [
            Scenario("adpcm", "sync", seed=1, scale=0.05),
            Scenario("gsm", "sync", seed=1, scale=0.05),
            Scenario("adpcm", "sync", seed=2, scale=0.05),
            Scenario("adpcm", "sync", seed=3, scale=0.1),
            Scenario("gsm", "sync", seed=2, scale=0.05),
            Scenario("adpcm", "sync", seed=4, scale=0.05),
        ]
        cells = Orchestrator._batch_cells(scenarios, 2)
        # Every index exactly once, matrix order within a cell.
        assert sorted(i for cell in cells for i in cell) == list(range(6))
        for cell in cells:
            assert len(cell) <= 2
            assert cell == sorted(cell)
            identities = {
                (scenarios[i].benchmark, scenarios[i].scale) for i in cell
            }
            assert len(identities) == 1, "cell mixes trace identities"
        # (adpcm, 0.05) has three members: two cells, one of them short.
        adpcm_cells = [
            cell for cell in cells
            if scenarios[cell[0]].benchmark == "adpcm"
            and scenarios[cell[0]].scale == 0.05
        ]
        assert [len(cell) for cell in adpcm_cells] == [2, 1]

    def test_cli_rejects_malformed_batch(self, monkeypatch):
        from repro.cli import main

        args = ["sweep", "--benchmarks", "adpcm", "--configurations", "sync",
                "--scale", "0.05", "--no-cache"]
        assert main([*args, "--batch", "bogus"]) == 2
        assert main([*args, "--batch", "0"]) == 2
        monkeypatch.setenv("REPRO_BATCH", "nope")
        assert main(args) == 2

    def test_orchestrator_rejects_malformed_batch(self):
        with pytest.raises(ExperimentError, match="malformed batch"):
            Orchestrator(batch="many")


# ---------------------------------------------------------------------------
# Shared-memory trace lifecycle
# ---------------------------------------------------------------------------


class TestSharedTraceSegments:
    def teardown_method(self):
        shared_trace.detach_all()
        shared_trace.unlink_exported()

    def test_round_trip_and_read_only_views(self):
        descriptor = export_shared_trace(get_benchmark("adpcm"), scale=SCALE)
        assert set(descriptor) == {"key", "name", "layout"}
        assert [entry[0] for entry in descriptor["layout"]] == list(_BASE_COLUMNS)

        owned = shared_trace.shared_columns(descriptor["key"])
        assert owned is not None
        segment = shared_trace.SharedTraceSegment.attach(descriptor)
        try:
            for owner_col, attached_col in zip(owned, segment.columns()):
                assert not attached_col.flags.writeable
                assert not owner_col.flags.writeable
                assert attached_col.tolist() == owner_col.tolist()
        finally:
            segment.close()

    def test_export_is_idempotent_and_unlink_forgets(self):
        first = export_shared_trace(get_benchmark("adpcm"), scale=SCALE)
        second = export_shared_trace(get_benchmark("adpcm"), scale=SCALE)
        assert first["name"] == second["name"]
        key = first["key"]
        assert shared_trace.shared_columns(key) is not None
        shared_trace.unlink_exported([key])
        assert shared_trace.shared_columns(key) is None
        # Idempotent: unlinking an already-gone key must not raise.
        shared_trace.unlink_exported([key])

    def test_attach_failure_is_logged_and_non_fatal(self, caplog):
        bogus = {"key": "no-such-trace", "name": "psm_repro_gone", "layout": []}
        with caplog.at_level(logging.WARNING, logger="repro.uarch.shared_trace"):
            attached = shared_trace.install_shared_traces([bogus])
        assert attached == 0
        assert shared_trace.shared_columns("no-such-trace") is None
        assert any(
            "falling back to local build" in record.message
            for record in caplog.records
        )

    def test_install_skips_keys_the_owner_already_serves(self):
        descriptor = export_shared_trace(get_benchmark("adpcm"), scale=SCALE)
        # A forked worker inherits the export; attaching again would
        # only duplicate the mapping.
        assert shared_trace.install_shared_traces([descriptor]) == 0

    def test_shared_columns_build_byte_identical_traces(self):
        from repro.sim.engine import compiled_trace_for

        bench = get_benchmark("adpcm")
        local = compiled_trace_for(bench, scale=SCALE)
        descriptor = export_shared_trace(bench, scale=SCALE)
        shared = shared_trace.shared_columns(descriptor["key"])
        assert shared is not None
        local_columns = (
            local.kinds, local.src1, local.src2, local.pcs,
            local.addrs, local.taken, local.targets,
        )
        for shared_col, local_col in zip(shared, local_columns):
            assert shared_col.tolist() == list(local_col)


class TestSweepLeavesNoSegments:
    @pytest.fixture(scope="class")
    def suite(self):
        return Suite(
            benchmarks=["adpcm", "gsm"],
            configurations=[CONFIG_PLAIN],
            seeds=[1, 2],
            scale=SCALE,
            name="leak-check",
        )

    @pytest.mark.parametrize("start_method", [None, "spawn"])
    def test_process_sweep_unlinks_segments(self, suite, start_method, tmp_path):
        before = _shm_segments()
        if before is None:
            pytest.skip("no observable POSIX shared-memory namespace")
        results = Orchestrator(
            workers=2, backend="process", batch=2,
            start_method=start_method, cache_dir=tmp_path, use_cache=False,
        ).run(suite)
        assert not results.errors, [o.error for o in results.errors]
        assert _shm_segments() == before

    def test_segments_unlinked_after_worker_failure(self, suite, tmp_path):
        from repro.experiments import CONFIGURATIONS, register_configuration

        before = _shm_segments()
        if before is None:
            pytest.skip("no observable POSIX shared-memory namespace")

        @register_configuration("leak_explode")
        def exploding(ctx, benchmark, scale, seed):
            """Test entry that always fails."""
            raise RuntimeError("injected leak-check failure")

        scenarios = [
            *suite.expand(),
            Scenario("adpcm", "leak_explode", scale=SCALE),
        ]
        try:
            results = Orchestrator(
                workers=2, backend="process", batch=2,
                cache_dir=tmp_path, use_cache=False,
            ).run(scenarios)
        finally:
            CONFIGURATIONS.unregister("leak_explode")
        assert len(results.errors) == 1
        assert _shm_segments() == before
