"""Tests for the Table 6 / Figure 4 drivers (tiny scale)."""

import pytest

from repro.config.algorithm import SCALED_OPERATING_POINT
from repro.sim.experiment import ExperimentRunner
from repro.sim.paper_results import PaperResults, compute_paper_results


@pytest.fixture(scope="module")
def results(tmp_path_factory) -> PaperResults:
    runner = ExperimentRunner(
        cache_dir=tmp_path_factory.mktemp("cache"), scale=0.08, seed=1
    )
    return compute_paper_results(
        runner,
        benchmarks=["adpcm", "gsm"],
        params=SCALED_OPERATING_POINT,
        include_globals=True,
    )


class TestPaperResults:
    def test_all_algorithms_present(self, results):
        assert set(results.vs_mcd) == {"attack_decay", "dynamic_1", "dynamic_5"}
        assert "mcd_base" in results.vs_sync

    def test_per_benchmark_coverage(self, results):
        for per_bench in results.vs_mcd.values():
            assert set(per_bench) == {"adpcm", "gsm"}

    def test_table6_has_six_rows(self, results):
        rows = results.table6_rows()
        assert len(rows) == 6
        labels = [r.algorithm for r in rows]
        assert labels[:3] == ["attack_decay", "dynamic_1", "dynamic_5"]
        assert all(l.startswith("Global") for l in labels[3:])

    def test_global_frequencies_in_range(self, results):
        for mhz in results.global_frequency.values():
            assert 250.0 <= mhz <= 1000.0

    def test_aggregates_are_finite(self, results):
        for algorithm in results.vs_mcd:
            agg = results.aggregate_vs_mcd(algorithm)
            assert -1.0 < agg.performance_degradation < 1.0
            assert -1.0 < agg.energy_savings < 1.0


class TestExperimentsWriter:
    def test_build_produces_markdown(self):
        from repro.reporting.experiments import build

        text = build()
        assert text.startswith("# EXPERIMENTS")
        assert "Table 6" in text
        assert "Figure 4" in text
