"""Tests for issue queues, ROB and register file."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.uarch.queues import IssueQueue, RegisterFile, ReorderBuffer


class TestIssueQueue:
    def test_capacity_enforced(self):
        q = IssueQueue("IIQ", 2)
        q.write("a")
        q.write("b")
        assert not q.has_space
        with pytest.raises(SimulationError):
            q.write("c")

    def test_occupancy_accumulation(self):
        q = IssueQueue("IIQ", 4)
        q.write("a")
        q.accumulate_occupancy()
        q.write("b")
        q.accumulate_occupancy()
        assert q.occupancy_accumulated == 3

    def test_occupancy_with_cycles_multiplier(self):
        q = IssueQueue("IIQ", 4)
        q.write("a")
        q.accumulate_occupancy(cycles=10)
        assert q.occupancy_accumulated == 10

    def test_take_occupancy_resets(self):
        q = IssueQueue("IIQ", 4)
        q.write("a")
        q.accumulate_occupancy()
        assert q.take_occupancy() == 1
        assert q.occupancy_accumulated == 0

    def test_writes_counted(self):
        q = IssueQueue("IIQ", 4)
        q.write("a")
        q.write("b")
        assert q.writes == 2

    def test_zero_capacity_rejected(self):
        with pytest.raises(SimulationError):
            IssueQueue("bad", 0)

    @given(st.integers(min_value=1, max_value=64), st.integers(min_value=0, max_value=64))
    @settings(max_examples=50)
    def test_occupancy_matches_length(self, capacity, writes):
        q = IssueQueue("q", capacity)
        wrote = 0
        for i in range(min(writes, capacity)):
            q.write(i)
            wrote += 1
        q.accumulate_occupancy()
        assert q.occupancy_accumulated == wrote
        assert len(q) == wrote


class TestReorderBuffer:
    def test_fifo_order(self):
        rob = ReorderBuffer(4)
        rob.dispatch(1)
        rob.dispatch(2)
        assert rob.head == 1
        assert rob.retire_head() == 1
        assert rob.head == 2

    def test_capacity(self):
        rob = ReorderBuffer(2)
        rob.dispatch(1)
        rob.dispatch(2)
        assert not rob.has_space
        with pytest.raises(SimulationError):
            rob.dispatch(3)

    def test_retire_frees_space(self):
        rob = ReorderBuffer(1)
        rob.dispatch(1)
        rob.retire_head()
        assert rob.has_space


class TestRegisterFile:
    def test_table4_rename_pool(self):
        rf = RegisterFile(72)
        assert rf.free == 40  # 72 - 32 architectural

    def test_allocate_release_cycle(self):
        rf = RegisterFile(33)
        assert rf.free == 1
        rf.allocate()
        assert not rf.has_free
        rf.release()
        assert rf.has_free

    def test_underflow_guard(self):
        rf = RegisterFile(33)
        rf.allocate()
        with pytest.raises(SimulationError):
            rf.allocate()

    def test_overflow_guard(self):
        rf = RegisterFile(33)
        with pytest.raises(SimulationError):
            rf.release()

    def test_too_small_rejected(self):
        with pytest.raises(SimulationError):
            RegisterFile(32)
