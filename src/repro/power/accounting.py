"""Per-domain energy meters and whole-chip accounting.

The simulator calls :meth:`EnergyAccounting.charge_cycle` once per
domain cycle with the instantaneous voltage and the per-access energy
already summed for that cycle; the accounting applies voltage scaling,
clock gating and the MCD clock-tree overhead, and accumulates per-domain
totals split into clock vs. structure energy (the split is what makes
the +10 % MCD clock overhead come out as ~+2.9 % total energy).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config.mcd import Domain, MCDConfig
from repro.power.gating import ClockGatingModel
from repro.power.wattch import AccessEnergies, DEFAULT_ENERGIES


@dataclass
class DomainEnergyMeter:
    """Accumulated energy and activity for one domain."""

    domain: Domain
    clock_energy: float = 0.0
    structure_energy: float = 0.0
    busy_cycles: int = 0
    idle_cycles: int = 0

    @property
    def total_energy(self) -> float:
        """Clock plus structure energy."""
        return self.clock_energy + self.structure_energy

    @property
    def cycles(self) -> int:
        """Total clocked cycles."""
        return self.busy_cycles + self.idle_cycles


class EnergyAccounting:
    """Whole-chip energy accounting across the five domains.

    Parameters
    ----------
    config:
        MCD configuration (supplies Vmax and the MCD clock overhead).
    energies:
        Per-access energy table.
    gating:
        Conditional clocking policy.
    mcd_clocking:
        True for MCD configurations (applies the clock-tree overhead);
        False for the fully synchronous baseline.
    """

    __slots__ = (
        "config",
        "energies",
        "gating",
        "mcd_clocking",
        "meters",
        "_vmax_sq_inv",
        "_clock_overhead",
        "_clock_cache",
        "_idle_cache",
        "_idle_residual",
    )

    def __init__(
        self,
        config: MCDConfig,
        energies: AccessEnergies = DEFAULT_ENERGIES,
        gating: ClockGatingModel | None = None,
        mcd_clocking: bool = True,
    ) -> None:
        self.config = config
        self.energies = energies
        self.gating = gating if gating is not None else ClockGatingModel()
        self.mcd_clocking = mcd_clocking
        self.meters = {domain: DomainEnergyMeter(domain) for domain in Domain}
        self._vmax_sq_inv = 1.0 / (config.max_voltage_v * config.max_voltage_v)
        self._clock_overhead = config.mcd_clock_energy_overhead if mcd_clocking else 1.0
        self._clock_cache = {
            domain: energies.clock_energy(domain) * self._clock_overhead
            for domain in Domain
        }
        self._idle_residual = self.gating.idle_residual
        # An idle cycle burns the gating residual of the clock tree
        # *plus* the imperfectly gated datapath (Wattch cc-style).
        self._idle_cache = {
            domain: self._idle_residual
            * (self._clock_cache[domain] + energies.idle_overhead(domain))
            for domain in Domain
        }

    def charge_cycle(
        self,
        domain: Domain,
        voltage_v: float,
        access_energy: float,
        busy: bool,
    ) -> float:
        """Charge one cycle of ``domain`` and return the energy charged.

        ``access_energy`` is the sum of per-event energies for work done
        this cycle (at Vmax); it is scaled by (V/Vmax)^2 along with the
        clock energy.
        """
        vscale = voltage_v * voltage_v * self._vmax_sq_inv
        meter = self.meters[domain]
        if busy:
            clock = self._clock_cache[domain]
            meter.busy_cycles += 1
        else:
            clock = self._idle_cache[domain]
            meter.idle_cycles += 1
        clock *= vscale
        structure = access_energy * vscale
        meter.clock_energy += clock
        meter.structure_energy += structure
        return clock + structure

    def charge_bulk_idle(self, domain: Domain, voltage_v: float, cycles: int) -> float:
        """Charge ``cycles`` consecutive idle cycles in one call.

        Used with :meth:`DomainClock.skip_idle_until` so that skipping
        a domain's idle stretch never skips its idle energy.
        """
        if cycles <= 0:
            return 0.0
        vscale = voltage_v * voltage_v * self._vmax_sq_inv
        energy = self._idle_cache[domain] * vscale * cycles
        meter = self.meters[domain]
        meter.clock_energy += energy
        meter.idle_cycles += cycles
        return energy

    def charge_memory_access(self) -> float:
        """Charge one off-chip access (external domain, fixed Vmax)."""
        energy = self.energies.memory_access
        self.meters[Domain.EXTERNAL].structure_energy += energy
        return energy

    # --- inlined-loop support ------------------------------------------------
    # The core's run loop accumulates energy in local variables for
    # speed and flushes through these methods; they expose exactly the
    # per-cycle constants charge_cycle would use.

    def clock_cycle_energy(self, domain: Domain) -> float:
        """Per-cycle clock energy for a *busy* cycle (at Vmax, with overhead)."""
        return self._clock_cache[domain]

    def idle_cycle_energy(self, domain: Domain) -> float:
        """Per-cycle energy for an *idle* cycle (at Vmax, gated)."""
        return self._idle_cache[domain]

    def add_raw(
        self,
        domain: Domain,
        clock_energy: float,
        structure_energy: float,
        busy_cycles: int,
        idle_cycles: int,
    ) -> None:
        """Flush externally accumulated (already voltage-scaled) energy."""
        meter = self.meters[domain]
        meter.clock_energy += clock_energy
        meter.structure_energy += structure_energy
        meter.busy_cycles += busy_cycles
        meter.idle_cycles += idle_cycles

    def add_memory_accesses(self, count: int) -> None:
        """Flush ``count`` off-chip accesses (external domain, fixed Vmax)."""
        if count > 0:
            self.meters[Domain.EXTERNAL].structure_energy += (
                count * self.energies.memory_access
            )

    # --- summaries ---------------------------------------------------------
    @property
    def total_energy(self) -> float:
        """Total chip energy so far."""
        return sum(m.total_energy for m in self.meters.values())

    @property
    def total_clock_energy(self) -> float:
        """Total clock-tree energy so far."""
        return sum(m.clock_energy for m in self.meters.values())

    def clock_energy_share(self) -> float:
        """Fraction of total energy spent in clock trees."""
        total = self.total_energy
        if total == 0:
            return 0.0
        return self.total_clock_energy / total

    def domain_shares(self) -> dict[Domain, float]:
        """Per-domain fraction of total energy."""
        total = self.total_energy
        if total == 0:
            return {domain: 0.0 for domain in Domain}
        return {
            domain: meter.total_energy / total for domain, meter in self.meters.items()
        }
