"""Conditional clocking (clock gating) policy.

All configurations in the paper assume circuits are clock gated when
not in use.  Gating is imperfect: the clock tree up to the gates keeps
switching, and latch clock loads are only partially disabled.  As in
Wattch's conditional-clocking styles, an idle domain cycle is charged a
fixed fraction of that domain's per-cycle clock energy.
"""

from __future__ import annotations

from repro.errors import ConfigError


class ClockGatingModel:
    """Charges idle cycles a residual fraction of clock energy.

    Parameters
    ----------
    idle_residual:
        Fraction of the per-cycle clock energy consumed when the domain
        performed no work that cycle (default 0.18: the global clock
        grid and enabled latch headers keep toggling).
    """

    __slots__ = ("idle_residual",)

    def __init__(self, idle_residual: float = 0.18) -> None:
        if not 0.0 <= idle_residual <= 1.0:
            raise ConfigError("idle_residual must be in [0, 1]")
        self.idle_residual = idle_residual

    def cycle_clock_energy(self, clock_energy: float, busy: bool) -> float:
        """Clock energy for one cycle, gated when idle."""
        if busy:
            return clock_energy
        return clock_energy * self.idle_residual
