"""Wattch-style architectural power/energy accounting.

Energy is charged per domain cycle: a clock-tree component (every
cycle), per-access structure energies (only when the structure is
exercised), and a gated-idle residual (conditional clocking leaves a
fraction of the clock load switching).  Every component scales with the
square of the instantaneous domain voltage, which is how dynamic
voltage scaling converts lower frequency into energy savings.

The MCD configurations carry a +10 % clock-tree energy overhead for the
per-domain PLLs/drivers/grids, which the paper reports as +2.9 % total
energy; the accounting reproduces that ratio because the clock tree is
calibrated to ~29 % of total power.
"""

from repro.power.accounting import DomainEnergyMeter, EnergyAccounting
from repro.power.gating import ClockGatingModel
from repro.power.wattch import AccessEnergies, DEFAULT_ENERGIES

__all__ = [
    "AccessEnergies",
    "ClockGatingModel",
    "DEFAULT_ENERGIES",
    "DomainEnergyMeter",
    "EnergyAccounting",
]
