"""Per-access energy table (Wattch substitute).

Wattch derives per-access capacitances from circuit-level models; we
use a fixed per-access energy table expressed in arbitrary energy units
("eu" — consistent across all configurations, so every ratio the paper
reports is meaningful).  The relative weights are calibrated so that a
mixed workload at full frequency/voltage lands near the domain power
breakdown the paper's accounting implies:

* front end ~25 %, integer ~25 %, floating point ~15 %, load/store ~35 %
* clock tree ~29 % of total chip power, so the MCD +10 % clock energy
  overhead costs ~2.9 % of total energy (Section 4).

See DESIGN.md substitution #3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.mcd import Domain
from repro.errors import ConfigError


@dataclass(frozen=True)
class AccessEnergies:
    """Per-event and per-cycle energies at maximum voltage (units: eu).

    ``clock_per_cycle`` is charged on every cycle of the domain's
    clock; the remaining entries are charged per architectural event.
    Voltage scaling (V/Vmax)^2 is applied by the accounting layer.
    """

    # Per-cycle clock tree energy, per domain.
    clock_front_end: float = 0.100
    clock_integer: float = 0.155
    clock_floating_point: float = 0.105
    clock_load_store: float = 0.290

    # Front end events (per instruction or per branch).
    fetch_per_instruction: float = 0.038
    l1i_access: float = 0.060
    branch_predictor_lookup: float = 0.040
    rename_dispatch_per_instruction: float = 0.055
    rob_write: float = 0.025
    retire_per_instruction: float = 0.020

    # Integer domain events.
    iq_write: float = 0.030
    iq_issue: float = 0.055
    int_alu_op: float = 0.175
    int_mult_op: float = 0.260
    int_regfile_access: float = 0.060

    # Floating-point domain events.
    fq_write: float = 0.030
    fq_issue: float = 0.055
    fp_alu_op: float = 0.300
    fp_mult_op: float = 0.380
    fp_regfile_access: float = 0.070

    # Load/store domain events.
    lsq_write: float = 0.055
    lsq_issue: float = 0.065
    l1d_access: float = 0.230
    l2_access: float = 0.520

    # External (main memory) domain: per off-chip access, charged at
    # fixed maximum voltage (the memory domain is not scalable).
    memory_access: float = 1.600

    # Idle datapath overhead per cycle, per domain: imperfectly gated
    # structure energy (Wattch's conditional-clocking styles charge an
    # idle unit ~10-15 % of its maximum power, datapath included — not
    # just the clock tree).  The gating residual is applied to
    # clock + this value on idle cycles.
    idle_front_end: float = 0.150
    idle_integer: float = 0.300
    idle_floating_point: float = 0.420
    idle_load_store: float = 0.450

    def __post_init__(self) -> None:
        for name, value in self.__dict__.items():
            if value < 0:
                raise ConfigError(f"energy {name} must be non-negative")

    def clock_energy(self, domain: Domain) -> float:
        """Per-cycle clock-tree energy for ``domain``."""
        return _CLOCK_BY_DOMAIN[domain](self)

    def idle_overhead(self, domain: Domain) -> float:
        """Imperfectly gated idle datapath energy per cycle."""
        return _IDLE_BY_DOMAIN[domain](self)


_IDLE_BY_DOMAIN = {
    Domain.FRONT_END: lambda e: e.idle_front_end,
    Domain.INTEGER: lambda e: e.idle_integer,
    Domain.FLOATING_POINT: lambda e: e.idle_floating_point,
    Domain.LOAD_STORE: lambda e: e.idle_load_store,
    Domain.EXTERNAL: lambda e: 0.0,
}

_CLOCK_BY_DOMAIN = {
    Domain.FRONT_END: lambda e: e.clock_front_end,
    Domain.INTEGER: lambda e: e.clock_integer,
    Domain.FLOATING_POINT: lambda e: e.clock_floating_point,
    Domain.LOAD_STORE: lambda e: e.clock_load_store,
    Domain.EXTERNAL: lambda e: 0.0,
}


#: Default calibration used by every experiment in this repository.
DEFAULT_ENERGIES = AccessEnergies()
