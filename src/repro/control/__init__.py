"""Frequency/voltage controllers.

* :class:`~repro.control.attack_decay.AttackDecayController` — the
  paper's on-line algorithm (Listing 1).
* :class:`~repro.control.offline.OfflineController` and
  :func:`~repro.control.offline.build_offline_schedule` — the
  profile-driven Dynamic-1 %/5 % baseline.
* :class:`~repro.control.global_dvfs.GlobalDVFSController` — global
  (fully synchronous) voltage/frequency scaling.
* :class:`~repro.control.fixed.FixedFrequencyController` — pins every
  domain (baseline MCD when pinned at maximum).
* :mod:`~repro.control.hardware_cost` — the Table 3 gate-count model.
"""

from repro.control.attack_decay import AttackDecayController, DomainControlState
from repro.control.base import FrequencyController, IntervalSnapshot
from repro.control.fixed import FixedFrequencyController
from repro.control.global_dvfs import GlobalDVFSController
from repro.control.hardware_cost import (
    HardwareCostModel,
    estimate_attack_decay_hardware,
)
from repro.control.offline import OfflineController, OfflineProfiler, build_offline_schedule

__all__ = [
    "AttackDecayController",
    "DomainControlState",
    "FixedFrequencyController",
    "FrequencyController",
    "GlobalDVFSController",
    "HardwareCostModel",
    "IntervalSnapshot",
    "OfflineController",
    "OfflineProfiler",
    "build_offline_schedule",
    "estimate_attack_decay_hardware",
]
