"""Controller interface between the core and frequency-control policies.

Once per control interval (a fixed number of retired instructions) the
core hands the controller an :class:`IntervalSnapshot` of exactly the
observables the paper's hardware provides — per-domain queue
utilization counters and the global IPC counter (Section 3.2) — plus
busy fractions used only by the off-line profiler.  The controller
returns per-domain frequency targets, which the core routes to the
domain regulators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Protocol, runtime_checkable

from repro.config.mcd import Domain, MCDConfig


@dataclass(frozen=True)
class IntervalSnapshot:
    """Observables for one control interval.

    Attributes
    ----------
    index:
        Interval number, starting at 0.
    instructions:
        Retired instructions in the interval (the interval length).
    time_ns:
        Simulated time at the end of the interval.
    duration_ns:
        Wall-clock length of the interval.
    ipc:
        Global instructions-per-cycle counter referenced to the
        front-end clock (the one global signal of Section 3.1).
    queue_utilization:
        Per controlled domain: queue occupancy accumulated each domain
        cycle over the interval, divided by the interval length in
        *instructions* — the paper's metric, which can exceed the queue
        size when the interval takes more cycles than instructions.
    busy_fraction:
        Per domain: fraction of the interval's wall time the domain was
        doing work.  Not available to real control hardware; used by
        the off-line profiler only.
    frequencies_mhz:
        Per domain instantaneous frequency at snapshot time.
    """

    index: int
    instructions: int
    time_ns: float
    duration_ns: float
    ipc: float
    queue_utilization: Mapping[Domain, float] = field(default_factory=dict)
    busy_fraction: Mapping[Domain, float] = field(default_factory=dict)
    frequencies_mhz: Mapping[Domain, float] = field(default_factory=dict)


@runtime_checkable
class FrequencyController(Protocol):
    """A policy that picks per-domain frequency targets each interval."""

    #: When True the core applies returned targets instantaneously
    #: (snap) instead of slewing — the off-line algorithm pre-requests
    #: changes so the slew completes at the interval boundary.
    instantaneous: bool

    def begin(self, config: MCDConfig, initial_mhz: Mapping[Domain, float]) -> None:
        """Reset controller state at the start of a run."""
        ...

    def on_interval(self, snapshot: IntervalSnapshot) -> Mapping[Domain, float]:
        """Return target frequencies (MHz) for the domains to change.

        Domains absent from the mapping keep their current target.
        """
        ...
