"""Off-line frequency scheduling (the Dynamic-1 % / Dynamic-5 % baseline).

The paper compares Attack/Decay against its earlier *off-line*
algorithm (Semeraro et al., HPCA 2002), which analyses a complete
profiling run, finds slack, and then — on re-execution with the same
input — sets each domain's frequency per interval with perfect
foresight, targeting a performance degradation cap (1 % or 5 % above
the baseline MCD processor).

We reproduce its interface and character with a profile-driven
schedule (DESIGN.md substitution #5):

1. :class:`OfflineProfiler` rides along a run at maximum frequencies
   and records, per control interval, each domain's *busy fraction*
   (work cycles over wall time) and queue utilization.
2. :func:`build_offline_schedule` converts the profile into
   per-interval domain frequencies: the minimum frequency that covers
   the observed work when the interval is allowed to dilate by the
   target, i.e. ``f = fmax * busy / (1 + target)``, floored, quantised,
   and latency-guarded (domains serving long-latency traffic keep
   headroom proportional to their queue pressure).
3. :class:`OfflineController` replays the schedule with instantaneous
   transitions — the paper notes the off-line algorithm pre-requests
   changes, so regulator slew is not a source of error for it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.config.mcd import CONTROLLED_DOMAINS, Domain, MCDConfig
from repro.control.base import IntervalSnapshot
from repro.dvfs.scale import FrequencyScale
from repro.errors import ControlError


@dataclass
class OfflineProfile:
    """Per-interval observations from a maximum-frequency run."""

    busy_fraction: list[dict[Domain, float]] = field(default_factory=list)
    queue_utilization: list[dict[Domain, float]] = field(default_factory=list)
    ipc: list[float] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.busy_fraction)


class OfflineProfiler:
    """A passive controller that records the profile and changes nothing."""

    instantaneous = True

    def __init__(self) -> None:
        self.profile = OfflineProfile()

    def begin(self, config: MCDConfig, initial_mhz: Mapping[Domain, float]) -> None:
        """Start a fresh profile."""
        self.profile = OfflineProfile()

    def on_interval(self, snapshot: IntervalSnapshot) -> dict[Domain, float]:
        """Record the interval; request no changes."""
        self.profile.busy_fraction.append(dict(snapshot.busy_fraction))
        self.profile.queue_utilization.append(dict(snapshot.queue_utilization))
        self.profile.ipc.append(snapshot.ipc)
        return {}


def build_offline_schedule(
    profile: OfflineProfile,
    config: MCDConfig,
    target_degradation_pct: float,
    domains: tuple[Domain, ...] = CONTROLLED_DOMAINS,
    latency_guard: float = 0.45,
    aggressiveness: float = 1.0,
) -> list[dict[Domain, float]]:
    """Turn a profile into a per-interval frequency schedule.

    Parameters
    ----------
    profile:
        Observations from a maximum-frequency run of the same workload.
    config:
        Electrical limits and the quantised scale.
    target_degradation_pct:
        The algorithm's dilation budget (1.0 for Dynamic-1 %, 5.0 for
        Dynamic-5 %).
    domains:
        Domains to schedule (the front end stays at maximum, matching
        the paper's off-line configuration for comparability).
    latency_guard:
        Weight of queue pressure in the frequency floor.  Busy fraction
        alone under-provisions latency-critical domains (a load/store
        domain waiting on L2 misses has idle ports but its clock still
        sets the miss latency); queue utilization is the observable
        proxy for that pressure.
    aggressiveness:
        Interpolation between maximum frequency (0.0) and the raw
        demand-based schedule (1.0); values above 1.0 push below the
        demand estimate.  The original off-line algorithm re-analyses
        the whole run until the dilation budget is met; the iterative
        search in :meth:`repro.sim.experiment.ExperimentRunner.dynamic`
        adjusts this knob from *measured* degradation, which plays the
        same role.

    Returns
    -------
    One ``{domain: MHz}`` mapping per interval.
    """
    if target_degradation_pct < 0:
        raise ControlError("target_degradation_pct must be >= 0")
    if aggressiveness < 0:
        raise ControlError("aggressiveness must be >= 0")
    scale = FrequencyScale(config)
    dilation = 1.0 + target_degradation_pct / 100.0
    fmax = config.max_frequency_mhz
    schedule: list[dict[Domain, float]] = []
    for i in range(len(profile)):
        busy = profile.busy_fraction[i]
        qutil = profile.queue_utilization[i]
        step: dict[Domain, float] = {}
        for domain in domains:
            work = busy.get(domain, 0.0)
            pressure = min(1.0, latency_guard * qutil.get(domain, 0.0))
            demand = max(work, pressure)
            mhz = fmax - aggressiveness * (fmax - fmax * demand / dilation)
            step[domain] = scale.quantize(mhz)
        schedule.append(step)
    return schedule


class OfflineController:
    """Replays a pre-computed schedule with perfect foresight."""

    instantaneous = True

    def __init__(self, schedule: list[dict[Domain, float]]) -> None:
        if not schedule:
            raise ControlError("schedule must not be empty")
        self.schedule = schedule
        self._position = 0

    def begin(self, config: MCDConfig, initial_mhz: Mapping[Domain, float]) -> None:
        """Rewind to the start of the schedule."""
        self._position = 0

    def on_interval(self, snapshot: IntervalSnapshot) -> dict[Domain, float]:
        """Apply the next scheduled step (hold the last step past the end)."""
        index = min(self._position, len(self.schedule) - 1)
        self._position += 1
        return dict(self.schedule[index])
