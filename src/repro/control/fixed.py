"""Fixed-frequency controller (baseline configurations).

Pins every domain at a given frequency and never changes it.  With all
domains at maximum this is the *baseline MCD processor* the paper
references results to; it is also used to hold arbitrary static
operating points in ablation studies.
"""

from __future__ import annotations

from typing import Mapping

from repro.config.mcd import Domain, MCDConfig
from repro.control.base import IntervalSnapshot


class FixedFrequencyController:
    """Holds per-domain frequencies constant for the whole run."""

    instantaneous = True

    def __init__(self, frequencies_mhz: Mapping[Domain, float] | None = None) -> None:
        self.frequencies_mhz = dict(frequencies_mhz or {})
        self._applied = False

    def begin(self, config: MCDConfig, initial_mhz: Mapping[Domain, float]) -> None:
        """Reset; targets are applied on the first interval."""
        self._applied = False

    def on_interval(self, snapshot: IntervalSnapshot) -> dict[Domain, float]:
        """Apply the pinned frequencies once; then do nothing."""
        if self._applied or not self.frequencies_mhz:
            return {}
        self._applied = True
        return dict(self.frequencies_mhz)
