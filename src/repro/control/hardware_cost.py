"""Gate-count model of the Attack/Decay monitoring hardware (Table 3).

Section 3.2 estimates the control hardware from Zimmermann's gate
equivalents: an accumulator at 11n gates (7n adder + 4n flip-flops),
comparators at 6n each, a serial partial-product multiplier at 5n
(1n multiplier + 4n flip-flops), and counters at 7n (3n half-adder +
4n flip-flops), for n-bit devices.  With 16-bit devices a domain needs
476 gates, the shared 14-bit interval counter 112, and a four-domain
MCD processor fewer than 2,500 gates in total.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

#: Gate equivalents per bit (Zimmermann): component -> gates/bit.
GATES_PER_BIT = {
    "accumulator": 11,  # 7n adder + 4n D flip-flop
    "comparator": 6,
    "multiplier": 5,  # 1n multiplier + 4n D flip-flop (serial)
    "counter": 7,  # 3n half-adder + 4n D flip-flop
}


@dataclass(frozen=True)
class HardwareComponent:
    """One row of Table 3."""

    name: str
    kind: str
    bits: int
    count: int = 1

    @property
    def gates(self) -> int:
        """Equivalent gates for all instances of this component."""
        return GATES_PER_BIT[self.kind] * self.bits * self.count


@dataclass(frozen=True)
class HardwareCostModel:
    """Attack/Decay monitoring/control hardware for one MCD processor.

    Parameters
    ----------
    device_bits:
        Width of the per-domain datapath devices (the paper assumes
        16-bit devices "in all cases" for Table 3).
    interval_counter_bits:
        The shared instruction counter framing the 10,000-instruction
        intervals (14 bits suffice).
    endstop_counter_bits:
        The per-domain counters detecting 10 consecutive endstop
        intervals (4 bits).
    controlled_domains:
        Domains carrying a controller instance (the paper provisions
        all four domains even though the front end runs fixed).
    """

    device_bits: int = 16
    interval_counter_bits: int = 14
    endstop_counter_bits: int = 4
    controlled_domains: int = 4

    def __post_init__(self) -> None:
        for name in ("device_bits", "interval_counter_bits", "endstop_counter_bits"):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be positive")
        if self.controlled_domains < 1:
            raise ConfigError("controlled_domains must be positive")

    def per_domain_components(self) -> list[HardwareComponent]:
        """The per-domain rows of Table 3."""
        n = self.device_bits
        return [
            HardwareComponent("Queue Utilization Counter (Accumulator)", "accumulator", n),
            HardwareComponent("Comparators (2 required)", "comparator", n, count=2),
            HardwareComponent("Multiplier (partial-product accumulation)", "multiplier", n),
            HardwareComponent("Endstop Counter", "counter", self.endstop_counter_bits),
        ]

    def shared_components(self) -> list[HardwareComponent]:
        """Hardware shared by all domains.

        The paper's Table 3 prices the 14-bit interval counter at 112
        gates — 7n with n = 16, the stated "16-bit devices in all
        cases" assumption — so the device width is used here too.
        """
        return [
            HardwareComponent("Interval Counter", "counter", self.device_bits),
        ]

    @property
    def gates_per_domain(self) -> int:
        """Gate count of one domain's controller (paper: 476)."""
        return sum(c.gates for c in self.per_domain_components())

    @property
    def shared_gates(self) -> int:
        """Gate count of the shared interval counter (paper: 112)."""
        return sum(c.gates for c in self.shared_components())

    @property
    def total_gates(self) -> int:
        """Whole-processor controller cost (paper: fewer than 2,500)."""
        return self.gates_per_domain * self.controlled_domains + self.shared_gates

    def table3_rows(self) -> list[tuple[str, str, int]]:
        """Render Table 3: (component, estimation formula, gates)."""
        n = self.device_bits
        rows = [
            (
                "Queue Utilization Counter (Accumulator)",
                "7n (Adder) + 4n (D Flip-Flop) = 11n",
                11 * n,
            ),
            ("Comparators (2 required)", "6n x 2 = 12n", 12 * n),
            (
                "Multiplier (partial-product accumulation)",
                "1n (Multiplier) + 4n (D Flip-Flop) = 5n",
                5 * n,
            ),
            (
                f"Interval Counter ({self.interval_counter_bits}-bit)",
                "3n (Half-adder) + 4n (D Flip-Flop) = 7n",
                7 * self.device_bits,
            ),
            (
                f"Endstop Counter ({self.endstop_counter_bits}-bit)",
                "3n (Half-adder) + 4n (D Flip-Flop) = 7n",
                7 * self.endstop_counter_bits,
            ),
        ]
        return rows


def estimate_attack_decay_hardware(
    device_bits: int = 16, domains: int = 4
) -> HardwareCostModel:
    """Convenience constructor matching the paper's assumptions."""
    return HardwareCostModel(device_bits=device_bits, controlled_domains=domains)
