"""Global dynamic voltage/frequency scaling baseline.

Commercial processors of the paper's era (Transmeta LongRun, Intel
XScale) scale the *whole chip* with one knob.  The paper's
``Global(...)`` rows run the fully synchronous processor at a single
reduced frequency/voltage chosen so its performance degradation matches
the MCD algorithm under comparison, and then report the (much smaller)
energy savings — a power-savings-to-performance-degradation ratio of
about 2, versus 4.6 for Attack/Decay.

:class:`GlobalDVFSController` applies one scaling factor to every
domain including the front end.  The search for the factor matching a
target degradation lives in :mod:`repro.sim.experiment`.
"""

from __future__ import annotations

from typing import Mapping

from repro.config.mcd import Domain, MCDConfig
from repro.control.base import IntervalSnapshot
from repro.errors import ControlError


class GlobalDVFSController:
    """Scales all four on-chip domains to one common frequency."""

    instantaneous = True

    def __init__(self, frequency_mhz: float) -> None:
        if frequency_mhz <= 0:
            raise ControlError("frequency_mhz must be positive")
        self.frequency_mhz = frequency_mhz
        self._applied = False

    def begin(self, config: MCDConfig, initial_mhz: Mapping[Domain, float]) -> None:
        """Clamp the requested frequency into the legal range."""
        self.frequency_mhz = min(
            config.max_frequency_mhz,
            max(config.min_frequency_mhz, self.frequency_mhz),
        )
        self._applied = False

    def on_interval(self, snapshot: IntervalSnapshot) -> dict[Domain, float]:
        """Apply the global frequency once, to every on-chip domain."""
        if self._applied:
            return {}
        self._applied = True
        return {
            Domain.FRONT_END: self.frequency_mhz,
            Domain.INTEGER: self.frequency_mhz,
            Domain.FLOATING_POINT: self.frequency_mhz,
            Domain.LOAD_STORE: self.frequency_mhz,
        }
