"""The Attack/Decay on-line frequency controller (paper Listing 1).

Each controlled domain runs an independent instance of the same state
machine; the only global input is the IPC performance counter.  Per
control interval:

* **attack** — if queue utilization changed by more than
  ``DeviationThreshold`` (relative to the previous interval), scale the
  clock period by ``1 ∓ ReactionChange`` (utilization up → frequency
  up, utilization down → frequency down);
* **decay** — otherwise stretch the period by ``1 + Decay``;
* frequency *decreases* (both attack-down and decay) are guarded by
  ``PerfDegThreshold`` on the interval-to-interval IPC change;
* after ``EndstopCount`` consecutive intervals pinned at a frequency
  extreme, an attack in the opposite direction is forced.

The printed listing's guard ``(PrevIPC / IPC) >= PerfDegThreshold`` is
a tautology for the paper's threshold range (see DESIGN.md
substitution #4); the default here implements the prose semantics
(decreases proceed only while recent IPC degradation is within the
threshold) and ``literal_listing=True`` reproduces the listing exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.config.algorithm import AttackDecayParams
from repro.config.mcd import CONTROLLED_DOMAINS, Domain, MCDConfig
from repro.control.base import IntervalSnapshot
from repro.errors import ControlError

#: Domain -> hot-loop index, matching the core's domain ordering.
_NATIVE_DOMAIN_INDEX = {
    Domain.FRONT_END: 0,
    Domain.INTEGER: 1,
    Domain.FLOATING_POINT: 2,
    Domain.LOAD_STORE: 3,
}


@dataclass
class DomainControlState:
    """Per-domain controller registers (the hardware of Section 3.2)."""

    frequency_mhz: float
    prev_queue_utilization: float = 0.0
    upper_endstop: int = 0
    lower_endstop: int = 0
    #: Diagnostics: how many intervals each mode fired.
    attacks_up: int = 0
    attacks_down: int = 0
    decays: int = 0
    holds: int = 0


class AttackDecayController:
    """On-line per-domain frequency control via queue utilization.

    Parameters
    ----------
    params:
        Operating point (Table 2 values).
    domains:
        Domains to control; defaults to the three queue-fed domains
        (the front end stays at full frequency, Section 3.1).
    literal_listing:
        Use the comparison exactly as printed in Listing 1 instead of
        the prose semantics.
    smoothing_alpha:
        EWMA weight applied to the observed IPC (the PerfDegThreshold
        guard signal) before the Listing-1 comparison.  The paper
        samples every 10,000 instructions; this repository's scaled
        workloads sample every few hundred, which makes the raw IPC
        counter ~20x noisier than the hardware the algorithm was
        designed around — noise that spuriously blocks the decrease
        paths about half the time.  An alpha of ~0.3 restores the
        paper's effective averaging horizon (DESIGN.md substitution
        #2).  Queue utilization is never smoothed: attack-mode reaction
        speed is the algorithm's point.  Set to 1.0 to disable
        smoothing (raw Listing-1 inputs).
    """

    instantaneous = False

    def __init__(
        self,
        params: AttackDecayParams | None = None,
        domains: tuple[Domain, ...] = CONTROLLED_DOMAINS,
        literal_listing: bool = False,
        smoothing_alpha: float = 0.3,
    ) -> None:
        self.params = params if params is not None else AttackDecayParams()
        if not domains:
            raise ControlError("controller needs at least one domain")
        for domain in domains:
            if not domain.is_controllable:
                raise ControlError(f"domain {domain} is not controllable")
        if not 0.0 < smoothing_alpha <= 1.0:
            raise ControlError("smoothing_alpha must be in (0, 1]")
        self.domains = domains
        self.literal_listing = literal_listing
        self.smoothing_alpha = smoothing_alpha
        self.prev_ipc = 0.0
        self._smoothed_ipc = 0.0
        self._smoothed_util: dict[Domain, float] = {}
        self.states: dict[Domain, DomainControlState] = {}
        self._config: MCDConfig | None = None

    # ------------------------------------------------------------------
    def begin(self, config: MCDConfig, initial_mhz: Mapping[Domain, float]) -> None:
        """Reset state for a new run."""
        self._config = config
        self.prev_ipc = 0.0
        self._smoothed_ipc = 0.0
        self._smoothed_util = {domain: 0.0 for domain in self.domains}
        self.states = {
            domain: DomainControlState(frequency_mhz=initial_mhz[domain])
            for domain in self.domains
        }

    def on_interval(self, snapshot: IntervalSnapshot) -> dict[Domain, float]:
        """Run Listing 1 for every controlled domain; return new targets."""
        if self._config is None:
            raise ControlError("begin() must be called before on_interval()")
        alpha = self.smoothing_alpha
        if snapshot.index == 0 or alpha >= 1.0:
            ipc = snapshot.ipc
        else:
            ipc = alpha * snapshot.ipc + (1.0 - alpha) * self._smoothed_ipc
        self._smoothed_ipc = ipc
        decrease_allowed = self._decrease_allowed(ipc)
        targets: dict[Domain, float] = {}
        for domain in self.domains:
            state = self.states[domain]
            # Utilization stays raw: the attack mode's reaction speed is
            # the algorithm's whole point (only the IPC guard signal is
            # smoothed to match the paper's 10k-instruction counter).
            utilization = snapshot.queue_utilization.get(domain, 0.0)
            new_mhz = self._step_domain(state, utilization, decrease_allowed)
            if new_mhz != state.frequency_mhz:
                state.frequency_mhz = new_mhz
                targets[domain] = new_mhz
            self._update_endstops(state)
            state.prev_queue_utilization = utilization
        self.prev_ipc = ipc
        return targets

    # ------------------------------------------------------------------
    def _decrease_allowed(self, ipc: float) -> bool:
        """The PerfDegThreshold guard (Listing 1 lines 19 & 25)."""
        if ipc <= 0.0:
            return False
        if self.prev_ipc <= 0.0:
            # First interval: no history yet; allow (matches a zeroed
            # PrevIPC register making the literal ratio 0 >= threshold
            # false — but with no history the prose guard has nothing
            # to protect, and the decay path dominates start-up).
            return True
        ratio = self.prev_ipc / ipc
        if self.literal_listing:
            return ratio >= self.params.perf_deg_threshold
        return ratio - 1.0 <= self.params.perf_deg_threshold

    def _step_domain(
        self,
        state: DomainControlState,
        utilization: float,
        decrease_allowed: bool,
    ) -> float:
        """One Listing-1 evaluation; returns the new commanded frequency."""
        params = self.params
        config = self._config
        scale = 1.0  # PeriodScaleFactor: >1 slows the domain down.

        if state.upper_endstop >= params.endstop_intervals:
            scale = 1.0 + params.reaction_change  # force decrease
            state.attacks_down += 1
        elif state.lower_endstop >= params.endstop_intervals:
            scale = 1.0 - params.reaction_change  # force increase
            state.attacks_up += 1
        else:
            prev = state.prev_queue_utilization
            deviation = prev * params.deviation_threshold
            if utilization - prev > deviation:
                scale = 1.0 - params.reaction_change
                state.attacks_up += 1
            elif prev - utilization > deviation and decrease_allowed:
                scale = 1.0 + params.reaction_change
                state.attacks_down += 1
            elif decrease_allowed and params.decay > 0.0:
                scale = 1.0 + params.decay
                state.decays += 1
            else:
                state.holds += 1

        new_mhz = state.frequency_mhz / scale
        # Range check (performed after the algorithm, per the paper).
        new_mhz = min(config.max_frequency_mhz, max(config.min_frequency_mhz, new_mhz))
        return new_mhz

    # ------------------------------------------------------------------
    # native hot-path marshalling
    # ------------------------------------------------------------------
    def native_spec(self) -> dict | None:
        """Flat numeric form of this controller for the C hot loop.

        The native core loop (:mod:`repro.uarch.native`) runs Listing 1
        inline — zero per-interval Python crossings — when the
        configured controller is a *stock* ``AttackDecayController``.
        Returns None whenever that inlining would be unsound: a
        subclass (overridden hooks would be skipped), an instance made
        instantaneous, or :meth:`begin` not yet called (the Python
        paths raise on the first interval; the fallback callback path
        preserves that).
        """
        if type(self) is not AttackDecayController:
            return None
        if self.instantaneous or self._config is None or not self.states:
            return None
        # Instance-level hook replacement (rare, but legal) must keep
        # the Python callback path, which actually calls the hooks.
        if "on_interval" in self.__dict__ or "begin" in self.__dict__:
            return None
        controlled = [0, 0, 0, 0]
        frequency_mhz = [0.0, 0.0, 0.0, 0.0]
        for domain in self.domains:
            index = _NATIVE_DOMAIN_INDEX[domain]
            controlled[index] = 1
            frequency_mhz[index] = self.states[domain].frequency_mhz
        return {
            **self.params.native_values(),
            "literal_listing": 1 if self.literal_listing else 0,
            "smoothing_alpha": self.smoothing_alpha,
            "controlled": controlled,
            "frequency_mhz": frequency_mhz,
            "prev_ipc": self.prev_ipc,
            "smoothed_ipc": self._smoothed_ipc,
        }

    def absorb_native_state(
        self,
        prev_ipc: float,
        smoothed_ipc: float,
        frequency_mhz,
        prev_queue_utilization,
        upper_endstop,
        lower_endstop,
        attacks_up,
        attacks_down,
        decays,
        holds,
    ) -> None:
        """Fold the native loop's controller registers back in.

        Per-domain sequences are indexed by the hot-loop domain order
        (front end, integer, floating point, load/store); the
        diagnostics counters are *deltas* accumulated by the C loop.
        After this, ``states``/``prev_ipc`` are exactly what the Python
        paths would have left behind.
        """
        self.prev_ipc = float(prev_ipc)
        self._smoothed_ipc = float(smoothed_ipc)
        for domain in self.domains:
            i = _NATIVE_DOMAIN_INDEX[domain]
            state = self.states[domain]
            state.frequency_mhz = float(frequency_mhz[i])
            state.prev_queue_utilization = float(prev_queue_utilization[i])
            state.upper_endstop = int(upper_endstop[i])
            state.lower_endstop = int(lower_endstop[i])
            state.attacks_up += int(attacks_up[i])
            state.attacks_down += int(attacks_down[i])
            state.decays += int(decays[i])
            state.holds += int(holds[i])

    def _update_endstops(self, state: DomainControlState) -> None:
        """Listing 1 lines 38-47."""
        config = self._config
        endstop = self.params.endstop_intervals
        at_min = state.frequency_mhz <= config.min_frequency_mhz + 1e-9
        at_max = state.frequency_mhz >= config.max_frequency_mhz - 1e-9
        if at_min and state.lower_endstop != endstop:
            state.lower_endstop += 1
        else:
            state.lower_endstop = 0
        if at_max and state.upper_endstop != endstop:
            state.upper_endstop += 1
        else:
            state.upper_endstop = 0
