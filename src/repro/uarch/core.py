"""The four-domain out-of-order core (cycle-approximate, trace-driven).

The simulator advances wall-clock time (nanoseconds) by always
processing the earliest pending clock edge among the *active* domains.
Per edge it performs that domain's work for one cycle:

* **front end** — retire from the ROB head (completions must be
  *visible* across the domain boundary), then fetch/rename/dispatch up
  to the decode width into the ROB and the issue queues, consulting the
  real L1 I-cache and branch predictor (a mispredicted branch stalls
  fetch until it resolves plus the mispredict penalty);
* **integer / floating-point / load-store** — scan the domain's issue
  queue oldest-first and issue ready entries to free functional units;
  loads probe the real L1D/L2 hierarchy.

Cross-domain transfers (dispatched queue entries, operand results,
completion signals) are usable at the first consumer edge at least a
*crossing threshold* after they were produced.  Under MCD the threshold
is the Sjogren-Myers synchronization window; in the fully synchronous
baseline, whose domain clocks share phase exactly, a half-period guard
band makes the rule degenerate to the classic next-edge pipeline stage.
The *inherent* MCD degradation (paper: ~1.3 %) is therefore an output
of the model — random clock phases plus jitter plus window conflicts —
rather than an input.

Same-domain dependencies are tracked in integer cycles (jitter cannot
change a latency expressed in cycles); cross-domain dependencies are
tracked in nanoseconds and pay the synchronization window.

Domains with an empty issue queue are *inactive*: their clocks are
bulk-advanced (and their gated idle energy bulk-charged) at dispatch
and at control-interval boundaries, preserving all observable behaviour
at a fraction of the cost.

The run loop is deliberately monolithic and hand-inlined: this is the
innermost loop of every experiment in the repository, executed hundreds
of millions of times across the benchmark harness.  The architectural
structures it manipulates (queues, ROB, predictor, caches, regulators)
keep their clean class interfaces for construction, inspection and
testing; only their per-cycle state transitions are inlined here.

The loop exists in two forms that produce byte-identical results:

* the **reference path** consumes a generator
  :class:`~repro.uarch.trace.TraceStream` one instruction at a time
  through a :class:`~repro.uarch.frontend.TraceCursor`;
* the **batched fast path** runs when the core is built over a
  :class:`~repro.uarch.compiled_trace.CompiledTrace` — the fetch stage
  walks precompiled columns by integer index, and the cache, branch
  predictor and clock-edge state transitions are fully inlined.  Every
  observable event (cache/predictor state, jitter stream consumption,
  energy accumulation order, controller snapshots) is sequenced exactly
  as in the reference path, which the equivalence property tests and
  ``benchmarks/bench_engine_hotpath.py`` both verify.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.clocks.domain_clock import DomainClock
from repro.clocks.jitter import GaussianJitter, NoJitter
from repro.config.algorithm import AttackDecayParams
from repro.config.mcd import Domain, MCDConfig
from repro.config.processor import ProcessorConfig
from repro.control.base import FrequencyController, IntervalSnapshot
from repro.dvfs.regulator import VoltageFrequencyRegulator
from repro.errors import SimulationError
from repro.power.accounting import EnergyAccounting
from repro.power.wattch import AccessEnergies, DEFAULT_ENERGIES
from repro.uarch.branch_predictor import CombiningBranchPredictor
from repro.uarch.caches import CacheHierarchy, MemoryLevel
from repro.uarch.compiled_trace import CompiledTrace
from repro.uarch.frontend import TraceCursor
from repro.uarch.functional_units import build_pools
from repro.uarch.isa import DEST_REGISTER_TYPE, ISSUE_DOMAIN_INDEX, InstructionClass
from repro.uarch.queues import IssueQueue, RegisterFile, ReorderBuffer
from repro.uarch.trace import TraceStream

_INF = float("inf")
_EPS_NS = 1e-6
_RING = 2048
_RING_MASK = _RING - 1
_MIN_STEP_NS = 1e-6  # DomainClock's minimum effective period

# Domain indices used throughout the hot loop.
_FE, _INT, _FP, _LS = 0, 1, 2, 3
_DOMAINS = (Domain.FRONT_END, Domain.INTEGER, Domain.FLOATING_POINT, Domain.LOAD_STORE)
_DOMAIN_INDEX = {dom: i for i, dom in enumerate(_DOMAINS)}

# Destination register type per instruction class (0 int, 1 fp, -1 none)
# and issue domain index per class, shared with the trace compiler.
_DEST_TYPE = dict(DEST_REGISTER_TYPE)
_ISSUE_DOMAIN = dict(ISSUE_DOMAIN_INDEX)


@dataclass(frozen=True)
class CoreOptions:
    """Run-level switches for the core.

    Parameters
    ----------
    mcd:
        True: independent domain clocks with jitter, synchronization
        windows and the MCD clock-energy overhead.  False: the fully
        synchronous baseline (single phase-aligned clock, no windows,
        no overhead).
    seed:
        Seed for clock phases and jitter streams.
    interval_instructions:
        Control interval length (retired instructions).
    record_interval_trace:
        Keep a per-interval log of queue utilizations and frequencies
        (Figures 2 and 3).
    initial_frequencies_mhz:
        Starting frequency per domain (defaults to maximum everywhere —
        the baseline MCD operating point).
    """

    mcd: bool = True
    seed: int = 1
    interval_instructions: int = AttackDecayParams().interval_instructions
    record_interval_trace: bool = False
    initial_frequencies_mhz: dict[Domain, float] | None = None


@dataclass
class IntervalRecord:
    """One control interval's observables (for figure benches).

    ``energy`` and ``memory_accesses`` are *cumulative* run totals at
    the interval's end edge (chip energy including off-chip accesses),
    sampled identically by all three execution paths; per-phase metric
    attribution (:mod:`repro.metrics.phases`) differences them.
    """

    index: int
    end_instruction: int
    end_time_ns: float
    ipc: float
    queue_utilization: dict[Domain, float]
    frequencies_mhz: dict[Domain, float]
    energy: float = 0.0
    memory_accesses: int = 0


@dataclass
class CoreResult:
    """Everything measured during one run."""

    instructions: int
    wall_time_ns: float
    energy: float
    clock_energy: float
    domain_energy: dict[Domain, float]
    domain_busy_cycles: dict[Domain, int]
    domain_cycles: dict[Domain, int]
    final_frequencies_mhz: dict[Domain, float]
    l1i_miss_rate: float
    l1d_miss_rate: float
    l2_miss_rate: float
    branch_accuracy: float
    branch_lookups: int
    memory_accesses: int
    dispatch_stall_cycles: int
    intervals: list[IntervalRecord] = field(default_factory=list)

    @property
    def cpi(self) -> float:
        """Cycles per instruction referenced to the 1 GHz front-end clock."""
        if not self.instructions:
            return 0.0
        return self.wall_time_ns / self.instructions

    @property
    def epi(self) -> float:
        """Energy per instruction (energy units / instruction)."""
        if not self.instructions:
            return 0.0
        return self.energy / self.instructions

    @property
    def power(self) -> float:
        """Average power (energy units per ns)."""
        if self.wall_time_ns <= 0:
            return 0.0
        return self.energy / self.wall_time_ns

    @property
    def energy_delay_product(self) -> float:
        """Energy x delay."""
        return self.energy * self.wall_time_ns


class MCDCore:
    """One run of the MCD pipeline over a trace.

    Parameters
    ----------
    processor:
        Architectural parameters (Table 4).
    mcd_config:
        Electrical parameters (Table 1).
    trace:
        The dynamic instruction stream — either a generator
        :class:`~repro.uarch.trace.TraceStream` (reference path) or a
        :class:`~repro.uarch.compiled_trace.CompiledTrace` (batched
        fast path; byte-identical results).
    controller:
        Optional frequency controller invoked every interval; None
        leaves all domains at their initial frequencies.
    options:
        Run-level switches.
    energies:
        Per-access energy calibration.
    """

    def __init__(
        self,
        processor: ProcessorConfig,
        mcd_config: MCDConfig,
        trace: TraceStream | CompiledTrace,
        controller: FrequencyController | None = None,
        options: CoreOptions = CoreOptions(),
        energies: AccessEnergies = DEFAULT_ENERGIES,
    ) -> None:
        self.processor = processor
        self.mcd_config = mcd_config
        self.controller = controller
        self.options = options
        self.energies = energies
        self.compiled = trace if isinstance(trace, CompiledTrace) else None
        self.cursor = None if self.compiled is not None else TraceCursor(trace)
        self.total_instructions = trace.total_instructions
        self.hierarchy = CacheHierarchy(processor)
        if (
            self.compiled is not None
            and self.compiled.line_shift != self.hierarchy.l1i.line_shift
        ):
            raise SimulationError(
                f"compiled trace line shift {self.compiled.line_shift} does not "
                f"match the cache line shift {self.hierarchy.l1i.line_shift}"
            )
        self.predictor = CombiningBranchPredictor(processor)
        self.accounting = EnergyAccounting(
            mcd_config, energies, mcd_clocking=options.mcd
        )
        self._build_clock_domains()
        self._build_pipeline()
        self._build_energy_constants()
        self._build_latency_tables()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _build_clock_domains(self) -> None:
        cfg = self.mcd_config
        opts = self.options
        fmax = cfg.max_frequency_mhz
        initial = opts.initial_frequencies_mhz or {}
        if opts.mcd:
            import random

            phase_rng = random.Random(opts.seed)
            self.window_ns = cfg.sync_window_ns
            jitters = [
                GaussianJitter(cfg.jitter_sigma_ns, seed=opts.seed * 7919 + i)
                for i in range(4)
            ]
            phases = [phase_rng.uniform(0.0, cfg.min_period_ns) for _ in range(4)]
        else:
            self.window_ns = 0.0
            jitters = [NoJitter() for _ in range(4)]
            phases = [0.0] * 4
        self.clocks: list[DomainClock] = []
        self.regulators: list[VoltageFrequencyRegulator] = []
        for i, domain in enumerate(_DOMAINS):
            mhz = initial.get(domain, fmax)
            self.clocks.append(DomainClock(domain.value, mhz, jitters[i], phases[i]))
            self.regulators.append(VoltageFrequencyRegulator(cfg, mhz))

    def _build_pipeline(self) -> None:
        proc = self.processor
        self.rob = ReorderBuffer(proc.reorder_buffer_size)
        self.int_regs = RegisterFile(proc.int_physical_registers)
        self.fp_regs = RegisterFile(proc.fp_physical_registers)
        self.queues = [
            None,
            IssueQueue("IIQ", proc.int_issue_queue_size),
            IssueQueue("FIQ", proc.fp_issue_queue_size),
            IssueQueue("LSQ", proc.load_store_queue_size),
        ]
        pools = build_pools(proc)
        self.pools = [
            None,
            pools["integer"],
            pools["floating_point"],
            pools["load_store"],
        ]
        # Completion tracking rings.
        self.fin_ns = [-_INF] * _RING
        self.fin_cycle = [0] * _RING
        self.fin_domain = [-1] * _RING
        self.dest_type_ring = [-1] * _RING

    def _build_energy_constants(self) -> None:
        e = self.energies
        self._e_dispatch = e.rename_dispatch_per_instruction + e.rob_write
        self._e_fetch = e.fetch_per_instruction
        self._e_retire = e.retire_per_instruction
        self._e_l1i = e.l1i_access
        self._e_bpred = e.branch_predictor_lookup
        # Per issue-domain: (queue write, queue issue+regfile, simple op, complex op)
        self._e_issue = [
            None,
            (e.iq_write, e.iq_issue + e.int_regfile_access, e.int_alu_op, e.int_mult_op),
            (e.fq_write, e.fq_issue + e.fp_regfile_access, e.fp_alu_op, e.fp_mult_op),
            (e.lsq_write, e.lsq_issue, e.l1d_access, e.l1d_access),
        ]
        self._e_l2 = e.l2_access

    def _build_latency_tables(self) -> None:
        proc = self.processor
        self._lat_cycles = [0] * 8
        self._lat_cycles[int(InstructionClass.INT_ALU)] = proc.int_alu_latency
        self._lat_cycles[int(InstructionClass.INT_MULT)] = proc.int_mult_latency
        self._lat_cycles[int(InstructionClass.FP_ALU)] = proc.fp_alu_latency
        self._lat_cycles[int(InstructionClass.FP_MULT)] = proc.fp_mult_latency
        self._lat_cycles[int(InstructionClass.LOAD)] = proc.l1_latency_cycles
        self._lat_cycles[int(InstructionClass.STORE)] = 1
        self._lat_cycles[int(InstructionClass.BRANCH)] = proc.int_alu_latency
        self._complex = [False] * 8
        self._complex[int(InstructionClass.INT_MULT)] = True
        self._complex[int(InstructionClass.FP_MULT)] = True

    # ------------------------------------------------------------------
    def warm_up(self, trace: TraceStream | CompiledTrace, limit: int) -> int:
        """Pre-touch predictor and caches with the first ``limit`` instructions.

        The paper's simulation windows sample the middle of long runs
        (e.g. instructions 1000 M-1100 M), where predictors and caches
        are warm.  This replays the head of ``trace`` through the
        predictor and cache models only (no pipeline timing), then
        resets their statistics so reported rates cover the measured
        region.  Returns the number of instructions replayed.

        A :class:`~repro.uarch.compiled_trace.CompiledTrace` takes the
        columnar fast path; any other stream is replayed block by
        block.  Both leave identical predictor/cache state behind.
        """
        if isinstance(trace, CompiledTrace):
            return self._warm_up_compiled(trace, limit)
        from repro.uarch.branch_predictor import BranchStats
        from repro.uarch.caches import CacheStats

        hierarchy = self.hierarchy
        predictor = self.predictor
        line_shift = hierarchy.l1i.line_shift
        last_line = -1
        kind_branch = int(InstructionClass.BRANCH)
        kind_load = int(InstructionClass.LOAD)
        kind_store = int(InstructionClass.STORE)
        count = 0
        for block in trace.blocks():
            kinds = block.kinds
            pcs = block.pcs
            addrs = block.addrs
            taken = block.taken
            targets = block.targets
            for i in range(len(kinds)):
                line = pcs[i] >> line_shift
                if line != last_line:
                    last_line = line
                    hierarchy.instruction_access(pcs[i])
                kind = kinds[i]
                if kind == kind_branch:
                    predictor.access(pcs[i], taken[i], targets[i])
                elif kind == kind_load or kind == kind_store:
                    hierarchy.data_access(addrs[i])
                count += 1
                if count >= limit:
                    break
            if count >= limit:
                break
        predictor.stats = BranchStats()
        hierarchy.l1i.stats = CacheStats()
        hierarchy.l1d.stats = CacheStats()
        hierarchy.l2.stats = CacheStats()
        return count

    def _warm_up_compiled(self, trace: CompiledTrace, limit: int) -> int:
        """Columnar warm-up: same state transitions, flat-array walk.

        Statistics need no tracking here — :meth:`warm_up` discards
        them after replay — so only the cache tag arrays, predictor
        tables and BTB are touched, with their update logic inlined.
        """
        from repro.uarch.branch_predictor import BranchStats
        from repro.uarch.caches import CacheStats

        hierarchy = self.hierarchy
        if trace.line_shift != hierarchy.l1i.line_shift:
            raise SimulationError(
                f"compiled trace line shift {trace.line_shift} does not "
                f"match the cache line shift {hierarchy.l1i.line_shift}"
            )
        kinds = trace.kinds
        pcs = trace.pcs
        addrs = trace.addrs
        taken = trace.taken
        targets = trace.targets
        newline = trace.newline
        shift = hierarchy.l1i.line_shift
        l1i_sets, l1i_nsets, l1i_ways = (
            hierarchy.l1i._sets, hierarchy.l1i.sets, hierarchy.l1i.ways,
        )
        l1d_sets, l1d_nsets, l1d_ways = (
            hierarchy.l1d._sets, hierarchy.l1d.sets, hierarchy.l1d.ways,
        )
        l2_sets, l2_nsets, l2_ways = (
            hierarchy.l2._sets, hierarchy.l2.sets, hierarchy.l2.ways,
        )
        predictor = self.predictor
        hist = predictor._history
        hist_len = len(hist)
        hist_mask = predictor._history_mask
        pl2 = predictor._l2
        pl2_len = len(pl2)
        bim = predictor._bimodal
        bim_len = len(bim)
        meta = predictor._meta
        meta_len = len(meta)
        btb_table = predictor.btb._table
        btb_nsets = predictor.btb.sets
        btb_ways = predictor.btb.ways
        kind_branch = int(InstructionClass.BRANCH)
        kind_load = int(InstructionClass.LOAD)
        kind_store = int(InstructionClass.STORE)

        end = limit if limit < trace.n else trace.n
        for i in range(end):
            if newline[i]:
                line = pcs[i] >> shift
                entry_set = l1i_sets[line % l1i_nsets]
                tag = line // l1i_nsets
                try:
                    entry_set.remove(tag)
                    entry_set.append(tag)
                except ValueError:
                    entry_set.append(tag)
                    if len(entry_set) > l1i_ways:
                        entry_set.pop(0)
                    entry_set = l2_sets[line % l2_nsets]
                    tag = line // l2_nsets
                    try:
                        entry_set.remove(tag)
                        entry_set.append(tag)
                    except ValueError:
                        entry_set.append(tag)
                        if len(entry_set) > l2_ways:
                            entry_set.pop(0)
            kind = kinds[i]
            if kind == kind_branch:
                pc = pcs[i]
                tk = taken[i]
                word = pc >> 2
                hist_i = word % hist_len
                history = hist[hist_i]
                pl2_i = (history ^ word) % pl2_len
                two_level = pl2[pl2_i] >= 2
                bim_i = word % bim_len
                bimodal = bim[bim_i] >= 2
                prediction = two_level if meta[word % meta_len] >= 2 else bimodal
                if prediction == tk and tk:
                    # BTB lookup (its LRU reordering is warm state too).
                    entry_set = btb_table[word % btb_nsets]
                    tag = word // btb_nsets
                    for j in range(len(entry_set)):
                        if entry_set[j][0] == tag:
                            entry_set.append(entry_set.pop(j))
                            break
                value = pl2[pl2_i]
                if tk:
                    pl2[pl2_i] = value + 1 if value < 3 else 3
                else:
                    pl2[pl2_i] = value - 1 if value > 0 else 0
                value = bim[bim_i]
                if tk:
                    bim[bim_i] = value + 1 if value < 3 else 3
                else:
                    bim[bim_i] = value - 1 if value > 0 else 0
                if two_level != bimodal:
                    meta_i = word % meta_len
                    value = meta[meta_i]
                    if two_level == tk:
                        meta[meta_i] = value + 1 if value < 3 else 3
                    else:
                        meta[meta_i] = value - 1 if value > 0 else 0
                hist[hist_i] = ((history << 1) | (1 if tk else 0)) & hist_mask
                if tk:
                    target = targets[i]
                    entry_set = btb_table[word % btb_nsets]
                    tag = word // btb_nsets
                    for j in range(len(entry_set)):
                        if entry_set[j][0] == tag:
                            entry_set.pop(j)
                            break
                    entry_set.append((tag, target))
                    if len(entry_set) > btb_ways:
                        entry_set.pop(0)
            elif kind == kind_load or kind == kind_store:
                line = addrs[i] >> shift
                entry_set = l1d_sets[line % l1d_nsets]
                tag = line // l1d_nsets
                try:
                    entry_set.remove(tag)
                    entry_set.append(tag)
                except ValueError:
                    entry_set.append(tag)
                    if len(entry_set) > l1d_ways:
                        entry_set.pop(0)
                    entry_set = l2_sets[line % l2_nsets]
                    tag = line // l2_nsets
                    try:
                        entry_set.remove(tag)
                        entry_set.append(tag)
                    except ValueError:
                        entry_set.append(tag)
                        if len(entry_set) > l2_ways:
                            entry_set.pop(0)
        predictor.stats = BranchStats()
        hierarchy.l1i.stats = CacheStats()
        hierarchy.l1d.stats = CacheStats()
        hierarchy.l2.stats = CacheStats()
        return end

    # ------------------------------------------------------------------
    # the run
    # ------------------------------------------------------------------
    def _operating_point_tables(self):
        """One-time per-run setup shared by every execution path.

        Returns ``(vscale_params, vscale_of, clock_e, idle_e,
        simple_w, complex_w)``: the linear voltage map's constants
        ``(vmin, fmin, vslope, vmax_sq_inv)``, the frequency →
        (V/Vmax)² scale function built on them, the per-domain
        busy/idle cycle energies, and the functional-unit widths.
        Centralised so the byte-identical run paths cannot drift.
        """
        cfg = self.mcd_config
        vmin = cfg.min_voltage_v
        fmin = cfg.min_frequency_mhz
        vslope = (cfg.max_voltage_v - vmin) / (cfg.max_frequency_mhz - fmin)
        vmax_sq_inv = 1.0 / (cfg.max_voltage_v * cfg.max_voltage_v)

        def vscale_of(freq_mhz: float) -> float:
            v = vmin + (freq_mhz - fmin) * vslope
            return v * v * vmax_sq_inv

        acct = self.accounting
        clock_e = [acct.clock_cycle_energy(dom) for dom in _DOMAINS]
        idle_e = [acct.idle_cycle_energy(dom) for dom in _DOMAINS]
        simple_w = [0] + [self.pools[i].simple_units for i in (1, 2, 3)]
        complex_w = [0] + [self.pools[i].complex_units for i in (1, 2, 3)]
        return (
            (vmin, fmin, vslope, vmax_sq_inv),
            vscale_of,
            clock_e,
            idle_e,
            simple_w,
            complex_w,
        )

    def run(self, path: str = "auto") -> CoreResult:
        """Simulate the whole trace and return the measurements.

        ``path`` selects the execution path explicitly: ``"auto"``
        (default) dispatches to the fastest available — the native
        extension when it loads (see :mod:`repro.uarch.native`), else
        the batched Python loop, for cores built over a compiled trace;
        the per-instruction generator path otherwise.  ``"native"``
        requires the C loop, ``"python"`` forces the batched Python
        loop, ``"generator"`` requires a generator-trace core.  All
        three produce byte-identical results.
        """
        if path not in ("auto", "native", "python", "generator"):
            raise SimulationError(f"unknown execution path {path!r}")
        if self.compiled is not None:
            if path == "generator":
                raise SimulationError(
                    "generator path requires a TraceStream core "
                    "(this core was built over a compiled trace)"
                )
            if path != "python" and self.compiled.arrays:
                from repro.uarch.native import load_hotpath

                hotpath = load_hotpath()
                if hotpath is not None:
                    return self._run_compiled_native(hotpath)
                if path == "native":
                    raise SimulationError(
                        "native path requested but the extension is unavailable"
                    )
            elif path == "native":
                raise SimulationError(
                    "native path requires compiled column arrays"
                )
            return self._run_compiled()
        if path in ("native", "python"):
            raise SimulationError(
                f"{path} path requires a core built over a compiled trace"
            )
        return self._run_generator()

    def _run_compiled_native(self, hotpath) -> CoreResult:
        """Run the C translation of the batched loop (one core, one call)."""
        args, finish = self.native_marshal()
        return finish(hotpath.run_compiled(args))

    def warm_state_snapshot(self):
        """Deep-copy the microarchitectural state :meth:`warm_up` builds.

        Warm-up replays the trace through the caches, the branch
        predictor tables and the BTB, then zeroes their stats — for a
        given (trace, geometry) the result is deterministic and
        seed-independent.  The snapshot captures exactly that state so
        a batch of runs over one trace can warm up once and clone the
        result instead of replaying the trace per run.
        """
        hierarchy = self.hierarchy
        predictor = self.predictor
        return (
            [list(s) for s in hierarchy.l1i._sets],
            [list(s) for s in hierarchy.l1d._sets],
            [list(s) for s in hierarchy.l2._sets],
            list(predictor._history),
            list(predictor._l2),
            list(predictor._bimodal),
            list(predictor._meta),
            [list(s) for s in predictor.btb._table],
        )

    def restore_warm_state(self, snapshot) -> None:
        """Install a :meth:`warm_state_snapshot` into this (fresh) core.

        Byte-for-byte equivalent to running :meth:`warm_up` over the
        same trace: the snapshot holds everything warm-up mutates, and
        a freshly-built core's stats are already the zeros warm-up
        resets them to.
        """
        l1i, l1d, l2, hist, pl2, bim, meta, btb = snapshot
        hierarchy = self.hierarchy
        predictor = self.predictor
        hierarchy.l1i._sets = [list(s) for s in l1i]
        hierarchy.l1d._sets = [list(s) for s in l1d]
        hierarchy.l2._sets = [list(s) for s in l2]
        predictor._history = list(hist)
        predictor._l2 = list(pl2)
        predictor._bimodal = list(bim)
        predictor._meta = list(meta)
        predictor.btb._table = [list(s) for s in btb]

    def native_marshal(self):
        """Marshal this core for the C loop; returns ``(args, finish)``.

        ``args`` is the argument dict :func:`_hotpath.run_compiled`
        consumes (also one slot of a :func:`_hotpath.run_batch` vector);
        ``finish(res)`` folds the C loop's result back into the owning
        Python objects exactly as :meth:`_run_compiled` would leave
        them and returns the :class:`CoreResult`.  Splitting the two
        lets the engine marshal N cores up front, run the whole batch
        under one GIL release, and fold each run back afterwards.

        A stock :class:`~repro.control.attack_decay.AttackDecayController`
        is marshalled into flat registers and run *inside* the C loop —
        the whole closed-loop run then makes zero per-interval Python
        crossings.  Custom controllers and ``record_interval_trace``
        consumers fall back to the per-interval ``rollover`` callback.
        """
        import numpy as np

        from repro.uarch.native import (
            fold_native_controller,
            native_controller_args,
        )

        if self.controller is not None:
            self.controller.begin(
                self.mcd_config,
                {d: self.regulators[i].current_mhz for i, d in enumerate(_DOMAINS)},
            )

        opts = self.options
        comp = self.compiled
        proc = self.processor
        controller = self.controller
        record_trace = opts.record_interval_trace
        interval_len = opts.interval_instructions
        regulators = self.regulators
        clocks = self.clocks
        hierarchy = self.hierarchy
        predictor = self.predictor
        acct = self.accounting

        reg_cur = np.array([r.current_mhz for r in regulators])
        reg_tgt = np.array([r.target_mhz for r in regulators])
        reg_last = np.array([r._last_time_ns for r in regulators])
        reg_slew = np.array([r._slew_mhz_per_ns for r in regulators])
        reg_slew_acc = np.zeros(4)
        cur_freq = reg_cur.copy()
        edge = np.array([c.next_edge_ns for c in clocks])
        cyc = np.array([c.cycle_index for c in clocks], dtype=np.int64)
        acc_clock = np.zeros(4)
        acc_struct = np.zeros(4)
        n_busy = np.zeros(4, dtype=np.int64)
        n_idle = np.zeros(4, dtype=np.int64)
        q_occ = np.zeros(4, dtype=np.int64)
        q_writes = np.zeros(4, dtype=np.int64)
        cache_stats = np.zeros(6, dtype=np.int64)
        bp_stats = np.zeros(3, dtype=np.int64)
        (
            (vmin, fmin, vslope, vmax_sq_inv),
            _,
            clock_e_l,
            idle_e_l,
            simple_w_l,
            complex_w_l,
        ) = self._operating_point_tables()
        clock_e = np.array(clock_e_l)
        idle_e = np.array(idle_e_l)
        simple_w = np.array(simple_w_l, dtype=np.int64)
        complex_w = np.array(complex_w_l, dtype=np.int64)
        e_issue = np.zeros(4)
        e_simple = np.zeros(4)
        e_complex = np.zeros(4)
        for d in (1, 2, 3):
            tup = self._e_issue[d]
            e_issue[d], e_simple[d], e_complex[d] = tup[1], tup[2], tup[3]
        q_cap = np.array(
            [0] + [self.queues[i].capacity for i in (1, 2, 3)], dtype=np.int64
        )
        lat_cycles = np.array(self._lat_cycles, dtype=np.int64)
        complex_op = np.array(
            [1 if x else 0 for x in self._complex], dtype=np.int64
        )

        jitters = [c.jitter for c in clocks]

        # A stock attack/decay controller runs natively inside the C
        # loop unless the caller needs per-interval records (which only
        # the Python callback can collect).
        native_ctrl_args = None
        if controller is not None and not record_trace:
            native_ctrl_args = native_controller_args(
                controller, self.mcd_config, regulators[0].scale
            )

        def refill(d: int):
            """Refill domain ``d``'s jitter stream; returns the buffer."""
            jit = jitters[d]
            jit._refill()
            return np.asarray(jit._buffer, dtype=np.float64)

        intervals: list[IntervalRecord] = []

        e_mem = self.energies.memory_access

        def rollover(
            index, retired, t, duration, occ1, occ2, occ3, b0, b1, b2, b3,
            mem_accesses,
        ):
            """Per-interval callback: snapshot, controller, recording."""
            qutil = {
                Domain.INTEGER: occ1 / interval_len,
                Domain.FLOATING_POINT: occ2 / interval_len,
                Domain.LOAD_STORE: occ3 / interval_len,
            }
            ipc = interval_len / (duration * float(cur_freq[0]) * 1e-3)
            freqs = {
                dom: float(cur_freq[i]) for i, dom in enumerate(_DOMAINS)
            }
            busy = (b0, b1, b2, b3)
            busy_frac = {}
            for i, dom in enumerate(_DOMAINS):
                period_i = 1e3 / float(cur_freq[i])
                busy_frac[dom] = min(1.0, busy[i] * period_i / duration)
            snapshot = IntervalSnapshot(
                index=index,
                instructions=interval_len,
                time_ns=t,
                duration_ns=duration,
                ipc=ipc,
                queue_utilization=qutil,
                busy_fraction=busy_frac,
                frequencies_mhz=freqs,
            )
            if controller is not None:
                for i in range(4):
                    reg = regulators[i]
                    reg.current_mhz = float(reg_cur[i])
                    reg.target_mhz = float(reg_tgt[i])
                targets = controller.on_interval(snapshot)
                if targets:
                    snap = getattr(controller, "instantaneous", False)
                    for dom, mhz in targets.items():
                        i = _DOMAIN_INDEX[dom]
                        if snap:
                            regulators[i].snap_to(mhz)
                        else:
                            regulators[i].request(mhz)
                    for i in range(4):
                        reg_cur[i] = regulators[i].current_mhz
                        reg_tgt[i] = regulators[i].target_mhz
            if record_trace:
                # The C loop accumulates energy in these shared buffers
                # in place, so they are live here; the sum below mirrors
                # the Python paths' accumulation order exactly.
                intervals.append(
                    IntervalRecord(
                        index=index,
                        end_instruction=retired,
                        end_time_ns=t,
                        ipc=ipc,
                        queue_utilization=qutil,
                        frequencies_mhz=freqs,
                        energy=(
                            float(acc_clock[0]) + float(acc_clock[1])
                            + float(acc_clock[2]) + float(acc_clock[3])
                            + float(acc_struct[0]) + float(acc_struct[1])
                            + float(acc_struct[2]) + float(acc_struct[3])
                            + mem_accesses * e_mem
                        ),
                        memory_accesses=mem_accesses,
                    )
                )
            return None

        args = {
            # columns
            "kinds": comp.arrays["kinds"],
            "pcs": comp.arrays["pcs"],
            "addrs": comp.arrays["addrs"],
            "taken": comp.arrays["taken"],
            "targets": comp.arrays["targets"],
            "dest": comp.arrays["dest"],
            "domain": comp.arrays["domain"],
            "p1": comp.arrays["p1"],
            "p2": comp.arrays["p2"],
            "newline": comp.arrays["newline"].copy(),
            # tables
            "lat_cycles": lat_cycles,
            "complex_op": complex_op,
            "simple_w": simple_w,
            "complex_w": complex_w,
            "q_cap": q_cap,
            "clock_e": clock_e,
            "idle_e": idle_e,
            "e_issue": e_issue,
            "e_simple": e_simple,
            "e_complex": e_complex,
            # in/out state
            "reg_cur": reg_cur,
            "reg_tgt": reg_tgt,
            "reg_last": reg_last,
            "reg_slew": reg_slew,
            "reg_slew_acc": reg_slew_acc,
            "edge": edge,
            "cyc": cyc,
            "cur_freq": cur_freq,
            "acc_clock": acc_clock,
            "acc_struct": acc_struct,
            "n_busy": n_busy,
            "n_idle": n_idle,
            "q_occ": q_occ,
            "q_writes": q_writes,
            "cache_stats": cache_stats,
            "bp_stats": bp_stats,
            # python-owned microarchitectural state
            "l1i_sets": hierarchy.l1i._sets,
            "l1d_sets": hierarchy.l1d._sets,
            "l2_sets": hierarchy.l2._sets,
            "hist": predictor._history,
            "pl2": predictor._l2,
            "bim": predictor._bimodal,
            "meta": predictor._meta,
            "btb": predictor.btb._table,
            "jbufs": [getattr(j, "_buffer", []) for j in jitters],
            "refill": refill,
            "rollover": rollover,
            # scalars
            "n": comp.n,
            "decode_width": proc.decode_width,
            "retire_width": proc.retire_width,
            "rob_cap": self.rob.capacity,
            "l1_cycles": proc.l1_latency_cycles,
            "l2_cycles": proc.l2_latency_cycles,
            "mispredict_penalty": proc.branch_mispredict_penalty,
            "interval_len": interval_len,
            "mcd": 1 if opts.mcd else 0,
            "int_free": self.int_regs.free,
            "fp_free": self.fp_regs.free,
            "kind_load": int(InstructionClass.LOAD),
            "kind_store": int(InstructionClass.STORE),
            "kind_branch": int(InstructionClass.BRANCH),
            "line_shift": hierarchy.l1i.line_shift,
            "l1i_nsets": hierarchy.l1i.sets,
            "l1i_ways": hierarchy.l1i.ways,
            "l1d_nsets": hierarchy.l1d.sets,
            "l1d_ways": hierarchy.l1d.ways,
            "l2_nsets": hierarchy.l2.sets,
            "l2_ways": hierarchy.l2.ways,
            "hist_mask": predictor._history_mask,
            "btb_nsets": predictor.btb.sets,
            "btb_ways": predictor.btb.ways,
            "call_rollover": (
                1
                if (
                    (controller is not None or record_trace)
                    and native_ctrl_args is None
                )
                else 0
            ),
            "native_ctrl": 0,
            "mem_latency": float(proc.memory_latency_ns),
            "window": self.window_ns,
            "vmin": vmin,
            "fmin": fmin,
            "vslope": vslope,
            "vmax_sq_inv": vmax_sq_inv,
            "e_l1i": self._e_l1i,
            "e_l2": self._e_l2,
            "e_bpred": self._e_bpred,
            "e_retire": self._e_retire,
            "e_disp_fetch": self._e_dispatch + self._e_fetch,
        }
        if native_ctrl_args is not None:
            args.update(native_ctrl_args)

        def finish(res: dict) -> CoreResult:
            """Fold one C-loop result back into the owning objects."""
            if res["error"]:
                raise SimulationError(
                    f"trace exhausted with {res['retired']}/{comp.n} retired"
                )

            # Fold the run's state back into the owning objects, exactly
            # as the Python paths leave them.
            self.int_regs.free = res["int_free"]
            self.fp_regs.free = res["fp_free"]
            for i in (1, 2, 3):
                queue = self.queues[i]
                queue.writes += int(q_writes[i])
                queue.occupancy_accumulated += int(q_occ[i])
            for i in range(4):
                clock = clocks[i]
                clock.next_edge_ns = float(edge[i])
                clock.cycle_index = int(cyc[i])
                clock.period_ns = 1e3 / float(cur_freq[i])
                reg = regulators[i]
                reg.current_mhz = float(reg_cur[i])
                reg.target_mhz = float(reg_tgt[i])
                reg._last_time_ns = float(reg_last[i])
                reg.stats.slewing_time_ns += float(reg_slew_acc[i])
            hierarchy.l1i.stats.accesses += int(cache_stats[0])
            hierarchy.l1i.stats.misses += int(cache_stats[1])
            hierarchy.l1d.stats.accesses += int(cache_stats[2])
            hierarchy.l1d.stats.misses += int(cache_stats[3])
            hierarchy.l2.stats.accesses += int(cache_stats[4])
            hierarchy.l2.stats.misses += int(cache_stats[5])
            bstats = predictor.stats
            bstats.lookups += int(bp_stats[0])
            bstats.direction_mispredicts += int(bp_stats[1])
            bstats.btb_target_misses += int(bp_stats[2])
            if native_ctrl_args is not None:
                fold_native_controller(controller, regulators, native_ctrl_args)
            for i, dom in enumerate(_DOMAINS):
                acct.add_raw(
                    dom,
                    float(acc_clock[i]),
                    float(acc_struct[i]),
                    int(n_busy[i]),
                    int(n_idle[i]),
                )
            acct.add_memory_accesses(res["memory_accesses"])
            return self._build_result(
                res["retired"],
                res["wall"],
                res["memory_accesses"],
                res["dispatch_stall_cycles"],
                intervals,
            )

        return args, finish

    def _run_generator(self) -> CoreResult:
        """Reference path: per-instruction cursor over a generator trace."""
        if self.controller is not None:
            self.controller.begin(
                self.mcd_config,
                {d: self.regulators[i].current_mhz for i, d in enumerate(_DOMAINS)},
            )

        opts = self.options
        window = self.window_ns
        cursor = self.cursor
        total = cursor.total_instructions
        clocks = self.clocks
        regulators = self.regulators
        queues = self.queues
        rob = self.rob
        fin_ns = self.fin_ns
        fin_cycle = self.fin_cycle
        fin_domain = self.fin_domain
        dest_ring = self.dest_type_ring
        lat_cycles = self._lat_cycles
        complex_op = self._complex
        proc = self.processor
        decode_width = proc.decode_width
        retire_width = proc.retire_width
        l1_cycles = proc.l1_latency_cycles
        mem_latency = proc.memory_latency_ns
        l2_cycles = proc.l2_latency_cycles
        mispredict_penalty = proc.branch_mispredict_penalty
        interval_len = opts.interval_instructions
        record_trace = opts.record_interval_trace
        mcd_mode = opts.mcd
        controller = self.controller
        int_regs = self.int_regs
        fp_regs = self.fp_regs
        hierarchy = self.hierarchy
        predictor = self.predictor
        e_mem = self.energies.memory_access
        mem_level_l1 = MemoryLevel.L1
        mem_level_l2 = MemoryLevel.L2

        # --- per-domain cached operating point (freq/period/vscale) ------
        _, vscale_of, clock_e, idle_e, simple_w, complex_w = (
            self._operating_point_tables()
        )
        cur_freq = [r.current_mhz for r in regulators]
        cur_period = [1e3 / f for f in cur_freq]
        cur_vscale = [vscale_of(f) for f in cur_freq]
        for i in range(4):
            clocks[i].period_ns = cur_period[i]

        # --- inlined energy accumulators ----------------------------------
        acct = self.accounting
        acc_clock = [0.0, 0.0, 0.0, 0.0]
        acc_struct = [0.0, 0.0, 0.0, 0.0]
        n_busy = [0, 0, 0, 0]
        n_idle = [0, 0, 0, 0]

        active = [True, False, False, False]
        retired = 0
        seq_counter = 0
        fetch_resume_ns = 0.0  # fetch stalled until this time (icache / branch)
        branch_stall_seq = -1  # seq of unresolved mispredicted branch, -1 if none
        dispatch_stall_cycles = 0
        memory_accesses = 0
        interval_start_ns = 0.0
        next_interval = interval_len
        interval_index = 0
        busy_in_interval = [0, 0, 0, 0]
        intervals: list[IntervalRecord] = []
        line_shift = hierarchy.l1i.line_shift
        last_fetch_line = -1

        kind_load = int(InstructionClass.LOAD)
        kind_store = int(InstructionClass.STORE)
        kind_branch = int(InstructionClass.BRANCH)

        clock_fe = clocks[_FE]
        next_edges = [c.next_edge_ns for c in clocks]

        while retired < total:
            # Earliest pending edge among active domains.
            d = 0
            t = next_edges[0]
            if active[1] and next_edges[1] < t:
                d, t = 1, next_edges[1]
            if active[2] and next_edges[2] < t:
                d, t = 2, next_edges[2]
            if active[3] and next_edges[3] < t:
                d, t = 3, next_edges[3]

            regulator = regulators[d]
            if regulator.current_mhz != regulator.target_mhz:
                freq = regulator.advance_to(t)
                if freq != cur_freq[d]:
                    cur_freq[d] = freq
                    cur_period[d] = 1e3 / freq
                    cur_vscale[d] = vscale_of(freq)
                    clocks[d].period_ns = cur_period[d]
            clock = clocks[d]
            vscale = cur_vscale[d]

            if d == _FE:
                access_energy = 0.0
                worked = False

                # ---- retire ------------------------------------------------
                cross_thresh = window if mcd_mode else 0.5 * cur_period[0]
                n_retire = 0
                rob_entries = rob.entries
                while rob_entries and n_retire < retire_width:
                    seq = rob_entries[0]
                    slot = seq & _RING_MASK
                    if fin_ns[slot] + cross_thresh > t + _EPS_NS:
                        break
                    rob_entries.popleft()
                    dest = dest_ring[slot]
                    if dest == 0:
                        int_regs.free += 1
                    elif dest == 1:
                        fp_regs.free += 1
                    n_retire += 1
                retired += n_retire
                if n_retire:
                    worked = True
                    access_energy += n_retire * self._e_retire

                # ---- interval rollover --------------------------------------
                if retired >= next_interval:
                    interval_index += 1
                    next_interval += interval_len
                    duration = t - interval_start_ns
                    if duration <= 0:
                        duration = cur_period[0]
                    # Catch up every regulator (so slew timing is exact
                    # when new targets are applied below) and the clocks
                    # and idle energy of inactive domains.
                    for i in (1, 2, 3):
                        ireg = regulators[i]
                        ifreq = ireg.advance_to(t)
                        if ifreq != cur_freq[i]:
                            cur_freq[i] = ifreq
                            cur_period[i] = 1e3 / ifreq
                            cur_vscale[i] = vscale_of(ifreq)
                            clocks[i].period_ns = cur_period[i]
                        if not active[i]:
                            skipped = clocks[i].skip_idle_until(t)
                            if skipped:
                                acc_clock[i] += idle_e[i] * cur_vscale[i] * skipped
                                n_idle[i] += skipped
                            next_edges[i] = clocks[i].next_edge_ns
                    qutil = {
                        Domain.INTEGER: queues[_INT].take_occupancy() / interval_len,
                        Domain.FLOATING_POINT: queues[_FP].take_occupancy()
                        / interval_len,
                        Domain.LOAD_STORE: queues[_LS].take_occupancy() / interval_len,
                    }
                    ipc = interval_len / (duration * cur_freq[0] * 1e-3)
                    if controller is not None or record_trace:
                        freqs = {
                            dom: cur_freq[i] for i, dom in enumerate(_DOMAINS)
                        }
                        busy_frac = {}
                        for i, dom in enumerate(_DOMAINS):
                            busy_frac[dom] = min(
                                1.0, busy_in_interval[i] * cur_period[i] / duration
                            )
                        snapshot = IntervalSnapshot(
                            index=interval_index - 1,
                            instructions=interval_len,
                            time_ns=t,
                            duration_ns=duration,
                            ipc=ipc,
                            queue_utilization=qutil,
                            busy_fraction=busy_frac,
                            frequencies_mhz=freqs,
                        )
                        if controller is not None:
                            targets = controller.on_interval(snapshot)
                            if targets:
                                snap = getattr(controller, "instantaneous", False)
                                for dom, mhz in targets.items():
                                    i = _DOMAIN_INDEX[dom]
                                    reg = regulators[i]
                                    if snap:
                                        reg.snap_to(mhz)
                                        f2 = reg.current_mhz
                                        if f2 != cur_freq[i]:
                                            cur_freq[i] = f2
                                            cur_period[i] = 1e3 / f2
                                            cur_vscale[i] = vscale_of(f2)
                                            clocks[i].period_ns = cur_period[i]
                                    else:
                                        reg.request(mhz)
                        if record_trace:
                            intervals.append(
                                IntervalRecord(
                                    index=interval_index - 1,
                                    end_instruction=retired,
                                    end_time_ns=t,
                                    ipc=ipc,
                                    queue_utilization=qutil,
                                    frequencies_mhz=freqs,
                                    energy=(
                                        acc_clock[0] + acc_clock[1]
                                        + acc_clock[2] + acc_clock[3]
                                        + acc_struct[0] + acc_struct[1]
                                        + acc_struct[2] + acc_struct[3]
                                        + memory_accesses * e_mem
                                    ),
                                    memory_accesses=memory_accesses,
                                )
                            )
                    busy_in_interval = [0, 0, 0, 0]
                    interval_start_ns = t

                # ---- fetch / dispatch ---------------------------------------
                if (
                    branch_stall_seq < 0
                    and t + _EPS_NS >= fetch_resume_ns
                    and not cursor.exhausted
                ):
                    fetched = 0
                    stalled = False
                    while fetched < decode_width:
                        if cursor.exhausted:
                            break
                        kind = cursor.kind
                        # I-cache: one lookup per new fetch line.
                        pc = cursor.pc
                        line = pc >> line_shift
                        if line != last_fetch_line:
                            last_fetch_line = line
                            access_energy += self._e_l1i
                            level = hierarchy.instruction_access(pc)
                            if level is not mem_level_l1:
                                delay = l2_cycles * cur_period[_LS] + 2.0 * window
                                access_energy += self._e_l2
                                if level is not mem_level_l2:
                                    delay += mem_latency
                                    memory_accesses += 1
                                fetch_resume_ns = t + delay
                                break
                        # Structural dispatch constraints.
                        if not rob.has_space:
                            stalled = True
                            break
                        qd = _ISSUE_DOMAIN[kind]
                        queue = queues[qd]
                        if len(queue.entries) >= queue.capacity:
                            stalled = True
                            break
                        dest = _DEST_TYPE[kind]
                        if dest == 0:
                            if int_regs.free <= 0:
                                stalled = True
                                break
                            int_regs.free -= 1
                        elif dest == 1:
                            if fp_regs.free <= 0:
                                stalled = True
                                break
                            fp_regs.free -= 1

                        # Rename/dispatch.
                        seq_counter += 1
                        seq = seq_counter
                        slot = seq & _RING_MASK
                        fin_ns[slot] = _INF
                        fin_domain[slot] = -1
                        dest_ring[slot] = dest
                        s1 = cursor.src1
                        s2 = cursor.src2
                        p1 = seq - s1 if s1 and s1 < seq else 0
                        p2 = seq - s2 if s2 and s2 < seq else 0
                        mispredicted = False
                        if kind == kind_branch:
                            access_energy += self._e_bpred
                            mispredicted = predictor.access(
                                pc, cursor.taken, cursor.target
                            )
                        queue.entries.append([seq, kind, t, p1, p2, cursor.addr, 0.0])
                        queue.writes += 1
                        if not active[qd]:
                            qreg = regulators[qd]
                            qfreq = qreg.advance_to(t)
                            if qfreq != cur_freq[qd]:
                                cur_freq[qd] = qfreq
                                cur_period[qd] = 1e3 / qfreq
                                cur_vscale[qd] = vscale_of(qfreq)
                                clocks[qd].period_ns = cur_period[qd]
                            skipped = clocks[qd].skip_idle_until(t)
                            if skipped:
                                acc_clock[qd] += idle_e[qd] * cur_vscale[qd] * skipped
                                n_idle[qd] += skipped
                            next_edges[qd] = clocks[qd].next_edge_ns
                            active[qd] = True
                        rob.entries.append(seq)
                        access_energy += self._e_dispatch + self._e_fetch
                        cursor.pop()
                        fetched += 1
                        if mispredicted:
                            branch_stall_seq = seq
                            break
                    if fetched:
                        worked = True
                    elif stalled:
                        dispatch_stall_cycles += 1

                if worked:
                    busy_in_interval[0] += 1
                    n_busy[0] += 1
                    acc_clock[0] += clock_e[0] * vscale
                    acc_struct[0] += access_energy * vscale
                else:
                    n_idle[0] += 1
                    acc_clock[0] += idle_e[0] * vscale
                    if access_energy:
                        acc_struct[0] += access_energy * vscale
                next_edges[0] = clock_fe.advance()

            else:
                # ---- issue domain (integer / fp / load-store) ----------------
                queue = queues[d]
                entries = queue.entries
                queue.occupancy_accumulated += len(entries)
                issued_any = False
                access_energy = 0.0
                e_tuple = self._e_issue[d]
                e_issue = e_tuple[1]
                e_simple = e_tuple[2]
                e_complex = e_tuple[3]
                cross_thresh = window if mcd_mode else 0.5 * cur_period[d]
                cyc = clock.cycle_index
                period = cur_period[d]
                sfree = simple_w[d]
                cfree = complex_w[d]
                for entry in entries:
                    if entry[6] > t:
                        continue
                    if t - entry[2] < cross_thresh:
                        # Dispatch not yet synchronized into this domain;
                        # younger entries arrived even later.
                        break
                    p1 = entry[3]
                    if p1:
                        slot1 = p1 & _RING_MASK
                        fd = fin_domain[slot1]
                        if fd < 0:
                            continue
                        if fd == d:
                            if fin_cycle[slot1] > cyc:
                                continue
                        else:
                            nb = fin_ns[slot1] + cross_thresh
                            if nb > t + _EPS_NS:
                                entry[6] = nb
                                continue
                    p2 = entry[4]
                    if p2:
                        slot2 = p2 & _RING_MASK
                        fd = fin_domain[slot2]
                        if fd < 0:
                            continue
                        if fd == d:
                            if fin_cycle[slot2] > cyc:
                                continue
                        else:
                            nb = fin_ns[slot2] + cross_thresh
                            if nb > t + _EPS_NS:
                                entry[6] = nb
                                continue
                    kind = entry[1]
                    if complex_op[kind]:
                        if cfree <= 0:
                            continue
                        cfree -= 1
                        access_energy += e_complex
                        lat_c = lat_cycles[kind]
                        lat = lat_c * period
                    elif sfree <= 0:
                        if cfree <= 0:
                            break
                        continue
                    elif kind == kind_load:
                        sfree -= 1
                        level = hierarchy.data_access(entry[5])
                        access_energy += e_simple  # L1D probe
                        if level is mem_level_l1:
                            lat = l1_cycles * period
                            lat_c = l1_cycles
                        elif level is mem_level_l2:
                            access_energy += self._e_l2
                            lat = l2_cycles * period
                            lat_c = l2_cycles
                        else:
                            access_energy += self._e_l2
                            memory_accesses += 1
                            lat = l2_cycles * period + mem_latency + 2.0 * window
                            lat_c = int(lat / period) + 1
                    elif kind == kind_store:
                        sfree -= 1
                        hierarchy.data_access(entry[5])
                        access_energy += e_simple
                        lat = period
                        lat_c = 1
                    else:
                        sfree -= 1
                        access_energy += e_simple
                        lat_c = lat_cycles[kind]
                        lat = lat_c * period
                    # Issue!
                    seq = entry[0]
                    finish = t + lat
                    slot = seq & _RING_MASK
                    fin_ns[slot] = finish
                    fin_cycle[slot] = cyc + lat_c
                    fin_domain[slot] = d
                    access_energy += e_issue
                    issued_any = True
                    if seq == branch_stall_seq:
                        branch_stall_seq = -1
                        resume = finish + window + mispredict_penalty * cur_period[0]
                        if resume > fetch_resume_ns:
                            fetch_resume_ns = resume
                    if sfree <= 0 and cfree <= 0:
                        break
                # Rebuild the queue without the entries issued this
                # cycle: an entry's ring slot holds -1 from dispatch
                # until the moment it issues.
                if issued_any:
                    queue.entries = [
                        e for e in entries if fin_domain[e[0] & _RING_MASK] == -1
                    ]
                    busy_in_interval[d] += 1
                    n_busy[d] += 1
                    acc_clock[d] += clock_e[d] * vscale
                    acc_struct[d] += access_energy * vscale
                    if queue.entries:
                        next_edges[d] = clock.advance()
                    else:
                        active[d] = False
                        clock.advance()
                else:
                    n_idle[d] += 1
                    acc_clock[d] += idle_e[d] * vscale
                    next_edges[d] = clock.advance()

            # Safety valve: the trace must keep draining.
            if cursor.exhausted and not rob.entries and retired < total:
                raise SimulationError(
                    f"trace exhausted with {retired}/{total} retired"
                )

        wall = clocks[_FE].next_edge_ns
        # Final catch-up: idle tails of inactive domains still burn
        # gated clock energy until the program ends.
        for i in (1, 2, 3):
            ireg = regulators[i]
            ifreq = ireg.advance_to(wall)
            if ifreq != cur_freq[i]:
                cur_freq[i] = ifreq
                cur_vscale[i] = vscale_of(ifreq)
            skipped = clocks[i].skip_idle_until(wall)
            if skipped:
                acc_clock[i] += idle_e[i] * cur_vscale[i] * skipped
                n_idle[i] += skipped

        # Flush the inlined accumulators into the accounting meters.
        for i, dom in enumerate(_DOMAINS):
            acct.add_raw(dom, acc_clock[i], acc_struct[i], n_busy[i], n_idle[i])
        acct.add_memory_accesses(memory_accesses)

        return self._build_result(
            retired, wall, memory_accesses, dispatch_stall_cycles, intervals
        )

    # ------------------------------------------------------------------
    # the run — batched fast path
    # ------------------------------------------------------------------
    def _run_compiled(self) -> CoreResult:
        """Batched Python path, with the shared templates leased.

        The template lists are the only part of a
        :class:`~repro.uarch.compiled_trace.CompiledTrace` this path
        mutates in place, so they are taken under an exclusive lease
        for the duration of the run: the common serial caller gets the
        shared lists, a concurrent caller (thread-pool sweep backend
        with the native loop unavailable) transparently runs over a
        private copy.  Either way the results are byte-identical.
        """
        comp = self.compiled
        templates, owned = comp.lease_templates()
        self._leased_templates = templates
        try:
            return self._run_compiled_leased()
        finally:
            self._leased_templates = None
            comp.release_templates(owned)

    def _run_compiled_leased(self) -> CoreResult:
        """Batched fast path over a compiled trace's columns.

        This mirrors :meth:`_run_generator` event for event — same edge
        selection, same regulator calls, same jitter-stream consumption,
        same floating-point accumulation order — so results are
        byte-identical.  What changes is the per-event Python work: the
        fetch stage walks precompiled flat columns by integer index
        (class, steering, rename and dependency lookups are compile-time
        work), and the cache, branch-predictor and clock-edge state
        transitions are inlined over local bindings with their counters
        flushed back into the owning objects once at the end.
        """
        if self.controller is not None:
            self.controller.begin(
                self.mcd_config,
                {d: self.regulators[i].current_mhz for i, d in enumerate(_DOMAINS)},
            )

        opts = self.options
        window = self.window_ns
        comp = self.compiled
        total = comp.n
        kinds_c = comp.kinds
        pcs_c = comp.pcs
        addrs_c = comp.addrs
        taken_c = comp.taken
        targets_c = comp.targets
        dest_c = comp.dest
        qd_c = comp.domain
        tmpl_c = self._leased_templates
        newline = comp.newline.copy()  # cleared at each first-attempt I-probe

        clocks = self.clocks
        regulators = self.regulators
        queues = self.queues
        rob = self.rob
        fin_ns = self.fin_ns
        fin_cycle = self.fin_cycle
        fin_domain = self.fin_domain
        lat_cycles = self._lat_cycles
        complex_op = self._complex
        proc = self.processor
        decode_width = proc.decode_width
        retire_width = proc.retire_width
        l1_cycles = proc.l1_latency_cycles
        mem_latency = proc.memory_latency_ns
        l2_cycles = proc.l2_latency_cycles
        mispredict_penalty = proc.branch_mispredict_penalty
        interval_len = opts.interval_instructions
        record_trace = opts.record_interval_trace
        mcd_mode = opts.mcd
        controller = self.controller
        hierarchy = self.hierarchy
        predictor = self.predictor
        e_mem = self.energies.memory_access

        # --- inlined cache hierarchy (tag state + local stat counters) ----
        shift = hierarchy.l1i.line_shift
        l1i, l1d, l2 = hierarchy.l1i, hierarchy.l1d, hierarchy.l2
        l1i_sets, l1i_nsets, l1i_ways = l1i._sets, l1i.sets, l1i.ways
        l1d_sets, l1d_nsets, l1d_ways = l1d._sets, l1d.sets, l1d.ways
        l2_sets, l2_nsets, l2_ways = l2._sets, l2.sets, l2.ways
        l1i_acc = l1i_miss = l1d_acc = l1d_miss = l2_acc = l2_miss = 0

        # --- inlined branch predictor -------------------------------------
        hist = predictor._history
        hist_len = len(hist)
        hist_mask = predictor._history_mask
        pl2 = predictor._l2
        pl2_len = len(pl2)
        bim = predictor._bimodal
        bim_len = len(bim)
        meta = predictor._meta
        meta_len = len(meta)
        btb_table = predictor.btb._table
        btb_nsets = predictor.btb.sets
        btb_ways = predictor.btb.ways
        bp_lookups = bp_dir_miss = bp_btb_miss = 0

        # --- per-domain cached operating point (freq/period/vscale) -------
        _, vscale_of, clock_e, idle_e, simple_w, complex_w = (
            self._operating_point_tables()
        )
        cur_freq = [r.current_mhz for r in regulators]
        cur_period = [1e3 / f for f in cur_freq]
        cur_vscale = [vscale_of(f) for f in cur_freq]
        slewing = [r.current_mhz != r.target_mhz for r in regulators]

        # --- inlined clocks (edge times, cycle counts, jitter streams) ----
        edge_ns = [c.next_edge_ns for c in clocks]
        cycle_idx = [c.cycle_index for c in clocks]
        jitters = [c.jitter for c in clocks]
        jbufs = [getattr(j, "_buffer", None) for j in jitters]
        ceil = math.ceil

        # --- inlined energy accumulators ----------------------------------
        acct = self.accounting
        acc_clock = [0.0, 0.0, 0.0, 0.0]
        acc_struct = [0.0, 0.0, 0.0, 0.0]
        n_busy = [0, 0, 0, 0]
        n_idle = [0, 0, 0, 0]

        # --- inlined queues / ROB / rename pools --------------------------
        q_entries = [None, queues[1].entries, queues[2].entries, queues[3].entries]
        q_cap = [0, queues[1].capacity, queues[2].capacity, queues[3].capacity]
        q_len = [0, len(queues[1].entries), len(queues[2].entries), len(queues[3].entries)]
        q_occ = [0, 0, 0, 0]
        q_writes = [0, 0, 0, 0]
        # Per-domain memo of a provably idle cycle: while t stays below
        # q_block[d] (and, for issue domains, the domain's cycle count
        # stays below q_block_cyc[d]), the domain is guaranteed to do
        # no work — every gate observed by the last full pass lifts
        # only at a known time/cycle or through an invalidating event.
        # Invalidating events (any issue anywhere, a dispatch into the
        # queue, a frequency change) reset the bound to 0.0, forcing a
        # full pass.  Index 0 is the front end's fetch/retire memo.
        q_block = [0.0, 0.0, 0.0, 0.0]
        q_block_cyc = [0, 0, 0, 0]
        # While the front-end memo is a *stall* memo, every memoized
        # cycle repeats a structurally blocked fetch attempt and must
        # keep counting dispatch stalls.  A queue-full stall records
        # the culprit queue so only that queue's issues (or the ROB
        # head's) wake the front end.
        fe_stall_memo = False
        fe_stall_queue = -1
        rob_entries = rob.entries
        rob_cap = rob.capacity
        rob_n = len(rob_entries)
        rob_append = rob_entries.append
        rob_popleft = rob_entries.popleft
        int_free = self.int_regs.free
        fp_free = self.fp_regs.free

        active = [True, False, False, False]
        retired = 0
        fetch_i = 0  # next trace index to fetch (== dispatch seq - 1)
        fetch_resume_ns = 0.0
        branch_stall_seq = -1
        dispatch_stall_cycles = 0
        memory_accesses = 0
        interval_start_ns = 0.0
        next_interval = interval_len
        interval_index = 0
        busy_in_interval = [0, 0, 0, 0]
        intervals: list[IntervalRecord] = []

        kind_load = int(InstructionClass.LOAD)
        kind_store = int(InstructionClass.STORE)
        kind_branch = int(InstructionClass.BRANCH)

        e_l1i = self._e_l1i
        e_l2 = self._e_l2
        e_bpred = self._e_bpred
        e_retire = self._e_retire
        e_disp_fetch = self._e_dispatch + self._e_fetch
        e_issue_t = self._e_issue

        while retired < total:
            # Earliest pending edge among active domains.
            d = 0
            t = edge_ns[0]
            if active[1] and edge_ns[1] < t:
                d, t = 1, edge_ns[1]
            if active[2] and edge_ns[2] < t:
                d, t = 2, edge_ns[2]
            if active[3] and edge_ns[3] < t:
                d, t = 3, edge_ns[3]

            if slewing[d]:
                regulator = regulators[d]
                freq = regulator.advance_to(t)
                if freq == regulator.target_mhz:
                    slewing[d] = False
                if freq != cur_freq[d]:
                    cur_freq[d] = freq
                    cur_period[d] = 1e3 / freq
                    cur_vscale[d] = vscale_of(freq)
                    q_block[d] = 0.0
            vscale = cur_vscale[d]

            if d == 0 and t >= q_block[0]:
                access_energy = 0.0
                worked = False

                # ---- retire ------------------------------------------------
                cross_thresh = window if mcd_mode else 0.5 * cur_period[0]
                n_retire = 0
                while rob_entries and n_retire < retire_width:
                    seq = rob_entries[0]
                    slot = seq & _RING_MASK
                    if fin_ns[slot] + cross_thresh > t + _EPS_NS:
                        break
                    rob_popleft()
                    dest = dest_c[seq - 1]
                    if dest == 0:
                        int_free += 1
                    elif dest == 1:
                        fp_free += 1
                    n_retire += 1
                retired += n_retire
                rob_n -= n_retire
                if n_retire:
                    worked = True
                    access_energy += n_retire * e_retire

                # ---- interval rollover --------------------------------------
                if retired >= next_interval:
                    interval_index += 1
                    next_interval += interval_len
                    duration = t - interval_start_ns
                    if duration <= 0:
                        duration = cur_period[0]
                    # Catch up every regulator (so slew timing is exact
                    # when new targets are applied below) and the clocks
                    # and idle energy of inactive domains.
                    for i in (1, 2, 3):
                        ireg = regulators[i]
                        ifreq = ireg.advance_to(t)
                        slewing[i] = ifreq != ireg.target_mhz
                        if ifreq != cur_freq[i]:
                            cur_freq[i] = ifreq
                            cur_period[i] = 1e3 / ifreq
                            cur_vscale[i] = vscale_of(ifreq)
                            q_block[i] = 0.0
                        if not active[i]:
                            edge = edge_ns[i]
                            if t > edge:
                                period = cur_period[i]
                                skipped = ceil((t - edge) / period)
                                edge_ns[i] = edge + skipped * period
                                cycle_idx[i] += skipped
                                acc_clock[i] += idle_e[i] * cur_vscale[i] * skipped
                                n_idle[i] += skipped
                    occ_int = q_occ[1]
                    occ_fp = q_occ[2]
                    occ_ls = q_occ[3]
                    q_occ[1] = q_occ[2] = q_occ[3] = 0
                    qutil = {
                        Domain.INTEGER: occ_int / interval_len,
                        Domain.FLOATING_POINT: occ_fp / interval_len,
                        Domain.LOAD_STORE: occ_ls / interval_len,
                    }
                    ipc = interval_len / (duration * cur_freq[0] * 1e-3)
                    if controller is not None or record_trace:
                        freqs = {
                            dom: cur_freq[i] for i, dom in enumerate(_DOMAINS)
                        }
                        busy_frac = {}
                        for i, dom in enumerate(_DOMAINS):
                            busy_frac[dom] = min(
                                1.0, busy_in_interval[i] * cur_period[i] / duration
                            )
                        snapshot = IntervalSnapshot(
                            index=interval_index - 1,
                            instructions=interval_len,
                            time_ns=t,
                            duration_ns=duration,
                            ipc=ipc,
                            queue_utilization=qutil,
                            busy_fraction=busy_frac,
                            frequencies_mhz=freqs,
                        )
                        if controller is not None:
                            targets = controller.on_interval(snapshot)
                            if targets:
                                snap = getattr(controller, "instantaneous", False)
                                for dom, mhz in targets.items():
                                    i = _DOMAIN_INDEX[dom]
                                    reg = regulators[i]
                                    if snap:
                                        reg.snap_to(mhz)
                                        slewing[i] = False
                                        f2 = reg.current_mhz
                                        if f2 != cur_freq[i]:
                                            cur_freq[i] = f2
                                            cur_period[i] = 1e3 / f2
                                            cur_vscale[i] = vscale_of(f2)
                                            q_block[i] = 0.0
                                    else:
                                        reg.request(mhz)
                                        slewing[i] = (
                                            reg.current_mhz != reg.target_mhz
                                        )
                        if record_trace:
                            intervals.append(
                                IntervalRecord(
                                    index=interval_index - 1,
                                    end_instruction=retired,
                                    end_time_ns=t,
                                    ipc=ipc,
                                    queue_utilization=qutil,
                                    frequencies_mhz=freqs,
                                    energy=(
                                        acc_clock[0] + acc_clock[1]
                                        + acc_clock[2] + acc_clock[3]
                                        + acc_struct[0] + acc_struct[1]
                                        + acc_struct[2] + acc_struct[3]
                                        + memory_accesses * e_mem
                                    ),
                                    memory_accesses=memory_accesses,
                                )
                            )
                    busy_in_interval = [0, 0, 0, 0]
                    interval_start_ns = t

                # ---- fetch / dispatch ---------------------------------------
                stalled = False
                fe_stall_queue = -1
                if (
                    branch_stall_seq < 0
                    and t + _EPS_NS >= fetch_resume_ns
                    and fetch_i < total
                ):
                    fetched = 0
                    fi = fetch_i
                    while fetched < decode_width:
                        if fi >= total:
                            break
                        # I-cache: one lookup per new fetch line (the
                        # newline bit is cleared on the first attempt so
                        # a stalled retry never probes twice).
                        if newline[fi]:
                            newline[fi] = 0
                            access_energy += e_l1i
                            line = pcs_c[fi] >> shift
                            entry_set = l1i_sets[line % l1i_nsets]
                            tag = line // l1i_nsets
                            l1i_acc += 1
                            try:
                                entry_set.remove(tag)
                                entry_set.append(tag)
                            except ValueError:
                                l1i_miss += 1
                                entry_set.append(tag)
                                if len(entry_set) > l1i_ways:
                                    entry_set.pop(0)
                                delay = l2_cycles * cur_period[3] + 2.0 * window
                                access_energy += e_l2
                                entry_set = l2_sets[line % l2_nsets]
                                tag = line // l2_nsets
                                l2_acc += 1
                                try:
                                    entry_set.remove(tag)
                                    entry_set.append(tag)
                                except ValueError:
                                    l2_miss += 1
                                    entry_set.append(tag)
                                    if len(entry_set) > l2_ways:
                                        entry_set.pop(0)
                                    delay += mem_latency
                                    memory_accesses += 1
                                fetch_resume_ns = t + delay
                                break
                        # Structural dispatch constraints.
                        if rob_n >= rob_cap:
                            stalled = True
                            break
                        qd = qd_c[fi]
                        if q_len[qd] >= q_cap[qd]:
                            stalled = True
                            fe_stall_queue = qd
                            break
                        dest = dest_c[fi]
                        if dest == 0:
                            if int_free <= 0:
                                stalled = True
                                break
                            int_free -= 1
                        elif dest == 1:
                            if fp_free <= 0:
                                stalled = True
                                break
                            fp_free -= 1

                        # Rename/dispatch.
                        seq = fi + 1
                        slot = seq & _RING_MASK
                        fin_ns[slot] = _INF
                        fin_domain[slot] = -1
                        kind = kinds_c[fi]
                        mispredicted = False
                        if kind == kind_branch:
                            access_energy += e_bpred
                            pc = pcs_c[fi]
                            tk = taken_c[fi]
                            word = pc >> 2
                            hist_i = word % hist_len
                            history = hist[hist_i]
                            pl2_i = (history ^ word) % pl2_len
                            two_level = pl2[pl2_i] >= 2
                            bim_i = word % bim_len
                            bimodal = bim[bim_i] >= 2
                            prediction = (
                                two_level
                                if meta[word % meta_len] >= 2
                                else bimodal
                            )
                            bp_lookups += 1
                            if prediction != tk:
                                bp_dir_miss += 1
                                mispredicted = True
                            elif tk:
                                entry_set = btb_table[word % btb_nsets]
                                tag = word // btb_nsets
                                found = None
                                for j in range(len(entry_set)):
                                    if entry_set[j][0] == tag:
                                        found = entry_set.pop(j)
                                        entry_set.append(found)
                                        break
                                if found is None or found[1] != targets_c[fi]:
                                    bp_btb_miss += 1
                                    mispredicted = True
                            value = pl2[pl2_i]
                            if tk:
                                pl2[pl2_i] = value + 1 if value < 3 else 3
                            else:
                                pl2[pl2_i] = value - 1 if value > 0 else 0
                            value = bim[bim_i]
                            if tk:
                                bim[bim_i] = value + 1 if value < 3 else 3
                            else:
                                bim[bim_i] = value - 1 if value > 0 else 0
                            if two_level != bimodal:
                                meta_i = word % meta_len
                                value = meta[meta_i]
                                if two_level == tk:
                                    meta[meta_i] = value + 1 if value < 3 else 3
                                else:
                                    meta[meta_i] = value - 1 if value > 0 else 0
                            hist[hist_i] = (
                                (history << 1) | (1 if tk else 0)
                            ) & hist_mask
                            if tk:
                                entry_set = btb_table[word % btb_nsets]
                                tag = word // btb_nsets
                                for j in range(len(entry_set)):
                                    if entry_set[j][0] == tag:
                                        entry_set.pop(j)
                                        break
                                entry_set.append((tag, targets_c[fi]))
                                if len(entry_set) > btb_ways:
                                    entry_set.pop(0)
                        entry = tmpl_c[fi]
                        entry[2] = t
                        entry[6] = 0.0
                        q_entries[qd].append(entry)
                        q_len[qd] += 1
                        q_writes[qd] += 1
                        q_block[qd] = 0.0
                        if not active[qd]:
                            qreg = regulators[qd]
                            qfreq = qreg.advance_to(t)
                            slewing[qd] = qfreq != qreg.target_mhz
                            if qfreq != cur_freq[qd]:
                                cur_freq[qd] = qfreq
                                cur_period[qd] = 1e3 / qfreq
                                cur_vscale[qd] = vscale_of(qfreq)
                            edge = edge_ns[qd]
                            if t > edge:
                                period = cur_period[qd]
                                skipped = ceil((t - edge) / period)
                                edge_ns[qd] = edge + skipped * period
                                cycle_idx[qd] += skipped
                                acc_clock[qd] += idle_e[qd] * cur_vscale[qd] * skipped
                                n_idle[qd] += skipped
                            active[qd] = True
                        rob_append(seq)
                        rob_n += 1
                        access_energy += e_disp_fetch
                        fi += 1
                        fetched += 1
                        if mispredicted:
                            branch_stall_seq = seq
                            break
                    fetch_i = fi
                    if fetched:
                        worked = True
                    elif stalled:
                        dispatch_stall_cycles += 1

                if worked:
                    busy_in_interval[0] += 1
                    n_busy[0] += 1
                    acc_clock[0] += clock_e[0] * vscale
                    acc_struct[0] += access_energy * vscale
                else:
                    n_idle[0] += 1
                    acc_clock[0] += idle_e[0] * vscale
                    if access_energy:
                        acc_struct[0] += access_energy * vscale
                # Schedule the next front-end edge (inlined advance).
                if mcd_mode:
                    jb = jbufs[0]
                    if not jb:
                        jitters[0]._refill()
                        jb = jbufs[0] = jitters[0]._buffer
                    step = cur_period[0] + jb.pop()
                    if step < _MIN_STEP_NS:
                        step = _MIN_STEP_NS
                else:
                    step = cur_period[0]
                tn = t + step
                cycle_idx[0] += 1

                # Idle/stall drain: after a cycle where the front end
                # provably repeats itself — nothing retired, and fetch
                # either gated (idle) or structurally blocked until the
                # ROB head retires (stall) — its cycles reduce to fixed
                # accounting plus an edge advance.  Drain them in a
                # tight loop while the front end's edges precede every
                # other active domain's (same comparisons, same jitter
                # draws, same float accumulation as full iterations),
                # then memoize the proof (shaded down so float rounding
                # can only expire it early, never late) for the edges
                # interleaved with other domains'.
                if (
                    not worked
                    and access_energy == 0.0
                    and not slewing[0]
                    and (rob_entries or fetch_i < total)
                ):
                    if rob_entries:
                        head_ready = (
                            fin_ns[rob_entries[0] & _RING_MASK] + cross_thresh
                        )
                    else:
                        head_ready = _INF
                    other = _INF
                    if active[1]:
                        other = edge_ns[1]
                    if active[2] and edge_ns[2] < other:
                        other = edge_ns[2]
                    if active[3] and edge_ns[3] < other:
                        other = edge_ns[3]
                    idle_scaled = idle_e[0] * vscale
                    period0 = cur_period[0]
                    n_idle0 = 0
                    if stalled:
                        # Structural stall: every cycle until the head
                        # retires re-attempts fetch and counts a
                        # dispatch stall.  The block lifts early only
                        # through an issue, which resets the memo.
                        if mcd_mode:
                            jb = jbufs[0]
                            while tn <= other and head_ready > tn + _EPS_NS:
                                if not jb:
                                    jitters[0]._refill()
                                    jb = jbufs[0] = jitters[0]._buffer
                                step = period0 + jb.pop()
                                if step < _MIN_STEP_NS:
                                    step = _MIN_STEP_NS
                                tn += step
                                n_idle0 += 1
                                acc_clock[0] += idle_scaled
                        else:
                            while tn <= other and head_ready > tn + _EPS_NS:
                                tn += period0
                                n_idle0 += 1
                                acc_clock[0] += idle_scaled
                        dispatch_stall_cycles += n_idle0
                        bound = head_ready - _EPS_NS
                        fe_stall_memo = True
                    else:
                        always_gated = branch_stall_seq >= 0 or fetch_i >= total
                        if mcd_mode:
                            jb = jbufs[0]
                            while (
                                tn <= other
                                and head_ready > tn + _EPS_NS
                                and (
                                    always_gated
                                    or tn + _EPS_NS < fetch_resume_ns
                                )
                            ):
                                if not jb:
                                    jitters[0]._refill()
                                    jb = jbufs[0] = jitters[0]._buffer
                                step = period0 + jb.pop()
                                if step < _MIN_STEP_NS:
                                    step = _MIN_STEP_NS
                                tn += step
                                n_idle0 += 1
                                acc_clock[0] += idle_scaled
                        else:
                            while (
                                tn <= other
                                and head_ready > tn + _EPS_NS
                                and (
                                    always_gated
                                    or tn + _EPS_NS < fetch_resume_ns
                                )
                            ):
                                tn += period0
                                n_idle0 += 1
                                acc_clock[0] += idle_scaled
                        bound = head_ready - _EPS_NS
                        if not always_gated:
                            gate = fetch_resume_ns - _EPS_NS
                            if gate < bound:
                                bound = gate
                        fe_stall_memo = False
                    if n_idle0:
                        n_idle[0] += n_idle0
                        cycle_idx[0] += n_idle0
                    if bound < _INF:
                        q_block[0] = bound - (bound * 1e-12 + 1e-9)
                    else:
                        q_block[0] = _INF
                edge_ns[0] = tn

            elif d == 0:
                # ---- front end, memoized idle/stall cycle --------------------
                # Nothing to retire before the ROB head synchronizes
                # and fetch is gated or structurally blocked until at
                # least q_block[0].
                n_idle[0] += 1
                acc_clock[0] += idle_e[0] * vscale
                if fe_stall_memo:
                    dispatch_stall_cycles += 1
                if mcd_mode:
                    jb = jbufs[0]
                    if not jb:
                        jitters[0]._refill()
                        jb = jbufs[0] = jitters[0]._buffer
                    step = cur_period[0] + jb.pop()
                    if step < _MIN_STEP_NS:
                        step = _MIN_STEP_NS
                else:
                    step = cur_period[0]
                edge_ns[0] = t + step
                cycle_idx[0] += 1

            elif t < q_block[d] and cycle_idx[d] < q_block_cyc[d]:
                # ---- issue domain, memoized empty scan -----------------------
                # The last full scan proved nothing can issue before
                # q_block[d] / cycle q_block_cyc[d], so this cycle is
                # idle by construction.
                q_occ[d] += q_len[d]
                n_idle[d] += 1
                acc_clock[d] += idle_e[d] * vscale
                if mcd_mode:
                    jb = jbufs[d]
                    if not jb:
                        jit = jitters[d]
                        jit._refill()
                        jb = jbufs[d] = jit._buffer
                    step = cur_period[d] + jb.pop()
                    if step < _MIN_STEP_NS:
                        step = _MIN_STEP_NS
                else:
                    step = cur_period[d]
                edge_ns[d] = t + step
                cycle_idx[d] += 1

            else:
                # ---- issue domain (integer / fp / load-store) ----------------
                entries = q_entries[d]
                q_occ[d] += q_len[d]
                issued_any = False
                access_energy = 0.0
                e_tuple = e_issue_t[d]
                e_issue = e_tuple[1]
                e_simple = e_tuple[2]
                e_complex = e_tuple[3]
                cross_thresh = window if mcd_mode else 0.5 * cur_period[d]
                cyc = cycle_idx[d]
                period = cur_period[d]
                sfree = simple_w[d]
                cfree = complex_w[d]
                # Empty-scan proof state: block_until/block_cyc collect
                # the earliest time/cycle gate seen.  Gates on unissued
                # producers need no bound — they lift only through an
                # issue somewhere, which resets every memo.  Only a
                # starved unit pool (width zero) defeats the proof.
                block_until = _INF
                block_cyc = _INF
                predictable = True
                for entry in entries:
                    e6 = entry[6]
                    if e6 > t:
                        if e6 < block_until:
                            block_until = e6
                        continue
                    if t - entry[2] < cross_thresh:
                        # Dispatch not yet synchronized into this domain;
                        # younger entries arrived even later.  The gate
                        # lifts near entry[2] + cross_thresh; shade the
                        # bound down so float rounding can only expire
                        # the memo early (a full rescan), never late.
                        nb = entry[2] + cross_thresh
                        nb -= nb * 1e-12 + 1e-9
                        if nb < block_until:
                            block_until = nb
                        break
                    p1 = entry[3]
                    if p1:
                        slot1 = p1 & _RING_MASK
                        fd = fin_domain[slot1]
                        if fd < 0:
                            continue
                        if fd == d:
                            fc = fin_cycle[slot1]
                            if fc > cyc:
                                if fc < block_cyc:
                                    block_cyc = fc
                                continue
                        else:
                            nb = fin_ns[slot1] + cross_thresh
                            if nb > t + _EPS_NS:
                                entry[6] = nb
                                if nb < block_until:
                                    block_until = nb
                                continue
                    p2 = entry[4]
                    if p2:
                        slot2 = p2 & _RING_MASK
                        fd = fin_domain[slot2]
                        if fd < 0:
                            continue
                        if fd == d:
                            fc = fin_cycle[slot2]
                            if fc > cyc:
                                if fc < block_cyc:
                                    block_cyc = fc
                                continue
                        else:
                            nb = fin_ns[slot2] + cross_thresh
                            if nb > t + _EPS_NS:
                                entry[6] = nb
                                if nb < block_until:
                                    block_until = nb
                                continue
                    kind = entry[1]
                    if complex_op[kind]:
                        if cfree <= 0:
                            predictable = False
                            continue
                        cfree -= 1
                        access_energy += e_complex
                        lat_c = lat_cycles[kind]
                        lat = lat_c * period
                    elif sfree <= 0:
                        predictable = False
                        if cfree <= 0:
                            break
                        continue
                    elif kind == kind_load:
                        sfree -= 1
                        line = entry[5] >> shift
                        entry_set = l1d_sets[line % l1d_nsets]
                        tag = line // l1d_nsets
                        l1d_acc += 1
                        try:
                            entry_set.remove(tag)
                            entry_set.append(tag)
                            level = 1
                        except ValueError:
                            l1d_miss += 1
                            entry_set.append(tag)
                            if len(entry_set) > l1d_ways:
                                entry_set.pop(0)
                            entry_set = l2_sets[line % l2_nsets]
                            tag = line // l2_nsets
                            l2_acc += 1
                            try:
                                entry_set.remove(tag)
                                entry_set.append(tag)
                                level = 2
                            except ValueError:
                                l2_miss += 1
                                entry_set.append(tag)
                                if len(entry_set) > l2_ways:
                                    entry_set.pop(0)
                                level = 3
                        access_energy += e_simple  # L1D probe
                        if level == 1:
                            lat = l1_cycles * period
                            lat_c = l1_cycles
                        elif level == 2:
                            access_energy += e_l2
                            lat = l2_cycles * period
                            lat_c = l2_cycles
                        else:
                            access_energy += e_l2
                            memory_accesses += 1
                            lat = l2_cycles * period + mem_latency + 2.0 * window
                            lat_c = int(lat / period) + 1
                    elif kind == kind_store:
                        sfree -= 1
                        line = entry[5] >> shift
                        entry_set = l1d_sets[line % l1d_nsets]
                        tag = line // l1d_nsets
                        l1d_acc += 1
                        try:
                            entry_set.remove(tag)
                            entry_set.append(tag)
                        except ValueError:
                            l1d_miss += 1
                            entry_set.append(tag)
                            if len(entry_set) > l1d_ways:
                                entry_set.pop(0)
                            entry_set = l2_sets[line % l2_nsets]
                            tag = line // l2_nsets
                            l2_acc += 1
                            try:
                                entry_set.remove(tag)
                                entry_set.append(tag)
                            except ValueError:
                                l2_miss += 1
                                entry_set.append(tag)
                                if len(entry_set) > l2_ways:
                                    entry_set.pop(0)
                        access_energy += e_simple
                        lat = period
                        lat_c = 1
                    else:
                        sfree -= 1
                        access_energy += e_simple
                        lat_c = lat_cycles[kind]
                        lat = lat_c * period
                    # Issue!
                    seq = entry[0]
                    finish = t + lat
                    slot = seq & _RING_MASK
                    fin_ns[slot] = finish
                    fin_cycle[slot] = cyc + lat_c
                    fin_domain[slot] = d
                    access_energy += e_issue
                    issued_any = True
                    if seq == rob_entries[0]:
                        # The ROB head's completion bounds the front
                        # end's memo; recompute it.
                        q_block[0] = 0.0
                    if seq == branch_stall_seq:
                        branch_stall_seq = -1
                        q_block[0] = 0.0
                        resume = finish + window + mispredict_penalty * cur_period[0]
                        if resume > fetch_resume_ns:
                            fetch_resume_ns = resume
                    if sfree <= 0 and cfree <= 0:
                        break
                # Rebuild the queue (in place, so the local alias stays
                # valid) without the entries issued this cycle: an
                # entry's ring slot holds -1 from dispatch until the
                # moment it issues.
                if issued_any:
                    entries[:] = [
                        e for e in entries if fin_domain[e[0] & _RING_MASK] == -1
                    ]
                    q_len[d] = len(entries)
                    busy_in_interval[d] += 1
                    n_busy[d] += 1
                    acc_clock[d] += clock_e[d] * vscale
                    acc_struct[d] += access_energy * vscale
                    # An issue changes fin_* state other issue domains'
                    # gates may rest on: reset their memos.  The front
                    # end's memo only depends on the ROB head and on a
                    # stalling queue, both handled at the issue itself.
                    q_block[1] = q_block[2] = q_block[3] = 0.0
                    if d == fe_stall_queue:
                        q_block[0] = 0.0
                    if not entries:
                        active[d] = False
                else:
                    n_idle[d] += 1
                    acc_clock[d] += idle_e[d] * vscale
                    q_block[d] = block_until if predictable else 0.0
                    q_block_cyc[d] = block_cyc
                # Schedule the next edge (inlined advance; a domain
                # going inactive still consumes its jitter sample,
                # exactly as the reference path's discarded advance).
                if mcd_mode:
                    jb = jbufs[d]
                    if not jb:
                        jit = jitters[d]
                        jit._refill()
                        jb = jbufs[d] = jit._buffer
                    step = cur_period[d] + jb.pop()
                    if step < _MIN_STEP_NS:
                        step = _MIN_STEP_NS
                else:
                    step = cur_period[d]
                edge_ns[d] = t + step
                cycle_idx[d] += 1

            # Safety valve: the trace must keep draining.
            if fetch_i >= total and not rob_entries and retired < total:
                raise SimulationError(
                    f"trace exhausted with {retired}/{total} retired"
                )

        wall = edge_ns[0]
        # Final catch-up: idle tails of inactive domains still burn
        # gated clock energy until the program ends.
        for i in (1, 2, 3):
            ireg = regulators[i]
            ifreq = ireg.advance_to(wall)
            if ifreq != cur_freq[i]:
                cur_freq[i] = ifreq
                cur_vscale[i] = vscale_of(ifreq)
            edge = edge_ns[i]
            if wall > edge:
                period = cur_period[i]
                skipped = ceil((wall - edge) / period)
                edge_ns[i] = edge + skipped * period
                cycle_idx[i] += skipped
                acc_clock[i] += idle_e[i] * cur_vscale[i] * skipped
                n_idle[i] += skipped

        # Flush the inlined accumulators into the accounting meters.
        for i, dom in enumerate(_DOMAINS):
            acct.add_raw(dom, acc_clock[i], acc_struct[i], n_busy[i], n_idle[i])
        acct.add_memory_accesses(memory_accesses)

        # Re-sync the remaining inlined state into its owning objects so
        # post-run inspection sees what the reference path would leave.
        self.int_regs.free = int_free
        self.fp_regs.free = fp_free
        for i in (1, 2, 3):
            queue = queues[i]
            queue.writes += q_writes[i]
            queue.occupancy_accumulated += q_occ[i]
        for i in range(4):
            clock = clocks[i]
            clock.next_edge_ns = edge_ns[i]
            clock.cycle_index = cycle_idx[i]
            clock.period_ns = cur_period[i]
        l1i.stats.accesses += l1i_acc
        l1i.stats.misses += l1i_miss
        l1d.stats.accesses += l1d_acc
        l1d.stats.misses += l1d_miss
        l2.stats.accesses += l2_acc
        l2.stats.misses += l2_miss
        bstats = predictor.stats
        bstats.lookups += bp_lookups
        bstats.direction_mispredicts += bp_dir_miss
        bstats.btb_target_misses += bp_btb_miss

        return self._build_result(
            retired, wall, memory_accesses, dispatch_stall_cycles, intervals
        )

    # ------------------------------------------------------------------
    def _build_result(
        self,
        retired: int,
        wall_ns: float,
        memory_accesses: int,
        dispatch_stall_cycles: int,
        intervals: list[IntervalRecord],
    ) -> CoreResult:
        meters = self.accounting.meters
        return CoreResult(
            instructions=retired,
            wall_time_ns=wall_ns,
            energy=self.accounting.total_energy,
            clock_energy=self.accounting.total_clock_energy,
            domain_energy={d: m.total_energy for d, m in meters.items()},
            domain_busy_cycles={d: m.busy_cycles for d, m in meters.items()},
            domain_cycles={d: m.cycles for d, m in meters.items()},
            final_frequencies_mhz={
                dom: self.regulators[i].current_mhz for i, dom in enumerate(_DOMAINS)
            },
            l1i_miss_rate=self.hierarchy.l1i.stats.miss_rate,
            l1d_miss_rate=self.hierarchy.l1d.stats.miss_rate,
            l2_miss_rate=self.hierarchy.l2.stats.miss_rate,
            branch_accuracy=self.predictor.stats.accuracy,
            branch_lookups=self.predictor.stats.lookups,
            memory_accesses=memory_accesses,
            dispatch_stall_cycles=dispatch_stall_cycles,
            intervals=intervals,
        )
