"""The four-domain out-of-order core (cycle-approximate, trace-driven).

The simulator advances wall-clock time (nanoseconds) by always
processing the earliest pending clock edge among the *active* domains.
Per edge it performs that domain's work for one cycle:

* **front end** — retire from the ROB head (completions must be
  *visible* across the domain boundary), then fetch/rename/dispatch up
  to the decode width into the ROB and the issue queues, consulting the
  real L1 I-cache and branch predictor (a mispredicted branch stalls
  fetch until it resolves plus the mispredict penalty);
* **integer / floating-point / load-store** — scan the domain's issue
  queue oldest-first and issue ready entries to free functional units;
  loads probe the real L1D/L2 hierarchy.

Cross-domain transfers (dispatched queue entries, operand results,
completion signals) are usable at the first consumer edge at least a
*crossing threshold* after they were produced.  Under MCD the threshold
is the Sjogren-Myers synchronization window; in the fully synchronous
baseline, whose domain clocks share phase exactly, a half-period guard
band makes the rule degenerate to the classic next-edge pipeline stage.
The *inherent* MCD degradation (paper: ~1.3 %) is therefore an output
of the model — random clock phases plus jitter plus window conflicts —
rather than an input.

Same-domain dependencies are tracked in integer cycles (jitter cannot
change a latency expressed in cycles); cross-domain dependencies are
tracked in nanoseconds and pay the synchronization window.

Domains with an empty issue queue are *inactive*: their clocks are
bulk-advanced (and their gated idle energy bulk-charged) at dispatch
and at control-interval boundaries, preserving all observable behaviour
at a fraction of the cost.

The run loop is deliberately monolithic and hand-inlined: this is the
innermost loop of every experiment in the repository, executed hundreds
of millions of times across the benchmark harness.  The architectural
structures it manipulates (queues, ROB, predictor, caches, regulators)
keep their clean class interfaces for construction, inspection and
testing; only their per-cycle state transitions are inlined here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clocks.domain_clock import DomainClock
from repro.clocks.jitter import GaussianJitter, NoJitter
from repro.config.algorithm import AttackDecayParams
from repro.config.mcd import Domain, MCDConfig
from repro.config.processor import ProcessorConfig
from repro.control.base import FrequencyController, IntervalSnapshot
from repro.dvfs.regulator import VoltageFrequencyRegulator
from repro.errors import SimulationError
from repro.power.accounting import EnergyAccounting
from repro.power.wattch import AccessEnergies, DEFAULT_ENERGIES
from repro.uarch.branch_predictor import CombiningBranchPredictor
from repro.uarch.caches import CacheHierarchy, MemoryLevel
from repro.uarch.frontend import TraceCursor
from repro.uarch.functional_units import build_pools
from repro.uarch.isa import InstructionClass
from repro.uarch.queues import IssueQueue, RegisterFile, ReorderBuffer
from repro.uarch.trace import TraceStream

_INF = float("inf")
_EPS_NS = 1e-6
_RING = 2048
_RING_MASK = _RING - 1

# Domain indices used throughout the hot loop.
_FE, _INT, _FP, _LS = 0, 1, 2, 3
_DOMAINS = (Domain.FRONT_END, Domain.INTEGER, Domain.FLOATING_POINT, Domain.LOAD_STORE)
_DOMAIN_INDEX = {dom: i for i, dom in enumerate(_DOMAINS)}

# Destination register type per instruction class (0 int, 1 fp, -1 none).
_DEST_TYPE = {
    int(InstructionClass.INT_ALU): 0,
    int(InstructionClass.INT_MULT): 0,
    int(InstructionClass.FP_ALU): 1,
    int(InstructionClass.FP_MULT): 1,
    int(InstructionClass.LOAD): 0,
    int(InstructionClass.STORE): -1,
    int(InstructionClass.BRANCH): -1,
}

# Issue domain index per instruction class.
_ISSUE_DOMAIN = {
    int(InstructionClass.INT_ALU): _INT,
    int(InstructionClass.INT_MULT): _INT,
    int(InstructionClass.FP_ALU): _FP,
    int(InstructionClass.FP_MULT): _FP,
    int(InstructionClass.LOAD): _LS,
    int(InstructionClass.STORE): _LS,
    int(InstructionClass.BRANCH): _INT,
}


@dataclass(frozen=True)
class CoreOptions:
    """Run-level switches for the core.

    Parameters
    ----------
    mcd:
        True: independent domain clocks with jitter, synchronization
        windows and the MCD clock-energy overhead.  False: the fully
        synchronous baseline (single phase-aligned clock, no windows,
        no overhead).
    seed:
        Seed for clock phases and jitter streams.
    interval_instructions:
        Control interval length (retired instructions).
    record_interval_trace:
        Keep a per-interval log of queue utilizations and frequencies
        (Figures 2 and 3).
    initial_frequencies_mhz:
        Starting frequency per domain (defaults to maximum everywhere —
        the baseline MCD operating point).
    """

    mcd: bool = True
    seed: int = 1
    interval_instructions: int = AttackDecayParams().interval_instructions
    record_interval_trace: bool = False
    initial_frequencies_mhz: dict[Domain, float] | None = None


@dataclass
class IntervalRecord:
    """One control interval's observables (for figure benches)."""

    index: int
    end_instruction: int
    end_time_ns: float
    ipc: float
    queue_utilization: dict[Domain, float]
    frequencies_mhz: dict[Domain, float]


@dataclass
class CoreResult:
    """Everything measured during one run."""

    instructions: int
    wall_time_ns: float
    energy: float
    clock_energy: float
    domain_energy: dict[Domain, float]
    domain_busy_cycles: dict[Domain, int]
    domain_cycles: dict[Domain, int]
    final_frequencies_mhz: dict[Domain, float]
    l1i_miss_rate: float
    l1d_miss_rate: float
    l2_miss_rate: float
    branch_accuracy: float
    branch_lookups: int
    memory_accesses: int
    dispatch_stall_cycles: int
    intervals: list[IntervalRecord] = field(default_factory=list)

    @property
    def cpi(self) -> float:
        """Cycles per instruction referenced to the 1 GHz front-end clock."""
        if not self.instructions:
            return 0.0
        return self.wall_time_ns / self.instructions

    @property
    def epi(self) -> float:
        """Energy per instruction (energy units / instruction)."""
        if not self.instructions:
            return 0.0
        return self.energy / self.instructions

    @property
    def power(self) -> float:
        """Average power (energy units per ns)."""
        if self.wall_time_ns <= 0:
            return 0.0
        return self.energy / self.wall_time_ns

    @property
    def energy_delay_product(self) -> float:
        """Energy x delay."""
        return self.energy * self.wall_time_ns


class MCDCore:
    """One run of the MCD pipeline over a trace.

    Parameters
    ----------
    processor:
        Architectural parameters (Table 4).
    mcd_config:
        Electrical parameters (Table 1).
    trace:
        The dynamic instruction stream.
    controller:
        Optional frequency controller invoked every interval; None
        leaves all domains at their initial frequencies.
    options:
        Run-level switches.
    energies:
        Per-access energy calibration.
    """

    def __init__(
        self,
        processor: ProcessorConfig,
        mcd_config: MCDConfig,
        trace: TraceStream,
        controller: FrequencyController | None = None,
        options: CoreOptions = CoreOptions(),
        energies: AccessEnergies = DEFAULT_ENERGIES,
    ) -> None:
        self.processor = processor
        self.mcd_config = mcd_config
        self.controller = controller
        self.options = options
        self.energies = energies
        self.cursor = TraceCursor(trace)
        self.hierarchy = CacheHierarchy(processor)
        self.predictor = CombiningBranchPredictor(processor)
        self.accounting = EnergyAccounting(
            mcd_config, energies, mcd_clocking=options.mcd
        )
        self._build_clock_domains()
        self._build_pipeline()
        self._build_energy_constants()
        self._build_latency_tables()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _build_clock_domains(self) -> None:
        cfg = self.mcd_config
        opts = self.options
        fmax = cfg.max_frequency_mhz
        initial = opts.initial_frequencies_mhz or {}
        if opts.mcd:
            import random

            phase_rng = random.Random(opts.seed)
            self.window_ns = cfg.sync_window_ns
            jitters = [
                GaussianJitter(cfg.jitter_sigma_ns, seed=opts.seed * 7919 + i)
                for i in range(4)
            ]
            phases = [phase_rng.uniform(0.0, cfg.min_period_ns) for _ in range(4)]
        else:
            self.window_ns = 0.0
            jitters = [NoJitter() for _ in range(4)]
            phases = [0.0] * 4
        self.clocks: list[DomainClock] = []
        self.regulators: list[VoltageFrequencyRegulator] = []
        for i, domain in enumerate(_DOMAINS):
            mhz = initial.get(domain, fmax)
            self.clocks.append(DomainClock(domain.value, mhz, jitters[i], phases[i]))
            self.regulators.append(VoltageFrequencyRegulator(cfg, mhz))

    def _build_pipeline(self) -> None:
        proc = self.processor
        self.rob = ReorderBuffer(proc.reorder_buffer_size)
        self.int_regs = RegisterFile(proc.int_physical_registers)
        self.fp_regs = RegisterFile(proc.fp_physical_registers)
        self.queues = [
            None,
            IssueQueue("IIQ", proc.int_issue_queue_size),
            IssueQueue("FIQ", proc.fp_issue_queue_size),
            IssueQueue("LSQ", proc.load_store_queue_size),
        ]
        pools = build_pools(proc)
        self.pools = [
            None,
            pools["integer"],
            pools["floating_point"],
            pools["load_store"],
        ]
        # Completion tracking rings.
        self.fin_ns = [-_INF] * _RING
        self.fin_cycle = [0] * _RING
        self.fin_domain = [-1] * _RING
        self.dest_type_ring = [-1] * _RING

    def _build_energy_constants(self) -> None:
        e = self.energies
        self._e_dispatch = e.rename_dispatch_per_instruction + e.rob_write
        self._e_fetch = e.fetch_per_instruction
        self._e_retire = e.retire_per_instruction
        self._e_l1i = e.l1i_access
        self._e_bpred = e.branch_predictor_lookup
        # Per issue-domain: (queue write, queue issue+regfile, simple op, complex op)
        self._e_issue = [
            None,
            (e.iq_write, e.iq_issue + e.int_regfile_access, e.int_alu_op, e.int_mult_op),
            (e.fq_write, e.fq_issue + e.fp_regfile_access, e.fp_alu_op, e.fp_mult_op),
            (e.lsq_write, e.lsq_issue, e.l1d_access, e.l1d_access),
        ]
        self._e_l2 = e.l2_access

    def _build_latency_tables(self) -> None:
        proc = self.processor
        self._lat_cycles = [0] * 8
        self._lat_cycles[int(InstructionClass.INT_ALU)] = proc.int_alu_latency
        self._lat_cycles[int(InstructionClass.INT_MULT)] = proc.int_mult_latency
        self._lat_cycles[int(InstructionClass.FP_ALU)] = proc.fp_alu_latency
        self._lat_cycles[int(InstructionClass.FP_MULT)] = proc.fp_mult_latency
        self._lat_cycles[int(InstructionClass.LOAD)] = proc.l1_latency_cycles
        self._lat_cycles[int(InstructionClass.STORE)] = 1
        self._lat_cycles[int(InstructionClass.BRANCH)] = proc.int_alu_latency
        self._complex = [False] * 8
        self._complex[int(InstructionClass.INT_MULT)] = True
        self._complex[int(InstructionClass.FP_MULT)] = True

    # ------------------------------------------------------------------
    def warm_up(self, trace: TraceStream, limit: int) -> int:
        """Pre-touch predictor and caches with the first ``limit`` instructions.

        The paper's simulation windows sample the middle of long runs
        (e.g. instructions 1000 M-1100 M), where predictors and caches
        are warm.  This replays the head of ``trace`` through the
        predictor and cache models only (no pipeline timing), then
        resets their statistics so reported rates cover the measured
        region.  Returns the number of instructions replayed.
        """
        from repro.uarch.branch_predictor import BranchStats
        from repro.uarch.caches import CacheStats

        hierarchy = self.hierarchy
        predictor = self.predictor
        line_shift = hierarchy.l1i.line_shift
        last_line = -1
        kind_branch = int(InstructionClass.BRANCH)
        kind_load = int(InstructionClass.LOAD)
        kind_store = int(InstructionClass.STORE)
        count = 0
        for block in trace.blocks():
            kinds = block.kinds
            pcs = block.pcs
            addrs = block.addrs
            taken = block.taken
            targets = block.targets
            for i in range(len(kinds)):
                line = pcs[i] >> line_shift
                if line != last_line:
                    last_line = line
                    hierarchy.instruction_access(pcs[i])
                kind = kinds[i]
                if kind == kind_branch:
                    predictor.access(pcs[i], taken[i], targets[i])
                elif kind == kind_load or kind == kind_store:
                    hierarchy.data_access(addrs[i])
                count += 1
                if count >= limit:
                    break
            if count >= limit:
                break
        predictor.stats = BranchStats()
        hierarchy.l1i.stats = CacheStats()
        hierarchy.l1d.stats = CacheStats()
        hierarchy.l2.stats = CacheStats()
        return count

    # ------------------------------------------------------------------
    # the run
    # ------------------------------------------------------------------
    def run(self) -> CoreResult:
        """Simulate the whole trace and return the measurements."""
        if self.controller is not None:
            self.controller.begin(
                self.mcd_config,
                {d: self.regulators[i].current_mhz for i, d in enumerate(_DOMAINS)},
            )

        opts = self.options
        window = self.window_ns
        cursor = self.cursor
        total = cursor.total_instructions
        clocks = self.clocks
        regulators = self.regulators
        queues = self.queues
        rob = self.rob
        fin_ns = self.fin_ns
        fin_cycle = self.fin_cycle
        fin_domain = self.fin_domain
        dest_ring = self.dest_type_ring
        lat_cycles = self._lat_cycles
        complex_op = self._complex
        proc = self.processor
        decode_width = proc.decode_width
        retire_width = proc.retire_width
        l1_cycles = proc.l1_latency_cycles
        mem_latency = proc.memory_latency_ns
        l2_cycles = proc.l2_latency_cycles
        mispredict_penalty = proc.branch_mispredict_penalty
        interval_len = opts.interval_instructions
        record_trace = opts.record_interval_trace
        mcd_mode = opts.mcd
        controller = self.controller
        int_regs = self.int_regs
        fp_regs = self.fp_regs
        hierarchy = self.hierarchy
        predictor = self.predictor
        mem_level_l1 = MemoryLevel.L1
        mem_level_l2 = MemoryLevel.L2

        # --- per-domain cached operating point (freq/period/vscale) ------
        cfg = self.mcd_config
        vmin = cfg.min_voltage_v
        fmin = cfg.min_frequency_mhz
        vslope = (cfg.max_voltage_v - vmin) / (cfg.max_frequency_mhz - fmin)
        vmax_sq_inv = 1.0 / (cfg.max_voltage_v * cfg.max_voltage_v)

        def vscale_of(freq_mhz: float) -> float:
            v = vmin + (freq_mhz - fmin) * vslope
            return v * v * vmax_sq_inv

        cur_freq = [r.current_mhz for r in regulators]
        cur_period = [1e3 / f for f in cur_freq]
        cur_vscale = [vscale_of(f) for f in cur_freq]
        for i in range(4):
            clocks[i].period_ns = cur_period[i]

        # --- inlined energy accumulators ----------------------------------
        acct = self.accounting
        clock_e = [acct.clock_cycle_energy(dom) for dom in _DOMAINS]
        idle_e = [acct.idle_cycle_energy(dom) for dom in _DOMAINS]
        acc_clock = [0.0, 0.0, 0.0, 0.0]
        acc_struct = [0.0, 0.0, 0.0, 0.0]
        n_busy = [0, 0, 0, 0]
        n_idle = [0, 0, 0, 0]

        # --- inlined functional-unit widths -------------------------------
        simple_w = [0] + [self.pools[i].simple_units for i in (1, 2, 3)]
        complex_w = [0] + [self.pools[i].complex_units for i in (1, 2, 3)]

        active = [True, False, False, False]
        retired = 0
        seq_counter = 0
        fetch_resume_ns = 0.0  # fetch stalled until this time (icache / branch)
        branch_stall_seq = -1  # seq of unresolved mispredicted branch, -1 if none
        dispatch_stall_cycles = 0
        memory_accesses = 0
        interval_start_ns = 0.0
        next_interval = interval_len
        interval_index = 0
        busy_in_interval = [0, 0, 0, 0]
        intervals: list[IntervalRecord] = []
        line_shift = hierarchy.l1i.line_shift
        last_fetch_line = -1

        kind_load = int(InstructionClass.LOAD)
        kind_store = int(InstructionClass.STORE)
        kind_branch = int(InstructionClass.BRANCH)

        clock_fe = clocks[_FE]
        next_edges = [c.next_edge_ns for c in clocks]

        while retired < total:
            # Earliest pending edge among active domains.
            d = 0
            t = next_edges[0]
            if active[1] and next_edges[1] < t:
                d, t = 1, next_edges[1]
            if active[2] and next_edges[2] < t:
                d, t = 2, next_edges[2]
            if active[3] and next_edges[3] < t:
                d, t = 3, next_edges[3]

            regulator = regulators[d]
            if regulator.current_mhz != regulator.target_mhz:
                freq = regulator.advance_to(t)
                if freq != cur_freq[d]:
                    cur_freq[d] = freq
                    cur_period[d] = 1e3 / freq
                    cur_vscale[d] = vscale_of(freq)
                    clocks[d].period_ns = cur_period[d]
            clock = clocks[d]
            vscale = cur_vscale[d]

            if d == _FE:
                access_energy = 0.0
                worked = False

                # ---- retire ------------------------------------------------
                cross_thresh = window if mcd_mode else 0.5 * cur_period[0]
                n_retire = 0
                rob_entries = rob.entries
                while rob_entries and n_retire < retire_width:
                    seq = rob_entries[0]
                    slot = seq & _RING_MASK
                    if fin_ns[slot] + cross_thresh > t + _EPS_NS:
                        break
                    rob_entries.popleft()
                    dest = dest_ring[slot]
                    if dest == 0:
                        int_regs.free += 1
                    elif dest == 1:
                        fp_regs.free += 1
                    n_retire += 1
                retired += n_retire
                if n_retire:
                    worked = True
                    access_energy += n_retire * self._e_retire

                # ---- interval rollover --------------------------------------
                if retired >= next_interval:
                    interval_index += 1
                    next_interval += interval_len
                    duration = t - interval_start_ns
                    if duration <= 0:
                        duration = cur_period[0]
                    # Catch up every regulator (so slew timing is exact
                    # when new targets are applied below) and the clocks
                    # and idle energy of inactive domains.
                    for i in (1, 2, 3):
                        ireg = regulators[i]
                        ifreq = ireg.advance_to(t)
                        if ifreq != cur_freq[i]:
                            cur_freq[i] = ifreq
                            cur_period[i] = 1e3 / ifreq
                            cur_vscale[i] = vscale_of(ifreq)
                            clocks[i].period_ns = cur_period[i]
                        if not active[i]:
                            skipped = clocks[i].skip_idle_until(t)
                            if skipped:
                                acc_clock[i] += idle_e[i] * cur_vscale[i] * skipped
                                n_idle[i] += skipped
                            next_edges[i] = clocks[i].next_edge_ns
                    qutil = {
                        Domain.INTEGER: queues[_INT].take_occupancy() / interval_len,
                        Domain.FLOATING_POINT: queues[_FP].take_occupancy()
                        / interval_len,
                        Domain.LOAD_STORE: queues[_LS].take_occupancy() / interval_len,
                    }
                    ipc = interval_len / (duration * cur_freq[0] * 1e-3)
                    if controller is not None or record_trace:
                        freqs = {
                            dom: cur_freq[i] for i, dom in enumerate(_DOMAINS)
                        }
                        busy_frac = {}
                        for i, dom in enumerate(_DOMAINS):
                            busy_frac[dom] = min(
                                1.0, busy_in_interval[i] * cur_period[i] / duration
                            )
                        snapshot = IntervalSnapshot(
                            index=interval_index - 1,
                            instructions=interval_len,
                            time_ns=t,
                            duration_ns=duration,
                            ipc=ipc,
                            queue_utilization=qutil,
                            busy_fraction=busy_frac,
                            frequencies_mhz=freqs,
                        )
                        if controller is not None:
                            targets = controller.on_interval(snapshot)
                            if targets:
                                snap = getattr(controller, "instantaneous", False)
                                for dom, mhz in targets.items():
                                    i = _DOMAIN_INDEX[dom]
                                    reg = regulators[i]
                                    if snap:
                                        reg.snap_to(mhz)
                                        f2 = reg.current_mhz
                                        if f2 != cur_freq[i]:
                                            cur_freq[i] = f2
                                            cur_period[i] = 1e3 / f2
                                            cur_vscale[i] = vscale_of(f2)
                                            clocks[i].period_ns = cur_period[i]
                                    else:
                                        reg.request(mhz)
                        if record_trace:
                            intervals.append(
                                IntervalRecord(
                                    index=interval_index - 1,
                                    end_instruction=retired,
                                    end_time_ns=t,
                                    ipc=ipc,
                                    queue_utilization=qutil,
                                    frequencies_mhz=freqs,
                                )
                            )
                    busy_in_interval = [0, 0, 0, 0]
                    interval_start_ns = t

                # ---- fetch / dispatch ---------------------------------------
                if (
                    branch_stall_seq < 0
                    and t + _EPS_NS >= fetch_resume_ns
                    and not cursor.exhausted
                ):
                    fetched = 0
                    stalled = False
                    while fetched < decode_width:
                        if cursor.exhausted:
                            break
                        kind = cursor.kind
                        # I-cache: one lookup per new fetch line.
                        pc = cursor.pc
                        line = pc >> line_shift
                        if line != last_fetch_line:
                            last_fetch_line = line
                            access_energy += self._e_l1i
                            level = hierarchy.instruction_access(pc)
                            if level is not mem_level_l1:
                                delay = l2_cycles * cur_period[_LS] + 2.0 * window
                                access_energy += self._e_l2
                                if level is not mem_level_l2:
                                    delay += mem_latency
                                    memory_accesses += 1
                                fetch_resume_ns = t + delay
                                break
                        # Structural dispatch constraints.
                        if not rob.has_space:
                            stalled = True
                            break
                        qd = _ISSUE_DOMAIN[kind]
                        queue = queues[qd]
                        if len(queue.entries) >= queue.capacity:
                            stalled = True
                            break
                        dest = _DEST_TYPE[kind]
                        if dest == 0:
                            if int_regs.free <= 0:
                                stalled = True
                                break
                            int_regs.free -= 1
                        elif dest == 1:
                            if fp_regs.free <= 0:
                                stalled = True
                                break
                            fp_regs.free -= 1

                        # Rename/dispatch.
                        seq_counter += 1
                        seq = seq_counter
                        slot = seq & _RING_MASK
                        fin_ns[slot] = _INF
                        fin_domain[slot] = -1
                        dest_ring[slot] = dest
                        s1 = cursor.src1
                        s2 = cursor.src2
                        p1 = seq - s1 if s1 and s1 < seq else 0
                        p2 = seq - s2 if s2 and s2 < seq else 0
                        mispredicted = False
                        if kind == kind_branch:
                            access_energy += self._e_bpred
                            mispredicted = predictor.access(
                                pc, cursor.taken, cursor.target
                            )
                        queue.entries.append([seq, kind, t, p1, p2, cursor.addr, 0.0])
                        queue.writes += 1
                        if not active[qd]:
                            qreg = regulators[qd]
                            qfreq = qreg.advance_to(t)
                            if qfreq != cur_freq[qd]:
                                cur_freq[qd] = qfreq
                                cur_period[qd] = 1e3 / qfreq
                                cur_vscale[qd] = vscale_of(qfreq)
                                clocks[qd].period_ns = cur_period[qd]
                            skipped = clocks[qd].skip_idle_until(t)
                            if skipped:
                                acc_clock[qd] += idle_e[qd] * cur_vscale[qd] * skipped
                                n_idle[qd] += skipped
                            next_edges[qd] = clocks[qd].next_edge_ns
                            active[qd] = True
                        rob.entries.append(seq)
                        access_energy += self._e_dispatch + self._e_fetch
                        cursor.pop()
                        fetched += 1
                        if mispredicted:
                            branch_stall_seq = seq
                            break
                    if fetched:
                        worked = True
                    elif stalled:
                        dispatch_stall_cycles += 1

                if worked:
                    busy_in_interval[0] += 1
                    n_busy[0] += 1
                    acc_clock[0] += clock_e[0] * vscale
                    acc_struct[0] += access_energy * vscale
                else:
                    n_idle[0] += 1
                    acc_clock[0] += idle_e[0] * vscale
                    if access_energy:
                        acc_struct[0] += access_energy * vscale
                next_edges[0] = clock_fe.advance()

            else:
                # ---- issue domain (integer / fp / load-store) ----------------
                queue = queues[d]
                entries = queue.entries
                queue.occupancy_accumulated += len(entries)
                issued_any = False
                access_energy = 0.0
                e_tuple = self._e_issue[d]
                e_issue = e_tuple[1]
                e_simple = e_tuple[2]
                e_complex = e_tuple[3]
                cross_thresh = window if mcd_mode else 0.5 * cur_period[d]
                cyc = clock.cycle_index
                period = cur_period[d]
                sfree = simple_w[d]
                cfree = complex_w[d]
                for entry in entries:
                    if entry[6] > t:
                        continue
                    if t - entry[2] < cross_thresh:
                        # Dispatch not yet synchronized into this domain;
                        # younger entries arrived even later.
                        break
                    p1 = entry[3]
                    if p1:
                        slot1 = p1 & _RING_MASK
                        fd = fin_domain[slot1]
                        if fd < 0:
                            continue
                        if fd == d:
                            if fin_cycle[slot1] > cyc:
                                continue
                        else:
                            nb = fin_ns[slot1] + cross_thresh
                            if nb > t + _EPS_NS:
                                entry[6] = nb
                                continue
                    p2 = entry[4]
                    if p2:
                        slot2 = p2 & _RING_MASK
                        fd = fin_domain[slot2]
                        if fd < 0:
                            continue
                        if fd == d:
                            if fin_cycle[slot2] > cyc:
                                continue
                        else:
                            nb = fin_ns[slot2] + cross_thresh
                            if nb > t + _EPS_NS:
                                entry[6] = nb
                                continue
                    kind = entry[1]
                    if complex_op[kind]:
                        if cfree <= 0:
                            continue
                        cfree -= 1
                        access_energy += e_complex
                        lat_c = lat_cycles[kind]
                        lat = lat_c * period
                    elif sfree <= 0:
                        if cfree <= 0:
                            break
                        continue
                    elif kind == kind_load:
                        sfree -= 1
                        level = hierarchy.data_access(entry[5])
                        access_energy += e_simple  # L1D probe
                        if level is mem_level_l1:
                            lat = l1_cycles * period
                            lat_c = l1_cycles
                        elif level is mem_level_l2:
                            access_energy += self._e_l2
                            lat = l2_cycles * period
                            lat_c = l2_cycles
                        else:
                            access_energy += self._e_l2
                            memory_accesses += 1
                            lat = l2_cycles * period + mem_latency + 2.0 * window
                            lat_c = int(lat / period) + 1
                    elif kind == kind_store:
                        sfree -= 1
                        hierarchy.data_access(entry[5])
                        access_energy += e_simple
                        lat = period
                        lat_c = 1
                    else:
                        sfree -= 1
                        access_energy += e_simple
                        lat_c = lat_cycles[kind]
                        lat = lat_c * period
                    # Issue!
                    seq = entry[0]
                    finish = t + lat
                    slot = seq & _RING_MASK
                    fin_ns[slot] = finish
                    fin_cycle[slot] = cyc + lat_c
                    fin_domain[slot] = d
                    access_energy += e_issue
                    issued_any = True
                    if seq == branch_stall_seq:
                        branch_stall_seq = -1
                        resume = finish + window + mispredict_penalty * cur_period[0]
                        if resume > fetch_resume_ns:
                            fetch_resume_ns = resume
                    if sfree <= 0 and cfree <= 0:
                        break
                # Rebuild the queue without the entries issued this
                # cycle: an entry's ring slot holds -1 from dispatch
                # until the moment it issues.
                if issued_any:
                    queue.entries = [
                        e for e in entries if fin_domain[e[0] & _RING_MASK] == -1
                    ]
                    busy_in_interval[d] += 1
                    n_busy[d] += 1
                    acc_clock[d] += clock_e[d] * vscale
                    acc_struct[d] += access_energy * vscale
                    if queue.entries:
                        next_edges[d] = clock.advance()
                    else:
                        active[d] = False
                        clock.advance()
                else:
                    n_idle[d] += 1
                    acc_clock[d] += idle_e[d] * vscale
                    next_edges[d] = clock.advance()

            # Safety valve: the trace must keep draining.
            if cursor.exhausted and not rob.entries and retired < total:
                raise SimulationError(
                    f"trace exhausted with {retired}/{total} retired"
                )

        wall = clocks[_FE].next_edge_ns
        # Final catch-up: idle tails of inactive domains still burn
        # gated clock energy until the program ends.
        for i in (1, 2, 3):
            ireg = regulators[i]
            ifreq = ireg.advance_to(wall)
            if ifreq != cur_freq[i]:
                cur_freq[i] = ifreq
                cur_vscale[i] = vscale_of(ifreq)
            skipped = clocks[i].skip_idle_until(wall)
            if skipped:
                acc_clock[i] += idle_e[i] * cur_vscale[i] * skipped
                n_idle[i] += skipped

        # Flush the inlined accumulators into the accounting meters.
        for i, dom in enumerate(_DOMAINS):
            acct.add_raw(dom, acc_clock[i], acc_struct[i], n_busy[i], n_idle[i])
        acct.add_memory_accesses(memory_accesses)

        return self._build_result(
            retired, wall, memory_accesses, dispatch_stall_cycles, intervals
        )

    # ------------------------------------------------------------------
    def _build_result(
        self,
        retired: int,
        wall_ns: float,
        memory_accesses: int,
        dispatch_stall_cycles: int,
        intervals: list[IntervalRecord],
    ) -> CoreResult:
        meters = self.accounting.meters
        return CoreResult(
            instructions=retired,
            wall_time_ns=wall_ns,
            energy=self.accounting.total_energy,
            clock_energy=self.accounting.total_clock_energy,
            domain_energy={d: m.total_energy for d, m in meters.items()},
            domain_busy_cycles={d: m.busy_cycles for d, m in meters.items()},
            domain_cycles={d: m.cycles for d, m in meters.items()},
            final_frequencies_mhz={
                dom: self.regulators[i].current_mhz for i, dom in enumerate(_DOMAINS)
            },
            l1i_miss_rate=self.hierarchy.l1i.stats.miss_rate,
            l1d_miss_rate=self.hierarchy.l1d.stats.miss_rate,
            l2_miss_rate=self.hierarchy.l2.stats.miss_rate,
            branch_accuracy=self.predictor.stats.accuracy,
            branch_lookups=self.predictor.stats.lookups,
            memory_accesses=memory_accesses,
            dispatch_stall_cycles=dispatch_stall_cycles,
            intervals=intervals,
        )
