"""Block-structured dynamic instruction traces.

A trace is a sequence of :class:`InstructionBlock` objects, each a
struct-of-arrays over a few thousand dynamic instructions.  Blocks are
produced lazily by workload generators and consumed once by the core's
*reference* path, so arbitrarily long runs use bounded memory.  The
production path compiles the same stream into whole-trace columnar
form instead (:mod:`repro.uarch.compiled_trace`), trading memory for
the batched fast path; both views come from one generator routine and
are identical instruction for instruction.

Per-instruction fields
----------------------
``kinds[i]``
    :class:`~repro.uarch.isa.InstructionClass` code.
``src1[i]``, ``src2[i]``
    Dependency distances: how many dynamic instructions earlier the
    producing instruction ran (0 = no register dependency).  Bounded by
    :data:`MAX_DEP_DISTANCE` so the core can use a fixed-size
    completion ring.
``pcs[i]``
    Instruction address (drives the L1 I-cache and branch predictor).
``addrs[i]``
    Effective address for loads/stores, else 0 (drives L1D/L2).
``taken[i]``
    Branch outcome (branches only).
``targets[i]``
    Branch target address (branches only; drives the BTB).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Protocol

from repro.errors import TraceError
from repro.uarch.isa import NUM_CLASSES, InstructionClass

#: Upper bound on register dependency distances in any trace.
MAX_DEP_DISTANCE = 512


@dataclass
class InstructionBlock:
    """A struct-of-arrays block of dynamic instructions.

    All lists have identical length.  Plain Python lists (not numpy)
    because the reference simulation path consumes them element-wise,
    where list indexing beats numpy scalar indexing.
    """

    kinds: list[int] = field(default_factory=list)
    src1: list[int] = field(default_factory=list)
    src2: list[int] = field(default_factory=list)
    pcs: list[int] = field(default_factory=list)
    addrs: list[int] = field(default_factory=list)
    taken: list[bool] = field(default_factory=list)
    targets: list[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.kinds)

    def validate(self) -> None:
        """Check structural invariants; raise :class:`TraceError` if broken."""
        n = len(self.kinds)
        arrays = (
            self.src1,
            self.src2,
            self.pcs,
            self.addrs,
            self.taken,
            self.targets,
        )
        if any(len(a) != n for a in arrays):
            raise TraceError("instruction block arrays have mismatched lengths")
        for i in range(n):
            if not 0 <= self.kinds[i] < NUM_CLASSES:
                raise TraceError(f"instruction {i}: bad class code {self.kinds[i]}")
            if not 0 <= self.src1[i] <= MAX_DEP_DISTANCE:
                raise TraceError(f"instruction {i}: src1 distance out of range")
            if not 0 <= self.src2[i] <= MAX_DEP_DISTANCE:
                raise TraceError(f"instruction {i}: src2 distance out of range")
            if self.pcs[i] < 0 or self.addrs[i] < 0 or self.targets[i] < 0:
                raise TraceError(f"instruction {i}: negative address")

    def append(
        self,
        kind: InstructionClass,
        src1: int = 0,
        src2: int = 0,
        pc: int = 0,
        addr: int = 0,
        taken: bool = False,
        target: int = 0,
    ) -> None:
        """Append one instruction (test/builder convenience)."""
        self.kinds.append(int(kind))
        self.src1.append(src1)
        self.src2.append(src2)
        self.pcs.append(pc)
        self.addrs.append(addr)
        self.taken.append(taken)
        self.targets.append(target)

    def class_counts(self) -> dict[InstructionClass, int]:
        """Histogram of instruction classes in this block."""
        counts = dict.fromkeys(InstructionClass, 0)
        for code in self.kinds:
            counts[InstructionClass(code)] += 1
        return counts


class TraceStream(Protocol):
    """A lazily generated sequence of instruction blocks.

    Implementations must also expose the total number of instructions
    they will produce, so the core can size progress accounting.
    """

    @property
    def total_instructions(self) -> int:
        """Exact number of dynamic instructions the stream will yield."""
        ...

    def blocks(self) -> Iterator[InstructionBlock]:
        """Yield the trace, block by block, exactly once."""
        ...


class ListTrace:
    """An in-memory trace over pre-built blocks (tests, tiny examples)."""

    def __init__(self, blocks: Iterable[InstructionBlock]) -> None:
        self._blocks = list(blocks)
        for block in self._blocks:
            block.validate()
        self._total = sum(len(b) for b in self._blocks)

    @property
    def total_instructions(self) -> int:
        """Total instructions across all blocks."""
        return self._total

    def blocks(self) -> Iterator[InstructionBlock]:
        """Iterate over the stored blocks."""
        return iter(self._blocks)
