"""Combining branch predictor with BTB (paper Table 4, SimpleScalar style).

Components:

* a **bimodal** predictor: 2-bit saturating counters indexed by PC;
* a **two-level** predictor: a first-level table of per-PC history
  registers feeding a second-level pattern history table of 2-bit
  counters;
* a **combining (meta) predictor**: 2-bit counters that select which
  component to trust, trained whenever the components disagree;
* a **branch target buffer**: set-associative, LRU, providing targets
  for predicted-taken branches.

A branch is mispredicted when the direction is wrong, or when it is
taken and the BTB cannot supply the correct target.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.processor import ProcessorConfig


def _counter_update(counter: int, taken: bool) -> int:
    """2-bit saturating counter update."""
    if taken:
        return counter + 1 if counter < 3 else 3
    return counter - 1 if counter > 0 else 0


@dataclass
class BranchStats:
    """Prediction outcome counts."""

    lookups: int = 0
    direction_mispredicts: int = 0
    btb_target_misses: int = 0

    @property
    def mispredicts(self) -> int:
        """Total mispredictions (direction plus taken-with-bad-target)."""
        return self.direction_mispredicts + self.btb_target_misses

    @property
    def accuracy(self) -> float:
        """Fraction of lookups predicted correctly."""
        if not self.lookups:
            return 1.0
        return 1.0 - self.mispredicts / self.lookups


class BranchTargetBuffer:
    """Set-associative BTB with LRU replacement."""

    def __init__(self, sets: int, ways: int) -> None:
        if sets < 1 or ways < 1:
            raise ValueError("BTB sets and ways must be positive")
        self.sets = sets
        self.ways = ways
        # Per set: list of (tag, target), most recently used last.
        self._table: list[list[tuple[int, int]]] = [[] for _ in range(sets)]

    def lookup(self, pc: int) -> int | None:
        """Return the stored target for ``pc``, or None on a miss.

        Indexed by word address (pc >> 2): instruction addresses are
        4-byte aligned, so byte indexing would leave 3/4 of the sets
        unused.
        """
        word = pc >> 2
        entry_set = self._table[word % self.sets]
        tag = word // self.sets
        for i, (stored_tag, target) in enumerate(entry_set):
            if stored_tag == tag:
                # Move to MRU position.
                entry_set.append(entry_set.pop(i))
                return target
        return None

    def update(self, pc: int, target: int) -> None:
        """Install/refresh the target for ``pc``."""
        word = pc >> 2
        entry_set = self._table[word % self.sets]
        tag = word // self.sets
        for i, (stored_tag, _) in enumerate(entry_set):
            if stored_tag == tag:
                entry_set.pop(i)
                break
        entry_set.append((tag, target))
        if len(entry_set) > self.ways:
            entry_set.pop(0)


class CombiningBranchPredictor:
    """The ``comb`` predictor of Table 4.

    Parameters come from :class:`ProcessorConfig`; all tables start in
    weakly-not-taken / no-history state.
    """

    def __init__(self, config: ProcessorConfig) -> None:
        self.config = config
        self._history = [0] * config.bpred_l1_entries
        self._history_mask = (1 << config.bpred_history_bits) - 1
        self._l2 = [1] * config.bpred_l2_entries
        self._bimodal = [1] * config.bpred_bimodal_entries
        self._meta = [2] * config.bpred_combining_entries
        self.btb = BranchTargetBuffer(config.btb_sets, config.btb_ways)
        self.stats = BranchStats()

    # --- prediction ----------------------------------------------------------
    def predict_direction(self, pc: int) -> tuple[bool, bool, bool]:
        """Predict ``pc``; returns (prediction, two_level_pred, bimodal_pred).

        All tables are indexed by word address (pc >> 2); byte indexing
        would alias 4-byte-aligned instructions onto a quarter of each
        table.
        """
        word = pc >> 2
        history = self._history[word % len(self._history)]
        l2_index = (history ^ word) % len(self._l2)
        two_level = self._l2[l2_index] >= 2
        bimodal = self._bimodal[word % len(self._bimodal)] >= 2
        use_two_level = self._meta[word % len(self._meta)] >= 2
        prediction = two_level if use_two_level else bimodal
        return prediction, two_level, bimodal

    def access(self, pc: int, taken: bool, target: int) -> bool:
        """Predict, train, and return whether the branch mispredicted.

        ``taken``/``target`` are the trace's actual outcome; training
        happens immediately (trace-driven approximation of
        update-at-resolve).
        """
        self.stats.lookups += 1
        prediction, two_level, bimodal = self.predict_direction(pc)

        mispredicted = prediction != taken
        if mispredicted:
            self.stats.direction_mispredicts += 1
        elif taken:
            btb_target = self.btb.lookup(pc)
            if btb_target != target:
                self.stats.btb_target_misses += 1
                mispredicted = True

        self._train(pc, taken, two_level, bimodal)
        if taken:
            self.btb.update(pc, target)
        return mispredicted

    # --- training ------------------------------------------------------------
    def _train(self, pc: int, taken: bool, two_level: bool, bimodal: bool) -> None:
        word = pc >> 2
        history_index = word % len(self._history)
        history = self._history[history_index]
        l2_index = (history ^ word) % len(self._l2)
        self._l2[l2_index] = _counter_update(self._l2[l2_index], taken)
        bim_index = word % len(self._bimodal)
        self._bimodal[bim_index] = _counter_update(self._bimodal[bim_index], taken)
        if two_level != bimodal:
            meta_index = word % len(self._meta)
            self._meta[meta_index] = _counter_update(
                self._meta[meta_index], two_level == taken
            )
        self._history[history_index] = ((history << 1) | int(taken)) & self._history_mask
