"""Instruction classes of the trace-driven ISA.

The simulator is trace driven: workloads emit a stream of dynamic
instructions, each tagged with one of these classes.  The class
determines which domain executes the instruction, which issue queue
buffers it, which functional unit it needs and its execution latency.
"""

from __future__ import annotations

import enum

from repro.config.mcd import Domain


class InstructionClass(enum.IntEnum):
    """Dynamic instruction classes.

    IntEnum so trace blocks can store compact integer codes; the
    numeric values are part of the trace format and must not change.
    """

    INT_ALU = 0
    INT_MULT = 1
    FP_ALU = 2
    FP_MULT = 3
    LOAD = 4
    STORE = 5
    BRANCH = 6

    @property
    def domain(self) -> Domain:
        """The execution domain for this class."""
        return _DOMAIN_OF[self]

    @property
    def is_memory(self) -> bool:
        """Whether the instruction occupies the load/store queue."""
        return self in (InstructionClass.LOAD, InstructionClass.STORE)

    @property
    def is_floating_point(self) -> bool:
        """Whether the instruction occupies the FP issue queue."""
        return self in (InstructionClass.FP_ALU, InstructionClass.FP_MULT)


_DOMAIN_OF = {
    InstructionClass.INT_ALU: Domain.INTEGER,
    InstructionClass.INT_MULT: Domain.INTEGER,
    InstructionClass.FP_ALU: Domain.FLOATING_POINT,
    InstructionClass.FP_MULT: Domain.FLOATING_POINT,
    InstructionClass.LOAD: Domain.LOAD_STORE,
    InstructionClass.STORE: Domain.LOAD_STORE,
    InstructionClass.BRANCH: Domain.INTEGER,
}

#: Number of distinct instruction classes (trace-format constant).
NUM_CLASSES = len(InstructionClass)

#: Destination register type per class code: 0 integer, 1 floating
#: point, -1 no destination.  Shared by the core's dispatch loop and the
#: trace compiler (:mod:`repro.uarch.compiled_trace`) so both paths
#: rename identically.
DEST_REGISTER_TYPE: dict[int, int] = {
    int(InstructionClass.INT_ALU): 0,
    int(InstructionClass.INT_MULT): 0,
    int(InstructionClass.FP_ALU): 1,
    int(InstructionClass.FP_MULT): 1,
    int(InstructionClass.LOAD): 0,
    int(InstructionClass.STORE): -1,
    int(InstructionClass.BRANCH): -1,
}

#: Issue-domain index per class code, using the core's domain ordering
#: (0 front end, 1 integer, 2 floating point, 3 load/store).  Branches
#: issue to the integer domain (they execute on integer ALUs).
ISSUE_DOMAIN_INDEX: dict[int, int] = {
    int(InstructionClass.INT_ALU): 1,
    int(InstructionClass.INT_MULT): 1,
    int(InstructionClass.FP_ALU): 2,
    int(InstructionClass.FP_MULT): 2,
    int(InstructionClass.LOAD): 3,
    int(InstructionClass.STORE): 3,
    int(InstructionClass.BRANCH): 1,
}
