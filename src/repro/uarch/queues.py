"""Decoupling queues: issue queues, load/store queue, reorder buffer.

These are the structures the Attack/Decay controller observes: each
controlled domain has a queue at its input, and the controller's signal
is the queue's occupancy accumulated every domain cycle and normalised
by the interval length in instructions (paper Section 3 / Figure 3
caption — the average can exceed the queue size when an interval takes
more cycles than instructions).
"""

from __future__ import annotations

from collections import deque

from repro.errors import SimulationError


class IssueQueue:
    """A bounded in-order-scan issue window.

    Entries are opaque to the queue (the core stores small lists); the
    queue provides capacity checking and per-cycle occupancy
    accumulation.  Entries are kept in dispatch order, so the core's
    issue scan is oldest-first.

    The ``entries`` list's *identity* is part of the contract: the
    core's batched fast path holds a direct reference to it and
    rebuilds it in place (slice assignment), so replacing the list
    object mid-run would silently fork the state.
    """

    __slots__ = ("name", "capacity", "entries", "occupancy_accumulated", "writes")

    def __init__(self, name: str, capacity: int) -> None:
        if capacity < 1:
            raise SimulationError(f"{name}: capacity must be positive")
        self.name = name
        self.capacity = capacity
        self.entries: list = []
        #: Sum over observed cycles of instantaneous occupancy.
        self.occupancy_accumulated = 0
        #: Total entries ever written (energy/traffic accounting).
        self.writes = 0

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def has_space(self) -> bool:
        """Whether one more entry fits."""
        return len(self.entries) < self.capacity

    def write(self, entry) -> None:
        """Append ``entry``; raises if the queue is full."""
        if len(self.entries) >= self.capacity:
            raise SimulationError(f"{self.name}: write to full queue")
        self.entries.append(entry)
        self.writes += 1

    def accumulate_occupancy(self, cycles: int = 1) -> None:
        """Record instantaneous occupancy for ``cycles`` clock cycles."""
        self.occupancy_accumulated += len(self.entries) * cycles

    def take_occupancy(self) -> int:
        """Return and reset the accumulated occupancy (interval rollover)."""
        value = self.occupancy_accumulated
        self.occupancy_accumulated = 0
        return value


class ReorderBuffer:
    """In-order retirement window (ROB).

    Stores sequence numbers in dispatch order; the core retires from
    the head when the instruction's completion is visible in the
    front-end domain.
    """

    __slots__ = ("capacity", "entries")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise SimulationError("ROB capacity must be positive")
        self.capacity = capacity
        self.entries: deque[int] = deque()

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def has_space(self) -> bool:
        """Whether one more instruction can dispatch."""
        return len(self.entries) < self.capacity

    @property
    def head(self) -> int:
        """Sequence number at the head (next to retire)."""
        return self.entries[0]

    def dispatch(self, seq: int) -> None:
        """Insert ``seq`` at the tail."""
        if len(self.entries) >= self.capacity:
            raise SimulationError("ROB overflow")
        self.entries.append(seq)

    def retire_head(self) -> int:
        """Remove and return the head sequence number."""
        return self.entries.popleft()


class RegisterFile:
    """Physical register rename pool (counter model).

    Table 4 gives 72 integer + 72 floating-point physical registers;
    with 32 architectural registers each, 40 are available for rename.
    Dispatch blocks when no free register of the needed type remains,
    and retirement frees the previous mapping.
    """

    __slots__ = ("total", "free")

    ARCHITECTURAL = 32

    def __init__(self, total: int) -> None:
        if total <= self.ARCHITECTURAL:
            raise SimulationError(
                f"physical register file ({total}) must exceed "
                f"{self.ARCHITECTURAL} architectural registers"
            )
        self.total = total
        self.free = total - self.ARCHITECTURAL

    @property
    def has_free(self) -> bool:
        """Whether a rename register is available."""
        return self.free > 0

    def allocate(self) -> None:
        """Take one rename register."""
        if self.free <= 0:
            raise SimulationError("register file underflow")
        self.free -= 1

    def release(self) -> None:
        """Return one rename register (at retirement)."""
        if self.free >= self.total - self.ARCHITECTURAL:
            raise SimulationError("register file overflow")
        self.free += 1
