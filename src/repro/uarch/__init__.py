"""Microarchitecture substrate: the Alpha 21264-like MCD core.

Modules
-------
``isa``
    Instruction classes and their domain/latency mapping.
``trace``
    Block-structured instruction traces and the stream protocol.
``branch_predictor``
    SimpleScalar-style combining predictor (2-level + bimodal + meta)
    with a set-associative BTB.
``caches``
    Set-associative LRU caches and the L1I/L1D/L2/memory hierarchy.
``queues``
    Issue queues, load/store queue and reorder buffer with occupancy
    accounting (the controller's observable).
``functional_units``
    Per-domain execution resources.
``frontend``
    Fetch/rename/dispatch stage (front-end domain).
``core``
    The cycle-approximate four-domain out-of-order pipeline.
"""

from repro.uarch.core import CoreOptions, CoreResult, MCDCore
from repro.uarch.isa import InstructionClass
from repro.uarch.trace import InstructionBlock, TraceStream

__all__ = [
    "CoreOptions",
    "CoreResult",
    "InstructionBlock",
    "InstructionClass",
    "MCDCore",
    "TraceStream",
]
