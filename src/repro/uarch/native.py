"""Build/load glue for the native hot-path extension.

The batched core loop exists three times, in strictly decreasing
portability and increasing speed: the generator reference path, the
pure-Python compiled path, and the C translation in ``_hotpath.c``.
This module owns the third: it compiles the C source into a shared
object on first use (plain ``cc -O2 -fPIC -shared``, no build system,
no new dependencies) and loads it as a CPython extension module.

Floating-point identity is part of the contract, so the build disables
FP contraction (``-ffp-contract=off``): a fused multiply-add rounds
once where CPython rounds twice, and the equivalence property tests
would catch the drift.

The artifact stamp covers everything that determines codegen: the C
source, the interpreter ABI, and the resolved compiler (path plus
``--version`` output), so switching ``CC`` or upgrading the toolchain
rebuilds instead of silently reusing a stale ``.so``.

Loading is thread-safe: the first caller (from any thread — the
orchestrator's thread backend probes this module concurrently)
compiles and loads under a lock, everyone else reuses the cached
module object.  The extension itself releases the GIL for its compute
stage, so concurrent runs over it genuinely overlap.

Everything degrades gracefully: no compiler, a failed build, or
``REPRO_NATIVE=0`` simply mean :func:`load_hotpath` returns ``None``
and the core stays on the pure-Python compiled path.
"""

from __future__ import annotations

import hashlib
import importlib.machinery
import importlib.util
import logging
import os
import shutil
import subprocess
import sysconfig
import threading
from pathlib import Path

logger = logging.getLogger(__name__)

_SOURCE = Path(__file__).resolve().parent / "_hotpath.c"
_BUILD_DIR = Path(__file__).resolve().parents[3] / "build" / "hotpath"

_cached: object | None = None
_attempted = False
_load_lock = threading.Lock()


def native_enabled() -> bool:
    """Whether the native path may be used (``REPRO_NATIVE`` != 0)."""
    return os.environ.get("REPRO_NATIVE", "1") != "0"


def _resolve_compiler() -> str | None:
    """The C compiler to build with (``CC``, else cc/gcc/clang), or None."""
    return (
        os.environ.get("CC")
        or shutil.which("cc")
        or shutil.which("gcc")
        or shutil.which("clang")
    )


def _compiler_identity(compiler: str) -> bytes:
    """Codegen identity of ``compiler``: resolved path + ``--version``.

    ``cc`` is usually a symlink and ``CC`` an arbitrary name, so the
    resolved path alone is not enough — a toolchain upgrade keeps the
    path but changes codegen.  The ``--version`` banner captures that;
    if the compiler cannot report one, the path still distinguishes
    different toolchains.
    """
    resolved = shutil.which(compiler) or compiler
    try:
        proc = subprocess.run(
            [compiler, "--version"],
            capture_output=True,
            text=True,
            timeout=30,
            check=False,
        )
        banner = proc.stdout + proc.stderr
    except (OSError, subprocess.TimeoutExpired):
        banner = ""
    return f"{resolved}\n{banner}".encode()


#: Memoised :func:`compiler_info` result — probing the compiler runs a
#: subprocess, and provenance stamping may happen once per recorded run.
_compiler_info_cache: dict | None = None
_compiler_info_probed = False


def compiler_info() -> dict | None:
    """The resolved compiler identity, for provenance records.

    The same ingredients :func:`_build_stamp` folds into the native
    artifact hash — the resolved compiler path and the first line of
    its ``--version`` banner — exposed as a plain dict so result
    records (:mod:`repro.resultdb.provenance`) can stamp runs without
    re-deriving them.  Returns ``None`` when no C compiler is found;
    the probe is memoised for the life of the process.
    """
    global _compiler_info_cache, _compiler_info_probed
    if _compiler_info_probed:
        return _compiler_info_cache
    compiler = _resolve_compiler()
    if compiler is not None:
        identity = _compiler_identity(compiler).decode(errors="replace")
        resolved, _, banner = identity.partition("\n")
        banner_lines = [line for line in banner.splitlines() if line.strip()]
        _compiler_info_cache = {
            "path": resolved,
            "banner": banner_lines[0].strip() if banner_lines else "",
        }
    _compiler_info_probed = True
    return _compiler_info_cache


def _build_stamp(compiler: str) -> str:
    """Content hash naming the built artifact.

    Covers the C source, the interpreter ABI, and the compiler
    identity, so changing any of them builds (and loads) a fresh
    ``.so`` instead of reusing one produced by different codegen.
    """
    payload = (
        _SOURCE.read_bytes()
        + sysconfig.get_python_version().encode()
        + _compiler_identity(compiler)
    )
    return hashlib.sha1(payload).hexdigest()[:16]


def _compile(so_path: Path, compiler: str) -> bool:
    """Compile ``_hotpath.c`` into ``so_path``; False when impossible."""
    include = sysconfig.get_paths()["include"]
    so_path.parent.mkdir(parents=True, exist_ok=True)
    tmp = so_path.with_suffix(f".{os.getpid()}.tmp.so")
    cmd = [
        compiler,
        "-O2",
        "-fPIC",
        "-shared",
        "-ffp-contract=off",
        f"-I{include}",
        str(_SOURCE),
        "-o",
        str(tmp),
        "-lm",
    ]
    try:
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=120, check=False
        )
    except (OSError, subprocess.TimeoutExpired) as exc:
        logger.warning("hotpath: compile failed to run (%s)", exc)
        return False
    if proc.returncode != 0:
        logger.warning(
            "hotpath: compile failed; using the Python path\n%s", proc.stderr
        )
        try:
            tmp.unlink()
        except OSError:
            pass
        return False
    os.replace(tmp, so_path)
    return True


def native_controller_args(controller, mcd_config, frequency_scale) -> dict | None:
    """Marshal a stock Attack/Decay controller for the C hot loop.

    Returns the argument-dict fragment ``run_compiled`` consumes to run
    the closed-loop control policy natively (zero per-interval Python
    crossings), or None when the controller must stay on the Python
    callback path (custom controller, no ``native_spec``, unsound
    state).  The per-domain output buffers in the fragment are filled
    by the C loop and folded back by :func:`fold_native_controller`.
    """
    spec_fn = getattr(controller, "native_spec", None)
    if spec_fn is None:
        return None
    spec = spec_fn()
    if spec is None:
        return None
    import numpy as np

    table = np.ascontiguousarray(frequency_scale.frequencies_mhz, dtype=np.float64)
    return {
        "native_ctrl": 1,
        # Listing-1 operating point (fractions, not percent).
        "ad_dev": float(spec["deviation_threshold"]),
        "ad_reaction": float(spec["reaction_change"]),
        "ad_decay": float(spec["decay"]),
        "ad_perf_deg": float(spec["perf_deg_threshold"]),
        "ad_alpha": float(spec["smoothing_alpha"]),
        "ad_endstop": int(spec["endstop_intervals"]),
        "ad_literal": int(spec["literal_listing"]),
        # Controller registers (in/out).
        "ad_ctrl": np.array(spec["controlled"], dtype=np.int64),
        "ad_freq": np.array(spec["frequency_mhz"], dtype=np.float64),
        "ad_prev_util": np.zeros(4),
        "ad_upper": np.zeros(4, dtype=np.int64),
        "ad_lower": np.zeros(4, dtype=np.int64),
        "ad_attacks_up": np.zeros(4, dtype=np.int64),
        "ad_attacks_down": np.zeros(4, dtype=np.int64),
        "ad_decays": np.zeros(4, dtype=np.int64),
        "ad_holds": np.zeros(4, dtype=np.int64),
        "ad_ipc": np.array([spec["prev_ipc"], spec["smoothed_ipc"]]),
        # Regulator request quantisation (the 320-point scale) + stats.
        "freq_table": table,
        "freq_points": len(table),
        "freq_step": float(mcd_config.frequency_step_mhz),
        "cfg_min_mhz": float(mcd_config.min_frequency_mhz),
        "cfg_max_mhz": float(mcd_config.max_frequency_mhz),
        "reg_requests": np.zeros(4, dtype=np.int64),
        "reg_dirchg": np.zeros(4, dtype=np.int64),
    }


def fold_native_controller(controller, regulators, args: dict) -> None:
    """Fold the C loop's controller/regulator registers back out.

    Leaves ``controller.states`` (including the per-domain diagnostics
    counters) and the regulators' request statistics exactly as the
    Python execution paths would, so post-run inspection cannot tell
    which path ran.
    """
    ad_ipc = args["ad_ipc"]
    controller.absorb_native_state(
        prev_ipc=float(ad_ipc[0]),
        smoothed_ipc=float(ad_ipc[1]),
        frequency_mhz=args["ad_freq"],
        prev_queue_utilization=args["ad_prev_util"],
        upper_endstop=args["ad_upper"],
        lower_endstop=args["ad_lower"],
        attacks_up=args["ad_attacks_up"],
        attacks_down=args["ad_attacks_down"],
        decays=args["ad_decays"],
        holds=args["ad_holds"],
    )
    requests = args["reg_requests"]
    dirchg = args["reg_dirchg"]
    for i, regulator in enumerate(regulators):
        regulator.stats.requests += int(requests[i])
        regulator.stats.direction_changes += int(dirchg[i])


def load_hotpath():
    """The ``_hotpath`` extension module, or None when unavailable.

    The first call may compile the extension; the result (including
    failure) is cached for the life of the process.  Safe to call from
    any thread — the first loader holds a lock, later callers (and
    later threads) hit the cached module without taking it.
    """
    global _cached, _attempted
    if _attempted:
        return _cached
    with _load_lock:
        if _attempted:
            return _cached
        if not native_enabled():
            _attempted = True
            return None
        try:
            compiler = _resolve_compiler()
            if compiler is None:
                logger.info(
                    "hotpath: no C compiler found; using the Python path"
                )
            else:
                so_path = _BUILD_DIR / f"_hotpath-{_build_stamp(compiler)}.so"
                if so_path.exists() or _compile(so_path, compiler):
                    loader = importlib.machinery.ExtensionFileLoader(
                        "_hotpath", str(so_path)
                    )
                    spec = importlib.util.spec_from_loader("_hotpath", loader)
                    module = importlib.util.module_from_spec(spec)
                    loader.exec_module(module)
                    _cached = module
        except Exception as exc:  # noqa: BLE001 - any failure means fallback
            logger.warning(
                "hotpath: load failed (%s); using the Python path", exc
            )
            _cached = None
        _attempted = True
    return _cached
