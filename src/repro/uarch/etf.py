"""The External Trace Format (ETF): portable, versioned trace files.

An ETF file carries one complete dynamic instruction stream — the seven
base columns of the compiled-trace representation
(:mod:`repro.uarch.compiled_trace`) — plus a JSON header with identity,
phase boundaries and an integrity checksum.  It is the interchange
boundary of the workload subsystem: a trace recorded here can be
shipped, archived and replayed bit-exactly on another machine, and a
trace produced by *any* third-party generator that writes this format
runs through the same compiled-trace pipeline (content-addressed store,
batched Python path, native path) as the synthetic catalog.

Layout
------
One ``.npz`` archive (zip of ``.npy`` members) containing:

``header``
    A uint8 array holding a UTF-8 JSON object::

        {"magic": "REPRO-ETF", "version": 1, "name": ..,
         "instructions": .., "interval_instructions": ..,
         "phases": [[name, end_instruction], ...],
         "checksum": "sha1 hex of the column bytes",
         "meta": {..provenance..}}

``kinds, src1, src2, pcs, addrs, taken, targets``
    The base columns, in the compact dtypes of the on-disk trace store
    (``uint8``/``uint16``/``int64``).

The checksum covers the raw bytes of every column in canonical dtype
and order, so bit rot, truncation and well-meaning editors are all
caught at import time; :func:`read_etf` raises
:class:`~repro.errors.TraceError` with a reason rather than importing a
silently different workload.

Round-trip guarantee
--------------------
``export -> import -> run`` reproduces the original
:class:`~repro.metrics.summary.RunSummary` exactly: the columns are the
whole trace identity for the core, and the header carries the control
interval length, so an :class:`ExternalBenchmark` built from the file
is indistinguishable from the benchmark that exported it (clock seeds
and configuration still come from the run spec, as always).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Mapping

import numpy as np

from repro.errors import TraceError, WorkloadError
from repro.ioutil import atomic_write
from repro.uarch.trace import InstructionBlock

#: Bump when the file layout changes incompatibly.
ETF_VERSION = 1

ETF_MAGIC = "REPRO-ETF"

#: Base columns in canonical order, with their on-disk dtypes.
_COLUMN_DTYPES = (
    ("kinds", np.uint8),
    ("src1", np.uint16),
    ("src2", np.uint16),
    ("pcs", np.int64),
    ("addrs", np.int64),
    ("taken", np.uint8),
    ("targets", np.int64),
)


def _checksum(columns: tuple[np.ndarray, ...]) -> str:
    """SHA-1 over every column's bytes in canonical dtype and order."""
    digest = hashlib.sha1()
    for (name, dtype), column in zip(_COLUMN_DTYPES, columns):
        digest.update(np.ascontiguousarray(column, dtype=dtype).tobytes())
    return digest.hexdigest()


class ColumnTrace:
    """A trace stream backed by in-memory base columns.

    The minimal :class:`~repro.uarch.trace.TraceStream` surface plus
    the vectorised ``columns()`` hook the trace compiler prefers, so an
    imported trace flows through :func:`repro.uarch.compiled_trace.trace_columns`
    without a per-block round-trip.
    """

    def __init__(self, columns: tuple[np.ndarray, ...]) -> None:
        self._columns = tuple(np.asarray(c, dtype=np.int64) for c in columns)
        self._n = len(self._columns[0])

    @property
    def total_instructions(self) -> int:
        """Exact trace length."""
        return self._n

    def columns(self) -> tuple[np.ndarray, ...]:
        """The seven base columns."""
        return self._columns

    def blocks(self) -> Iterator[InstructionBlock]:
        """The whole trace as one plain-list block."""
        if self._n:
            kinds, src1, src2, pcs, addrs, taken, targets = self._columns
            yield InstructionBlock(
                kinds=kinds.tolist(),
                src1=src1.tolist(),
                src2=src2.tolist(),
                pcs=pcs.tolist(),
                addrs=addrs.tolist(),
                taken=[bool(x) for x in taken.tolist()],
                targets=targets.tolist(),
            )


@dataclass(frozen=True)
class ExternalBenchmark:
    """An imported ETF trace with the runnable-benchmark surface.

    Register it (:func:`repro.workloads.catalog.register_benchmark`)
    and it runs anywhere a catalog entry runs.  Because the stream is
    *recorded* rather than generated, length scaling and seed offsets
    are meaningless and rejected.
    """

    name: str
    columns: tuple[np.ndarray, ...]
    interval_instructions: int
    phases: tuple[tuple[str, int], ...]
    checksum: str
    meta: Mapping[str, object]
    suite: str = "External"
    datasets: str = "imported ETF"
    paper_window: str = "-"

    @property
    def sim_instructions(self) -> int:
        """Exact trace length."""
        return len(self.columns[0])

    @property
    def paper_minstructions(self) -> float:
        """Weighting stand-in (millions of recorded instructions)."""
        return self.sim_instructions / 1e6

    def build_trace(self, scale: float = 1.0, seed_offset: int = 0) -> ColumnTrace:
        """The recorded stream; ``scale``/``seed_offset`` must be neutral."""
        if scale != 1.0:
            raise WorkloadError(
                f"{self.name}: an imported trace cannot be scaled (got {scale})"
            )
        if seed_offset:
            raise WorkloadError(
                f"{self.name}: an imported trace has no generator seed"
            )
        return ColumnTrace(self.columns)

    def trace_payload(self, scale: float = 1.0, seed_offset: int = 0) -> dict:
        """Content identity for the compiled-trace store."""
        return {
            "etf": self.checksum,
            "benchmark": self.name,
            "scale": scale,
            "seed_offset": seed_offset,
        }

    def phase_marks(self, scale: float = 1.0) -> list[tuple[str, int]]:
        """Recorded phase boundaries (``scale`` must be 1.0)."""
        if scale != 1.0:
            raise WorkloadError(
                f"{self.name}: an imported trace cannot be scaled (got {scale})"
            )
        return [(name, int(end)) for name, end in self.phases]


def export_trace(
    path: Path | str,
    columns: tuple[np.ndarray, ...],
    name: str,
    interval_instructions: int,
    phases: list[tuple[str, int]] | None = None,
    meta: Mapping[str, object] | None = None,
) -> str:
    """Write one trace to ``path`` in ETF v1; returns the checksum.

    ``columns`` are the seven base columns (any integer dtypes); they
    are stored compactly and checksummed.  The write is atomic
    (temp-file-plus-rename), like every store in this repository.
    """
    if len(columns) != len(_COLUMN_DTYPES):
        raise TraceError(
            f"export needs {len(_COLUMN_DTYPES)} columns, got {len(columns)}"
        )
    n = len(columns[0])
    if any(len(c) != n for c in columns):
        raise TraceError("export columns have mismatched lengths")
    if n == 0:
        raise TraceError("refusing to export an empty trace")
    if interval_instructions < 1:
        raise TraceError("interval_instructions must be >= 1")
    marks = [(str(label), int(end)) for label, end in (phases or [])]
    if marks:
        ends = [end for _, end in marks]
        if (
            ends != sorted(ends)
            or len(set(ends)) != len(ends)
            or ends[-1] != n
            or min(ends) < 1
        ):
            raise TraceError(
                f"phase marks {ends} do not partition the {n}-instruction trace"
            )
    stored = {
        col_name: np.ascontiguousarray(column, dtype=dtype)
        for (col_name, dtype), column in zip(_COLUMN_DTYPES, columns)
    }
    checksum = _checksum(columns)
    header = {
        "magic": ETF_MAGIC,
        "version": ETF_VERSION,
        "name": str(name),
        "instructions": n,
        "interval_instructions": int(interval_instructions),
        "phases": marks,
        "checksum": checksum,
        "meta": dict(meta or {}),
    }
    header_bytes = np.frombuffer(
        json.dumps(header, sort_keys=True).encode("utf-8"), dtype=np.uint8
    )
    with atomic_write(Path(path)) as handle:
        np.savez(handle, header=header_bytes, **stored)
    return checksum


def read_etf(path: Path | str) -> ExternalBenchmark:
    """Load and validate an ETF file.

    Raises :class:`~repro.errors.TraceError` on any defect — missing
    file, truncation, wrong magic/version, missing columns, length
    mismatches, checksum mismatch — naming the reason.
    """
    path = Path(path)
    try:
        with np.load(path) as data:
            try:
                header_bytes = data["header"]
            except KeyError:
                raise TraceError(f"{path}: not an ETF file (no header)") from None
            raw_columns = []
            for col_name, _ in _COLUMN_DTYPES:
                try:
                    raw_columns.append(data[col_name])
                except KeyError:
                    raise TraceError(
                        f"{path}: ETF file is missing column {col_name!r}"
                    ) from None
    except TraceError:
        raise
    except FileNotFoundError:
        raise TraceError(f"{path}: no such file") from None
    except Exception as exc:  # zipfile.BadZipFile, OSError, ValueError, ...
        raise TraceError(f"{path}: unreadable ETF file ({exc})") from exc
    try:
        header = json.loads(bytes(header_bytes).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TraceError(f"{path}: corrupt ETF header ({exc})") from exc
    if not isinstance(header, dict) or header.get("magic") != ETF_MAGIC:
        raise TraceError(f"{path}: not an ETF file (bad magic)")
    version = header.get("version")
    if version != ETF_VERSION:
        raise TraceError(
            f"{path}: unsupported ETF version {version!r} (supported: {ETF_VERSION})"
        )
    for field in ("name", "instructions", "interval_instructions", "checksum"):
        if field not in header:
            raise TraceError(f"{path}: ETF header is missing {field!r}")
    try:
        n = int(header["instructions"])
        interval_instructions = int(header["interval_instructions"])
    except (TypeError, ValueError) as exc:
        raise TraceError(f"{path}: non-numeric ETF header field ({exc})") from exc
    if n < 1:
        raise TraceError(f"{path}: ETF header declares an empty trace")
    if interval_instructions < 1:
        raise TraceError(
            f"{path}: interval_instructions must be >= 1, "
            f"got {interval_instructions}"
        )
    if any(len(c) != n for c in raw_columns):
        raise TraceError(
            f"{path}: column lengths {[len(c) for c in raw_columns]} "
            f"do not match the declared {n} instructions"
        )
    columns = tuple(np.asarray(c, dtype=np.int64) for c in raw_columns)
    checksum = _checksum(columns)
    if checksum != header["checksum"]:
        raise TraceError(
            f"{path}: checksum mismatch (file says {header['checksum']}, "
            f"columns hash to {checksum}) - the trace is corrupt"
        )
    try:
        phases = tuple(
            (str(label), int(end)) for label, end in header.get("phases", [])
        )
    except (TypeError, ValueError) as exc:
        raise TraceError(f"{path}: malformed phase marks ({exc})") from exc
    if phases:
        # Mirror export_trace's contract so third-party files cannot
        # smuggle marks that crash per-phase attribution downstream.
        ends = [end for _, end in phases]
        if ends != sorted(ends) or len(set(ends)) != len(ends) or min(ends) < 1:
            raise TraceError(
                f"{path}: phase marks {ends} must strictly ascend from >= 1"
            )
        if ends[-1] != n:
            raise TraceError(
                f"{path}: phase marks end at {ends[-1]} but the trace has "
                f"{n} instructions"
            )
    return ExternalBenchmark(
        name=str(header["name"]),
        columns=columns,
        interval_instructions=interval_instructions,
        phases=phases,
        checksum=checksum,
        meta=header.get("meta", {}),
    )


def export_benchmark(
    bench, path: Path | str, scale: float = 1.0, seed_offset: int = 0
) -> str:
    """Record ``bench``'s generated stream to ``path``; returns the checksum.

    Convenience wrapper for the common case (the CLI's ``export-trace``):
    generates the benchmark's trace at ``scale``, captures its columns
    and phase boundaries, and stamps provenance into the header.
    """
    from repro.uarch.compiled_trace import trace_columns
    from repro.version import __version__

    trace = bench.build_trace(scale=scale, seed_offset=seed_offset)
    columns = trace_columns(trace)
    # Imported traces have no generator seed (ExternalBenchmark defines
    # none); record provenance for what the workload actually is.
    seed = getattr(bench, "seed", None)
    meta: dict[str, object] = {
        "source": (
            "repro synthetic catalog" if seed is not None else "re-exported ETF"
        ),
        "benchmark": bench.name,
        "suite": bench.suite,
        "scale": scale,
        "repro_version": __version__,
    }
    if seed is not None:
        meta["seed"] = seed + seed_offset
    return export_trace(
        path,
        columns,
        name=bench.name,
        interval_instructions=bench.interval_instructions,
        phases=bench.phase_marks(scale),
        meta=meta,
    )
