"""Shared-memory views of compiled-trace base columns.

The process sweep backend used to hand every worker its own copy of
each trace: workers either re-read and re-checksummed the ``.npz`` store
or regenerated the workload outright, and at sweep granularity that
marshalling tax dominated the actual simulation work.  This module
publishes the seven geometry-independent base columns of a compiled
trace (:data:`~repro.uarch.compiled_trace._BASE_COLUMNS`) in one
:class:`multiprocessing.shared_memory.SharedMemory` block per trace so
every worker on the host maps the same read-only pages instead.

Lifecycle
---------
The orchestrator is the **owner**: before starting a process pool it
:func:`export_columns` one segment per unique trace in the sweep,
ships the descriptors to workers through the pool initializer, and
:func:`unlink_exported` in a ``finally`` when the sweep ends — crashed
or cancelled sweeps are covered by an ``atexit`` guard registered at
first export.  Workers :func:`install_shared_traces` from the
descriptors; :func:`repro.sim.engine.compiled_trace_for` then consults
:func:`shared_columns` before the disk store, so a shared trace costs
one ``mmap`` instead of one rebuild.  Attach failures are logged and
non-fatal — the worker simply falls back to the disk/generate path,
which produces byte-identical columns.

POSIX notes
-----------
CPython's ``shared_memory`` registers a segment with the
``resource_tracker`` on *attach* as well as on create (bpo-39959), so a
worker exiting would spuriously unlink a segment the owner still
serves.  :meth:`SharedTraceSegment.attach` therefore suppresses the
tracker registration for the duration of the attach (see its
docstring for why unregistering afterwards is wrong both ways).
Owner-side ``unlink`` while workers are still attached is safe on
POSIX: the name disappears but mappings survive until every holder
closes.
"""

from __future__ import annotations

import atexit
import logging
import os

import numpy as np

from repro.uarch.compiled_trace import _BASE_COLUMNS

logger = logging.getLogger(__name__)

#: Alignment of each column inside a segment.  int64 columns need 8;
#: aligning every column keeps the layout future-proof and free.
_ALIGN = 8


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


class SharedTraceSegment:
    """One trace's base columns in one shared-memory block.

    Created by the sweep owner (:meth:`create`) or mapped by a worker
    (:meth:`attach`); either way :meth:`columns` yields read-only numpy
    views directly over the shared pages.  The instance must stay alive
    as long as any of those views is in use — the module registries
    below hold them for exactly that reason.
    """

    def __init__(self, shm, key: str, layout: list, owner: bool) -> None:
        self._shm = shm
        self.key = key
        self.layout = layout
        self.owner = owner
        self.unlinked = False

    @classmethod
    def create(cls, key: str, columns) -> "SharedTraceSegment":
        """Pack ``columns`` (the seven base columns) into a new segment."""
        from multiprocessing import shared_memory

        arrays = [np.ascontiguousarray(col) for col in columns]
        layout = []
        offset = 0
        for name, arr in zip(_BASE_COLUMNS, arrays):
            offset = _aligned(offset)
            layout.append((name, arr.dtype.str, int(arr.shape[0]), offset))
            offset += arr.nbytes
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        for arr, (_, _, length, off) in zip(arrays, layout):
            view = np.ndarray(length, dtype=arr.dtype, buffer=shm.buf, offset=off)
            view[:] = arr
        return cls(shm, key, layout, owner=True)

    def descriptor(self) -> dict:
        """The picklable handle a worker needs to :meth:`attach`."""
        return {"key": self.key, "name": self._shm.name, "layout": self.layout}

    @classmethod
    def attach(cls, descriptor: dict) -> "SharedTraceSegment":
        """Map an owner's segment from its :meth:`descriptor`.

        CPython registers attached segments with the resource tracker
        too (bpo-39959), which is wrong both ways: with a tracker
        shared with the owner, unregistering afterwards would drop the
        *owner's* entry (tracker bookkeeping is a set, not a
        refcount); with a private tracker, leaving it registered would
        unlink a segment the owner still serves when this worker
        exits.  Suppressing registration during the attach sidesteps
        both — Python 3.13's ``track=False`` does the same thing.
        """
        from multiprocessing import resource_tracker, shared_memory

        original = resource_tracker.register

        def quiet(name, rtype):  # pragma: no cover - trivial shim
            if rtype != "shared_memory":
                original(name, rtype)

        resource_tracker.register = quiet
        try:
            shm = shared_memory.SharedMemory(name=descriptor["name"])
        finally:
            resource_tracker.register = original
        return cls(shm, descriptor["key"], list(descriptor["layout"]), owner=False)

    def columns(self) -> tuple:
        """Read-only views of the base columns, in catalog order."""
        out = []
        for name, dtype, length, offset in self.layout:
            view = np.ndarray(
                length, dtype=np.dtype(dtype), buffer=self._shm.buf, offset=offset
            )
            view.flags.writeable = False
            out.append(view)
        return tuple(out)

    @property
    def name(self) -> str:
        """The OS-level segment name (``/dev/shm/<name>`` on Linux)."""
        return self._shm.name

    @property
    def nbytes(self) -> int:
        """Total shared bytes."""
        return self._shm.size

    def close(self) -> None:
        """Drop this process's mapping (views become invalid)."""
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - views still alive
            # Live numpy views pin the mapping; the registries only
            # close after dropping theirs, so this is a caller leak —
            # prefer leaving the mapping to crashing the process.
            logger.warning("shared trace %s still has live views", self.key)

    def unlink(self) -> None:
        """Remove the segment name (owner only; idempotent)."""
        if self.unlinked:
            return
        self.unlinked = True
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


#: Owner-side segments, by trace store key.
_EXPORTED: dict[str, SharedTraceSegment] = {}
#: Worker-side attached segments, by trace store key.
_ATTACHED: dict[str, SharedTraceSegment] = {}
_GUARD_INSTALLED = False
_GUARD_PID: int | None = None


def _cleanup_exported() -> None:
    """``atexit`` guard: no sweep crash may leak ``/dev/shm`` segments.

    PID-guarded: only the process that exported the segments may
    unlink them, so a forked child inheriting ``_EXPORTED`` can never
    tear down names its parent still serves.
    """
    if _GUARD_PID == os.getpid():
        unlink_exported()


def export_columns(key: str, columns) -> dict:
    """Publish ``columns`` under ``key`` (owner side); returns descriptor.

    Idempotent per key: repeated exports of one trace reuse the
    existing segment.
    """
    global _GUARD_INSTALLED, _GUARD_PID
    segment = _EXPORTED.get(key)
    if segment is None:
        segment = SharedTraceSegment.create(key, columns)
        _EXPORTED[key] = segment
        if not _GUARD_INSTALLED:
            atexit.register(_cleanup_exported)
            _GUARD_INSTALLED = True
            _GUARD_PID = os.getpid()
        logger.debug(
            "exported shared trace %s (%d bytes as %s)",
            key,
            segment.nbytes,
            segment.name,
        )
    return segment.descriptor()


def exported_descriptors() -> list[dict]:
    """Descriptors of every currently exported segment."""
    return [segment.descriptor() for segment in _EXPORTED.values()]


def unlink_exported(keys=None) -> None:
    """Unlink (and forget) owner-side segments; all of them by default."""
    for key in list(_EXPORTED) if keys is None else list(keys):
        segment = _EXPORTED.pop(key, None)
        if segment is not None:
            segment.unlink()
            segment.close()


def install_shared_traces(descriptors) -> int:
    """Attach a batch of descriptors (worker side); returns attach count.

    A failed attach — stale name, exhausted ``/dev/shm``, platform
    without POSIX shared memory — logs a warning and is skipped; the
    worker falls back to building that trace locally, which is slower
    but byte-identical.
    """
    attached = 0
    for descriptor in descriptors or ():
        key = descriptor.get("key")
        # Forked pool workers inherit the owner's exports wholesale —
        # the pages are already mapped, so attaching again would only
        # duplicate the mapping.
        if not key or key in _ATTACHED or key in _EXPORTED:
            continue
        try:
            _ATTACHED[key] = SharedTraceSegment.attach(descriptor)
            attached += 1
        except Exception as exc:
            logger.warning(
                "shared trace %s attach failed (%s); falling back to local build",
                key,
                exc,
            )
    return attached


def shared_columns(key: str):
    """The attached (or owned) base columns for ``key``, or None.

    Owner processes resolve their own exports too, so the serial leg of
    a mixed sweep and in-process pool workers (fork start method before
    the initializer runs) see the same data source.
    """
    segment = _ATTACHED.get(key) or _EXPORTED.get(key)
    if segment is None:
        return None
    return segment.columns()


def detach_all() -> None:
    """Drop every worker-side attachment (testing/teardown hook)."""
    for key in list(_ATTACHED):
        segment = _ATTACHED.pop(key)
        segment.close()


def emergency_cleanup() -> None:
    """Interrupt-time teardown: unlink every export, drop every attach.

    The CLI's Ctrl-C boundary calls this *synchronously* before
    exiting: the ``atexit`` guard is only a backstop (it never runs
    when the process dies to an unhandled signal or ``os._exit``), and
    a long-lived parent process — a shell loop, a campaign driver —
    must not accumulate ``/dev/shm`` segments across interrupted
    sweeps.  Safe to call at any time, in any process role, repeatedly:
    owners unlink their segments, workers merely close their mappings.
    """
    unlink_exported()
    detach_all()
