/* Native batched core loop for compiled traces.
 *
 * A 1:1 translation of MCDCore._run_compiled's event sequence (which is
 * itself byte-identical to the pure-Python reference path): same edge
 * selection, same regulator calls, same jitter-stream consumption, same
 * floating-point accumulation order.  All arithmetic is IEEE double
 * precision; the build disables FP contraction (-ffp-contract=off) so
 * a*b+c rounds exactly as CPython rounds it.
 *
 * State crosses the boundary once per run: compiled-trace columns come
 * in as int64 buffers, cache/predictor/BTB state is unmarshalled from
 * the owning Python objects at entry and written back at exit.  A stock
 * Attack/Decay controller (paper Listing 1, plus the regulator's
 * request quantisation) is marshalled into flat registers and run
 * inline at each interval rollover — the closed-loop run then makes
 * zero per-interval Python crossings.  Custom controllers and interval
 * recording fall back to the per-interval `rollover` Python callback.
 * See repro/uarch/native.py for the build/load glue and controller
 * marshalling, and MCDCore._run_compiled_native for the marshal layer.
 *
 * Execution is staged around a per-run RunState struct so a whole
 * sweep can run on a thread pool inside one process:
 *
 *   1. marshal   — all PyObject access and buffer extraction (GIL held);
 *   2. compute   — the event loop, pure C over RunState-local data,
 *                  with the GIL RELEASED (PyEval_SaveThread).  Its only
 *                  Python crossings are the jitter `refill` and the
 *                  per-interval `rollover` callbacks, bridged through
 *                  shims that re-acquire the GIL for the call;
 *   3. writeback — fold results into the owning objects (GIL held).
 *
 * Two entry points share the stages.  run_compiled drives one RunState
 * through all three.  run_batch amortises the boundary across a sweep
 * cell: it marshals a *vector* of argument dicts up front, releases the
 * GIL once, computes every run back to back, and then writes each run
 * back into its own objects — exactly the per-run folding the single
 * entry performs, so batched results are byte-identical by
 * construction.
 *
 * Reentrancy audit: this file holds NO mutable state with static
 * storage duration — every array, ring buffer and counter lives on the
 * compute stage's stack or in per-RunState PyMem allocations, and the
 * buffers handed in through the argument dict are created per run by
 * MCDCore._run_compiled_native.  Concurrent run_compiled/run_batch
 * calls from different threads therefore never share writable memory,
 * which is what makes the thread-pool sweep backend sound.
 */
#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <math.h>
#include <stdint.h>
#include <string.h>

#define RING 2048
#define RING_MASK (RING - 1)
#define EPS_NS 1e-6
#define MIN_STEP_NS 1e-6
#define QMAX 256 /* upper bound on issue-queue capacity */

/* ---------------------------------------------------------------- util */

static int
get_long(PyObject *dict, const char *key, long long *out)
{
    PyObject *v = PyDict_GetItemString(dict, key);
    if (v == NULL) {
        PyErr_Format(PyExc_KeyError, "hotpath: missing int arg %s", key);
        return -1;
    }
    *out = PyLong_AsLongLong(v);
    if (*out == -1 && PyErr_Occurred())
        return -1;
    return 0;
}

static int
get_double(PyObject *dict, const char *key, double *out)
{
    PyObject *v = PyDict_GetItemString(dict, key);
    if (v == NULL) {
        PyErr_Format(PyExc_KeyError, "hotpath: missing float arg %s", key);
        return -1;
    }
    *out = PyFloat_AsDouble(v);
    if (*out == -1.0 && PyErr_Occurred())
        return -1;
    return 0;
}

typedef struct {
    Py_buffer views[64];
    int count;
} ViewPool;

static void *
get_buffer(PyObject *dict, const char *key, ViewPool *pool, int writable,
           Py_ssize_t itemsize, Py_ssize_t *len_out)
{
    PyObject *v = PyDict_GetItemString(dict, key);
    if (v == NULL) {
        PyErr_Format(PyExc_KeyError, "hotpath: missing buffer arg %s", key);
        return NULL;
    }
    int flags = writable ? (PyBUF_C_CONTIGUOUS | PyBUF_WRITABLE)
                         : PyBUF_C_CONTIGUOUS;
    Py_buffer *view = &pool->views[pool->count];
    if (PyObject_GetBuffer(v, view, flags) < 0)
        return NULL;
    pool->count++;
    if (view->itemsize != itemsize) {
        PyErr_Format(PyExc_TypeError, "hotpath: %s has itemsize %zd, want %zd",
                     key, view->itemsize, itemsize);
        return NULL;
    }
    if (len_out != NULL)
        *len_out = view->len / itemsize;
    return view->buf;
}

static void
release_views(ViewPool *pool)
{
    for (int i = 0; i < pool->count; i++)
        PyBuffer_Release(&pool->views[i]);
    pool->count = 0;
}

/* ------------------------------------------------- list marshal helpers */

/* Flatten a Python list-of-lists-of-ints (cache tag sets, MRU last) into
 * tags[set * ways + j] with per-set counts. */
static int
sets_from_list(PyObject *sets, Py_ssize_t nsets, Py_ssize_t ways,
               int64_t *tags, int32_t *cnt)
{
    if (!PyList_Check(sets) || PyList_GET_SIZE(sets) != nsets) {
        PyErr_SetString(PyExc_TypeError, "hotpath: bad cache set list");
        return -1;
    }
    for (Py_ssize_t i = 0; i < nsets; i++) {
        PyObject *s = PyList_GET_ITEM(sets, i);
        Py_ssize_t k = PyList_GET_SIZE(s);
        if (k > ways)
            k = ways; /* transient overflow never persists */
        cnt[i] = (int32_t)k;
        for (Py_ssize_t j = 0; j < k; j++) {
            int64_t tag = PyLong_AsLongLong(PyList_GET_ITEM(s, j));
            if (tag == -1 && PyErr_Occurred())
                return -1;
            tags[i * ways + j] = tag;
        }
    }
    return 0;
}

static int
sets_to_list(PyObject *sets, Py_ssize_t nsets, Py_ssize_t ways,
             const int64_t *tags, const int32_t *cnt)
{
    for (Py_ssize_t i = 0; i < nsets; i++) {
        PyObject *s = PyList_New(cnt[i]);
        if (s == NULL)
            return -1;
        for (Py_ssize_t j = 0; j < cnt[i]; j++) {
            PyObject *tag = PyLong_FromLongLong(tags[i * ways + j]);
            if (tag == NULL) {
                Py_DECREF(s);
                return -1;
            }
            PyList_SET_ITEM(s, j, tag);
        }
        if (PyList_SetItem(sets, i, s) < 0)
            return -1;
    }
    return 0;
}

static int64_t *
ints_from_list(PyObject *list, Py_ssize_t *n_out)
{
    if (!PyList_Check(list)) {
        PyErr_SetString(PyExc_TypeError, "hotpath: expected list of ints");
        return NULL;
    }
    Py_ssize_t n = PyList_GET_SIZE(list);
    int64_t *out = PyMem_Malloc((n ? n : 1) * sizeof(int64_t));
    if (out == NULL) {
        PyErr_NoMemory();
        return NULL;
    }
    for (Py_ssize_t i = 0; i < n; i++) {
        out[i] = PyLong_AsLongLong(PyList_GET_ITEM(list, i));
        if (out[i] == -1 && PyErr_Occurred()) {
            PyMem_Free(out);
            return NULL;
        }
    }
    *n_out = n;
    return out;
}

static int
ints_to_list(PyObject *list, const int64_t *vals, Py_ssize_t n)
{
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *v = PyLong_FromLongLong(vals[i]);
        if (v == NULL)
            return -1;
        if (PyList_SetItem(list, i, v) < 0)
            return -1;
    }
    return 0;
}

/* ---------------------------------------------------- GIL bridge shims */

/* The compute stage runs with the GIL released; these shims are its
 * only two Python crossings.  Each re-acquires the GIL just for the
 * callback and releases it again before returning, so other threads'
 * compute stages keep running while this one calls back.  On failure
 * the Python exception is left pending in this thread's state and -1
 * is returned; the caller must break out of the loop and touch no
 * Python API until the compute stage ends with the GIL re-acquired. */

static int
refill_jitter(PyObject *refill, int d, double **jbuf, Py_ssize_t *jlen,
              PyThreadState **tstate)
{
    int status = -1;
    PyEval_RestoreThread(*tstate);
    PyObject *arr = PyObject_CallFunction(refill, "i", d);
    if (arr != NULL) {
        Py_buffer jview;
        if (PyObject_GetBuffer(arr, &jview, PyBUF_C_CONTIGUOUS) == 0) {
            Py_ssize_t k = jview.len / sizeof(double);
            double *fresh = PyMem_Malloc((k ? k : 1) * sizeof(double));
            if (fresh == NULL) {
                PyErr_NoMemory();
            } else {
                memcpy(fresh, jview.buf, k * sizeof(double));
                PyMem_Free(*jbuf);
                *jbuf = fresh;
                *jlen = k;
                status = 0;
            }
            PyBuffer_Release(&jview);
        }
        Py_DECREF(arr);
    }
    *tstate = PyEval_SaveThread();
    return status;
}

static int
rollover_callback(PyObject *rollover, long long index, long long retired,
                  double t, double duration, long long occ1, long long occ2,
                  long long occ3, const int64_t busy[4], long long mem,
                  PyThreadState **tstate)
{
    int status = -1;
    PyEval_RestoreThread(*tstate);
    PyObject *res = PyObject_CallFunction(
        rollover, "LLddLLLLLLLL", index, retired, t, duration, occ1, occ2,
        occ3, (long long)busy[0], (long long)busy[1], (long long)busy[2],
        (long long)busy[3], mem);
    if (res != NULL) {
        Py_DECREF(res);
        status = 0;
    }
    *tstate = PyEval_SaveThread();
    return status;
}

/* ------------------------------------------------------------ the loop */

/* All state one simulation needs across the three stages.  A RunState
 * is filled by marshal_run (GIL held), consumed by compute_run (GIL
 * released) and drained by writeback_run (GIL held); free_run drops
 * the buffer views and per-run allocations.  run_compiled wraps one
 * RunState; run_batch marshals a whole vector of them, releases the
 * GIL once, and computes the runs back to back. */
typedef struct {
    ViewPool pool;
    /* scalars */
    int64_t total;
    int decode_width, retire_width;
    int64_t rob_cap, l1_cycles, l2_cycles, mispredict_penalty, interval_len;
    int mcd_mode;
    int64_t kind_load, kind_store, kind_branch;
    int shift;
    int64_t l1i_nsets, l1d_nsets, l2_nsets;
    int l1i_ways, l1d_ways, l2_ways;
    int64_t hist_mask, btb_nsets;
    int btb_ways, call_rollover;
    double mem_latency, window, vmin, fmin, vslope, vmax_sq_inv;
    double e_l1i, e_l2, e_bpred, e_retire, e_disp_fetch;
    /* native closed-loop controller */
    int native_ctrl;
    double ad_dev, ad_reaction, ad_decay, ad_perf_deg, ad_alpha;
    double cfg_min_mhz, cfg_max_mhz, freq_step;
    long long ad_endstop, ad_literal, freq_points;
    const int64_t *ad_ctrl;
    double *ad_freq, *ad_prev_util, *ad_ipc;
    int64_t *ad_upper, *ad_lower, *ad_attacks_up, *ad_attacks_down;
    int64_t *ad_decays, *ad_holds;
    const double *freq_table;
    int64_t *reg_requests, *reg_dirchg;
    /* column + state buffers (views owned by pool) */
    const int64_t *kinds, *pcs, *addrs, *taken_c, *targets_c;
    const int64_t *dest_c, *qd_c, *p1_c, *p2_c;
    int64_t *newline;
    const int64_t *lat_cycles, *complex_op, *simple_w, *complex_w, *q_cap;
    const double *clock_e, *idle_e, *e_issue_a, *e_simple_a, *e_complex_a;
    double *reg_cur, *reg_tgt, *reg_last;
    const double *reg_slew;
    double *reg_slew_acc;
    double *edge_ns;
    int64_t *cycle_idx;
    double *acc_clock, *acc_struct;
    int64_t *n_busy, *n_idle, *q_occ, *q_writes, *cache_stats, *bp_stats;
    double *cur_freq;
    /* unmarshalled python-object state (per-run PyMem allocations) */
    int64_t *l1i_tags, *l1d_tags, *l2_tags;
    int32_t *l1i_cnt, *l1d_cnt, *l2_cnt;
    int64_t *hist, *pl2, *bim, *meta;
    Py_ssize_t hist_len, pl2_len, bim_len, meta_len;
    int64_t *btb_tags, *btb_tgts;
    int32_t *btb_cnt;
    double *jbuf[4];
    Py_ssize_t jlen[4];
    int64_t *rob_seq;
    /* owning python objects (borrowed from the argument dict, which the
     * caller keeps alive for the duration of the call) */
    PyObject *l1i_sets_o, *l1d_sets_o, *l2_sets_o;
    PyObject *hist_o, *pl2_o, *bim_o, *meta_o, *btb_o;
    PyObject *refill, *rollover;
    /* compute outputs */
    int64_t int_free, fp_free;
    int64_t retired, memory_accesses, dispatch_stall_cycles;
    double wall;
    const char *error;
} RunState;

/* Release everything a RunState owns (GIL held).  Safe on a zeroed or
 * partially-marshalled state: every allocation lands in the struct the
 * moment it is made, and PyMem_Free/release_views tolerate NULL/empty. */
static void
free_run(RunState *rs)
{
    release_views(&rs->pool);
    PyMem_Free(rs->l1i_tags);
    PyMem_Free(rs->l1i_cnt);
    PyMem_Free(rs->l1d_tags);
    PyMem_Free(rs->l1d_cnt);
    PyMem_Free(rs->l2_tags);
    PyMem_Free(rs->l2_cnt);
    PyMem_Free(rs->hist);
    PyMem_Free(rs->pl2);
    PyMem_Free(rs->bim);
    PyMem_Free(rs->meta);
    PyMem_Free(rs->btb_tags);
    PyMem_Free(rs->btb_tgts);
    PyMem_Free(rs->btb_cnt);
    PyMem_Free(rs->rob_seq);
    for (int d = 0; d < 4; d++)
        PyMem_Free(rs->jbuf[d]);
    memset(rs, 0, sizeof(*rs));
}

/* Stage 1: all PyObject access and buffer extraction (GIL held).
 * Fills *rs from the argument dict; on failure a Python exception is
 * set and whatever was already acquired stays in *rs for free_run. */
static int
marshal_run(PyObject *a, RunState *rs)
{
    ViewPool *pool = &rs->pool;
    /* --- scalars ------------------------------------------------------ */
    long long n_ll, decode_width_ll, retire_width_ll, rob_cap_ll;
    long long l1_cycles_ll, l2_cycles_ll, mispredict_penalty_ll;
    long long interval_len_ll, mcd_ll, int_free_ll, fp_free_ll;
    long long kind_load_ll, kind_store_ll, kind_branch_ll, line_shift_ll;
    long long l1i_nsets_ll, l1i_ways_ll, l1d_nsets_ll, l1d_ways_ll;
    long long l2_nsets_ll, l2_ways_ll, hist_mask_ll, btb_nsets_ll, btb_ways_ll;
    long long call_rollover_ll;
    double mem_latency, window, vmin, fmin, vslope, vmax_sq_inv;
    double e_l1i, e_l2, e_bpred, e_retire, e_disp_fetch;
    if (get_long(a, "n", &n_ll) || get_long(a, "decode_width", &decode_width_ll)
        || get_long(a, "retire_width", &retire_width_ll)
        || get_long(a, "rob_cap", &rob_cap_ll)
        || get_long(a, "l1_cycles", &l1_cycles_ll)
        || get_long(a, "l2_cycles", &l2_cycles_ll)
        || get_long(a, "mispredict_penalty", &mispredict_penalty_ll)
        || get_long(a, "interval_len", &interval_len_ll)
        || get_long(a, "mcd", &mcd_ll)
        || get_long(a, "int_free", &int_free_ll)
        || get_long(a, "fp_free", &fp_free_ll)
        || get_long(a, "kind_load", &kind_load_ll)
        || get_long(a, "kind_store", &kind_store_ll)
        || get_long(a, "kind_branch", &kind_branch_ll)
        || get_long(a, "line_shift", &line_shift_ll)
        || get_long(a, "l1i_nsets", &l1i_nsets_ll)
        || get_long(a, "l1i_ways", &l1i_ways_ll)
        || get_long(a, "l1d_nsets", &l1d_nsets_ll)
        || get_long(a, "l1d_ways", &l1d_ways_ll)
        || get_long(a, "l2_nsets", &l2_nsets_ll)
        || get_long(a, "l2_ways", &l2_ways_ll)
        || get_long(a, "hist_mask", &hist_mask_ll)
        || get_long(a, "btb_nsets", &btb_nsets_ll)
        || get_long(a, "btb_ways", &btb_ways_ll)
        || get_long(a, "call_rollover", &call_rollover_ll)
        || get_double(a, "mem_latency", &mem_latency)
        || get_double(a, "window", &window)
        || get_double(a, "vmin", &vmin) || get_double(a, "fmin", &fmin)
        || get_double(a, "vslope", &vslope)
        || get_double(a, "vmax_sq_inv", &vmax_sq_inv)
        || get_double(a, "e_l1i", &e_l1i) || get_double(a, "e_l2", &e_l2)
        || get_double(a, "e_bpred", &e_bpred)
        || get_double(a, "e_retire", &e_retire)
        || get_double(a, "e_disp_fetch", &e_disp_fetch))
        goto fail;

    const int64_t total = n_ll;
    const int decode_width = (int)decode_width_ll;
    const int retire_width = (int)retire_width_ll;
    const int64_t rob_cap = rob_cap_ll;
    const int64_t l1_cycles = l1_cycles_ll, l2_cycles = l2_cycles_ll;
    const int64_t mispredict_penalty = mispredict_penalty_ll;
    const int64_t interval_len = interval_len_ll;
    const int mcd_mode = (int)mcd_ll;
    const int64_t kind_load = kind_load_ll, kind_store = kind_store_ll,
                  kind_branch = kind_branch_ll;
    const int shift = (int)line_shift_ll;
    const int64_t l1i_nsets = l1i_nsets_ll, l1d_nsets = l1d_nsets_ll,
                  l2_nsets = l2_nsets_ll;
    const int l1i_ways = (int)l1i_ways_ll, l1d_ways = (int)l1d_ways_ll,
              l2_ways = (int)l2_ways_ll;
    const int64_t hist_mask = hist_mask_ll;
    const int64_t btb_nsets = btb_nsets_ll;
    const int btb_ways = (int)btb_ways_ll;
    const int call_rollover = (int)call_rollover_ll;
    int64_t int_free = int_free_ll, fp_free = fp_free_ll;

    /* --- native closed-loop controller (attack/decay, Listing 1) ------ */
    long long native_ctrl_ll = 0;
    if (get_long(a, "native_ctrl", &native_ctrl_ll))
        goto fail;
    const int native_ctrl = (int)native_ctrl_ll;
    double ad_dev = 0.0, ad_reaction = 0.0, ad_decay = 0.0, ad_perf_deg = 0.0;
    double ad_alpha = 1.0, cfg_min_mhz = 0.0, cfg_max_mhz = 0.0, freq_step = 1.0;
    long long ad_endstop = 0, ad_literal = 0, freq_points = 0;
    const int64_t *ad_ctrl = NULL;
    double *ad_freq = NULL, *ad_prev_util = NULL, *ad_ipc = NULL;
    int64_t *ad_upper = NULL, *ad_lower = NULL;
    int64_t *ad_attacks_up = NULL, *ad_attacks_down = NULL;
    int64_t *ad_decays = NULL, *ad_holds = NULL;
    const double *freq_table = NULL;
    int64_t *reg_requests = NULL, *reg_dirchg = NULL;

    /* --- column buffers ----------------------------------------------- */
    Py_ssize_t col_n;
    const int64_t *kinds = get_buffer(a, "kinds", pool, 0, 8, &col_n);
    if (kinds == NULL || col_n < total) goto fail;
    const int64_t *pcs = get_buffer(a, "pcs", pool, 0, 8, NULL);
    const int64_t *addrs = get_buffer(a, "addrs", pool, 0, 8, NULL);
    const int64_t *taken_c = get_buffer(a, "taken", pool, 0, 8, NULL);
    const int64_t *targets_c = get_buffer(a, "targets", pool, 0, 8, NULL);
    const int64_t *dest_c = get_buffer(a, "dest", pool, 0, 8, NULL);
    const int64_t *qd_c = get_buffer(a, "domain", pool, 0, 8, NULL);
    const int64_t *p1_c = get_buffer(a, "p1", pool, 0, 8, NULL);
    const int64_t *p2_c = get_buffer(a, "p2", pool, 0, 8, NULL);
    int64_t *newline = get_buffer(a, "newline", pool, 1, 8, NULL);
    if (!pcs || !addrs || !taken_c || !targets_c || !dest_c || !qd_c || !p1_c
        || !p2_c || !newline)
        goto fail;

    const int64_t *lat_cycles = get_buffer(a, "lat_cycles", pool, 0, 8, NULL);
    const int64_t *complex_op = get_buffer(a, "complex_op", pool, 0, 8, NULL);
    const int64_t *simple_w = get_buffer(a, "simple_w", pool, 0, 8, NULL);
    const int64_t *complex_w = get_buffer(a, "complex_w", pool, 0, 8, NULL);
    const int64_t *q_cap = get_buffer(a, "q_cap", pool, 0, 8, NULL);
    const double *clock_e = get_buffer(a, "clock_e", pool, 0, 8, NULL);
    const double *idle_e = get_buffer(a, "idle_e", pool, 0, 8, NULL);
    const double *e_issue_a = get_buffer(a, "e_issue", pool, 0, 8, NULL);
    const double *e_simple_a = get_buffer(a, "e_simple", pool, 0, 8, NULL);
    const double *e_complex_a = get_buffer(a, "e_complex", pool, 0, 8, NULL);
    double *reg_cur = get_buffer(a, "reg_cur", pool, 1, 8, NULL);
    double *reg_tgt = get_buffer(a, "reg_tgt", pool, 1, 8, NULL);
    double *reg_last = get_buffer(a, "reg_last", pool, 1, 8, NULL);
    const double *reg_slew = get_buffer(a, "reg_slew", pool, 0, 8, NULL);
    double *reg_slew_acc = get_buffer(a, "reg_slew_acc", pool, 1, 8, NULL);
    double *edge_ns = get_buffer(a, "edge", pool, 1, 8, NULL);
    int64_t *cycle_idx = get_buffer(a, "cyc", pool, 1, 8, NULL);
    double *acc_clock = get_buffer(a, "acc_clock", pool, 1, 8, NULL);
    double *acc_struct = get_buffer(a, "acc_struct", pool, 1, 8, NULL);
    int64_t *n_busy = get_buffer(a, "n_busy", pool, 1, 8, NULL);
    int64_t *n_idle = get_buffer(a, "n_idle", pool, 1, 8, NULL);
    int64_t *q_occ = get_buffer(a, "q_occ", pool, 1, 8, NULL);
    int64_t *q_writes = get_buffer(a, "q_writes", pool, 1, 8, NULL);
    int64_t *cache_stats = get_buffer(a, "cache_stats", pool, 1, 8, NULL);
    int64_t *bp_stats = get_buffer(a, "bp_stats", pool, 1, 8, NULL);
    double *cur_freq = get_buffer(a, "cur_freq", pool, 1, 8, NULL);
    if (!lat_cycles || !complex_op || !simple_w || !complex_w || !q_cap
        || !clock_e || !idle_e || !e_issue_a || !e_simple_a || !e_complex_a
        || !reg_cur || !reg_tgt || !reg_last || !reg_slew || !reg_slew_acc
        || !edge_ns || !cycle_idx || !acc_clock || !acc_struct || !n_busy
        || !n_idle || !q_occ || !q_writes || !cache_stats || !bp_stats
        || !cur_freq)
        goto fail;

    if (native_ctrl) {
        if (get_double(a, "ad_dev", &ad_dev)
            || get_double(a, "ad_reaction", &ad_reaction)
            || get_double(a, "ad_decay", &ad_decay)
            || get_double(a, "ad_perf_deg", &ad_perf_deg)
            || get_double(a, "ad_alpha", &ad_alpha)
            || get_long(a, "ad_endstop", &ad_endstop)
            || get_long(a, "ad_literal", &ad_literal)
            || get_long(a, "freq_points", &freq_points)
            || get_double(a, "freq_step", &freq_step)
            || get_double(a, "cfg_min_mhz", &cfg_min_mhz)
            || get_double(a, "cfg_max_mhz", &cfg_max_mhz))
            goto fail;
        ad_ctrl = get_buffer(a, "ad_ctrl", pool, 0, 8, NULL);
        ad_freq = get_buffer(a, "ad_freq", pool, 1, 8, NULL);
        ad_prev_util = get_buffer(a, "ad_prev_util", pool, 1, 8, NULL);
        ad_upper = get_buffer(a, "ad_upper", pool, 1, 8, NULL);
        ad_lower = get_buffer(a, "ad_lower", pool, 1, 8, NULL);
        ad_attacks_up = get_buffer(a, "ad_attacks_up", pool, 1, 8, NULL);
        ad_attacks_down = get_buffer(a, "ad_attacks_down", pool, 1, 8, NULL);
        ad_decays = get_buffer(a, "ad_decays", pool, 1, 8, NULL);
        ad_holds = get_buffer(a, "ad_holds", pool, 1, 8, NULL);
        ad_ipc = get_buffer(a, "ad_ipc", pool, 1, 8, NULL);
        Py_ssize_t table_n = 0;
        freq_table = get_buffer(a, "freq_table", pool, 0, 8, &table_n);
        reg_requests = get_buffer(a, "reg_requests", pool, 1, 8, NULL);
        reg_dirchg = get_buffer(a, "reg_dirchg", pool, 1, 8, NULL);
        if (!ad_ctrl || !ad_freq || !ad_prev_util || !ad_upper || !ad_lower
            || !ad_attacks_up || !ad_attacks_down || !ad_decays || !ad_holds
            || !ad_ipc || !freq_table || !reg_requests || !reg_dirchg)
            goto fail;
        if (freq_points < 1 || table_n < freq_points) {
            PyErr_SetString(PyExc_ValueError, "hotpath: bad frequency table");
            goto fail;
        }
    }

    /* --- python-object state, unmarshalled ----------------------------- */
    PyObject *l1i_sets_o = PyDict_GetItemString(a, "l1i_sets");
    PyObject *l1d_sets_o = PyDict_GetItemString(a, "l1d_sets");
    PyObject *l2_sets_o = PyDict_GetItemString(a, "l2_sets");
    PyObject *hist_o = PyDict_GetItemString(a, "hist");
    PyObject *pl2_o = PyDict_GetItemString(a, "pl2");
    PyObject *bim_o = PyDict_GetItemString(a, "bim");
    PyObject *meta_o = PyDict_GetItemString(a, "meta");
    PyObject *btb_o = PyDict_GetItemString(a, "btb");
    PyObject *jlists = PyDict_GetItemString(a, "jbufs");
    PyObject *refill = PyDict_GetItemString(a, "refill");
    PyObject *rollover = PyDict_GetItemString(a, "rollover");
    if (!l1i_sets_o || !l1d_sets_o || !l2_sets_o || !hist_o || !pl2_o || !bim_o
        || !meta_o || !btb_o || !jlists || !refill || !rollover) {
        PyErr_SetString(PyExc_KeyError, "hotpath: missing object arg");
        goto fail;
    }

    rs->l1i_tags = PyMem_Malloc(l1i_nsets * l1i_ways * sizeof(int64_t));
    rs->l1i_cnt = PyMem_Calloc(l1i_nsets, sizeof(int32_t));
    rs->l1d_tags = PyMem_Malloc(l1d_nsets * l1d_ways * sizeof(int64_t));
    rs->l1d_cnt = PyMem_Calloc(l1d_nsets, sizeof(int32_t));
    rs->l2_tags = PyMem_Malloc(l2_nsets * l2_ways * sizeof(int64_t));
    rs->l2_cnt = PyMem_Calloc(l2_nsets, sizeof(int32_t));
    if (!rs->l1i_tags || !rs->l1i_cnt || !rs->l1d_tags || !rs->l1d_cnt || !rs->l2_tags || !rs->l2_cnt) {
        PyErr_NoMemory();
        goto fail;
    }
    if (sets_from_list(l1i_sets_o, l1i_nsets, l1i_ways, rs->l1i_tags, rs->l1i_cnt)
        || sets_from_list(l1d_sets_o, l1d_nsets, l1d_ways, rs->l1d_tags, rs->l1d_cnt)
        || sets_from_list(l2_sets_o, l2_nsets, l2_ways, rs->l2_tags, rs->l2_cnt))
        goto fail;

    rs->hist = ints_from_list(hist_o, &rs->hist_len);
    rs->pl2 = ints_from_list(pl2_o, &rs->pl2_len);
    rs->bim = ints_from_list(bim_o, &rs->bim_len);
    rs->meta = ints_from_list(meta_o, &rs->meta_len);
    if (!rs->hist || !rs->pl2 || !rs->bim || !rs->meta)
        goto fail;

    /* BTB: list (per set) of list of (tag, target) tuples, MRU last. */
    rs->btb_tags = PyMem_Malloc(btb_nsets * btb_ways * sizeof(int64_t));
    rs->btb_tgts = PyMem_Malloc(btb_nsets * btb_ways * sizeof(int64_t));
    rs->btb_cnt = PyMem_Calloc(btb_nsets, sizeof(int32_t));
    if (!rs->btb_tags || !rs->btb_tgts || !rs->btb_cnt) {
        PyErr_NoMemory();
        goto fail;
    }
    for (Py_ssize_t i = 0; i < btb_nsets; i++) {
        PyObject *s = PyList_GET_ITEM(btb_o, i);
        Py_ssize_t k = PyList_GET_SIZE(s);
        if (k > btb_ways)
            k = btb_ways;
        rs->btb_cnt[i] = (int32_t)k;
        for (Py_ssize_t j = 0; j < k; j++) {
            PyObject *pair = PyList_GET_ITEM(s, j);
            rs->btb_tags[i * btb_ways + j] =
                PyLong_AsLongLong(PyTuple_GET_ITEM(pair, 0));
            rs->btb_tgts[i * btb_ways + j] =
                PyLong_AsLongLong(PyTuple_GET_ITEM(pair, 1));
            if (PyErr_Occurred())
                goto fail;
        }
    }

    /* Jitter buffers (consumed from the tail, exactly like list.pop). */
    for (int d = 0; d < 4; d++) {
        PyObject *lst = PyList_GET_ITEM(jlists, d);
        Py_ssize_t k = PyList_GET_SIZE(lst);
        rs->jbuf[d] = PyMem_Malloc((k ? k : 1) * sizeof(double));
        if (rs->jbuf[d] == NULL) {
            PyErr_NoMemory();
            goto fail;
        }
        for (Py_ssize_t j = 0; j < k; j++) {
            rs->jbuf[d][j] = PyFloat_AsDouble(PyList_GET_ITEM(lst, j));
            if (PyErr_Occurred())
                goto fail;
        }
        rs->jlen[d] = k;
    }

    /* Validation that used to sit in the run-local setup: raise while
     * errors still can be raised cheaply, before any compute starts. */
    rs->rob_seq = PyMem_Malloc(rob_cap * sizeof(int64_t));
    if (rs->rob_seq == NULL) {
        PyErr_NoMemory();
        goto fail;
    }
    for (int d = 1; d < 4; d++) {
        if (q_cap[d] > QMAX) {
            PyErr_SetString(PyExc_ValueError, "hotpath: issue queue too large");
            goto fail;
        }
    }

    rs->total = total;
    rs->decode_width = decode_width;
    rs->retire_width = retire_width;
    rs->rob_cap = rob_cap;
    rs->l1_cycles = l1_cycles;
    rs->l2_cycles = l2_cycles;
    rs->mispredict_penalty = mispredict_penalty;
    rs->interval_len = interval_len;
    rs->mcd_mode = mcd_mode;
    rs->kind_load = kind_load;
    rs->kind_store = kind_store;
    rs->kind_branch = kind_branch;
    rs->shift = shift;
    rs->l1i_nsets = l1i_nsets;
    rs->l1d_nsets = l1d_nsets;
    rs->l2_nsets = l2_nsets;
    rs->l1i_ways = l1i_ways;
    rs->l1d_ways = l1d_ways;
    rs->l2_ways = l2_ways;
    rs->hist_mask = hist_mask;
    rs->btb_nsets = btb_nsets;
    rs->btb_ways = btb_ways;
    rs->call_rollover = call_rollover;
    rs->int_free = int_free;
    rs->fp_free = fp_free;
    rs->mem_latency = mem_latency;
    rs->window = window;
    rs->vmin = vmin;
    rs->fmin = fmin;
    rs->vslope = vslope;
    rs->vmax_sq_inv = vmax_sq_inv;
    rs->e_l1i = e_l1i;
    rs->e_l2 = e_l2;
    rs->e_bpred = e_bpred;
    rs->e_retire = e_retire;
    rs->e_disp_fetch = e_disp_fetch;
    rs->native_ctrl = native_ctrl;
    rs->ad_dev = ad_dev;
    rs->ad_reaction = ad_reaction;
    rs->ad_decay = ad_decay;
    rs->ad_perf_deg = ad_perf_deg;
    rs->ad_alpha = ad_alpha;
    rs->cfg_min_mhz = cfg_min_mhz;
    rs->cfg_max_mhz = cfg_max_mhz;
    rs->freq_step = freq_step;
    rs->ad_endstop = ad_endstop;
    rs->ad_literal = ad_literal;
    rs->freq_points = freq_points;
    rs->ad_ctrl = ad_ctrl;
    rs->ad_freq = ad_freq;
    rs->ad_prev_util = ad_prev_util;
    rs->ad_ipc = ad_ipc;
    rs->ad_upper = ad_upper;
    rs->ad_lower = ad_lower;
    rs->ad_attacks_up = ad_attacks_up;
    rs->ad_attacks_down = ad_attacks_down;
    rs->ad_decays = ad_decays;
    rs->ad_holds = ad_holds;
    rs->freq_table = freq_table;
    rs->reg_requests = reg_requests;
    rs->reg_dirchg = reg_dirchg;
    rs->kinds = kinds;
    rs->pcs = pcs;
    rs->addrs = addrs;
    rs->taken_c = taken_c;
    rs->targets_c = targets_c;
    rs->dest_c = dest_c;
    rs->qd_c = qd_c;
    rs->p1_c = p1_c;
    rs->p2_c = p2_c;
    rs->newline = newline;
    rs->lat_cycles = lat_cycles;
    rs->complex_op = complex_op;
    rs->simple_w = simple_w;
    rs->complex_w = complex_w;
    rs->q_cap = q_cap;
    rs->clock_e = clock_e;
    rs->idle_e = idle_e;
    rs->e_issue_a = e_issue_a;
    rs->e_simple_a = e_simple_a;
    rs->e_complex_a = e_complex_a;
    rs->reg_cur = reg_cur;
    rs->reg_tgt = reg_tgt;
    rs->reg_last = reg_last;
    rs->reg_slew = reg_slew;
    rs->reg_slew_acc = reg_slew_acc;
    rs->edge_ns = edge_ns;
    rs->cycle_idx = cycle_idx;
    rs->acc_clock = acc_clock;
    rs->acc_struct = acc_struct;
    rs->n_busy = n_busy;
    rs->n_idle = n_idle;
    rs->q_occ = q_occ;
    rs->q_writes = q_writes;
    rs->cache_stats = cache_stats;
    rs->bp_stats = bp_stats;
    rs->cur_freq = cur_freq;
    rs->l1i_sets_o = l1i_sets_o;
    rs->l1d_sets_o = l1d_sets_o;
    rs->l2_sets_o = l2_sets_o;
    rs->hist_o = hist_o;
    rs->pl2_o = pl2_o;
    rs->bim_o = bim_o;
    rs->meta_o = meta_o;
    rs->btb_o = btb_o;
    rs->refill = refill;
    rs->rollover = rollover;
    return 0;

fail:
    return -1;
}

/* Stage 2: the event loop.  Called with the GIL RELEASED (*tstate_p
 * holds the saved thread state); the refill/rollover shims re-acquire
 * it per crossing and the updated state flows back through tstate_p.
 * Returns 0 on success — including simulator-level "trace exhausted",
 * which reports through rs->error — and -1 when a Python callback
 * raised; the caller must PyEval_RestoreThread before touching the
 * pending exception. */
static int
compute_run(RunState *rs, PyThreadState **tstate_p)
{
    const int64_t total = rs->total;
    const int decode_width = rs->decode_width;
    const int retire_width = rs->retire_width;
    const int64_t rob_cap = rs->rob_cap;
    const int64_t l1_cycles = rs->l1_cycles, l2_cycles = rs->l2_cycles;
    const int64_t mispredict_penalty = rs->mispredict_penalty;
    const int64_t interval_len = rs->interval_len;
    const int mcd_mode = rs->mcd_mode;
    const int64_t kind_load = rs->kind_load, kind_store = rs->kind_store,
                  kind_branch = rs->kind_branch;
    const int shift = rs->shift;
    const int64_t l1i_nsets = rs->l1i_nsets, l1d_nsets = rs->l1d_nsets,
                  l2_nsets = rs->l2_nsets;
    const int l1i_ways = rs->l1i_ways, l1d_ways = rs->l1d_ways,
              l2_ways = rs->l2_ways;
    const int64_t hist_mask = rs->hist_mask;
    const int64_t btb_nsets = rs->btb_nsets;
    const int btb_ways = rs->btb_ways;
    const int call_rollover = rs->call_rollover;
    int64_t int_free = rs->int_free, fp_free = rs->fp_free;
    const double mem_latency = rs->mem_latency, window = rs->window;
    const double vmin = rs->vmin, fmin = rs->fmin, vslope = rs->vslope,
                 vmax_sq_inv = rs->vmax_sq_inv;
    const double e_l1i = rs->e_l1i, e_l2 = rs->e_l2, e_bpred = rs->e_bpred,
                 e_retire = rs->e_retire, e_disp_fetch = rs->e_disp_fetch;
    const int native_ctrl = rs->native_ctrl;
    const double ad_dev = rs->ad_dev, ad_reaction = rs->ad_reaction,
                 ad_decay = rs->ad_decay, ad_perf_deg = rs->ad_perf_deg,
                 ad_alpha = rs->ad_alpha;
    const double cfg_min_mhz = rs->cfg_min_mhz, cfg_max_mhz = rs->cfg_max_mhz,
                 freq_step = rs->freq_step;
    const long long ad_endstop = rs->ad_endstop, ad_literal = rs->ad_literal,
                    freq_points = rs->freq_points;
    const int64_t *ad_ctrl = rs->ad_ctrl;
    double *ad_freq = rs->ad_freq, *ad_prev_util = rs->ad_prev_util,
           *ad_ipc = rs->ad_ipc;
    int64_t *ad_upper = rs->ad_upper, *ad_lower = rs->ad_lower;
    int64_t *ad_attacks_up = rs->ad_attacks_up,
            *ad_attacks_down = rs->ad_attacks_down;
    int64_t *ad_decays = rs->ad_decays, *ad_holds = rs->ad_holds;
    const double *freq_table = rs->freq_table;
    int64_t *reg_requests = rs->reg_requests, *reg_dirchg = rs->reg_dirchg;
    const int64_t *kinds = rs->kinds, *pcs = rs->pcs, *addrs = rs->addrs;
    const int64_t *taken_c = rs->taken_c, *targets_c = rs->targets_c;
    const int64_t *dest_c = rs->dest_c, *qd_c = rs->qd_c;
    const int64_t *p1_c = rs->p1_c, *p2_c = rs->p2_c;
    int64_t *newline = rs->newline;
    const int64_t *lat_cycles = rs->lat_cycles, *complex_op = rs->complex_op;
    const int64_t *simple_w = rs->simple_w, *complex_w = rs->complex_w;
    const int64_t *q_cap = rs->q_cap;
    const double *clock_e = rs->clock_e, *idle_e = rs->idle_e;
    const double *e_issue_a = rs->e_issue_a, *e_simple_a = rs->e_simple_a,
                 *e_complex_a = rs->e_complex_a;
    double *reg_cur = rs->reg_cur, *reg_tgt = rs->reg_tgt,
           *reg_last = rs->reg_last;
    const double *reg_slew = rs->reg_slew;
    double *reg_slew_acc = rs->reg_slew_acc;
    double *edge_ns = rs->edge_ns;
    int64_t *cycle_idx = rs->cycle_idx;
    double *acc_clock = rs->acc_clock, *acc_struct = rs->acc_struct;
    int64_t *n_busy = rs->n_busy, *n_idle = rs->n_idle;
    int64_t *q_occ = rs->q_occ, *q_writes = rs->q_writes;
    int64_t *cache_stats = rs->cache_stats, *bp_stats = rs->bp_stats;
    double *cur_freq = rs->cur_freq;
    int64_t *l1i_tags = rs->l1i_tags, *l1d_tags = rs->l1d_tags,
            *l2_tags = rs->l2_tags;
    int32_t *l1i_cnt = rs->l1i_cnt, *l1d_cnt = rs->l1d_cnt,
            *l2_cnt = rs->l2_cnt;
    int64_t *hist = rs->hist, *pl2 = rs->pl2, *bim = rs->bim, *meta = rs->meta;
    const Py_ssize_t hist_len = rs->hist_len, pl2_len = rs->pl2_len,
                     bim_len = rs->bim_len, meta_len = rs->meta_len;
    int64_t *btb_tags = rs->btb_tags, *btb_tgts = rs->btb_tgts;
    int32_t *btb_cnt = rs->btb_cnt;
    double **jbuf = rs->jbuf;
    Py_ssize_t *jlen = rs->jlen;
    int64_t *rob_seq = rs->rob_seq;
    PyObject *refill = rs->refill, *rollover = rs->rollover;
    PyThreadState *tstate = *tstate_p;
    /* --- local run state ---------------------------------------------- */
    double fin_ns[RING];
    int64_t fin_cycle[RING];
    int32_t fin_domain[RING];
    for (int i = 0; i < RING; i++) {
        fin_ns[i] = -INFINITY;
        fin_cycle[i] = 0;
        fin_domain[i] = -1;
    }

    int64_t rob_head = 0, rob_n = 0; /* ring buffer over rob_cap slots */

    int64_t q_seq[4][QMAX];
    double q_t[4][QMAX];
    double q_retry[4][QMAX];
    int q_len[4] = {0, 0, 0, 0};

    double cur_period[4], cur_vscale[4];
    int slewing[4];
    for (int d = 0; d < 4; d++) {
        cur_period[d] = 1e3 / cur_freq[d];
        double v = vmin + (cur_freq[d] - fmin) * vslope;
        cur_vscale[d] = v * v * vmax_sq_inv;
        slewing[d] = reg_cur[d] != reg_tgt[d];
    }

    int active[4] = {1, 0, 0, 0};
    int64_t retired = 0, fetch_i = 0;
    double fetch_resume_ns = 0.0;
    int64_t branch_stall_seq = -1;
    int64_t dispatch_stall_cycles = 0, memory_accesses = 0;
    double interval_start_ns = 0.0;
    int64_t next_interval = interval_len, interval_index = 0;
    int64_t busy_in_interval[4] = {0, 0, 0, 0};
    const char *error = NULL;

    /* ---- compute stage: pure C, GIL released ------------------------- */
    int py_error = 0;

    while (retired < total) {
        int d = 0;
        double t = edge_ns[0];
        if (active[1] && edge_ns[1] < t) { d = 1; t = edge_ns[1]; }
        if (active[2] && edge_ns[2] < t) { d = 2; t = edge_ns[2]; }
        if (active[3] && edge_ns[3] < t) { d = 3; t = edge_ns[3]; }

        if (slewing[d]) {
            /* regulator advance_to(t) */
            double dt = t - reg_last[d];
            reg_last[d] = t;
            double freq = reg_cur[d];
            if (dt > 0.0 && reg_cur[d] != reg_tgt[d]) {
                double max_delta = dt * reg_slew[d];
                double gap = reg_tgt[d] - reg_cur[d];
                if (fabs(gap) <= max_delta) {
                    reg_cur[d] = reg_tgt[d];
                    reg_slew_acc[d] += fabs(gap) / reg_slew[d];
                } else {
                    reg_cur[d] += gap > 0 ? max_delta : -max_delta;
                    reg_slew_acc[d] += dt;
                }
                freq = reg_cur[d];
            }
            if (freq == reg_tgt[d])
                slewing[d] = 0;
            if (freq != cur_freq[d]) {
                cur_freq[d] = freq;
                cur_period[d] = 1e3 / freq;
                double v = vmin + (freq - fmin) * vslope;
                cur_vscale[d] = v * v * vmax_sq_inv;
            }
        }
        double vscale = cur_vscale[d];

        if (d == 0) {
            double access_energy = 0.0;
            int worked = 0;

            /* ---- retire ---- */
            double cross_thresh = mcd_mode ? window : 0.5 * cur_period[0];
            int n_retire = 0;
            while (rob_n > 0 && n_retire < retire_width) {
                int64_t seq = rob_seq[rob_head];
                int64_t slot = seq & RING_MASK;
                if (fin_ns[slot] + cross_thresh > t + EPS_NS)
                    break;
                rob_head = (rob_head + 1) % rob_cap;
                rob_n--;
                int64_t dst = dest_c[seq - 1];
                if (dst == 0)
                    int_free++;
                else if (dst == 1)
                    fp_free++;
                n_retire++;
            }
            retired += n_retire;
            if (n_retire) {
                worked = 1;
                access_energy += (double)n_retire * e_retire;
            }

            /* ---- interval rollover ---- */
            if (retired >= next_interval) {
                interval_index++;
                next_interval += interval_len;
                double duration = t - interval_start_ns;
                if (duration <= 0)
                    duration = cur_period[0];
                for (int i = 1; i < 4; i++) {
                    /* regulator advance_to(t) */
                    double dt = t - reg_last[i];
                    reg_last[i] = t;
                    double ifreq = reg_cur[i];
                    if (dt > 0.0 && reg_cur[i] != reg_tgt[i]) {
                        double max_delta = dt * reg_slew[i];
                        double gap = reg_tgt[i] - reg_cur[i];
                        if (fabs(gap) <= max_delta) {
                            reg_cur[i] = reg_tgt[i];
                            reg_slew_acc[i] += fabs(gap) / reg_slew[i];
                        } else {
                            reg_cur[i] += gap > 0 ? max_delta : -max_delta;
                            reg_slew_acc[i] += dt;
                        }
                        ifreq = reg_cur[i];
                    }
                    slewing[i] = ifreq != reg_tgt[i];
                    if (ifreq != cur_freq[i]) {
                        cur_freq[i] = ifreq;
                        cur_period[i] = 1e3 / ifreq;
                        double v = vmin + (ifreq - fmin) * vslope;
                        cur_vscale[i] = v * v * vmax_sq_inv;
                    }
                    if (!active[i]) {
                        double edge = edge_ns[i];
                        if (t > edge) {
                            double period = cur_period[i];
                            double skipped = ceil((t - edge) / period);
                            edge_ns[i] = edge + skipped * period;
                            cycle_idx[i] += (int64_t)skipped;
                            acc_clock[i] += idle_e[i] * cur_vscale[i] * skipped;
                            n_idle[i] += (int64_t)skipped;
                        }
                    }
                }
                int64_t occ1 = q_occ[1], occ2 = q_occ[2], occ3 = q_occ[3];
                q_occ[1] = q_occ[2] = q_occ[3] = 0;
                if (call_rollover) {
                    if (rollover_callback(
                            rollover, (long long)(interval_index - 1),
                            (long long)retired, t, duration, (long long)occ1,
                            (long long)occ2, (long long)occ3,
                            busy_in_interval, (long long)memory_accesses,
                            &tstate) < 0) {
                        py_error = 1;
                        break;
                    }
                    /* Pick up controller-applied regulator changes.
                     * NOTE: vscale deliberately stays the value bound
                     * at the top of this cycle, like the Python paths. */
                    for (int i = 0; i < 4; i++) {
                        slewing[i] = reg_cur[i] != reg_tgt[i];
                        if (reg_cur[i] != cur_freq[i]) {
                            cur_freq[i] = reg_cur[i];
                            cur_period[i] = 1e3 / reg_cur[i];
                            double v = vmin + (reg_cur[i] - fmin) * vslope;
                            cur_vscale[i] = v * v * vmax_sq_inv;
                        }
                    }
                } else if (native_ctrl) {
                    /* Attack/Decay (paper Listing 1) run inline: the
                     * same arithmetic, in the same order, as
                     * AttackDecayController.on_interval feeding
                     * VoltageFrequencyRegulator.request — with zero
                     * Python crossings. */
                    double raw_ipc = (double)interval_len
                                     / (duration * cur_freq[0] * 1e-3);
                    double ipc;
                    if (interval_index - 1 == 0 || ad_alpha >= 1.0)
                        ipc = raw_ipc;
                    else
                        ipc = ad_alpha * raw_ipc + (1.0 - ad_alpha) * ad_ipc[1];
                    ad_ipc[1] = ipc;
                    /* The PerfDegThreshold guard (Listing 1 l.19 & 25). */
                    int decrease_allowed = 0;
                    if (ipc > 0.0) {
                        if (ad_ipc[0] <= 0.0) {
                            decrease_allowed = 1;
                        } else {
                            double ratio = ad_ipc[0] / ipc;
                            decrease_allowed =
                                ad_literal ? (ratio >= ad_perf_deg)
                                           : (ratio - 1.0 <= ad_perf_deg);
                        }
                    }
                    int64_t occs[4] = {0, occ1, occ2, occ3};
                    for (int i = 0; i < 4; i++) {
                        if (!ad_ctrl[i])
                            continue;
                        double utilization =
                            (double)occs[i] / (double)interval_len;
                        double scale = 1.0; /* >1 slows the domain down */
                        if (ad_upper[i] >= ad_endstop) {
                            scale = 1.0 + ad_reaction; /* force decrease */
                            ad_attacks_down[i]++;
                        } else if (ad_lower[i] >= ad_endstop) {
                            scale = 1.0 - ad_reaction; /* force increase */
                            ad_attacks_up[i]++;
                        } else {
                            double prev = ad_prev_util[i];
                            double deviation = prev * ad_dev;
                            if (utilization - prev > deviation) {
                                scale = 1.0 - ad_reaction;
                                ad_attacks_up[i]++;
                            } else if (prev - utilization > deviation
                                       && decrease_allowed) {
                                scale = 1.0 + ad_reaction;
                                ad_attacks_down[i]++;
                            } else if (decrease_allowed && ad_decay > 0.0) {
                                scale = 1.0 + ad_decay;
                                ad_decays[i]++;
                            } else {
                                ad_holds[i]++;
                            }
                        }
                        double new_mhz = ad_freq[i] / scale;
                        /* min(max_f, max(min_f, new_mhz)) */
                        if (new_mhz < cfg_min_mhz)
                            new_mhz = cfg_min_mhz;
                        if (new_mhz > cfg_max_mhz)
                            new_mhz = cfg_max_mhz;
                        if (new_mhz != ad_freq[i]) {
                            ad_freq[i] = new_mhz;
                            /* regulator.request: quantize to the scale
                             * (nearbyint = round-half-even, matching
                             * Python's round()). */
                            double clamped = new_mhz < cfg_min_mhz
                                                 ? cfg_min_mhz
                                                 : new_mhz;
                            if (clamped > cfg_max_mhz)
                                clamped = cfg_max_mhz;
                            int64_t idx = (int64_t)nearbyint(
                                (clamped - cfg_min_mhz) / freq_step);
                            if (idx < 0)
                                idx = 0;
                            if (idx >= freq_points)
                                idx = freq_points - 1;
                            double snapped = freq_table[idx];
                            if (snapped != reg_tgt[i]) {
                                reg_requests[i]++;
                                double old_dir = reg_tgt[i] - reg_cur[i];
                                double new_dir = snapped - reg_cur[i];
                                if (old_dir * new_dir < 0.0)
                                    reg_dirchg[i]++;
                                reg_tgt[i] = snapped;
                            }
                        }
                        /* Endstop counters (Listing 1 l.38-47). */
                        int at_min = ad_freq[i] <= cfg_min_mhz + 1e-9;
                        int at_max = ad_freq[i] >= cfg_max_mhz - 1e-9;
                        if (at_min && ad_lower[i] != ad_endstop)
                            ad_lower[i]++;
                        else
                            ad_lower[i] = 0;
                        if (at_max && ad_upper[i] != ad_endstop)
                            ad_upper[i]++;
                        else
                            ad_upper[i] = 0;
                        ad_prev_util[i] = utilization;
                    }
                    ad_ipc[0] = ipc;
                    /* Pick up the new regulator targets, exactly as
                     * after the callback above (request never moves
                     * reg_cur, so the cur_freq refresh is a no-op kept
                     * for strict symmetry). */
                    for (int i = 0; i < 4; i++) {
                        slewing[i] = reg_cur[i] != reg_tgt[i];
                        if (reg_cur[i] != cur_freq[i]) {
                            cur_freq[i] = reg_cur[i];
                            cur_period[i] = 1e3 / reg_cur[i];
                            double v = vmin + (reg_cur[i] - fmin) * vslope;
                            cur_vscale[i] = v * v * vmax_sq_inv;
                        }
                    }
                }
                busy_in_interval[0] = busy_in_interval[1] = 0;
                busy_in_interval[2] = busy_in_interval[3] = 0;
                interval_start_ns = t;
            }

            /* ---- fetch / dispatch ---- */
            if (branch_stall_seq < 0 && t + EPS_NS >= fetch_resume_ns
                && fetch_i < total) {
                int fetched = 0, stalled = 0;
                int64_t fi = fetch_i;
                while (fetched < decode_width) {
                    if (fi >= total)
                        break;
                    if (newline[fi]) {
                        newline[fi] = 0;
                        access_energy += e_l1i;
                        int64_t line = pcs[fi] >> shift;
                        int64_t si = line % l1i_nsets;
                        int64_t tag = line / l1i_nsets;
                        int64_t *setp = &l1i_tags[si * l1i_ways];
                        int cnt = l1i_cnt[si];
                        int hit = 0;
                        cache_stats[0]++; /* l1i accesses */
                        for (int j = 0; j < cnt; j++) {
                            if (setp[j] == tag) {
                                for (int k2 = j; k2 < cnt - 1; k2++)
                                    setp[k2] = setp[k2 + 1];
                                setp[cnt - 1] = tag;
                                hit = 1;
                                break;
                            }
                        }
                        if (!hit) {
                            cache_stats[1]++; /* l1i misses */
                            if (cnt == l1i_ways) {
                                for (int k2 = 0; k2 < cnt - 1; k2++)
                                    setp[k2] = setp[k2 + 1];
                                setp[cnt - 1] = tag;
                            } else {
                                setp[cnt] = tag;
                                l1i_cnt[si] = cnt + 1;
                            }
                            double delay =
                                (double)l2_cycles * cur_period[3] + 2.0 * window;
                            access_energy += e_l2;
                            int64_t s2 = line % l2_nsets;
                            int64_t tag2 = line / l2_nsets;
                            int64_t *set2 = &l2_tags[s2 * l2_ways];
                            int cnt2 = l2_cnt[s2];
                            int hit2 = 0;
                            cache_stats[4]++; /* l2 accesses */
                            for (int j = 0; j < cnt2; j++) {
                                if (set2[j] == tag2) {
                                    for (int k2 = j; k2 < cnt2 - 1; k2++)
                                        set2[k2] = set2[k2 + 1];
                                    set2[cnt2 - 1] = tag2;
                                    hit2 = 1;
                                    break;
                                }
                            }
                            if (!hit2) {
                                cache_stats[5]++; /* l2 misses */
                                if (cnt2 == l2_ways) {
                                    for (int k2 = 0; k2 < cnt2 - 1; k2++)
                                        set2[k2] = set2[k2 + 1];
                                    set2[cnt2 - 1] = tag2;
                                } else {
                                    set2[cnt2] = tag2;
                                    l2_cnt[s2] = cnt2 + 1;
                                }
                                delay += mem_latency;
                                memory_accesses++;
                            }
                            fetch_resume_ns = t + delay;
                            break;
                        }
                    }
                    if (rob_n >= rob_cap) {
                        stalled = 1;
                        break;
                    }
                    int64_t qd = qd_c[fi];
                    if (q_len[qd] >= q_cap[qd]) {
                        stalled = 1;
                        break;
                    }
                    int64_t dst = dest_c[fi];
                    if (dst == 0) {
                        if (int_free <= 0) {
                            stalled = 1;
                            break;
                        }
                        int_free--;
                    } else if (dst == 1) {
                        if (fp_free <= 0) {
                            stalled = 1;
                            break;
                        }
                        fp_free--;
                    }

                    int64_t seq = fi + 1;
                    int64_t slot = seq & RING_MASK;
                    fin_ns[slot] = INFINITY;
                    fin_domain[slot] = -1;
                    int64_t kind = kinds[fi];
                    int mispredicted = 0;
                    if (kind == kind_branch) {
                        access_energy += e_bpred;
                        int64_t pc = pcs[fi];
                        int64_t tk = taken_c[fi];
                        int64_t word = pc >> 2;
                        int64_t hist_i = word % hist_len;
                        int64_t history = hist[hist_i];
                        int64_t pl2_i = (history ^ word) % pl2_len;
                        int two_level = pl2[pl2_i] >= 2;
                        int64_t bim_i = word % bim_len;
                        int bimodal = bim[bim_i] >= 2;
                        int prediction =
                            meta[word % meta_len] >= 2 ? two_level : bimodal;
                        bp_stats[0]++; /* lookups */
                        if (prediction != (int)tk) {
                            bp_stats[1]++; /* direction mispredicts */
                            mispredicted = 1;
                        } else if (tk) {
                            int64_t bs = word % btb_nsets;
                            int64_t btag = word / btb_nsets;
                            int64_t *btags = &btb_tags[bs * btb_ways];
                            int64_t *btgts = &btb_tgts[bs * btb_ways];
                            int bcnt = btb_cnt[bs];
                            int found = 0;
                            int64_t found_tgt = 0;
                            for (int j = 0; j < bcnt; j++) {
                                if (btags[j] == btag) {
                                    found = 1;
                                    found_tgt = btgts[j];
                                    for (int k2 = j; k2 < bcnt - 1; k2++) {
                                        btags[k2] = btags[k2 + 1];
                                        btgts[k2] = btgts[k2 + 1];
                                    }
                                    btags[bcnt - 1] = btag;
                                    btgts[bcnt - 1] = found_tgt;
                                    break;
                                }
                            }
                            if (!found || found_tgt != targets_c[fi]) {
                                bp_stats[2]++; /* btb target misses */
                                mispredicted = 1;
                            }
                        }
                        int64_t value = pl2[pl2_i];
                        if (tk)
                            pl2[pl2_i] = value < 3 ? value + 1 : 3;
                        else
                            pl2[pl2_i] = value > 0 ? value - 1 : 0;
                        value = bim[bim_i];
                        if (tk)
                            bim[bim_i] = value < 3 ? value + 1 : 3;
                        else
                            bim[bim_i] = value > 0 ? value - 1 : 0;
                        if (two_level != bimodal) {
                            int64_t meta_i = word % meta_len;
                            value = meta[meta_i];
                            if (two_level == (int)tk)
                                meta[meta_i] = value < 3 ? value + 1 : 3;
                            else
                                meta[meta_i] = value > 0 ? value - 1 : 0;
                        }
                        hist[hist_i] = ((history << 1) | (tk ? 1 : 0)) & hist_mask;
                        if (tk) {
                            int64_t bs = word % btb_nsets;
                            int64_t btag = word / btb_nsets;
                            int64_t *btags = &btb_tags[bs * btb_ways];
                            int64_t *btgts = &btb_tgts[bs * btb_ways];
                            int bcnt = btb_cnt[bs];
                            for (int j = 0; j < bcnt; j++) {
                                if (btags[j] == btag) {
                                    for (int k2 = j; k2 < bcnt - 1; k2++) {
                                        btags[k2] = btags[k2 + 1];
                                        btgts[k2] = btgts[k2 + 1];
                                    }
                                    bcnt--;
                                    break;
                                }
                            }
                            if (bcnt == btb_ways) {
                                for (int k2 = 0; k2 < bcnt - 1; k2++) {
                                    btags[k2] = btags[k2 + 1];
                                    btgts[k2] = btgts[k2 + 1];
                                }
                                bcnt--;
                            }
                            btags[bcnt] = btag;
                            btgts[bcnt] = targets_c[fi];
                            btb_cnt[bs] = bcnt + 1;
                        }
                    }
                    int qn = q_len[qd];
                    q_seq[qd][qn] = seq;
                    q_t[qd][qn] = t;
                    q_retry[qd][qn] = 0.0;
                    q_len[qd] = qn + 1;
                    q_writes[qd]++;
                    if (!active[qd]) {
                        /* regulator advance_to(t) */
                        double dt = t - reg_last[qd];
                        reg_last[qd] = t;
                        double qfreq = reg_cur[qd];
                        if (dt > 0.0 && reg_cur[qd] != reg_tgt[qd]) {
                            double max_delta = dt * reg_slew[qd];
                            double gap = reg_tgt[qd] - reg_cur[qd];
                            if (fabs(gap) <= max_delta) {
                                reg_cur[qd] = reg_tgt[qd];
                                reg_slew_acc[qd] += fabs(gap) / reg_slew[qd];
                            } else {
                                reg_cur[qd] += gap > 0 ? max_delta : -max_delta;
                                reg_slew_acc[qd] += dt;
                            }
                            qfreq = reg_cur[qd];
                        }
                        slewing[qd] = qfreq != reg_tgt[qd];
                        if (qfreq != cur_freq[qd]) {
                            cur_freq[qd] = qfreq;
                            cur_period[qd] = 1e3 / qfreq;
                            double v = vmin + (qfreq - fmin) * vslope;
                            cur_vscale[qd] = v * v * vmax_sq_inv;
                        }
                        double edge = edge_ns[qd];
                        if (t > edge) {
                            double period = cur_period[qd];
                            double skipped = ceil((t - edge) / period);
                            edge_ns[qd] = edge + skipped * period;
                            cycle_idx[qd] += (int64_t)skipped;
                            acc_clock[qd] += idle_e[qd] * cur_vscale[qd] * skipped;
                            n_idle[qd] += (int64_t)skipped;
                        }
                        active[qd] = 1;
                    }
                    rob_seq[(rob_head + rob_n) % rob_cap] = seq;
                    rob_n++;
                    access_energy += e_disp_fetch;
                    fi++;
                    fetched++;
                    if (mispredicted) {
                        branch_stall_seq = seq;
                        break;
                    }
                }
                fetch_i = fi;
                if (fetched)
                    worked = 1;
                else if (stalled)
                    dispatch_stall_cycles++;
            }

            if (worked) {
                busy_in_interval[0]++;
                n_busy[0]++;
                acc_clock[0] += clock_e[0] * vscale;
                acc_struct[0] += access_energy * vscale;
            } else {
                n_idle[0]++;
                acc_clock[0] += idle_e[0] * vscale;
                if (access_energy != 0.0)
                    acc_struct[0] += access_energy * vscale;
            }
            /* inlined clock advance */
            double step;
            if (mcd_mode) {
                if (jlen[0] == 0
                    && refill_jitter(refill, 0, &jbuf[0], &jlen[0], &tstate) < 0) {
                    py_error = 1;
                    break;
                }
                step = cur_period[0] + jbuf[0][--jlen[0]];
                if (step < MIN_STEP_NS)
                    step = MIN_STEP_NS;
            } else {
                step = cur_period[0];
            }
            edge_ns[0] = t + step;
            cycle_idx[0]++;

        } else {
            /* ---- issue domain ---- */
            int64_t *seqs = q_seq[d];
            double *ts = q_t[d];
            double *retries = q_retry[d];
            int qn = q_len[d];
            q_occ[d] += qn;
            int issued_any = 0;
            double access_energy = 0.0;
            double e_issue = e_issue_a[d];
            double e_simple = e_simple_a[d];
            double e_complex = e_complex_a[d];
            double cross_thresh = mcd_mode ? window : 0.5 * cur_period[d];
            int64_t cyc = cycle_idx[d];
            double period = cur_period[d];
            int64_t sfree = simple_w[d];
            int64_t cfree = complex_w[d];
            for (int ei = 0; ei < qn; ei++) {
                if (retries[ei] > t)
                    continue;
                if (t - ts[ei] < cross_thresh)
                    break;
                int64_t seq = seqs[ei];
                int64_t p1 = p1_c[seq - 1];
                if (p1) {
                    int64_t slot1 = p1 & RING_MASK;
                    int fd = fin_domain[slot1];
                    if (fd < 0)
                        continue;
                    if (fd == d) {
                        if (fin_cycle[slot1] > cyc)
                            continue;
                    } else {
                        double nb = fin_ns[slot1] + cross_thresh;
                        if (nb > t + EPS_NS) {
                            retries[ei] = nb;
                            continue;
                        }
                    }
                }
                int64_t p2 = p2_c[seq - 1];
                if (p2) {
                    int64_t slot2 = p2 & RING_MASK;
                    int fd = fin_domain[slot2];
                    if (fd < 0)
                        continue;
                    if (fd == d) {
                        if (fin_cycle[slot2] > cyc)
                            continue;
                    } else {
                        double nb = fin_ns[slot2] + cross_thresh;
                        if (nb > t + EPS_NS) {
                            retries[ei] = nb;
                            continue;
                        }
                    }
                }
                int64_t kind = kinds[seq - 1];
                double lat;
                int64_t lat_c;
                if (complex_op[kind]) {
                    if (cfree <= 0)
                        continue;
                    cfree--;
                    access_energy += e_complex;
                    lat_c = lat_cycles[kind];
                    lat = (double)lat_c * period;
                } else if (sfree <= 0) {
                    if (cfree <= 0)
                        break;
                    continue;
                } else if (kind == kind_load) {
                    sfree--;
                    int64_t line = addrs[seq - 1] >> shift;
                    int64_t si = line % l1d_nsets;
                    int64_t tag = line / l1d_nsets;
                    int64_t *setp = &l1d_tags[si * l1d_ways];
                    int cnt = l1d_cnt[si];
                    int level = 0;
                    cache_stats[2]++; /* l1d accesses */
                    for (int j = 0; j < cnt; j++) {
                        if (setp[j] == tag) {
                            for (int k2 = j; k2 < cnt - 1; k2++)
                                setp[k2] = setp[k2 + 1];
                            setp[cnt - 1] = tag;
                            level = 1;
                            break;
                        }
                    }
                    if (!level) {
                        cache_stats[3]++; /* l1d misses */
                        if (cnt == l1d_ways) {
                            for (int k2 = 0; k2 < cnt - 1; k2++)
                                setp[k2] = setp[k2 + 1];
                            setp[cnt - 1] = tag;
                        } else {
                            setp[cnt] = tag;
                            l1d_cnt[si] = cnt + 1;
                        }
                        int64_t s2 = line % l2_nsets;
                        int64_t tag2 = line / l2_nsets;
                        int64_t *set2 = &l2_tags[s2 * l2_ways];
                        int cnt2 = l2_cnt[s2];
                        level = 0;
                        cache_stats[4]++;
                        for (int j = 0; j < cnt2; j++) {
                            if (set2[j] == tag2) {
                                for (int k2 = j; k2 < cnt2 - 1; k2++)
                                    set2[k2] = set2[k2 + 1];
                                set2[cnt2 - 1] = tag2;
                                level = 2;
                                break;
                            }
                        }
                        if (!level) {
                            cache_stats[5]++;
                            if (cnt2 == l2_ways) {
                                for (int k2 = 0; k2 < cnt2 - 1; k2++)
                                    set2[k2] = set2[k2 + 1];
                                set2[cnt2 - 1] = tag2;
                            } else {
                                set2[cnt2] = tag2;
                                l2_cnt[s2] = cnt2 + 1;
                            }
                            level = 3;
                        }
                    }
                    access_energy += e_simple; /* L1D probe */
                    if (level == 1) {
                        lat = (double)l1_cycles * period;
                        lat_c = l1_cycles;
                    } else if (level == 2) {
                        access_energy += e_l2;
                        lat = (double)l2_cycles * period;
                        lat_c = l2_cycles;
                    } else {
                        access_energy += e_l2;
                        memory_accesses++;
                        lat = (double)l2_cycles * period + mem_latency
                              + 2.0 * window;
                        lat_c = (int64_t)(lat / period) + 1;
                    }
                } else if (kind == kind_store) {
                    sfree--;
                    int64_t line = addrs[seq - 1] >> shift;
                    int64_t si = line % l1d_nsets;
                    int64_t tag = line / l1d_nsets;
                    int64_t *setp = &l1d_tags[si * l1d_ways];
                    int cnt = l1d_cnt[si];
                    int hit = 0;
                    cache_stats[2]++;
                    for (int j = 0; j < cnt; j++) {
                        if (setp[j] == tag) {
                            for (int k2 = j; k2 < cnt - 1; k2++)
                                setp[k2] = setp[k2 + 1];
                            setp[cnt - 1] = tag;
                            hit = 1;
                            break;
                        }
                    }
                    if (!hit) {
                        cache_stats[3]++;
                        if (cnt == l1d_ways) {
                            for (int k2 = 0; k2 < cnt - 1; k2++)
                                setp[k2] = setp[k2 + 1];
                            setp[cnt - 1] = tag;
                        } else {
                            setp[cnt] = tag;
                            l1d_cnt[si] = cnt + 1;
                        }
                        int64_t s2 = line % l2_nsets;
                        int64_t tag2 = line / l2_nsets;
                        int64_t *set2 = &l2_tags[s2 * l2_ways];
                        int cnt2 = l2_cnt[s2];
                        hit = 0;
                        cache_stats[4]++;
                        for (int j = 0; j < cnt2; j++) {
                            if (set2[j] == tag2) {
                                for (int k2 = j; k2 < cnt2 - 1; k2++)
                                    set2[k2] = set2[k2 + 1];
                                set2[cnt2 - 1] = tag2;
                                hit = 1;
                                break;
                            }
                        }
                        if (!hit) {
                            cache_stats[5]++;
                            if (cnt2 == l2_ways) {
                                for (int k2 = 0; k2 < cnt2 - 1; k2++)
                                    set2[k2] = set2[k2 + 1];
                                set2[cnt2 - 1] = tag2;
                            } else {
                                set2[cnt2] = tag2;
                                l2_cnt[s2] = cnt2 + 1;
                            }
                        }
                    }
                    access_energy += e_simple;
                    lat = period;
                    lat_c = 1;
                } else {
                    sfree--;
                    access_energy += e_simple;
                    lat_c = lat_cycles[kind];
                    lat = (double)lat_c * period;
                }
                /* Issue! */
                double finish = t + lat;
                int64_t slot = seq & RING_MASK;
                fin_ns[slot] = finish;
                fin_cycle[slot] = cyc + lat_c;
                fin_domain[slot] = d;
                access_energy += e_issue;
                issued_any = 1;
                if (seq == branch_stall_seq) {
                    branch_stall_seq = -1;
                    double resume = finish + window
                                    + (double)mispredict_penalty * cur_period[0];
                    if (resume > fetch_resume_ns)
                        fetch_resume_ns = resume;
                }
                if (sfree <= 0 && cfree <= 0)
                    break;
            }
            if (issued_any) {
                int w = 0;
                for (int ei = 0; ei < qn; ei++) {
                    if (fin_domain[seqs[ei] & RING_MASK] == -1) {
                        seqs[w] = seqs[ei];
                        ts[w] = ts[ei];
                        retries[w] = retries[ei];
                        w++;
                    }
                }
                q_len[d] = w;
                busy_in_interval[d]++;
                n_busy[d]++;
                acc_clock[d] += clock_e[d] * vscale;
                acc_struct[d] += access_energy * vscale;
                if (w == 0)
                    active[d] = 0;
            } else {
                n_idle[d]++;
                acc_clock[d] += idle_e[d] * vscale;
            }
            /* inlined clock advance */
            double step;
            if (mcd_mode) {
                if (jlen[d] == 0
                    && refill_jitter(refill, d, &jbuf[d], &jlen[d], &tstate) < 0) {
                    py_error = 1;
                    break;
                }
                step = cur_period[d] + jbuf[d][--jlen[d]];
                if (step < MIN_STEP_NS)
                    step = MIN_STEP_NS;
            } else {
                step = cur_period[d];
            }
            edge_ns[d] = t + step;
            cycle_idx[d]++;
        }

        /* Safety valve: the trace must keep draining. */
        if (fetch_i >= total && rob_n == 0 && retired < total) {
            error = "trace exhausted";
            break;
        }
    }

    double wall = edge_ns[0];
    if (!py_error && error == NULL) {
        /* Final catch-up: idle tails of inactive domains. */
        for (int i = 1; i < 4; i++) {
            double dt = wall - reg_last[i];
            reg_last[i] = wall;
            double ifreq = reg_cur[i];
            if (dt > 0.0 && reg_cur[i] != reg_tgt[i]) {
                double max_delta = dt * reg_slew[i];
                double gap = reg_tgt[i] - reg_cur[i];
                if (fabs(gap) <= max_delta) {
                    reg_cur[i] = reg_tgt[i];
                    reg_slew_acc[i] += fabs(gap) / reg_slew[i];
                } else {
                    reg_cur[i] += gap > 0 ? max_delta : -max_delta;
                    reg_slew_acc[i] += dt;
                }
                ifreq = reg_cur[i];
            }
            if (ifreq != cur_freq[i]) {
                cur_freq[i] = ifreq;
                double v = vmin + (ifreq - fmin) * vslope;
                cur_vscale[i] = v * v * vmax_sq_inv;
            }
            double edge = edge_ns[i];
            if (wall > edge) {
                double period = cur_period[i];
                double skipped = ceil((wall - edge) / period);
                edge_ns[i] = edge + skipped * period;
                cycle_idx[i] += (int64_t)skipped;
                acc_clock[i] += idle_e[i] * cur_vscale[i] * skipped;
                n_idle[i] += (int64_t)skipped;
            }
        }
    }

    rs->retired = retired;
    rs->wall = wall;
    rs->memory_accesses = memory_accesses;
    rs->dispatch_stall_cycles = dispatch_stall_cycles;
    rs->int_free = int_free;
    rs->fp_free = fp_free;
    rs->error = error;
    *tstate_p = tstate;
    return py_error ? -1 : 0;
}

/* Stage 3: fold cache/predictor/BTB state back into the owning Python
 * objects and build the per-run result dict (GIL held). */
static PyObject *
writeback_run(RunState *rs)
{
    PyObject *l1i_sets_o = rs->l1i_sets_o, *l1d_sets_o = rs->l1d_sets_o;
    PyObject *l2_sets_o = rs->l2_sets_o;
    PyObject *hist_o = rs->hist_o, *pl2_o = rs->pl2_o, *bim_o = rs->bim_o;
    PyObject *meta_o = rs->meta_o, *btb_o = rs->btb_o;
    const int64_t l1i_nsets = rs->l1i_nsets, l1d_nsets = rs->l1d_nsets,
                  l2_nsets = rs->l2_nsets;
    const int l1i_ways = rs->l1i_ways, l1d_ways = rs->l1d_ways,
              l2_ways = rs->l2_ways;
    int64_t *l1i_tags = rs->l1i_tags, *l1d_tags = rs->l1d_tags,
            *l2_tags = rs->l2_tags;
    int32_t *l1i_cnt = rs->l1i_cnt, *l1d_cnt = rs->l1d_cnt,
            *l2_cnt = rs->l2_cnt;
    int64_t *hist = rs->hist, *pl2 = rs->pl2, *bim = rs->bim, *meta = rs->meta;
    const Py_ssize_t hist_len = rs->hist_len, pl2_len = rs->pl2_len,
                     bim_len = rs->bim_len, meta_len = rs->meta_len;
    const int64_t btb_nsets = rs->btb_nsets;
    const int btb_ways = rs->btb_ways;
    int64_t *btb_tags = rs->btb_tags, *btb_tgts = rs->btb_tgts;
    int32_t *btb_cnt = rs->btb_cnt;
    const int64_t retired = rs->retired;
    const double wall = rs->wall;
    const int64_t memory_accesses = rs->memory_accesses;
    const int64_t dispatch_stall_cycles = rs->dispatch_stall_cycles;
    const int64_t int_free = rs->int_free, fp_free = rs->fp_free;
    const char *error = rs->error;
    /* --- marshal state back ------------------------------------------- */
    if (sets_to_list(l1i_sets_o, l1i_nsets, l1i_ways, l1i_tags, l1i_cnt)
        || sets_to_list(l1d_sets_o, l1d_nsets, l1d_ways, l1d_tags, l1d_cnt)
        || sets_to_list(l2_sets_o, l2_nsets, l2_ways, l2_tags, l2_cnt)
        || ints_to_list(hist_o, hist, hist_len)
        || ints_to_list(pl2_o, pl2, pl2_len) || ints_to_list(bim_o, bim, bim_len)
        || ints_to_list(meta_o, meta, meta_len))
        return NULL;
    for (Py_ssize_t i = 0; i < btb_nsets; i++) {
        PyObject *s = PyList_New(btb_cnt[i]);
        if (s == NULL)
            return NULL;
        for (Py_ssize_t j = 0; j < btb_cnt[i]; j++) {
            PyObject *pair = Py_BuildValue(
                "(LL)", (long long)btb_tags[i * btb_ways + j],
                (long long)btb_tgts[i * btb_ways + j]);
            if (pair == NULL) {
                Py_DECREF(s);
                return NULL;
            }
            PyList_SET_ITEM(s, j, pair);
        }
        if (PyList_SetItem(btb_o, i, s) < 0)
            return NULL;
    }

    return Py_BuildValue(
        "{s:L,s:d,s:L,s:L,s:L,s:L,s:s}", "retired", (long long)retired, "wall",
        wall, "memory_accesses", (long long)memory_accesses,
        "dispatch_stall_cycles", (long long)dispatch_stall_cycles, "int_free",
        (long long)int_free, "fp_free", (long long)fp_free, "error", error);
}

/* ------------------------------------------------------- entry points */

static PyObject *
run_compiled(PyObject *self, PyObject *args)
{
    PyObject *a; /* argument dict */
    if (!PyArg_ParseTuple(args, "O!", &PyDict_Type, &a))
        return NULL;

    RunState *rs = PyMem_Calloc(1, sizeof(RunState));
    if (rs == NULL)
        return PyErr_NoMemory();
    PyObject *result = NULL;
    if (marshal_run(a, rs) == 0) {
        PyThreadState *tstate = PyEval_SaveThread();
        int rc = compute_run(rs, &tstate);
        PyEval_RestoreThread(tstate);
        if (rc == 0)
            result = writeback_run(rs);
    }
    free_run(rs);
    PyMem_Free(rs);
    return result;
}

static PyObject *
run_batch(PyObject *self, PyObject *args)
{
    PyObject *list; /* list of argument dicts, one per run */
    if (!PyArg_ParseTuple(args, "O!", &PyList_Type, &list))
        return NULL;

    Py_ssize_t n = PyList_GET_SIZE(list);
    RunState *runs = PyMem_Calloc(n ? (size_t)n : 1, sizeof(RunState));
    if (runs == NULL)
        return PyErr_NoMemory();

    PyObject *out = NULL;
    int failed = 0;

    /* Stage 1: marshal every run with the GIL held. */
    for (Py_ssize_t i = 0; i < n && !failed; i++) {
        PyObject *a = PyList_GET_ITEM(list, i);
        if (!PyDict_Check(a)) {
            PyErr_SetString(PyExc_TypeError,
                            "hotpath: run_batch wants a list of dicts");
            failed = 1;
        } else if (marshal_run(a, &runs[i]) < 0) {
            failed = 1;
        }
    }

    /* Stage 2: one GIL release for the whole batch.  The only Python
     * crossings until every run has computed are the per-run
     * refill/rollover bridge shims. */
    if (!failed) {
        PyThreadState *tstate = PyEval_SaveThread();
        for (Py_ssize_t i = 0; i < n; i++) {
            if (compute_run(&runs[i], &tstate) < 0) {
                failed = 1; /* callback raised; exception is pending */
                break;
            }
        }
        PyEval_RestoreThread(tstate);
    }

    /* Stage 3: per-run writeback into the owning Python objects. */
    if (!failed) {
        out = PyList_New(n);
        if (out != NULL) {
            for (Py_ssize_t i = 0; i < n; i++) {
                PyObject *res = writeback_run(&runs[i]);
                if (res == NULL) {
                    Py_CLEAR(out);
                    break;
                }
                PyList_SET_ITEM(out, i, res);
            }
        }
    }

    for (Py_ssize_t i = 0; i < n; i++)
        free_run(&runs[i]);
    PyMem_Free(runs);
    return out;
}

static PyMethodDef hotpath_methods[] = {
    {"run_compiled", run_compiled, METH_VARARGS,
     "Run the batched core loop over compiled-trace columns."},
    {"run_batch", run_batch, METH_VARARGS,
     "Run a vector of compiled simulations under one GIL release."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef hotpath_module = {
    PyModuleDef_HEAD_INIT, "_hotpath",
    "Native batched MCD core loop (byte-identical to the Python paths).", -1,
    hotpath_methods,
};

PyMODINIT_FUNC
PyInit__hotpath(void)
{
    return PyModule_Create(&hotpath_module);
}
