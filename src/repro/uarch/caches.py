"""Set-associative caches and the L1I/L1D/L2/memory hierarchy.

The hierarchy mirrors Table 4: split 64 KB 2-way L1 caches, a unified
1 MB direct-mapped L2, and main memory in the external clock domain.
Lookups return the *level* that served the access; the core converts
levels into latencies using the current load/store-domain clock period
(L1/L2 latencies are in load/store cycles, memory latency is wall-clock
nanoseconds, paper Section 2/4).

Replacement is LRU.  The model is tag-only (no data movement) and
allocate-on-miss for both loads and stores (stores are treated as
write-allocate, matching SimpleScalar's default).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.config.processor import ProcessorConfig
from repro.errors import ConfigError


class MemoryLevel(enum.IntEnum):
    """The level of the hierarchy that serviced an access."""

    L1 = 1
    L2 = 2
    MEMORY = 3


@dataclass
class CacheStats:
    """Hit/miss counters for one cache."""

    accesses: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        """Miss fraction (0 when never accessed)."""
        if not self.accesses:
            return 0.0
        return self.misses / self.accesses


class SetAssociativeCache:
    """A tag-only set-associative cache with LRU replacement.

    Parameters
    ----------
    size_kb:
        Capacity in kibibytes.
    ways:
        Associativity (1 = direct mapped).
    line_bytes:
        Line size; addresses are split as tag | set | offset.
    name:
        Diagnostic label.
    """

    __slots__ = ("name", "sets", "ways", "line_shift", "stats", "_sets")

    def __init__(self, size_kb: int, ways: int, line_bytes: int, name: str) -> None:
        lines = size_kb * 1024 // line_bytes
        if lines == 0 or lines % ways:
            raise ConfigError(f"{name}: invalid geometry")
        if line_bytes & (line_bytes - 1):
            raise ConfigError(f"{name}: line size must be a power of two")
        self.name = name
        self.sets = lines // ways
        self.ways = ways
        self.line_shift = line_bytes.bit_length() - 1
        self.stats = CacheStats()
        # Per set: list of tags, most recently used last.
        self._sets: list[list[int]] = [[] for _ in range(self.sets)]

    def access(self, address: int) -> bool:
        """Look up ``address``; allocate on miss.  Returns hit?"""
        line = address >> self.line_shift
        entry_set = self._sets[line % self.sets]
        tag = line // self.sets
        self.stats.accesses += 1
        try:
            entry_set.remove(tag)
        except ValueError:
            self.stats.misses += 1
            entry_set.append(tag)
            if len(entry_set) > self.ways:
                entry_set.pop(0)
            return False
        entry_set.append(tag)
        return True

    def probe(self, address: int) -> bool:
        """Non-allocating, non-counting lookup (tests/diagnostics)."""
        line = address >> self.line_shift
        tag = line // self.sets
        return tag in self._sets[line % self.sets]


class CacheHierarchy:
    """Split L1s over a unified L2 over main memory.

    The unified L2 is shared by instruction and data misses, so an
    instruction-fetch storm can evict data lines and vice versa —
    behaviour the gcc init-phase analysis in the paper leans on.
    """

    def __init__(self, config: ProcessorConfig) -> None:
        self.config = config
        self.l1i = SetAssociativeCache(
            config.l1i_kb, config.l1i_ways, config.line_bytes, "L1I"
        )
        self.l1d = SetAssociativeCache(
            config.l1d_kb, config.l1d_ways, config.line_bytes, "L1D"
        )
        self.l2 = SetAssociativeCache(
            config.l2_kb, config.l2_ways, config.line_bytes, "L2"
        )

    def data_access(self, address: int) -> MemoryLevel:
        """Access the data path; returns the servicing level."""
        if self.l1d.access(address):
            return MemoryLevel.L1
        if self.l2.access(address):
            return MemoryLevel.L2
        return MemoryLevel.MEMORY

    def instruction_access(self, address: int) -> MemoryLevel:
        """Access the instruction path; returns the servicing level."""
        if self.l1i.access(address):
            return MemoryLevel.L1
        if self.l2.access(address):
            return MemoryLevel.L2
        return MemoryLevel.MEMORY
