"""Columnar compiled traces and their on-disk store.

A :class:`CompiledTrace` is the whole dynamic instruction stream of one
workload flattened into plain-list columns, plus derived columns the
core's batched fast path (:meth:`repro.uarch.core.MCDCore.run` on a
compiled trace) consumes directly instead of re-deriving them once per
dynamic instruction:

``dest[i]``
    Destination register type (0 integer, 1 floating point, -1 none) —
    the rename table lookup, precomputed.
``domain[i]``
    Issue-domain index (1 integer, 2 floating point, 3 load/store) —
    the steering table lookup, precomputed.
``newline[i]``
    1 when instruction ``i`` starts a new L1I fetch line given the
    compile-time ``line_shift`` (the core performs one I-cache lookup
    per new line), else 0.
``templates[i]``
    The issue-queue entry the dispatch stage would build for
    instruction ``i``: ``[seq, kind, dispatch_ns, p1, p2, addr,
    retry_ns]``.  ``seq`` is the 1-based dispatch sequence number
    (dispatch order equals trace order), ``p1``/``p2`` are the
    dependency distances resolved into absolute producer sequence
    numbers (0 for none), and the two time slots are reset by the core
    at dispatch.  Each instruction dispatches at most once per run, so
    the template lists are handed to the queues directly instead of
    being rebuilt per dispatch.

Compilation is a pure function of the trace, so a compiled trace can be
cached on disk and shared across every run of the same workload:
:class:`TraceStore` persists the seven *base* columns as an ``.npz``
file named by a content hash (the caller builds the identity payload;
see :func:`repro.sim.engine.compiled_trace_for`) and re-derives the
config-dependent columns on load.  Writes are atomic
(temp-file-plus-rename, like the experiment
:class:`~repro.experiments.cache.CacheStore`), so concurrent
orchestrator workers never observe a truncated trace.

A :class:`CompiledTrace` also implements the
:class:`~repro.uarch.trace.TraceStream` protocol (one big block), so
anything that can consume a generator trace can consume a compiled one.
"""

from __future__ import annotations

import hashlib
import json
import logging
import threading
import zipfile
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.concurrency import LockedLRU
from repro.errors import TraceError
from repro.ioutil import atomic_write, sweep_stale_tmp
from repro.uarch.isa import DEST_REGISTER_TYPE, ISSUE_DOMAIN_INDEX, NUM_CLASSES
from repro.uarch.trace import InstructionBlock, TraceStream

#: Bump when the compiled representation or its derivation changes;
#: joined into every on-disk trace key so stale entries miss.
COMPILED_TRACE_VERSION = 1

#: Default store location, beside the experiment result cache.
DEFAULT_TRACE_DIR = (
    Path(__file__).resolve().parents[3] / "results" / "cache" / "traces"
)

_BASE_COLUMNS = ("kinds", "src1", "src2", "pcs", "addrs", "taken", "targets")

logger = logging.getLogger(__name__)

_DEST_TABLE = np.array(
    [DEST_REGISTER_TYPE[code] for code in range(NUM_CLASSES)], dtype=np.int64
)
_DOMAIN_TABLE = np.array(
    [ISSUE_DOMAIN_INDEX[code] for code in range(NUM_CLASSES)], dtype=np.int64
)


class CompiledTrace:
    """One workload's instruction stream in columnar form.

    All columns are plain Python lists of equal length ``n`` (list
    indexing beats numpy scalar indexing inside a pure-Python loop).
    The core treats every column as read-only except ``newline``
    (copied per run before consuming) and the time slots of
    ``templates`` entries (reset at dispatch), so one compiled trace
    serves any number of sequential runs.

    Concurrent runs are supported too: the native path never touches
    ``templates`` and copies ``newline``, so it shares one instance
    freely across threads; the batched Python path takes an exclusive
    lease on the shared template lists (:meth:`lease_templates`) and
    concurrent lessees transparently get a private copy.
    """

    __slots__ = (
        "n",
        "line_shift",
        "kinds",
        "src1",
        "src2",
        "pcs",
        "addrs",
        "taken",
        "targets",
        "dest",
        "domain",
        "newline",
        "templates",
        "arrays",
        "_lease_lock",
        "_templates_leased",
    )

    def __init__(
        self,
        *,
        line_shift: int,
        kinds: list[int],
        src1: list[int],
        src2: list[int],
        pcs: list[int],
        addrs: list[int],
        taken: list[int],
        targets: list[int],
        dest: list[int],
        domain: list[int],
        newline: list[int],
        templates: list[list],
        arrays: dict | None = None,
    ) -> None:
        self.n = len(kinds)
        self.line_shift = line_shift
        self.kinds = kinds
        self.src1 = src1
        self.src2 = src2
        self.pcs = pcs
        self.addrs = addrs
        self.taken = taken
        self.targets = targets
        self.dest = dest
        self.domain = domain
        self.newline = newline
        self.templates = templates
        #: int64 numpy views of the columns (plus resolved dependency
        #: pointers p1/p2), consumed zero-copy by the native hot path.
        self.arrays = arrays or {}
        self._lease_lock = threading.Lock()
        self._templates_leased = False

    # --- template leasing (thread-safe sharing) ------------------------------
    def lease_templates(self) -> tuple[list[list], bool]:
        """Exclusive lease on the shared ``templates`` lists.

        The batched Python path mutates the per-entry time slots in
        place, so concurrent runs over one shared compiled trace must
        not share them.  The first caller — the only one, in serial
        use — gets the shared lists for free; a caller arriving while
        the lease is out gets a private, equivalent copy (the mutable
        slots are reset at dispatch, so a zeroed copy is
        indistinguishable from a reused list).  Pass the returned flag
        to :meth:`release_templates` when the run finishes.
        """
        with self._lease_lock:
            if not self._templates_leased:
                self._templates_leased = True
                return self.templates, True
        # Rebuild from the immutable slots only (0/1/3/4/5); the time
        # slots may be mid-mutation by the lease holder.
        return [
            [row[0], row[1], 0.0, row[3], row[4], row[5], 0.0]
            for row in self.templates
        ], False

    def release_templates(self, owned: bool) -> None:
        """Return the shared templates taken by :meth:`lease_templates`."""
        if owned:
            with self._lease_lock:
                self._templates_leased = False

    # --- TraceStream protocol ------------------------------------------------
    @property
    def total_instructions(self) -> int:
        """Exact trace length."""
        return self.n

    def blocks(self) -> Iterator[InstructionBlock]:
        """Yield the trace as a single block (TraceStream view).

        The block shares this trace's column lists; consumers must not
        mutate them.
        """
        if self.n:
            yield InstructionBlock(
                kinds=self.kinds,
                src1=self.src1,
                src2=self.src2,
                pcs=self.pcs,
                addrs=self.addrs,
                taken=self.taken,
                targets=self.targets,
            )


def from_columns(columns: tuple[np.ndarray, ...], line_shift: int) -> CompiledTrace:
    """Build a :class:`CompiledTrace` from the seven base columns."""
    kinds, src1, src2, pcs, addrs, taken, targets = columns
    n = len(kinds)
    if any(len(column) != n for column in columns[1:]):
        raise TraceError("compiled trace columns have mismatched lengths")
    kinds = kinds.astype(np.int64, copy=False)
    dest = _DEST_TABLE[kinds]
    domain = _DOMAIN_TABLE[kinds]
    lines = pcs.astype(np.int64, copy=False) >> line_shift
    newline = np.ones(n, dtype=np.int64)
    if n > 1:
        newline[1:] = lines[1:] != lines[:-1]
    seq = np.arange(1, n + 1, dtype=np.int64)
    src1 = src1.astype(np.int64, copy=False)
    src2 = src2.astype(np.int64, copy=False)
    p1 = np.where((src1 > 0) & (src1 < seq), seq - src1, 0)
    p2 = np.where((src2 > 0) & (src2 < seq), seq - src2, 0)
    pcs = pcs.astype(np.int64, copy=False)
    addrs = addrs.astype(np.int64, copy=False)
    taken = taken.astype(np.int64, copy=False)
    targets = targets.astype(np.int64, copy=False)
    kinds_list = kinds.tolist()
    addrs_list = addrs.tolist()
    templates = [
        [s, k, 0.0, a, b, addr, 0.0]
        for s, k, a, b, addr in zip(
            seq.tolist(), kinds_list, p1.tolist(), p2.tolist(), addrs_list
        )
    ]
    arrays = {
        "kinds": kinds,
        "pcs": pcs,
        "addrs": addrs,
        "taken": taken,
        "targets": targets,
        "dest": dest,
        "domain": domain,
        "newline": newline,
        "p1": p1.astype(np.int64, copy=False),
        "p2": p2.astype(np.int64, copy=False),
    }
    return CompiledTrace(
        line_shift=line_shift,
        kinds=kinds_list,
        src1=src1.tolist(),
        src2=src2.tolist(),
        pcs=pcs.tolist(),
        addrs=addrs.tolist(),
        taken=taken.tolist(),
        targets=targets.tolist(),
        dest=dest.tolist(),
        domain=domain.tolist(),
        newline=newline.tolist(),
        templates=templates,
        arrays=arrays,
    )


def trace_columns(trace: TraceStream) -> tuple[np.ndarray, ...]:
    """The seven base columns of any trace stream.

    Uses the stream's vectorised :meth:`columns` when it has one
    (:class:`~repro.workloads.synthetic.SyntheticTrace`), otherwise
    concatenates its blocks.
    """
    columns = getattr(trace, "columns", None)
    if callable(columns):
        return tuple(np.asarray(column) for column in columns())
    parts: list[list[np.ndarray]] = [[] for _ in _BASE_COLUMNS]
    for block in trace.blocks():
        for store, name in zip(parts, _BASE_COLUMNS):
            store.append(np.asarray(getattr(block, name), dtype=np.int64))
    if not parts[0]:
        return tuple(np.zeros(0, dtype=np.int64) for _ in _BASE_COLUMNS)
    return tuple(np.concatenate(store) for store in parts)


def compile_trace(trace: TraceStream, line_shift: int) -> CompiledTrace:
    """Compile ``trace`` into columnar form for ``2**line_shift``-byte lines.

    >>> from repro.uarch.isa import InstructionClass as IC
    >>> from repro.uarch.trace import InstructionBlock, ListTrace
    >>> block = InstructionBlock()
    >>> block.append(IC.INT_ALU, pc=64)
    >>> block.append(IC.LOAD, src1=1, pc=68, addr=4096)
    >>> compiled = compile_trace(ListTrace([block]), line_shift=6)
    >>> compiled.total_instructions, compiled.newline, compiled.domain
    (2, [1, 0], [1, 3])
    >>> compiled.templates[1]  # [seq, kind, t, p1, p2, addr, retry]
    [2, 4, 0.0, 1, 0, 4096, 0.0]
    """
    return from_columns(trace_columns(trace), line_shift)


class TraceStore:
    """Atomic, content-addressed ``.npz`` store for compiled traces.

    Only the seven base columns are persisted (compact integer dtypes);
    the config-dependent derived columns are recomputed on load, so one
    stored trace serves every cache-line geometry.

    Parameters
    ----------
    directory:
        Where entries live; created on first store.
    enabled:
        When False every load misses and every store is a no-op.
    memo_entries:
        Size of the optional in-memory column memo (0 disables it, the
        default).  With a memo, repeated loads of one key — the same
        spec run again, or the same trace at a different cache-line
        geometry — reuse the validated base columns instead of
        re-reading and re-checksumming the ``.npz`` from disk, and a
        ``store`` immediately primes the memo for its own key.  The
        memo is thread-safe and LRU-bounded; memoised columns are
        treated as read-only (``from_columns`` never mutates its
        inputs).
    """

    def __init__(
        self,
        directory: Path | str | None = None,
        enabled: bool = True,
        memo_entries: int = 0,
    ) -> None:
        self.directory = (
            Path(directory) if directory is not None else DEFAULT_TRACE_DIR
        )
        self.enabled = enabled
        self._memo = LockedLRU(memo_entries)
        if enabled:
            # Crashed writers leave ``*.tmp`` siblings behind; reap the
            # stale ones (age-gated, so live writers are untouched).
            sweep_stale_tmp(self.directory)

    @property
    def memo_entries(self) -> int:
        """Capacity of the in-memory column memo (0 = disabled)."""
        return self._memo.entries

    def key(self, payload: dict) -> str:
        """Content-address a JSON-serialisable trace identity payload.

        Raises :class:`~repro.errors.TraceError` for non-serialisable
        payloads: stringifying unknown values (``default=str``) would
        let two distinct trace identities with equal ``str()`` collide
        into one stored trace.
        """
        try:
            text = json.dumps(
                {"trace_version": COMPILED_TRACE_VERSION, **payload},
                sort_keys=True,
            )
        except (TypeError, ValueError) as exc:
            raise TraceError(
                f"trace identity payload is not JSON-serialisable ({exc}); "
                "convert values to JSON-native types before keying"
            ) from None
        return hashlib.sha1(text.encode()).hexdigest()[:20]

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.npz"

    def load_columns(self, key: str) -> tuple[np.ndarray, ...] | None:
        """The validated base columns under ``key``, or None on a miss.

        A present-but-unreadable entry counts as a miss and is logged,
        never raised: a truncated ``.npz`` (``zipfile.BadZipFile`` /
        ``EOFError``), bit-rotted bytes, missing columns or mismatched
        lengths all fall back to regeneration, because every entry is
        a pure function of its key's identity payload.
        """
        if not self.enabled:
            return None
        columns = self._memo.get(key)
        if columns is not None:
            return columns
        path = self._path(key)
        try:
            with np.load(path) as data:
                columns = tuple(data[name] for name in _BASE_COLUMNS)
            n = len(columns[0])
            if any(len(column) != n for column in columns[1:]):
                raise ValueError("mismatched column lengths")
        except FileNotFoundError:
            return None
        except (OSError, KeyError, ValueError, EOFError, zipfile.BadZipFile) as exc:
            logger.warning(
                "trace entry %s unreadable (%s); treating as miss", path, exc
            )
            return None
        self._memo.put(key, columns)
        return columns

    def load(self, key: str, line_shift: int) -> CompiledTrace | None:
        """The stored trace under ``key`` derived for ``line_shift``."""
        columns = self.load_columns(key)
        if columns is None:
            return None
        return from_columns(columns, line_shift)

    def store(self, key: str, columns: tuple[np.ndarray, ...]) -> None:
        """Atomically persist base ``columns`` under ``key``."""
        if not self.enabled:
            return
        kinds, src1, src2, pcs, addrs, taken, targets = columns
        with atomic_write(self._path(key)) as handle:
            np.savez(
                handle,
                kinds=kinds.astype(np.uint8),
                src1=src1.astype(np.uint16),
                src2=src2.astype(np.uint16),
                pcs=pcs.astype(np.int64),
                addrs=addrs.astype(np.int64),
                taken=taken.astype(np.uint8),
                targets=targets.astype(np.int64),
            )
        self._memo.put(key, columns)
