"""Front-end trace cursor: block iteration with cheap element access.

The *reference* fetch path consumes the workload's instruction blocks
one element at a time.  :class:`TraceCursor` hides block boundaries
and exposes the struct-of-arrays fields of the current instruction
through plain attribute reads, keeping that loop free of iterator
overhead and allocation.  The batched fast path does not use a cursor
at all — it walks the compiled columns
(:mod:`repro.uarch.compiled_trace`) by integer index.
"""

from __future__ import annotations

from repro.uarch.trace import InstructionBlock, TraceStream


class TraceCursor:
    """Single-pass cursor over a :class:`TraceStream`.

    Usage pattern in the fetch loop::

        while not cursor.exhausted:
            kind = cursor.kind  # peek fields of the current instruction
            ...
            cursor.pop()        # then consume it
    """

    __slots__ = (
        "_iter",
        "_block",
        "_index",
        "_length",
        "consumed",
        "total_instructions",
    )

    def __init__(self, trace: TraceStream) -> None:
        self._iter = trace.blocks()
        self._block: InstructionBlock | None = None
        self._index = 0
        self._length = 0
        self.consumed = 0
        self.total_instructions = trace.total_instructions
        self._advance_block()

    def _advance_block(self) -> None:
        while True:
            block = next(self._iter, None)
            if block is None:
                self._block = None
                self._length = 0
                self._index = 0
                return
            if len(block):
                self._block = block
                self._index = 0
                self._length = len(block)
                return

    @property
    def exhausted(self) -> bool:
        """True when every instruction has been consumed."""
        return self._block is None

    # --- field peeks (current instruction) ----------------------------------
    @property
    def kind(self) -> int:
        """Instruction class code of the current instruction."""
        return self._block.kinds[self._index]

    @property
    def src1(self) -> int:
        """First dependency distance."""
        return self._block.src1[self._index]

    @property
    def src2(self) -> int:
        """Second dependency distance."""
        return self._block.src2[self._index]

    @property
    def pc(self) -> int:
        """Instruction address."""
        return self._block.pcs[self._index]

    @property
    def addr(self) -> int:
        """Effective address (loads/stores)."""
        return self._block.addrs[self._index]

    @property
    def taken(self) -> bool:
        """Branch outcome."""
        return self._block.taken[self._index]

    @property
    def target(self) -> int:
        """Branch target address."""
        return self._block.targets[self._index]

    def pop(self) -> None:
        """Consume the current instruction."""
        self.consumed += 1
        self._index += 1
        if self._index >= self._length:
            self._advance_block()
