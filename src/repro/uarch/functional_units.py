"""Per-domain execution resources (Table 4).

Functional units are fully pipelined (one issue per unit per cycle, as
in the 21264); long latencies affect completion time, not issue
bandwidth.  Each domain's pool therefore reduces to per-cycle issue
slots per unit category, reset at every domain clock edge.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.processor import ProcessorConfig
from repro.errors import ConfigError
from repro.uarch.isa import InstructionClass


@dataclass
class FunctionalUnitStats:
    """Issue counts per category."""

    simple_ops: int = 0
    complex_ops: int = 0


class FunctionalUnitPool:
    """Issue slots for one domain: simple (ALU) and complex (mult/div) units.

    Parameters
    ----------
    simple_units:
        Count of simple units (int ALUs / FP adders / cache ports).
    complex_units:
        Count of complex units (mult/div[/sqrt]); 0 means the domain
        cannot execute complex operations.
    """

    __slots__ = ("simple_units", "complex_units", "_simple_free", "_complex_free", "stats")

    def __init__(self, simple_units: int, complex_units: int) -> None:
        if simple_units < 1:
            raise ConfigError("simple_units must be positive")
        if complex_units < 0:
            raise ConfigError("complex_units must be non-negative")
        self.simple_units = simple_units
        self.complex_units = complex_units
        self._simple_free = simple_units
        self._complex_free = complex_units
        self.stats = FunctionalUnitStats()

    def begin_cycle(self) -> None:
        """Reset per-cycle issue slots (call at each domain edge)."""
        self._simple_free = self.simple_units
        self._complex_free = self.complex_units

    @property
    def any_free(self) -> bool:
        """Whether any unit of either category still has a slot."""
        return self._simple_free > 0 or self._complex_free > 0

    def try_issue(self, complex_op: bool) -> bool:
        """Claim a slot for this cycle; returns False when exhausted."""
        if complex_op:
            if self._complex_free > 0:
                self._complex_free -= 1
                self.stats.complex_ops += 1
                return True
            return False
        if self._simple_free > 0:
            self._simple_free -= 1
            self.stats.simple_ops += 1
            return True
        return False


def build_pools(config: ProcessorConfig) -> dict[str, FunctionalUnitPool]:
    """Construct the three execution pools of Table 4.

    Returns a dict keyed ``"integer"``, ``"floating_point"``,
    ``"load_store"`` (load/store ports have no complex category).
    """
    return {
        "integer": FunctionalUnitPool(config.int_alus, config.int_mult_div),
        "floating_point": FunctionalUnitPool(config.fp_alus, config.fp_mult_div_sqrt),
        "load_store": FunctionalUnitPool(config.load_store_ports, 0),
    }


def is_complex(kind: int) -> bool:
    """Whether instruction class ``kind`` needs a complex unit."""
    return kind in (InstructionClass.INT_MULT, InstructionClass.FP_MULT)
