"""Version and paper identity constants."""

__version__ = "1.0.0"

#: The reproduced paper.
PAPER_TITLE = (
    "Dynamic Frequency and Voltage Control for a "
    "Multiple Clock Domain Microarchitecture"
)
PAPER_AUTHORS = (
    "Greg Semeraro",
    "David H. Albonesi",
    "Steven G. Dropsho",
    "Grigorios Magklis",
    "Sandhya Dwarkadas",
    "Michael L. Scott",
)
PAPER_VENUE = "MICRO-35 (2002)"
