"""Version and paper identity constants.

``__version__`` is the single source of truth; ``pyproject.toml`` and
the CLI's ``--version`` flag both track it.

>>> __version__
'1.9.0'
"""

__version__ = "1.9.0"

#: The reproduced paper.
PAPER_TITLE = (
    "Dynamic Frequency and Voltage Control for a "
    "Multiple Clock Domain Microarchitecture"
)
PAPER_AUTHORS = (
    "Greg Semeraro",
    "David H. Albonesi",
    "Steven G. Dropsho",
    "Grigorios Magklis",
    "Sandhya Dwarkadas",
    "Michael L. Scott",
)
PAPER_VENUE = "MICRO-35 (2002)"
