"""High-level drivers that assemble the paper's headline artifacts.

These functions expand Table 6 / Figure 4's run matrix through the
scenario registry, execute it with the parallel
:class:`~repro.experiments.orchestrator.Orchestrator` (worker count
from ``REPRO_WORKERS``, serial by default), and derive every comparison
from the returned :class:`~repro.experiments.results.ResultSet` — so
the bench harness, the examples and the tests all share one
implementation and one results cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config.algorithm import AttackDecayParams, SCALED_OPERATING_POINT
from repro.errors import ExperimentError
from repro.experiments.builtins import attack_decay_scenario
from repro.experiments.executor import quick_benchmarks
from repro.experiments.orchestrator import Orchestrator
from repro.experiments.results import ResultSet
from repro.experiments.scenario import Scenario
from repro.metrics.aggregate import AggregateResult, aggregate
from repro.metrics.summary import Comparison
from repro.sim.experiment import ExperimentRunner

#: Algorithms reported in Table 6 / Figure 4, in paper order.
TABLE6_ALGORITHMS = ("attack_decay", "dynamic_1", "dynamic_5")


@dataclass
class Table6Row:
    """One algorithm's aggregate line of Table 6."""

    algorithm: str
    performance_degradation: float
    energy_savings: float
    edp_improvement: float
    power_performance_ratio: float


@dataclass
class PaperResults:
    """Everything Table 6 and Figure 4 need, from one set of runs."""

    benchmarks: list[str]
    #: algorithm -> benchmark -> comparison vs the baseline MCD processor.
    vs_mcd: dict[str, dict[str, Comparison]] = field(default_factory=dict)
    #: configuration -> benchmark -> comparison vs the fully synchronous
    #: processor (Figure 4 reference), including "mcd_base" itself.
    vs_sync: dict[str, dict[str, Comparison]] = field(default_factory=dict)
    #: algorithm -> the matched global frequency (MHz).
    global_frequency: dict[str, float] = field(default_factory=dict)
    #: "global(<algorithm>)" -> benchmark -> comparison vs baseline MCD.
    global_vs_mcd: dict[str, dict[str, Comparison]] = field(default_factory=dict)

    def aggregate_vs_mcd(self, algorithm: str) -> AggregateResult:
        """Suite-average statistics vs the baseline MCD processor."""
        return aggregate(self.vs_mcd[algorithm])

    def table6_rows(self) -> list[Table6Row]:
        """The six lines of Table 6 (three algorithms, three globals)."""
        rows = []
        for algorithm in TABLE6_ALGORITHMS:
            agg = self.aggregate_vs_mcd(algorithm)
            rows.append(
                Table6Row(
                    algorithm=algorithm,
                    performance_degradation=agg.performance_degradation,
                    energy_savings=agg.energy_savings,
                    edp_improvement=agg.edp_improvement,
                    power_performance_ratio=agg.power_performance_ratio,
                )
            )
        for algorithm in TABLE6_ALGORITHMS:
            agg = aggregate(self.global_vs_mcd[f"global({algorithm})"])
            rows.append(
                Table6Row(
                    algorithm=f"Global ({algorithm})",
                    performance_degradation=agg.performance_degradation,
                    energy_savings=agg.energy_savings,
                    edp_improvement=agg.edp_improvement,
                    power_performance_ratio=agg.power_performance_ratio,
                )
            )
        return rows


def paper_suite_scenarios(
    benchmarks: list[str], params: AttackDecayParams = SCALED_OPERATING_POINT
) -> tuple[list[Scenario], dict[str, str]]:
    """The Table 6 / Figure 4 base matrix and its algorithm->name map.

    Returns the scenario list (baselines plus the three algorithms on
    every benchmark) and the mapping from the paper's algorithm labels
    to the registry configuration names actually run.
    """
    sample = attack_decay_scenario("_", params)
    names = {
        "sync": "sync",
        "mcd_base": "mcd_base",
        "attack_decay": sample.configuration,
        "dynamic_1": "dynamic_1",
        "dynamic_5": "dynamic_5",
    }
    scenarios = []
    for benchmark in benchmarks:
        scenarios.append(Scenario(benchmark, "sync"))
        scenarios.append(Scenario(benchmark, "mcd_base"))
        scenarios.append(attack_decay_scenario(benchmark, params))
        scenarios.append(Scenario(benchmark, "dynamic_1"))
        scenarios.append(Scenario(benchmark, "dynamic_5"))
    return scenarios, names


def compute_paper_results(
    runner: ExperimentRunner | None = None,
    benchmarks: list[str] | None = None,
    params: AttackDecayParams = SCALED_OPERATING_POINT,
    include_globals: bool = True,
    workers: int | None = None,
) -> PaperResults:
    """Run (or load from cache) everything behind Table 6 and Figure 4.

    ``workers`` fans the base matrix out across processes (default: the
    ``REPRO_WORKERS`` environment knob, serial when unset); the matched
    ``Global(...)`` searches are sequential bisections and reuse the
    same cache through the runner facade.
    """
    runner = runner if runner is not None else ExperimentRunner()
    benchmarks = benchmarks if benchmarks is not None else quick_benchmarks()
    results = PaperResults(benchmarks=list(benchmarks))

    scenarios, names = paper_suite_scenarios(list(benchmarks), params)
    orchestrator = Orchestrator(
        workers=workers,
        cache_dir=runner.cache_dir,
        scale=runner.scale,
        seed=runner.seed,
        use_cache=runner.use_cache,
    )
    result_set: ResultSet = orchestrator.run(scenarios)
    if result_set.errors:
        first = result_set.errors[0]
        raise ExperimentError(
            f"{len(result_set.errors)} run(s) failed; first "
            f"({first.scenario.run_id}):\n{first.error}"
        )

    for algorithm in TABLE6_ALGORITHMS:
        configuration = names[algorithm]
        results.vs_mcd[algorithm] = result_set.compare(configuration, "mcd_base")
        results.vs_sync[algorithm] = result_set.compare(configuration, "sync")
    results.vs_sync["mcd_base"] = result_set.compare("mcd_base", "sync")

    if include_globals:
        for algorithm in TABLE6_ALGORITHMS:
            target = results.aggregate_vs_mcd(algorithm).performance_degradation
            mhz, global_records = runner.global_suite_matched(
                list(benchmarks), target
            )
            results.global_frequency[algorithm] = mhz
            results.global_vs_mcd[f"global({algorithm})"] = {
                b: runner.compare_to_mcd_base(r) for b, r in global_records.items()
            }
    return results
