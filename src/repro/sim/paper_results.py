"""High-level drivers that assemble the paper's headline artifacts.

These functions orchestrate the cached :class:`ExperimentRunner` runs
behind Table 6 and Figure 4 so the bench harness, the examples and the
tests all share one implementation (and one results cache).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config.algorithm import AttackDecayParams, SCALED_OPERATING_POINT
from repro.metrics.aggregate import AggregateResult, aggregate
from repro.metrics.summary import Comparison
from repro.sim.experiment import ExperimentRunner, quick_benchmarks

#: Algorithms reported in Table 6 / Figure 4, in paper order.
TABLE6_ALGORITHMS = ("attack_decay", "dynamic_1", "dynamic_5")


@dataclass
class Table6Row:
    """One algorithm's aggregate line of Table 6."""

    algorithm: str
    performance_degradation: float
    energy_savings: float
    edp_improvement: float
    power_performance_ratio: float


@dataclass
class PaperResults:
    """Everything Table 6 and Figure 4 need, from one set of runs."""

    benchmarks: list[str]
    #: algorithm -> benchmark -> comparison vs the baseline MCD processor.
    vs_mcd: dict[str, dict[str, Comparison]] = field(default_factory=dict)
    #: configuration -> benchmark -> comparison vs the fully synchronous
    #: processor (Figure 4 reference), including "mcd_base" itself.
    vs_sync: dict[str, dict[str, Comparison]] = field(default_factory=dict)
    #: algorithm -> the matched global frequency (MHz).
    global_frequency: dict[str, float] = field(default_factory=dict)
    #: "global(<algorithm>)" -> benchmark -> comparison vs baseline MCD.
    global_vs_mcd: dict[str, dict[str, Comparison]] = field(default_factory=dict)

    def aggregate_vs_mcd(self, algorithm: str) -> AggregateResult:
        """Suite-average statistics vs the baseline MCD processor."""
        return aggregate(self.vs_mcd[algorithm])

    def table6_rows(self) -> list[Table6Row]:
        """The six lines of Table 6 (three algorithms, three globals)."""
        rows = []
        for algorithm in TABLE6_ALGORITHMS:
            agg = self.aggregate_vs_mcd(algorithm)
            rows.append(
                Table6Row(
                    algorithm=algorithm,
                    performance_degradation=agg.performance_degradation,
                    energy_savings=agg.energy_savings,
                    edp_improvement=agg.edp_improvement,
                    power_performance_ratio=agg.power_performance_ratio,
                )
            )
        for algorithm in TABLE6_ALGORITHMS:
            agg = aggregate(self.global_vs_mcd[f"global({algorithm})"])
            rows.append(
                Table6Row(
                    algorithm=f"Global ({algorithm})",
                    performance_degradation=agg.performance_degradation,
                    energy_savings=agg.energy_savings,
                    edp_improvement=agg.edp_improvement,
                    power_performance_ratio=agg.power_performance_ratio,
                )
            )
        return rows


def compute_paper_results(
    runner: ExperimentRunner | None = None,
    benchmarks: list[str] | None = None,
    params: AttackDecayParams = SCALED_OPERATING_POINT,
    include_globals: bool = True,
) -> PaperResults:
    """Run (or load from cache) everything behind Table 6 and Figure 4."""
    runner = runner if runner is not None else ExperimentRunner()
    benchmarks = benchmarks if benchmarks is not None else quick_benchmarks()
    results = PaperResults(benchmarks=list(benchmarks))

    records = {
        "attack_decay": {b: runner.attack_decay(b, params) for b in benchmarks},
        "dynamic_1": {b: runner.dynamic(b, 1.0) for b in benchmarks},
        "dynamic_5": {b: runner.dynamic(b, 5.0) for b in benchmarks},
    }
    for algorithm, per_bench in records.items():
        results.vs_mcd[algorithm] = {
            b: runner.compare_to_mcd_base(r) for b, r in per_bench.items()
        }
        results.vs_sync[algorithm] = {
            b: runner.compare_to_sync(r) for b, r in per_bench.items()
        }
    results.vs_sync["mcd_base"] = {
        b: runner.compare_to_sync(runner.mcd_baseline(b)) for b in benchmarks
    }

    if include_globals:
        for algorithm in TABLE6_ALGORITHMS:
            target = results.aggregate_vs_mcd(algorithm).performance_degradation
            mhz, global_records = runner.global_suite_matched(
                list(benchmarks), target
            )
            results.global_frequency[algorithm] = mhz
            results.global_vs_mcd[f"global({algorithm})"] = {
                b: runner.compare_to_mcd_base(r) for b, r in global_records.items()
            }
    return results
