"""Parameter sweeps for the sensitivity analyses (Figures 5-7).

The paper sweeps one Attack/Decay parameter at a time through its
Table 2 range while holding the others at a stated operating point
(given in each figure's legend, e.g. ``1.500_04.0_X.XXX_3.0``), then
plots the averaged energy-delay-product improvement and
power/performance ratio against the swept value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.config.algorithm import ATTACK_DECAY_PARAMETER_RANGES, AttackDecayParams
from repro.errors import ExperimentError
from repro.metrics.aggregate import AggregateResult, aggregate

if TYPE_CHECKING:  # runner is only an annotation; avoids an import cycle
    from repro.sim.experiment import ExperimentRunner

#: Figure legends: the fixed operating points used for each sweep.
FIGURE6_BASE = {
    "decay_pct": AttackDecayParams(
        deviation_threshold_pct=1.5, reaction_change_pct=4.0, perf_deg_threshold_pct=3.0
    ),
    "reaction_change_pct": AttackDecayParams(
        deviation_threshold_pct=1.5, decay_pct=0.75, perf_deg_threshold_pct=3.0
    ),
    "deviation_threshold_pct": AttackDecayParams(
        reaction_change_pct=6.0, decay_pct=0.175, perf_deg_threshold_pct=2.5
    ),
}

#: Figure 5 legend: 1.000_06.0_1.250_X.X.
FIGURE5_BASE = AttackDecayParams(
    deviation_threshold_pct=1.0, reaction_change_pct=6.0, decay_pct=1.25
)

_SWEEPABLE = {
    "decay_pct": "decay",
    "reaction_change_pct": "reaction_change",
    "deviation_threshold_pct": "deviation_threshold",
    "perf_deg_threshold_pct": "perf_deg_threshold",
    "endstop_intervals": "endstop_count",
}


@dataclass(frozen=True)
class SweepPoint:
    """One swept value and the averaged statistics it produced."""

    value: float
    aggregate: AggregateResult


def sweep_attack_decay_parameter(
    runner: ExperimentRunner,
    parameter: str,
    values: Sequence[float],
    benchmarks: Sequence[str],
    base_params: AttackDecayParams | None = None,
) -> list[SweepPoint]:
    """Sweep one parameter; aggregate vs the baseline MCD processor.

    Parameters
    ----------
    runner:
        The cached experiment runner.
    parameter:
        Field name on :class:`AttackDecayParams`
        (e.g. ``"decay_pct"``).
    values:
        Values to sweep (validated against the Table 2 range).
    benchmarks:
        Benchmark subset to average over.
    base_params:
        The fixed operating point; defaults to the figure's legend
        value when the parameter has one.
    """
    if parameter not in _SWEEPABLE:
        raise ExperimentError(
            f"unknown sweep parameter {parameter!r}; options: {sorted(_SWEEPABLE)}"
        )
    if not benchmarks:
        raise ExperimentError("sweep needs at least one benchmark")
    rng = ATTACK_DECAY_PARAMETER_RANGES[_SWEEPABLE[parameter]]
    if base_params is None:
        base_params = FIGURE6_BASE.get(parameter, AttackDecayParams())
    points: list[SweepPoint] = []
    for value in values:
        if not rng.contains(value):
            raise ExperimentError(
                f"{parameter}={value} outside Table 2 range [{rng.low}, {rng.high}]"
            )
        if parameter == "endstop_intervals":
            params = base_params.with_(endstop_intervals=int(value))
        else:
            params = base_params.with_(**{parameter: value})
        comparisons = {}
        for bench in benchmarks:
            record = runner.attack_decay(bench, params)
            comparisons[bench] = runner.compare_to_mcd_base(record)
        points.append(SweepPoint(value=value, aggregate=aggregate(comparisons)))
    return points


def sweep_perf_deg_target(
    runner: ExperimentRunner,
    targets_pct: Sequence[float],
    benchmarks: Sequence[str],
    base_params: AttackDecayParams | None = None,
) -> list[SweepPoint]:
    """Figure 5: sweep the PerfDegThreshold (the degradation target)."""
    return sweep_attack_decay_parameter(
        runner,
        "perf_deg_threshold_pct",
        targets_pct,
        benchmarks,
        base_params=base_params if base_params is not None else FIGURE5_BASE,
    )
