"""Simulation drivers: single runs, cached experiments, parameter sweeps.

The experiment-layer names (:class:`ExperimentRunner`, sweeps, ...) are
imported lazily so that :mod:`repro.experiments` — which the experiment
facade is built on, and which itself uses :mod:`repro.sim.engine` — can
be imported first without a cycle.
"""

from repro.sim.engine import SimulationSpec, run_spec

_LAZY = {
    "ExperimentRunner": ("repro.sim.experiment", "ExperimentRunner"),
    "RunRecord": ("repro.sim.experiment", "RunRecord"),
    "benchmark_scale": ("repro.sim.experiment", "benchmark_scale"),
    "quick_benchmarks": ("repro.sim.experiment", "quick_benchmarks"),
    "sweep_attack_decay_parameter": (
        "repro.sim.sweeps",
        "sweep_attack_decay_parameter",
    ),
    "sweep_perf_deg_target": ("repro.sim.sweeps", "sweep_perf_deg_target"),
}

__all__ = [
    "ExperimentRunner",
    "RunRecord",
    "SimulationSpec",
    "benchmark_scale",
    "quick_benchmarks",
    "run_spec",
    "sweep_attack_decay_parameter",
    "sweep_perf_deg_target",
]


def __getattr__(name: str):
    """Resolve experiment-layer names on first use (PEP 562)."""
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value
