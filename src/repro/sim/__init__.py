"""Simulation drivers: single runs, cached experiments, parameter sweeps."""

from repro.sim.engine import SimulationSpec, run_spec
from repro.sim.experiment import (
    ExperimentRunner,
    RunRecord,
    benchmark_scale,
    quick_benchmarks,
)
from repro.sim.sweeps import sweep_attack_decay_parameter, sweep_perf_deg_target

__all__ = [
    "ExperimentRunner",
    "RunRecord",
    "SimulationSpec",
    "benchmark_scale",
    "quick_benchmarks",
    "run_spec",
    "sweep_attack_decay_parameter",
    "sweep_perf_deg_target",
]
