"""Single-run simulation driver.

:class:`SimulationSpec` names everything that determines a run —
benchmark, processor/MCD configuration, clocking mode, controller — and
:func:`run_spec` executes it.  Specs are deterministic: the same spec
always produces the same :class:`~repro.uarch.core.CoreResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config.mcd import Domain, MCDConfig
from repro.config.processor import ProcessorConfig
from repro.control.base import FrequencyController
from repro.errors import ExperimentError
from repro.uarch.core import CoreOptions, CoreResult, MCDCore
from repro.workloads.catalog import get_benchmark

#: Regulator slew rate used with the scaled catalog workloads.  The
#: paper's 49.1 ns/MHz makes a full-range transition take ~3.7 of its
#: 10,000-instruction control intervals; our catalog compresses run
#: length (and interval length) by roughly 20-30x, so the slew rate is
#: compressed alongside to preserve the ratio of actuation delay to
#: control interval — otherwise the regulator, not the algorithm, would
#: dominate the scaled results (DESIGN.md substitution #2).
SCALED_SLEW_NS_PER_MHZ = 1.5


def scaled_mcd_config() -> MCDConfig:
    """Table 1 electricals with the time-compression-matched slew rate."""
    return MCDConfig(slew_ns_per_mhz=SCALED_SLEW_NS_PER_MHZ)


@dataclass
class SimulationSpec:
    """A fully specified simulation run.

    Parameters
    ----------
    benchmark:
        Catalog name (see :mod:`repro.workloads.catalog`).
    mcd:
        MCD clocking (True) or the fully synchronous baseline (False).
    controller:
        Frequency controller, or None for fixed initial frequencies.
    global_frequency_mhz:
        When set, every on-chip domain starts (and stays, absent a
        controller) at this frequency — the global-DVFS operating
        point.
    scale:
        Workload length scale (1.0 = the catalog's scaled windows).
    seed:
        Clock phase/jitter seed (and trace seed offset).
    record_intervals:
        Keep the per-interval log (Figures 2/3).
    warmup:
        Replay the head of the trace through predictor/caches before
        timing, approximating the paper's warm mid-execution windows.
    memory_tracks_global:
        Scale main-memory latency with ``global_frequency_mhz``
        (latency constant in processor cycles, SimpleScalar-style).
        The paper's global-DVFS analysis exhibits exactly this
        behaviour — every application's run time stretches roughly
        proportionally with the global clock, yielding the reported
        power/performance ratio of ~2 — so the ``Global(...)`` rows
        reproduce it.  MCD runs always keep the external domain at
        fixed wall-clock latency (it is independently clocked at
        maximum, Section 2).
    """

    benchmark: str
    mcd: bool = True
    controller: FrequencyController | None = None
    global_frequency_mhz: float | None = None
    scale: float = 1.0
    seed: int = 1
    record_intervals: bool = False
    warmup: bool = True
    memory_tracks_global: bool = False
    processor: ProcessorConfig = field(default_factory=ProcessorConfig)
    mcd_config: MCDConfig = field(default_factory=scaled_mcd_config)


def run_spec(spec: SimulationSpec) -> CoreResult:
    """Execute one simulation run."""
    bench = get_benchmark(spec.benchmark)
    trace = bench.build_trace(scale=spec.scale)
    initial = None
    processor = spec.processor
    if spec.global_frequency_mhz is not None:
        f = spec.global_frequency_mhz
        cfg = spec.mcd_config
        if not cfg.min_frequency_mhz <= f <= cfg.max_frequency_mhz:
            raise ExperimentError(f"global frequency {f} MHz out of range")
        initial = {
            Domain.FRONT_END: f,
            Domain.INTEGER: f,
            Domain.FLOATING_POINT: f,
            Domain.LOAD_STORE: f,
        }
        if spec.memory_tracks_global:
            from dataclasses import replace

            processor = replace(
                processor,
                memory_latency_ns=processor.memory_latency_ns
                * cfg.max_frequency_mhz
                / f,
            )
    options = CoreOptions(
        mcd=spec.mcd,
        seed=spec.seed,
        interval_instructions=bench.interval_instructions,
        record_interval_trace=spec.record_intervals,
        initial_frequencies_mhz=initial,
    )
    core = MCDCore(
        processor=processor,
        mcd_config=spec.mcd_config,
        trace=trace,
        controller=spec.controller,
        options=options,
    )
    if spec.warmup:
        # The trace is a deterministic generator (each blocks() call
        # replays it from the seed), so the timed trace doubles as the
        # warm-up stream — building a second identical copy would only
        # duplicate the phase bookkeeping.
        core.warm_up(trace, limit=trace.total_instructions)
    return core.run()
