"""Single-run simulation driver.

:class:`SimulationSpec` names everything that determines a run —
benchmark, processor/MCD configuration, clocking mode, controller — and
:func:`run_spec` executes it.  Specs are deterministic: the same spec
always produces the same :class:`~repro.uarch.core.CoreResult`.

By default a spec runs over the benchmark's *compiled* trace
(:mod:`repro.uarch.compiled_trace`): the workload is generated once,
content-hash-cached on disk next to the experiment result cache, and
every subsequent run of the same (benchmark, scale, seed) — across
processes, orchestrator workers and sessions — reuses the columnar
form.  The core's batched fast path over it is byte-identical to the
per-instruction generator path (``compiled=False``), just faster; see
``benchmarks/bench_engine_hotpath.py`` for the measured ratio.
"""

from __future__ import annotations

import logging
import os
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.concurrency import SingleFlight
from repro.config.mcd import Domain, MCDConfig
from repro.config.processor import ProcessorConfig
from repro.control.base import FrequencyController
from repro.errors import ExperimentError
from repro.uarch.compiled_trace import (
    CompiledTrace,
    TraceStore,
    from_columns,
    trace_columns,
)
from repro.uarch.core import CoreOptions, CoreResult, MCDCore
from repro.workloads.catalog import BenchmarkSpec, get_benchmark

logger = logging.getLogger(__name__)

#: Regulator slew rate used with the scaled catalog workloads.  The
#: paper's 49.1 ns/MHz makes a full-range transition take ~3.7 of its
#: 10,000-instruction control intervals; our catalog compresses run
#: length (and interval length) by roughly 20-30x, so the slew rate is
#: compressed alongside to preserve the ratio of actuation delay to
#: control interval — otherwise the regulator, not the algorithm, would
#: dominate the scaled results (DESIGN.md substitution #2).
SCALED_SLEW_NS_PER_MHZ = 1.5


def scaled_mcd_config() -> MCDConfig:
    """Table 1 electricals with the time-compression-matched slew rate."""
    return MCDConfig(slew_ns_per_mhz=SCALED_SLEW_NS_PER_MHZ)


def trace_cache_entries() -> int:
    """Capacity of the in-process compiled-trace cache.

    ``REPRO_TRACE_CACHE`` overrides the default of 8 entries (a
    compiled trace is tens of MB of column lists at full scale, so the
    bound is deliberately modest; raise it for wide thread-pool sweeps
    over many distinct benchmarks on a big-memory host).
    """
    raw = os.environ.get("REPRO_TRACE_CACHE", "8")
    try:
        entries = int(raw)
    except ValueError:
        raise ExperimentError(
            f"malformed REPRO_TRACE_CACHE {raw!r}: expected an integer"
        ) from None
    return max(1, entries)


class TraceCache:
    """Process-wide, thread-safe, size-bounded cache of compiled traces.

    Keyed by (content hash, line shift); one instance is shared by
    every run in the process, so N thread-pool workers sweeping the
    same benchmarks load and compile each trace once instead of N
    times.  Lookups are LRU; concurrent misses on one key are
    single-flighted — the first thread builds while the others wait on
    an event and then reuse the result, because building a trace
    (generate + columnise) is exactly the expensive work the cache
    exists to avoid repeating.
    """

    def __init__(self, entries: int | None = None) -> None:
        # None defers to REPRO_TRACE_CACHE, resolved lazily so a
        # malformed value surfaces as an ExperimentError inside run
        # handling, not as an import-time crash of every entry point.
        self._entries = None if entries is None else max(1, entries)
        self._items: OrderedDict[tuple[str, int], CompiledTrace] = OrderedDict()
        self._flight = SingleFlight()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def entries(self) -> int:
        """The capacity bound (resolving ``REPRO_TRACE_CACHE`` lazily)."""
        if self._entries is None:
            self._entries = trace_cache_entries()
        return self._entries

    def get_or_build(self, key: tuple[str, int], build) -> CompiledTrace:
        """The cached trace under ``key``, building it at most once."""
        entries = self.entries  # resolve (and maybe raise) up front

        def lookup():
            # Runs under the flight lock, which guards _items too.
            item = self._items.get(key)
            if item is not None:
                self._items.move_to_end(key)
                self.hits += 1
            return item

        def publish(item):
            self._items[key] = item
            self._items.move_to_end(key)
            while len(self._items) > entries:
                self._items.popitem(last=False)
                self.evictions += 1
            self.misses += 1

        item, _ = self._flight.run(key, lookup, build, publish)
        return item

    def clear(self) -> None:
        """Drop every cached trace (testing/maintenance hook)."""
        with self._flight.lock:
            self._items.clear()


#: Shared on-disk store of compiled traces plus the process-wide
#: compiled-trace cache above.  The store's column memo is kept small:
#: for a single cache-line geometry the TraceCache already answers
#: repeat lookups, so the memo only needs to cover the re-derivation
#: window (same key, different line_shift, or a TraceCache eviction)
#: without pinning every benchmark's raw columns in memory twice.
_TRACE_STORE = TraceStore(memo_entries=2)
_TRACE_MEMO = TraceCache()


def compiled_trace_for(
    bench: BenchmarkSpec,
    scale: float = 1.0,
    line_shift: int = 6,
    seed_offset: int = 0,
) -> CompiledTrace:
    """The benchmark's compiled trace, through cache layers.

    Lookup order: the process-wide :class:`TraceCache`, then the
    on-disk ``TraceStore`` (disabled by ``REPRO_CACHE=0``), then
    generate-and-compile.  The content-hash key joins the full trace
    identity
    (:meth:`~repro.workloads.catalog.BenchmarkSpec.trace_payload`),
    ``COMPILED_TRACE_VERSION``, and the experiment cache's
    ``CACHE_VERSION``, so bumping either version invalidates stale
    compiled traces alongside stale results.  The cache line geometry
    stays *out* of the disk key — the store persists only the
    geometry-independent base columns and re-derives for
    ``line_shift`` on load, so one stored trace serves every geometry;
    only the in-process cache is keyed per shift.

    Thread-safe: concurrent callers for one trace wait on a single
    build, and the returned instance is safely shared across threads
    (the native path treats it read-only; the batched Python path
    leases or copies the mutable templates).
    """
    key = _trace_store_key(bench, scale, seed_offset)

    def build() -> CompiledTrace:
        from repro.experiments.executor import cache_enabled
        from repro.uarch import shared_trace

        # Cheapest first: a shared-memory segment exported by the sweep
        # owner is already validated and needs no disk read.
        shared = shared_trace.shared_columns(key)
        if shared is not None:
            return from_columns(shared, line_shift)
        use_disk = cache_enabled()
        compiled = _TRACE_STORE.load(key, line_shift) if use_disk else None
        if compiled is None:
            trace = bench.build_trace(scale=scale, seed_offset=seed_offset)
            columns = trace_columns(trace)
            if use_disk:
                _TRACE_STORE.store(key, columns)
            compiled = from_columns(columns, line_shift)
        return compiled

    return _TRACE_MEMO.get_or_build((key, line_shift), build)


def _trace_store_key(bench: BenchmarkSpec, scale: float, seed_offset: int) -> str:
    """The content-hash store key of one benchmark trace identity."""
    # Deferred import: repro.experiments imports this module.
    from repro.experiments.cache import CACHE_VERSION

    payload = bench.trace_payload(scale, seed_offset)
    payload["cache_version"] = CACHE_VERSION
    return _TRACE_STORE.key(payload)


def export_shared_trace(
    bench: BenchmarkSpec, scale: float = 1.0, seed_offset: int = 0
) -> dict:
    """Publish one benchmark trace's base columns in shared memory.

    Owner-side hook for the process sweep backend: resolves the base
    columns through the memo/disk layers (generating and persisting on
    a cold store, exactly like :func:`compiled_trace_for`), exports
    them via :mod:`repro.uarch.shared_trace`, and returns the
    descriptor to ship to workers.  Idempotent per trace.
    """
    from repro.experiments.executor import cache_enabled
    from repro.uarch import shared_trace

    key = _trace_store_key(bench, scale, seed_offset)
    columns = _TRACE_STORE.load_columns(key) if cache_enabled() else None
    if columns is None:
        trace = bench.build_trace(scale=scale, seed_offset=seed_offset)
        columns = trace_columns(trace)
        if cache_enabled():
            _TRACE_STORE.store(key, columns)
    return shared_trace.export_columns(key, columns)


@dataclass
class SimulationSpec:
    """A fully specified simulation run.

    Parameters
    ----------
    benchmark:
        Catalog name (see :mod:`repro.workloads.catalog`).
    mcd:
        MCD clocking (True) or the fully synchronous baseline (False).
    controller:
        Frequency controller, or None for fixed initial frequencies.
    global_frequency_mhz:
        When set, every on-chip domain starts (and stays, absent a
        controller) at this frequency — the global-DVFS operating
        point.
    scale:
        Workload length scale (1.0 = the catalog's scaled windows).
    seed:
        Clock phase/jitter seed (and trace seed offset).
    record_intervals:
        Keep the per-interval log (Figures 2/3).
    warmup:
        Replay the head of the trace through predictor/caches before
        timing, approximating the paper's warm mid-execution windows.
    compiled:
        Run over the compiled columnar trace (default; cached on disk,
        batched core fast path).  False forces the per-instruction
        generator reference path — byte-identical results, useful for
        equivalence tests and the hot-path benchmark.
    path:
        Explicit execution-path selection: ``"auto"`` (default) picks
        the fastest available; ``"native"`` requires the C loop;
        ``"python"`` forces the batched Python loop; ``"generator"``
        forces the per-instruction reference path (implies a generator
        trace, regardless of ``compiled``).  All paths are
        byte-identical — this knob exists for equivalence tests and
        the path benchmarks (``benchmarks/bench_control_loop.py``).
    memory_tracks_global:
        Scale main-memory latency with ``global_frequency_mhz``
        (latency constant in processor cycles, SimpleScalar-style).
        The paper's global-DVFS analysis exhibits exactly this
        behaviour — every application's run time stretches roughly
        proportionally with the global clock, yielding the reported
        power/performance ratio of ~2 — so the ``Global(...)`` rows
        reproduce it.  MCD runs always keep the external domain at
        fixed wall-clock latency (it is independently clocked at
        maximum, Section 2).
    """

    benchmark: str
    mcd: bool = True
    controller: FrequencyController | None = None
    global_frequency_mhz: float | None = None
    scale: float = 1.0
    seed: int = 1
    record_intervals: bool = False
    warmup: bool = True
    memory_tracks_global: bool = False
    compiled: bool = True
    path: str = "auto"
    processor: ProcessorConfig = field(default_factory=ProcessorConfig)
    mcd_config: MCDConfig = field(default_factory=scaled_mcd_config)


def _build_core(spec: SimulationSpec) -> tuple[MCDCore, object]:
    """Build the (cold) core and trace one spec describes."""
    if spec.path not in ("auto", "native", "python", "generator"):
        raise ExperimentError(
            f"unknown execution path {spec.path!r}; "
            "expected auto, native, python or generator"
        )
    bench = get_benchmark(spec.benchmark)
    if spec.compiled and spec.path != "generator":
        line_shift = spec.processor.line_bytes.bit_length() - 1
        trace = compiled_trace_for(bench, scale=spec.scale, line_shift=line_shift)
    else:
        trace = bench.build_trace(scale=spec.scale)
    initial = None
    processor = spec.processor
    if spec.global_frequency_mhz is not None:
        f = spec.global_frequency_mhz
        cfg = spec.mcd_config
        if not cfg.min_frequency_mhz <= f <= cfg.max_frequency_mhz:
            raise ExperimentError(f"global frequency {f} MHz out of range")
        initial = {
            Domain.FRONT_END: f,
            Domain.INTEGER: f,
            Domain.FLOATING_POINT: f,
            Domain.LOAD_STORE: f,
        }
        if spec.memory_tracks_global:
            from dataclasses import replace

            processor = replace(
                processor,
                memory_latency_ns=processor.memory_latency_ns
                * cfg.max_frequency_mhz
                / f,
            )
    options = CoreOptions(
        mcd=spec.mcd,
        seed=spec.seed,
        interval_instructions=bench.interval_instructions,
        record_interval_trace=spec.record_intervals,
        initial_frequencies_mhz=initial,
    )
    core = MCDCore(
        processor=processor,
        mcd_config=spec.mcd_config,
        trace=trace,
        controller=spec.controller,
        options=options,
    )
    return core, trace


def run_spec(spec: SimulationSpec) -> CoreResult:
    """Execute one simulation run."""
    core, trace = _build_core(spec)
    if spec.warmup:
        # The timed trace doubles as the warm-up stream: a compiled
        # trace is replayed directly from its columns, and a generator
        # trace is deterministic (each blocks() call replays it from
        # the seed), so building a second copy would only duplicate
        # the phase bookkeeping.
        core.warm_up(trace, limit=trace.total_instructions)
    return core.run(path=spec.path)


class _NotBatchable(Exception):
    """Internal: this spec vector must run through run_spec per run."""


#: Share warm-up state across a batch cell only for traces at least
#: this long.  Warm-up walks the whole trace in Python (cost grows
#: with length), while restoring a snapshot deep-copies cache sets and
#: predictor tables (cost fixed by geometry) — so sharing wins on
#: production-scale traces and loses on short smoke traces, where the
#: copy outweighs the replay.  Both paths leave identical state, so
#: the cutover never changes results.
_WARM_SHARE_MIN_EVENTS = 25_000


def run_specs_batch(specs: list[SimulationSpec]) -> list[CoreResult]:
    """Execute several runs through one native ``run_batch`` call.

    Byte-identity contract: the returned list equals
    ``[run_spec(s) for s in specs]`` exactly — same ``CoreResult``
    values, same final controller/regulator diagnostics.  The batch
    amortises what a per-run loop repeats:

    * one GIL release and one C entry for the whole vector;
    * warm-up once per (trace, geometry) on long traces — warm state
      is deterministic and seed-independent, so later runs in the cell
      deep-copy the first run's
      :meth:`~repro.uarch.core.MCDCore.warm_state_snapshot` instead of
      replaying the trace (short traces below
      ``_WARM_SHARE_MIN_EVENTS`` just replay: the copy would cost more
      than the walk).

    Anything that cannot take the native compiled path (no C loop,
    generator/python specs, non-columnar traces) and any error during
    batch assembly or execution falls back to per-run
    :func:`run_spec` execution, which re-raises per-spec errors with
    their normal semantics.
    """
    from repro.uarch.native import load_hotpath

    if len(specs) <= 1:
        return [run_spec(spec) for spec in specs]
    hotpath = load_hotpath()
    if hotpath is None or getattr(hotpath, "run_batch", None) is None:
        return [run_spec(spec) for spec in specs]
    try:
        cores = []
        args_vector = []
        finishes = []
        warm_snapshots: dict = {}
        for spec in specs:
            if spec.path not in ("auto", "native") or not spec.compiled:
                raise _NotBatchable
            core, trace = _build_core(spec)
            if core.compiled is None or not core.compiled.arrays:
                raise _NotBatchable
            if spec.warmup:
                if trace.total_instructions < _WARM_SHARE_MIN_EVENTS:
                    core.warm_up(trace, limit=trace.total_instructions)
                else:
                    # Warm state depends only on (trace, geometry):
                    # the compiled trace is one shared instance per
                    # identity, and the processor config carries the
                    # geometry.
                    warm_key = (id(trace), repr(spec.processor))
                    snapshot = warm_snapshots.get(warm_key)
                    if snapshot is None:
                        core.warm_up(trace, limit=trace.total_instructions)
                        warm_snapshots[warm_key] = core.warm_state_snapshot()
                    else:
                        core.restore_warm_state(snapshot)
            args, finish = core.native_marshal()
            cores.append(core)
            args_vector.append(args)
            finishes.append(finish)
        raw = hotpath.run_batch(args_vector)
        return [finish(res) for finish, res in zip(finishes, raw)]
    except _NotBatchable:
        return [run_spec(spec) for spec in specs]
    except Exception:
        # A failed batch (callback exception, trace-exhausted run,
        # marshal error) falls back to per-run execution on fresh
        # cores: controllers re-``begin`` from scratch, so results
        # stay byte-identical and the failing spec raises with its
        # own per-run error semantics.
        logger.debug("batched native run failed; re-running per run", exc_info=True)
        return [run_spec(spec) for spec in specs]
