"""Backward-compatible facade over the scenario API.

:class:`ExperimentRunner` keeps the seed repository's method-per-
configuration interface (``sync_baseline``, ``attack_decay``,
``dynamic``, ``global_at``, ...) but every run now flows through the
registry-driven scenario layer in :mod:`repro.experiments`: names are
resolved by the configuration registry, results come from the shared
content-addressed cache, and the same keys are hit whether a run was
computed here, by a parallel orchestrator worker, or by the CLI.

New code should prefer :class:`repro.experiments.Suite` +
:class:`repro.experiments.Orchestrator`; this module exists so the
bench harness and downstream scripts keep working unchanged.

Environment knobs
-----------------
``REPRO_SCALE``
    Scales all workload lengths (e.g. 0.2 for quick iterations).
``REPRO_BENCHMARKS``
    Comma-separated subset of the catalog.
``REPRO_CACHE``
    Set to ``0`` to disable the on-disk cache.
"""

from __future__ import annotations

from pathlib import Path

from repro.config.algorithm import AttackDecayParams
from repro.config.mcd import MCDConfig
from repro.dvfs.scale import FrequencyScale
from repro.errors import ExperimentError
from repro.experiments.builtins import attack_decay_scenario
from repro.experiments.cache import CACHE_VERSION, DEFAULT_CACHE_DIR
from repro.experiments.executor import (
    ExecutionContext,
    benchmark_scale,
    quick_benchmarks,
)
from repro.experiments.results import RunRecord
from repro.experiments.scenario import Scenario
from repro.metrics.summary import Comparison, compare

__all__ = [
    "CACHE_VERSION",
    "ExperimentRunner",
    "RunRecord",
    "benchmark_scale",
    "quick_benchmarks",
]

_DEFAULT_CACHE_DIR = DEFAULT_CACHE_DIR


class ExperimentRunner:
    """Runs and caches the paper's configurations (facade).

    Parameters
    ----------
    cache_dir:
        Where JSON results live; created on demand.
    scale:
        Workload length scale; defaults to ``REPRO_SCALE``.
    seed:
        Clock phase/jitter seed shared by all runs.
    use_cache:
        Overrides ``REPRO_CACHE``.
    """

    def __init__(
        self,
        cache_dir: Path | str | None = None,
        scale: float | None = None,
        seed: int = 1,
        use_cache: bool | None = None,
    ) -> None:
        self._ctx = ExecutionContext(
            cache_dir=cache_dir, scale=scale, seed=seed, use_cache=use_cache
        )

    # --- context passthroughs ---------------------------------------------
    @property
    def context(self) -> ExecutionContext:
        """The underlying scenario execution context."""
        return self._ctx

    @property
    def cache_dir(self) -> Path:
        """Result cache location."""
        return self._ctx.cache.directory

    @property
    def scale(self) -> float:
        """Workload length scale shared by all runs."""
        return self._ctx.scale

    @property
    def seed(self) -> int:
        """Clock phase/jitter seed shared by all runs."""
        return self._ctx.seed

    @property
    def use_cache(self) -> bool:
        """Whether the on-disk cache is consulted."""
        return self._ctx.cache.enabled

    def run_scenario(self, scenario: Scenario) -> RunRecord:
        """Execute any registry scenario through this runner's cache."""
        return self._ctx.run(scenario)

    # --- configurations ------------------------------------------------------
    def sync_baseline(self, benchmark: str) -> RunRecord:
        """Fully synchronous processor at maximum frequency."""
        return self._ctx.run(Scenario(benchmark, "sync"))

    def mcd_baseline(self, benchmark: str) -> RunRecord:
        """Baseline MCD processor (all domains at maximum)."""
        return self._ctx.run(Scenario(benchmark, "mcd_base"))

    def attack_decay(
        self,
        benchmark: str,
        params: AttackDecayParams | None = None,
        literal_listing: bool = False,
    ) -> RunRecord:
        """MCD processor under the Attack/Decay controller."""
        return self._ctx.run(
            attack_decay_scenario(benchmark, params, literal_listing)
        )

    def dynamic(
        self, benchmark: str, target_pct: float, iterations: int = 3
    ) -> RunRecord:
        """The off-line algorithm at a degradation target (1 % or 5 %)."""
        overrides = {} if iterations == 3 else {"iterations": iterations}
        return self._ctx.run(
            Scenario(benchmark, f"dynamic_{target_pct:g}", overrides=overrides)
        )

    def global_at(self, benchmark: str, frequency_mhz: float) -> RunRecord:
        """Fully synchronous processor at one global frequency.

        The frequency is quantised to the regulator's scale; memory
        latency tracks the global clock (see
        :class:`~repro.sim.engine.SimulationSpec`).
        """
        scale = FrequencyScale(MCDConfig())
        mhz = scale.quantize(frequency_mhz)
        return self._ctx.run(Scenario(benchmark, f"global@{mhz:.3f}"))

    def global_matched(
        self,
        benchmark: str,
        target_time_ns: float,
        iterations: int = 7,
    ) -> RunRecord:
        """Search the global frequency whose run time matches a target.

        Bisection over the quantised frequency scale (run time is
        monotonically non-increasing in frequency).  Returns the run at
        the best frequency found.
        """
        if target_time_ns <= 0:
            raise ExperimentError("target_time_ns must be positive")
        scale = FrequencyScale(MCDConfig())
        lo, hi = 0, len(scale) - 1  # lo = slowest, hi = fastest
        best: RunRecord | None = None
        best_err = float("inf")
        for _ in range(iterations):
            if lo > hi:
                break
            mid = (lo + hi) // 2
            record = self.global_at(benchmark, float(scale.frequencies_mhz[mid]))
            err = abs(record.summary.wall_time_ns - target_time_ns)
            if err < best_err:
                best, best_err = record, err
            if record.summary.wall_time_ns > target_time_ns:
                lo = mid + 1  # too slow: need higher frequency
            else:
                hi = mid - 1  # faster than target: can slow down more
        if best is None:
            raise ExperimentError("global frequency search failed")
        return best

    def global_suite_matched(
        self,
        benchmarks: list[str],
        target_avg_degradation: float,
        iterations: int = 7,
    ) -> tuple[float, dict[str, RunRecord]]:
        """The paper's ``Global(...)`` rows: one chip-wide frequency.

        Finds the single global frequency/voltage setting (applied to
        every domain of the fully synchronous processor, for every
        benchmark) whose *suite-average* performance degradation versus
        the baseline MCD processor matches ``target_avg_degradation``
        (a fraction, e.g. 0.032).  Returns the chosen frequency and the
        per-benchmark runs at it.
        """
        if not benchmarks:
            raise ExperimentError("global_suite_matched needs benchmarks")
        scale = FrequencyScale(MCDConfig())
        bases = {b: self.mcd_baseline(b).summary for b in benchmarks}

        def avg_deg_at(index: int) -> tuple[float, dict[str, RunRecord]]:
            mhz = float(scale.frequencies_mhz[index])
            records = {b: self.global_at(b, mhz) for b in benchmarks}
            degs = [
                records[b].summary.wall_time_ns / bases[b].wall_time_ns - 1.0
                for b in benchmarks
            ]
            return sum(degs) / len(degs), records

        lo, hi = 0, len(scale) - 1
        best_index = hi
        best_err = float("inf")
        best_records: dict[str, RunRecord] = {}
        for _ in range(iterations):
            if lo > hi:
                break
            mid = (lo + hi) // 2
            deg, records = avg_deg_at(mid)
            err = abs(deg - target_avg_degradation)
            if err < best_err:
                best_index, best_err, best_records = mid, err, records
            if deg > target_avg_degradation:
                lo = mid + 1  # too slow on average: raise frequency
            else:
                hi = mid - 1
        return float(scale.frequencies_mhz[best_index]), best_records

    # --- composite comparisons -----------------------------------------------
    def compare_to_mcd_base(self, record: RunRecord) -> Comparison:
        """Comparison of a run against the baseline MCD processor."""
        base = self.mcd_baseline(record.benchmark)
        return compare(record.summary, base.summary)

    def compare_to_sync(self, record: RunRecord) -> Comparison:
        """Comparison of a run against the fully synchronous processor."""
        base = self.sync_baseline(record.benchmark)
        return compare(record.summary, base.summary)
