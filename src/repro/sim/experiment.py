"""Cached experiment orchestration.

Table 6 and Figures 4-7 need hundreds of simulation runs; this module
names each run, executes it through :mod:`repro.sim.engine`, and caches
scalar results as JSON under ``results/cache/`` so benches re-run
instantly once computed.

Configurations (the paper's vocabulary):

* ``sync`` — fully synchronous processor, everything at 1 GHz;
* ``mcd_base`` — baseline MCD processor, all domains at 1 GHz
  (reference for Table 6);
* ``attack_decay`` — MCD + the on-line controller;
* ``dynamic_{pct}`` — MCD + the off-line schedule built from a cached
  profiling run (Dynamic-1 %, Dynamic-5 %);
* ``global@{mhz}`` — fully synchronous processor at a reduced global
  frequency, with :meth:`ExperimentRunner.global_matched` searching the
  frequency whose run time matches a target degradation (the
  ``Global(...)`` rows).

Environment knobs
-----------------
``REPRO_SCALE``
    Scales all workload lengths (e.g. 0.2 for quick iterations).
``REPRO_BENCHMARKS``
    Comma-separated subset of the catalog.
``REPRO_CACHE``
    Set to ``0`` to disable the on-disk cache.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.config.algorithm import AttackDecayParams
from repro.config.mcd import MCDConfig
from repro.control.attack_decay import AttackDecayController
from repro.control.offline import OfflineController, OfflineProfiler, build_offline_schedule
from repro.dvfs.scale import FrequencyScale
from repro.errors import ExperimentError
from repro.metrics.summary import Comparison, RunSummary, compare, summarize
from repro.sim.engine import SimulationSpec, run_spec
from repro.workloads.catalog import BENCHMARKS

#: Bump when a change invalidates previously cached results.
CACHE_VERSION = 3

_DEFAULT_CACHE_DIR = Path(__file__).resolve().parents[3] / "results" / "cache"


def benchmark_scale() -> float:
    """The workload length scale from ``REPRO_SCALE`` (default 1.0)."""
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def quick_benchmarks(default: list[str] | None = None) -> list[str]:
    """Benchmark subset from ``REPRO_BENCHMARKS`` (default: all)."""
    env = os.environ.get("REPRO_BENCHMARKS")
    if env:
        names = [n.strip() for n in env.split(",") if n.strip()]
        unknown = [n for n in names if n not in BENCHMARKS]
        if unknown:
            raise ExperimentError(f"unknown benchmarks in REPRO_BENCHMARKS: {unknown}")
        return names
    return default if default is not None else list(BENCHMARKS)


@dataclass(frozen=True)
class RunRecord:
    """A cached run: its identity and scalar outcome."""

    benchmark: str
    configuration: str
    summary: RunSummary

    def to_dict(self) -> dict:
        """Plain-dict form for the JSON cache."""
        return {
            "benchmark": self.benchmark,
            "configuration": self.configuration,
            "summary": self.summary.to_dict(),
        }

    @staticmethod
    def from_dict(data: dict) -> "RunRecord":
        """Inverse of :meth:`to_dict`."""
        return RunRecord(
            benchmark=data["benchmark"],
            configuration=data["configuration"],
            summary=RunSummary.from_dict(data["summary"]),
        )


class ExperimentRunner:
    """Runs and caches the paper's configurations.

    Parameters
    ----------
    cache_dir:
        Where JSON results live; created on demand.
    scale:
        Workload length scale; defaults to ``REPRO_SCALE``.
    seed:
        Clock phase/jitter seed shared by all runs.
    use_cache:
        Overrides ``REPRO_CACHE``.
    """

    def __init__(
        self,
        cache_dir: Path | str | None = None,
        scale: float | None = None,
        seed: int = 1,
        use_cache: bool | None = None,
    ) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else _DEFAULT_CACHE_DIR
        self.scale = benchmark_scale() if scale is None else scale
        self.seed = seed
        if use_cache is None:
            use_cache = os.environ.get("REPRO_CACHE", "1") != "0"
        self.use_cache = use_cache
        self._profiles: dict[str, object] = {}

    # --- cache -------------------------------------------------------------
    def _key(self, benchmark: str, configuration: str) -> str:
        payload = json.dumps(
            {
                "v": CACHE_VERSION,
                "benchmark": benchmark,
                "configuration": configuration,
                "scale": self.scale,
                "seed": self.seed,
            },
            sort_keys=True,
        )
        return hashlib.sha1(payload.encode()).hexdigest()[:20]

    def _load(self, key: str) -> RunRecord | None:
        if not self.use_cache:
            return None
        path = self.cache_dir / f"{key}.json"
        if not path.exists():
            return None
        try:
            return RunRecord.from_dict(json.loads(path.read_text()))
        except (json.JSONDecodeError, KeyError, TypeError):
            return None

    def _store(self, key: str, record: RunRecord) -> None:
        if not self.use_cache:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self.cache_dir / f"{key}.json"
        path.write_text(json.dumps(record.to_dict(), indent=1))

    def _run_cached(self, configuration: str, spec: SimulationSpec) -> RunRecord:
        key = self._key(spec.benchmark, configuration)
        cached = self._load(key)
        if cached is not None:
            return cached
        result = run_spec(spec)
        record = RunRecord(
            benchmark=spec.benchmark,
            configuration=configuration,
            summary=summarize(result),
        )
        self._store(key, record)
        return record

    # --- configurations ------------------------------------------------------
    def sync_baseline(self, benchmark: str) -> RunRecord:
        """Fully synchronous processor at maximum frequency."""
        spec = SimulationSpec(
            benchmark=benchmark, mcd=False, scale=self.scale, seed=self.seed
        )
        return self._run_cached("sync", spec)

    def mcd_baseline(self, benchmark: str) -> RunRecord:
        """Baseline MCD processor (all domains at maximum)."""
        spec = SimulationSpec(
            benchmark=benchmark, mcd=True, scale=self.scale, seed=self.seed
        )
        return self._run_cached("mcd_base", spec)

    def attack_decay(
        self,
        benchmark: str,
        params: AttackDecayParams | None = None,
        literal_listing: bool = False,
    ) -> RunRecord:
        """MCD processor under the Attack/Decay controller."""
        params = params if params is not None else AttackDecayParams()
        name = f"attack_decay[{params.legend()}]"
        if literal_listing:
            name += "[literal]"
        controller = AttackDecayController(params, literal_listing=literal_listing)
        spec = SimulationSpec(
            benchmark=benchmark,
            mcd=True,
            controller=controller,
            scale=self.scale,
            seed=self.seed,
        )
        return self._run_cached(name, spec)

    def _profile(self, benchmark: str):
        """Profile a benchmark at maximum frequencies (memoised)."""
        if benchmark not in self._profiles:
            profiler = OfflineProfiler()
            spec = SimulationSpec(
                benchmark=benchmark,
                mcd=True,
                controller=profiler,
                scale=self.scale,
                seed=self.seed,
            )
            run_spec(spec)
            self._profiles[benchmark] = profiler.profile
        return self._profiles[benchmark]

    def dynamic(
        self, benchmark: str, target_pct: float, iterations: int = 3
    ) -> RunRecord:
        """The off-line algorithm at a degradation target (1 % or 5 %).

        Profiles the benchmark at maximum frequencies, builds the
        demand-based per-interval schedule, and iterates the schedule's
        aggressiveness against *measured* degradation (relative to the
        baseline MCD processor) — the off-line algorithm's whole point
        is that it may re-analyse the complete run until its dilation
        budget is met.
        """
        name = f"dynamic_{target_pct:g}"
        key = self._key(benchmark, name)
        cached = self._load(key)
        if cached is not None:
            return cached
        profile = self._profile(benchmark)
        base = self.mcd_baseline(benchmark).summary
        target = target_pct / 100.0
        lam = 1.0
        best: RunRecord | None = None
        best_err = float("inf")
        for _ in range(max(1, iterations)):
            schedule = build_offline_schedule(
                profile, MCDConfig(), target_pct, aggressiveness=lam
            )
            spec = SimulationSpec(
                benchmark=benchmark,
                mcd=True,
                controller=OfflineController(schedule),
                scale=self.scale,
                seed=self.seed,
            )
            summary = summarize(run_spec(spec))
            deg = summary.wall_time_ns / base.wall_time_ns - 1.0
            err = abs(deg - target)
            if err < best_err:
                best, best_err = RunRecord(benchmark, name, summary), err
            if err <= 0.3 * target + 0.002:
                break
            if deg <= 0.0:
                lam = min(lam * 1.8, 3.0)
            else:
                lam = min(3.0, max(0.1, lam * (target / deg) ** 0.7))
        assert best is not None
        self._store(key, best)
        return best

    def global_at(self, benchmark: str, frequency_mhz: float) -> RunRecord:
        """Fully synchronous processor at one global frequency.

        Memory latency tracks the global clock (constant in processor
        cycles): the paper's global-DVFS behaviour, see
        :class:`~repro.sim.engine.SimulationSpec`.
        """
        scale = FrequencyScale(MCDConfig())
        mhz = scale.quantize(frequency_mhz)
        spec = SimulationSpec(
            benchmark=benchmark,
            mcd=False,
            global_frequency_mhz=mhz,
            memory_tracks_global=True,
            scale=self.scale,
            seed=self.seed,
        )
        return self._run_cached(f"global@{mhz:.3f}", spec)

    def global_matched(
        self,
        benchmark: str,
        target_time_ns: float,
        iterations: int = 7,
    ) -> RunRecord:
        """Search the global frequency whose run time matches a target.

        Bisection over the quantised frequency scale (run time is
        monotonically non-increasing in frequency).  Returns the run at
        the best frequency found.
        """
        if target_time_ns <= 0:
            raise ExperimentError("target_time_ns must be positive")
        scale = FrequencyScale(MCDConfig())
        lo, hi = 0, len(scale) - 1  # lo = slowest, hi = fastest
        best: RunRecord | None = None
        best_err = float("inf")
        for _ in range(iterations):
            if lo > hi:
                break
            mid = (lo + hi) // 2
            record = self.global_at(benchmark, float(scale.frequencies_mhz[mid]))
            err = abs(record.summary.wall_time_ns - target_time_ns)
            if err < best_err:
                best, best_err = record, err
            if record.summary.wall_time_ns > target_time_ns:
                lo = mid + 1  # too slow: need higher frequency
            else:
                hi = mid - 1  # faster than target: can slow down more
        if best is None:
            raise ExperimentError("global frequency search failed")
        return best

    def global_suite_matched(
        self,
        benchmarks: list[str],
        target_avg_degradation: float,
        iterations: int = 7,
    ) -> tuple[float, dict[str, RunRecord]]:
        """The paper's ``Global(...)`` rows: one chip-wide frequency.

        Finds the single global frequency/voltage setting (applied to
        every domain of the fully synchronous processor, for every
        benchmark) whose *suite-average* performance degradation versus
        the baseline MCD processor matches ``target_avg_degradation``
        (a fraction, e.g. 0.032).  Returns the chosen frequency and the
        per-benchmark runs at it.
        """
        if not benchmarks:
            raise ExperimentError("global_suite_matched needs benchmarks")
        scale = FrequencyScale(MCDConfig())
        bases = {b: self.mcd_baseline(b).summary for b in benchmarks}

        def avg_deg_at(index: int) -> tuple[float, dict[str, RunRecord]]:
            mhz = float(scale.frequencies_mhz[index])
            records = {b: self.global_at(b, mhz) for b in benchmarks}
            degs = [
                records[b].summary.wall_time_ns / bases[b].wall_time_ns - 1.0
                for b in benchmarks
            ]
            return sum(degs) / len(degs), records

        lo, hi = 0, len(scale) - 1
        best_index = hi
        best_err = float("inf")
        best_records: dict[str, RunRecord] = {}
        for _ in range(iterations):
            if lo > hi:
                break
            mid = (lo + hi) // 2
            deg, records = avg_deg_at(mid)
            err = abs(deg - target_avg_degradation)
            if err < best_err:
                best_index, best_err, best_records = mid, err, records
            if deg > target_avg_degradation:
                lo = mid + 1  # too slow on average: raise frequency
            else:
                hi = mid - 1
        return float(scale.frequencies_mhz[best_index]), best_records

    # --- composite comparisons -----------------------------------------------
    def compare_to_mcd_base(self, record: RunRecord) -> Comparison:
        """Comparison of a run against the baseline MCD processor."""
        base = self.mcd_baseline(record.benchmark)
        return compare(record.summary, base.summary)

    def compare_to_sync(self, record: RunRecord) -> Comparison:
        """Comparison of a run against the fully synchronous processor."""
        base = self.sync_baseline(record.benchmark)
        return compare(record.summary, base.summary)
