"""Dynamic voltage/frequency scaling substrate (XScale model).

The paper adopts the XScale DVFS model: 320 quantised frequency points
spanning 1.0 GHz down to 250 MHz with a linearly mapped voltage from
1.2 V down to 0.65 V, transitions ramping at 49.1 ns/MHz, and the
domain *executing through* the change.
"""

from repro.dvfs.regulator import RegulatorState, VoltageFrequencyRegulator
from repro.dvfs.scale import FrequencyScale

__all__ = [
    "FrequencyScale",
    "RegulatorState",
    "VoltageFrequencyRegulator",
]
