"""The quantised frequency/voltage operating-point table.

Materialises the 320-point frequency scale of Section 4 with its linear
voltage map, and provides index arithmetic used by controllers (e.g.
"one step down") and by tests asserting quantisation behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.config.mcd import MCDConfig
from repro.errors import RegulatorError


class FrequencyScale:
    """The legal (frequency, voltage) operating points of a domain.

    Parameters
    ----------
    config:
        The MCD configuration supplying range, point count and the
        voltage map.
    """

    def __init__(self, config: MCDConfig) -> None:
        self.config = config
        self.frequencies_mhz = np.linspace(
            config.min_frequency_mhz,
            config.max_frequency_mhz,
            config.frequency_points,
        )
        self.voltages_v = np.array(
            [config.voltage_for_frequency(f) for f in self.frequencies_mhz]
        )

    def __len__(self) -> int:
        return len(self.frequencies_mhz)

    def index_of(self, frequency_mhz: float) -> int:
        """Index of the nearest operating point to ``frequency_mhz``."""
        clamped = min(
            self.config.max_frequency_mhz,
            max(self.config.min_frequency_mhz, frequency_mhz),
        )
        step = self.config.frequency_step_mhz
        return round((clamped - self.config.min_frequency_mhz) / step)

    def quantize(self, frequency_mhz: float) -> float:
        """Nearest legal frequency (clamped into range)."""
        return float(self.frequencies_mhz[self.index_of(frequency_mhz)])

    def voltage_at(self, frequency_mhz: float) -> float:
        """Voltage of the nearest operating point."""
        return float(self.voltages_v[self.index_of(frequency_mhz)])

    def step_from(self, frequency_mhz: float, steps: int) -> float:
        """Frequency ``steps`` table entries away (clamped at the ends)."""
        index = self.index_of(frequency_mhz) + steps
        index = min(len(self.frequencies_mhz) - 1, max(0, index))
        return float(self.frequencies_mhz[index])

    def require_legal(self, frequency_mhz: float) -> float:
        """Validate and return ``frequency_mhz`` as an exact table point."""
        snapped = self.quantize(frequency_mhz)
        if abs(snapped - frequency_mhz) > 1e-6:
            raise RegulatorError(
                f"{frequency_mhz} MHz is not one of the "
                f"{len(self)} legal operating points"
            )
        return snapped
