"""XScale-style voltage/frequency regulator with execute-through slewing.

One regulator per controllable domain.  A controller *requests* a target
frequency; the regulator ramps the actual frequency toward the target at
the configured slew rate (49.1 ns per MHz of change, Table 1) while the
domain keeps executing.  Voltage tracks frequency through the linear
map, matching the paper's assumption that on a downward transition the
frequency change starts immediately and on an upward transition voltage
and frequency rise together, both governed by the same slew rate.

The regulator also counts transitions and time-spent-slewing, which the
sensitivity discussion in Section 5 uses (excessive attack activity
continuously re-activates the PLL/voltage control circuits).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.config.mcd import MCDConfig
from repro.dvfs.scale import FrequencyScale
from repro.errors import RegulatorError


class RegulatorState(enum.Enum):
    """Whether the regulator is holding a frequency or ramping to one."""

    STEADY = "steady"
    SLEWING = "slewing"


@dataclass
class RegulatorStats:
    """Accumulated regulator activity over a run."""

    requests: int = 0
    direction_changes: int = 0
    slewing_time_ns: float = 0.0


class VoltageFrequencyRegulator:
    """Slew-rate-limited frequency/voltage actuator for one domain.

    Parameters
    ----------
    config:
        MCD electrical parameters.
    initial_mhz:
        Starting operating point (defaults to the maximum frequency,
        the baseline MCD configuration).  Snapped to the scale.

    Notes
    -----
    Time is supplied by the caller (the simulator's domain-edge times),
    so the regulator is a pure function of its request history — easy
    to test and replay.  ``advance_to`` must be called with
    non-decreasing times.
    """

    __slots__ = (
        "config",
        "scale",
        "current_mhz",
        "target_mhz",
        "stats",
        "_last_time_ns",
        "_slew_mhz_per_ns",
    )

    def __init__(self, config: MCDConfig, initial_mhz: float | None = None) -> None:
        self.config = config
        self.scale = FrequencyScale(config)
        start = config.max_frequency_mhz if initial_mhz is None else initial_mhz
        self.current_mhz = self.scale.quantize(start)
        self.target_mhz = self.current_mhz
        self.stats = RegulatorStats()
        self._last_time_ns = 0.0
        if config.slew_ns_per_mhz > 0:
            self._slew_mhz_per_ns = 1.0 / config.slew_ns_per_mhz
        else:
            self._slew_mhz_per_ns = float("inf")

    # --- queries -----------------------------------------------------------
    @property
    def state(self) -> RegulatorState:
        """STEADY when the actual frequency has reached the target."""
        if self.current_mhz == self.target_mhz:
            return RegulatorState.STEADY
        return RegulatorState.SLEWING

    @property
    def voltage_v(self) -> float:
        """Instantaneous supply voltage (linear map from frequency)."""
        return self.config.voltage_for_frequency(self.current_mhz)

    @property
    def period_ns(self) -> float:
        """Instantaneous clock period."""
        return 1e3 / self.current_mhz

    # --- commands ----------------------------------------------------------
    def request(self, target_mhz: float) -> float:
        """Set a new target; returns the quantised target actually set.

        Out-of-range requests are clamped to the scale (range checking
        is performed after the Attack/Decay computation, per the paper).
        """
        snapped = self.scale.quantize(target_mhz)
        if snapped != self.target_mhz:
            self.stats.requests += 1
            old_direction = self.target_mhz - self.current_mhz
            new_direction = snapped - self.current_mhz
            if old_direction * new_direction < 0:
                self.stats.direction_changes += 1
            self.target_mhz = snapped
        return snapped

    def snap_to(self, frequency_mhz: float) -> None:
        """Instantaneously set frequency = target = ``frequency_mhz``.

        Used by the off-line algorithm, which pre-requests changes so
        the slew completes exactly at the interval boundary (the paper
        notes the slew rate is not a source of error off-line), and by
        test fixtures.
        """
        snapped = self.scale.quantize(frequency_mhz)
        self.current_mhz = snapped
        self.target_mhz = snapped

    def advance_to(self, time_ns: float) -> float:
        """Ramp toward the target up to ``time_ns``; return the frequency.

        Must be called with non-decreasing times.
        """
        if time_ns < self._last_time_ns - 1e-9:
            raise RegulatorError(
                f"regulator time moved backwards: {time_ns} < {self._last_time_ns}"
            )
        dt = time_ns - self._last_time_ns
        self._last_time_ns = time_ns
        if dt <= 0 or self.current_mhz == self.target_mhz:
            return self.current_mhz
        max_delta = dt * self._slew_mhz_per_ns
        gap = self.target_mhz - self.current_mhz
        if abs(gap) <= max_delta:
            self.current_mhz = self.target_mhz
            self.stats.slewing_time_ns += abs(gap) / self._slew_mhz_per_ns
        else:
            self.current_mhz += max_delta if gap > 0 else -max_delta
            self.stats.slewing_time_ns += dt
        return self.current_mhz
