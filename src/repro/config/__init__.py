"""Configuration for the MCD processor, core microarchitecture and controller.

The three configuration surfaces mirror the paper's tables:

* :class:`~repro.config.mcd.MCDConfig` — Table 1 (domain voltage and
  frequency ranges, slew rate, jitter, synchronization window).
* :class:`~repro.config.processor.ProcessorConfig` — Table 4 (Alpha
  21264-like architectural parameters).
* :class:`~repro.config.algorithm.AttackDecayParams` — Table 2 plus the
  paper's chosen operating point (Section 5).

All configuration objects are frozen dataclasses: validated on
construction, hashable, and safe to share between experiments.
"""

from repro.config.algorithm import (
    ATTACK_DECAY_PARAMETER_RANGES,
    PAPER_OPERATING_POINT,
    AttackDecayParams,
    ParameterRange,
)
from repro.config.mcd import Domain, MCDConfig, CONTROLLED_DOMAINS
from repro.config.processor import ProcessorConfig

__all__ = [
    "ATTACK_DECAY_PARAMETER_RANGES",
    "CONTROLLED_DOMAINS",
    "PAPER_OPERATING_POINT",
    "AttackDecayParams",
    "Domain",
    "MCDConfig",
    "ParameterRange",
    "ProcessorConfig",
]
