"""Architectural parameters of the simulated core (paper Table 4).

The paper models an Alpha 21264-like out-of-order superscalar using
SimpleScalar with the Register Update Unit split into separate reorder
buffer, issue queues and physical register files.  :class:`ProcessorConfig`
captures every row of Table 4 and a handful of substrate parameters the
paper fixes implicitly (memory latency, cache line size).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class ProcessorConfig:
    """Alpha 21264-like architectural parameters (Table 4).

    Branch prediction is the SimpleScalar ``comb`` predictor: a
    two-level predictor and a bimodal predictor arbitrated by a
    combining (meta) predictor, plus a set-associative BTB.
    """

    # --- branch prediction -------------------------------------------------
    bpred_l1_entries: int = 1024
    bpred_history_bits: int = 10
    bpred_l2_entries: int = 1024
    bpred_bimodal_entries: int = 1024
    bpred_combining_entries: int = 4096
    btb_sets: int = 4096
    btb_ways: int = 2
    branch_mispredict_penalty: int = 7

    # --- pipeline widths ---------------------------------------------------
    decode_width: int = 4
    issue_width: int = 6
    retire_width: int = 11

    # --- caches ------------------------------------------------------------
    l1d_kb: int = 64
    l1d_ways: int = 2
    l1i_kb: int = 64
    l1i_ways: int = 2
    l2_kb: int = 1024
    l2_ways: int = 1
    line_bytes: int = 64
    l1_latency_cycles: int = 2
    l2_latency_cycles: int = 12
    memory_latency_ns: float = 80.0

    # --- execution resources ----------------------------------------------
    int_alus: int = 4
    int_mult_div: int = 1
    fp_alus: int = 2
    fp_mult_div_sqrt: int = 1
    load_store_ports: int = 2

    # --- windows / queues ---------------------------------------------------
    int_issue_queue_size: int = 20
    fp_issue_queue_size: int = 15
    load_store_queue_size: int = 64
    int_physical_registers: int = 72
    fp_physical_registers: int = 72
    reorder_buffer_size: int = 80

    # --- operation latencies (domain cycles) --------------------------------
    int_alu_latency: int = 1
    int_mult_latency: int = 7
    int_div_latency: int = 20
    fp_alu_latency: int = 4
    fp_mult_latency: int = 4
    fp_div_latency: int = 12
    fp_sqrt_latency: int = 24

    def __post_init__(self) -> None:
        positive_fields = (
            "bpred_l1_entries",
            "bpred_history_bits",
            "bpred_l2_entries",
            "bpred_bimodal_entries",
            "bpred_combining_entries",
            "btb_sets",
            "btb_ways",
            "decode_width",
            "issue_width",
            "retire_width",
            "l1d_kb",
            "l1d_ways",
            "l1i_kb",
            "l1i_ways",
            "l2_kb",
            "l2_ways",
            "line_bytes",
            "l1_latency_cycles",
            "l2_latency_cycles",
            "int_alus",
            "fp_alus",
            "load_store_ports",
            "int_issue_queue_size",
            "fp_issue_queue_size",
            "load_store_queue_size",
            "int_physical_registers",
            "fp_physical_registers",
            "reorder_buffer_size",
            "int_alu_latency",
            "int_mult_latency",
            "int_div_latency",
            "fp_alu_latency",
            "fp_mult_latency",
            "fp_div_latency",
            "fp_sqrt_latency",
        )
        for name in positive_fields:
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if self.branch_mispredict_penalty < 0:
            raise ConfigError("branch_mispredict_penalty must be non-negative")
        if self.memory_latency_ns <= 0:
            raise ConfigError("memory_latency_ns must be positive")
        if self.int_mult_div < 0 or self.fp_mult_div_sqrt < 0:
            raise ConfigError("multiplier/divider unit counts must be >= 0")
        for kb, ways, label in (
            (self.l1d_kb, self.l1d_ways, "L1D"),
            (self.l1i_kb, self.l1i_ways, "L1I"),
            (self.l2_kb, self.l2_ways, "L2"),
        ):
            lines = kb * 1024 // self.line_bytes
            if lines % ways:
                raise ConfigError(f"{label}: line count not divisible by ways")

    def table4_rows(self) -> list[tuple[str, str]]:
        """Render this configuration as the rows of paper Table 4."""
        return [
            ("Branch predictor: Level 1", f"{self.bpred_l1_entries} entries, history {self.bpred_history_bits}"),
            ("Branch predictor: Level 2", f"{self.bpred_l2_entries} entries"),
            ("Bimodal predictor size", str(self.bpred_bimodal_entries)),
            ("Combining predictor size", str(self.bpred_combining_entries)),
            ("BTB", f"{self.btb_sets} sets, {self.btb_ways}-way"),
            ("Branch Mispredict Penalty", str(self.branch_mispredict_penalty)),
            ("Decode Width", str(self.decode_width)),
            ("Issue Width", str(self.issue_width)),
            ("Retire Width", str(self.retire_width)),
            ("L1 Data Cache", f"{self.l1d_kb}KB, {self.l1d_ways}-way set associative"),
            ("L1 Instruction Cache", f"{self.l1i_kb}KB, {self.l1i_ways}-way set associative"),
            (
                "L2 Unified Cache",
                f"{self.l2_kb // 1024}MB, "
                + ("direct mapped" if self.l2_ways == 1 else f"{self.l2_ways}-way"),
            ),
            ("L1 cache latency", f"{self.l1_latency_cycles} cycles"),
            ("L2 cache latency", f"{self.l2_latency_cycles} cycles"),
            ("Integer ALUs", f"{self.int_alus} + {self.int_mult_div} mult/div unit"),
            ("Floating-Point ALUs", f"{self.fp_alus} + {self.fp_mult_div_sqrt} mult/div/sqrt unit"),
            ("Integer Issue Queue Size", f"{self.int_issue_queue_size} entries"),
            ("Floating-Point Issue Queue Size", f"{self.fp_issue_queue_size} entries"),
            ("Load/Store Queue Size", str(self.load_store_queue_size)),
            (
                "Physical Register File Size",
                f"{self.int_physical_registers} integer, {self.fp_physical_registers} floating-point",
            ),
            ("Reorder Buffer Size", str(self.reorder_buffer_size)),
        ]
