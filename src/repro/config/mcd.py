"""MCD processor configuration (paper Table 1).

The Multiple Clock Domain processor splits the chip into four
independently clocked domains plus the external main-memory domain.
:class:`MCDConfig` carries the electrical parameters of Table 1:

======================  =======================================
Parameter               Value
======================  =======================================
Domain voltage          0.65 V – 1.20 V
Domain frequency        250 MHz – 1.0 GHz
Frequency change rate   49.1 ns/MHz (XScale)
Domain clock jitter     110 ps, normally distributed about zero
Synchronization window  30 % of the 1.0 GHz clock (300 ps)
======================  =======================================

Frequencies are expressed in MHz and times in nanoseconds throughout
the package; voltages in volts.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.errors import ConfigError


class Domain(enum.Enum):
    """The clock domains of the MCD processor (paper Figure 1).

    ``EXTERNAL`` is the main-memory domain: independently clocked but
    not controllable; its frequency and voltage stay at the maximum.
    """

    FRONT_END = "front_end"
    INTEGER = "integer"
    FLOATING_POINT = "floating_point"
    LOAD_STORE = "load_store"
    EXTERNAL = "external"

    @property
    def is_controllable(self) -> bool:
        """Whether a frequency controller may scale this domain.

        The external (main memory) domain is never controllable.  The
        front end is electrically controllable but the paper fixes it
        at 1.0 GHz; that policy decision lives in the controller, not
        here.
        """
        return self is not Domain.EXTERNAL


#: Domains driven by the Attack/Decay controller — every domain that has
#: a decoupling queue at its input (paper Section 3: all but the front
#: end, whose frequency stays fixed, and the external memory domain).
CONTROLLED_DOMAINS = (
    Domain.INTEGER,
    Domain.FLOATING_POINT,
    Domain.LOAD_STORE,
)


@dataclass(frozen=True)
class MCDConfig:
    """Electrical/clocking parameters of the MCD processor (Table 1).

    Parameters
    ----------
    min_frequency_mhz, max_frequency_mhz:
        The legal domain frequency range (250 MHz – 1.0 GHz).
    min_voltage_v, max_voltage_v:
        The legal domain voltage range (0.65 V – 1.20 V); voltage is a
        linear function of frequency across this range (Section 4).
    frequency_points:
        Number of quantised frequency steps spanning the range (the
        paper uses 320, approximating XScale's smooth transitions).
    slew_ns_per_mhz:
        Voltage/frequency transition rate, 49.1 ns per MHz of change.
        The domain continues executing through the change
        (execute-through, XScale model).
    jitter_sigma_ns:
        Standard deviation of per-cycle clock jitter (110 ps), normal,
        zero mean.
    sync_window_ns:
        Sjogren–Myers synchronization window: a source edge and a
        destination edge closer together than this cannot transfer
        data; the destination waits one more cycle (300 ps = 30 % of
        the 1 GHz period).
    mcd_clock_energy_overhead:
        Multiplier on clock-tree energy for the MCD configurations
        (separate PLLs/drivers/grids); the paper assumes +10 % clock
        energy, i.e. 1.10.
    """

    min_frequency_mhz: float = 250.0
    max_frequency_mhz: float = 1000.0
    min_voltage_v: float = 0.65
    max_voltage_v: float = 1.20
    frequency_points: int = 320
    slew_ns_per_mhz: float = 49.1
    jitter_sigma_ns: float = 0.110
    sync_window_ns: float = 0.300
    mcd_clock_energy_overhead: float = 1.10

    def __post_init__(self) -> None:
        if self.min_frequency_mhz <= 0:
            raise ConfigError("min_frequency_mhz must be positive")
        if self.max_frequency_mhz <= self.min_frequency_mhz:
            raise ConfigError("max_frequency_mhz must exceed min_frequency_mhz")
        if self.min_voltage_v <= 0:
            raise ConfigError("min_voltage_v must be positive")
        if self.max_voltage_v <= self.min_voltage_v:
            raise ConfigError("max_voltage_v must exceed min_voltage_v")
        if self.frequency_points < 2:
            raise ConfigError("frequency_points must be at least 2")
        if self.slew_ns_per_mhz < 0:
            raise ConfigError("slew_ns_per_mhz must be non-negative")
        if self.jitter_sigma_ns < 0:
            raise ConfigError("jitter_sigma_ns must be non-negative")
        if self.sync_window_ns < 0:
            raise ConfigError("sync_window_ns must be non-negative")
        if self.mcd_clock_energy_overhead < 1.0:
            raise ConfigError("mcd_clock_energy_overhead must be >= 1.0")

    @property
    def max_period_ns(self) -> float:
        """Clock period at the minimum frequency."""
        return 1e3 / self.min_frequency_mhz

    @property
    def min_period_ns(self) -> float:
        """Clock period at the maximum frequency."""
        return 1e3 / self.max_frequency_mhz

    @property
    def frequency_step_mhz(self) -> float:
        """Spacing between adjacent quantised frequency points."""
        span = self.max_frequency_mhz - self.min_frequency_mhz
        return span / (self.frequency_points - 1)

    def voltage_for_frequency(self, frequency_mhz: float) -> float:
        """Supply voltage for ``frequency_mhz`` (linear map, Section 4).

        Frequencies outside the legal range raise :class:`ConfigError`
        (modulo a small tolerance for floating-point slew arithmetic).
        """
        tol = 1e-9
        if not (
            self.min_frequency_mhz - tol
            <= frequency_mhz
            <= self.max_frequency_mhz + tol
        ):
            raise ConfigError(
                f"frequency {frequency_mhz} MHz outside "
                f"[{self.min_frequency_mhz}, {self.max_frequency_mhz}]"
            )
        span = self.max_frequency_mhz - self.min_frequency_mhz
        fraction = (frequency_mhz - self.min_frequency_mhz) / span
        fraction = min(1.0, max(0.0, fraction))
        return self.min_voltage_v + fraction * (self.max_voltage_v - self.min_voltage_v)

    def quantize_frequency(self, frequency_mhz: float) -> float:
        """Clamp and snap ``frequency_mhz`` to the nearest legal point.

        This mirrors the hardware's 320-point frequency table: any
        requested frequency is first clamped into the legal range and
        then rounded to the nearest quantised step.
        """
        clamped = min(self.max_frequency_mhz, max(self.min_frequency_mhz, frequency_mhz))
        step = self.frequency_step_mhz
        index = round((clamped - self.min_frequency_mhz) / step)
        return self.min_frequency_mhz + index * step

    def is_legal_frequency(self, frequency_mhz: float, tol: float = 1e-6) -> bool:
        """Whether ``frequency_mhz`` sits (within ``tol``) on a legal point."""
        if not (
            self.min_frequency_mhz - tol
            <= frequency_mhz
            <= self.max_frequency_mhz + tol
        ):
            return False
        return math.isclose(
            self.quantize_frequency(frequency_mhz), frequency_mhz, abs_tol=tol
        )

    def slew_time_ns(self, from_mhz: float, to_mhz: float) -> float:
        """Wall-clock time to ramp between two frequencies."""
        return abs(to_mhz - from_mhz) * self.slew_ns_per_mhz

    def table1_rows(self) -> list[tuple[str, str]]:
        """Render this configuration as the rows of paper Table 1."""
        return [
            ("Domain Voltage", f"{self.min_voltage_v:.2f} V - {self.max_voltage_v:.2f} V"),
            (
                "Domain Frequency",
                f"{self.min_frequency_mhz:.0f} MHz - {self.max_frequency_mhz / 1000.0:.1f} GHz",
            ),
            ("Frequency Change Rate", f"{self.slew_ns_per_mhz} ns/MHz"),
            (
                "Domain Clock Jitter",
                f"{self.jitter_sigma_ns * 1e3:.0f}ps, normally distributed about zero",
            ),
            (
                "Synchronization Window",
                f"{self.sync_window_ns / self.min_period_ns * 100:.0f}% of "
                f"{self.max_frequency_mhz / 1000.0:.1f} GHz clock "
                f"({self.sync_window_ns * 1e3:.0f}ps)",
            ),
        ]
