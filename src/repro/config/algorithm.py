"""Attack/Decay controller parameters (paper Table 2 and Section 5).

Table 2 gives the ranges swept in the sensitivity analysis; the chosen
operating point for the headline results (Section 5) is::

    DeviationThreshold = 1.75 %   ReactionChange = 6.0 %
    Decay              = 0.175 %  PerfDegThreshold = 2.5 %

The paper labels configurations in figure legends as
``DDD_RRR_ddd_PPP`` (DeviationThreshold, ReactionChange, Decay,
PerfDegThreshold); :meth:`AttackDecayParams.legend` reproduces that.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator

from repro.errors import ConfigError


@dataclass(frozen=True)
class ParameterRange:
    """A swept parameter range from Table 2 (inclusive bounds)."""

    name: str
    low: float
    high: float
    unit: str = "%"

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ConfigError(f"{self.name}: high < low")

    def contains(self, value: float) -> bool:
        """Whether ``value`` is inside the inclusive range."""
        return self.low <= value <= self.high

    def sweep(self, points: int) -> Iterator[float]:
        """Yield ``points`` evenly spaced values across the range."""
        if points < 1:
            raise ConfigError("sweep requires at least one point")
        if points == 1:
            yield self.low
            return
        step = (self.high - self.low) / (points - 1)
        for i in range(points):
            yield self.low + i * step


#: Table 2 — "Attack/Decay configuration parameters".
ATTACK_DECAY_PARAMETER_RANGES: dict[str, ParameterRange] = {
    "deviation_threshold": ParameterRange("DeviationThreshold", 0.0, 2.5),
    "reaction_change": ParameterRange("ReactionChange", 0.5, 15.5),
    "decay": ParameterRange("Decay", 0.0, 2.0),
    "perf_deg_threshold": ParameterRange("PerfDegThreshold", 0.0, 12.0),
    "endstop_count": ParameterRange("EndstopCount", 1, 25, unit="intervals"),
}


@dataclass(frozen=True)
class AttackDecayParams:
    """Operating point of the Attack/Decay algorithm.

    All percentage parameters are expressed in percent (as in the
    paper's tables), not as fractions: ``reaction_change=6.0`` means a
    6 % period adjustment per attack.

    Parameters
    ----------
    deviation_threshold_pct:
        Relative queue-utilization change that triggers an attack.
    reaction_change_pct:
        Period scale step applied during an attack.
    decay_pct:
        Period scale step applied each interval in decay mode.
    perf_deg_threshold_pct:
        Maximum tolerated interval-to-interval IPC degradation for a
        frequency decrease to proceed (the guard of Listing 1 lines
        19 & 25).
    endstop_intervals:
        Consecutive intervals pinned at a frequency extreme before an
        attack is forced in the opposite direction (paper: 10).
    interval_instructions:
        Control interval length in retired instructions (paper: 10,000;
        the workload catalog scales this together with run length, see
        DESIGN.md substitution #2).
    """

    deviation_threshold_pct: float = 1.75
    reaction_change_pct: float = 6.0
    decay_pct: float = 0.175
    perf_deg_threshold_pct: float = 2.5
    endstop_intervals: int = 10
    interval_instructions: int = 10_000

    def __post_init__(self) -> None:
        if self.deviation_threshold_pct < 0:
            raise ConfigError("deviation_threshold_pct must be >= 0")
        if self.reaction_change_pct <= 0:
            raise ConfigError("reaction_change_pct must be positive")
        if self.decay_pct < 0:
            raise ConfigError("decay_pct must be >= 0")
        if self.perf_deg_threshold_pct < 0:
            raise ConfigError("perf_deg_threshold_pct must be >= 0")
        if self.endstop_intervals < 1:
            raise ConfigError("endstop_intervals must be >= 1")
        if self.interval_instructions < 1:
            raise ConfigError("interval_instructions must be >= 1")

    # Fractions for arithmetic use ------------------------------------------
    @property
    def deviation_threshold(self) -> float:
        """DeviationThreshold as a fraction (1.75 % -> 0.0175)."""
        return self.deviation_threshold_pct / 100.0

    @property
    def reaction_change(self) -> float:
        """ReactionChange as a fraction."""
        return self.reaction_change_pct / 100.0

    @property
    def decay(self) -> float:
        """Decay as a fraction."""
        return self.decay_pct / 100.0

    @property
    def perf_deg_threshold(self) -> float:
        """PerfDegThreshold as a fraction."""
        return self.perf_deg_threshold_pct / 100.0

    def native_values(self) -> dict[str, float | int]:
        """The operating point in fraction form for the C hot loop.

        The native closed-loop controller (:mod:`repro.uarch.native`)
        consumes exactly these registers; keeping the export here means
        a new parameter cannot silently be left behind in Python when
        the marshalling is extended.
        """
        return {
            "deviation_threshold": self.deviation_threshold,
            "reaction_change": self.reaction_change,
            "decay": self.decay,
            "perf_deg_threshold": self.perf_deg_threshold,
            "endstop_intervals": self.endstop_intervals,
        }

    def legend(self) -> str:
        """The paper's four-field legend label, e.g. ``1.750_06.0_0.175_2.5``."""
        return (
            f"{self.deviation_threshold_pct:.3f}_"
            f"{self.reaction_change_pct:04.1f}_"
            f"{self.decay_pct:.3f}_"
            f"{self.perf_deg_threshold_pct:.1f}"
        )

    def with_(self, **changes: float | int) -> "AttackDecayParams":
        """Return a copy with ``changes`` applied (sweep helper)."""
        return replace(self, **changes)

    def validate_against_table2(self) -> None:
        """Raise :class:`ConfigError` if outside the Table 2 sweep ranges."""
        checks = (
            ("deviation_threshold", self.deviation_threshold_pct),
            ("reaction_change", self.reaction_change_pct),
            ("decay", self.decay_pct),
            ("perf_deg_threshold", self.perf_deg_threshold_pct),
            ("endstop_count", self.endstop_intervals),
        )
        for key, value in checks:
            rng = ATTACK_DECAY_PARAMETER_RANGES[key]
            if not rng.contains(value):
                raise ConfigError(
                    f"{rng.name}={value}{rng.unit} outside Table 2 range "
                    f"[{rng.low}, {rng.high}]{rng.unit}"
                )


#: The configuration used for the paper's headline results (Section 5).
PAPER_OPERATING_POINT = AttackDecayParams()

#: The operating point used for this repository's headline runs.  The
#: catalog compresses run lengths ~20-2000x and the control interval
#: ~20x (DESIGN.md substitution #2), which (a) leaves far fewer
#: intervals for the decay to accumulate over and (b) makes the
#: per-interval queue-utilization counter noisier.  Decay and
#: DeviationThreshold are rescaled within their Table 2 sweep ranges to
#: restore the paper's effective decay depth per program phase; the
#: attack step and the performance-degradation guard are unchanged.
SCALED_OPERATING_POINT = AttackDecayParams(
    deviation_threshold_pct=2.5,
    reaction_change_pct=6.0,
    decay_pct=0.8,
    perf_deg_threshold_pct=2.5,
    interval_instructions=500,
)
