"""Declarative scenarios and cross-product suites.

A :class:`Scenario` is plain data — benchmark, configuration name,
seed, scale, parameter overrides — so it can be hashed into a cache
key, sent to a worker process, and stored alongside its result.  A
:class:`Suite` expands the cross-product
``benchmarks x configurations x seeds x overrides`` into the run matrix
the :class:`~repro.experiments.orchestrator.Orchestrator` executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from repro.errors import ExperimentError
from repro.experiments.registry import CONFIGURATIONS
from repro.workloads.catalog import is_known_benchmark


def _freeze_overrides(
    overrides: Mapping[str, object] | Sequence[tuple[str, object]] | None,
) -> tuple[tuple[str, object], ...]:
    """Normalise an overrides mapping to a sorted, hashable tuple."""
    if not overrides:
        return ()
    items = overrides.items() if isinstance(overrides, Mapping) else overrides
    return tuple(sorted((str(k), v) for k, v in items))


@dataclass(frozen=True)
class Scenario:
    """One fully named run of the matrix.

    Parameters
    ----------
    benchmark:
        Catalog name (see :mod:`repro.workloads.catalog`).
    configuration:
        Registry name, possibly parameterised (``"dynamic_5"``,
        ``"global@725.000"``, ``"attack_decay[1.750_06.0_0.175_2.5]"``).
    seed:
        Clock phase/jitter seed; None inherits the executor's default.
    scale:
        Workload length scale; None inherits the executor's default.
    overrides:
        Extra keyword parameters for the configuration factory (e.g.
        ``{"decay_pct": 0.5}`` for ``attack_decay``).  Part of the
        cache identity.
    """

    benchmark: str
    configuration: str
    seed: int | None = None
    scale: float | None = None
    overrides: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "overrides", _freeze_overrides(self.overrides))

    @property
    def run_id(self) -> str:
        """A readable unique label, e.g. ``gsm:attack_decay{decay_pct=0.5}``."""
        label = f"{self.benchmark}:{self.configuration}"
        if self.overrides:
            inner = ",".join(f"{k}={v}" for k, v in self.overrides)
            label += "{" + inner + "}"
        if self.seed is not None:
            label += f"#s{self.seed}"
        return label

    def override_mapping(self) -> dict[str, object]:
        """The overrides as a plain dict (factory kwargs)."""
        return dict(self.overrides)

    def to_dict(self) -> dict:
        """Plain-dict form for JSON round-trips."""
        return {
            "benchmark": self.benchmark,
            "configuration": self.configuration,
            "seed": self.seed,
            "scale": self.scale,
            "overrides": [list(pair) for pair in self.overrides],
        }

    @staticmethod
    def from_dict(data: dict) -> "Scenario":
        """Inverse of :meth:`to_dict`."""
        return Scenario(
            benchmark=data["benchmark"],
            configuration=data["configuration"],
            seed=data.get("seed"),
            scale=data.get("scale"),
            overrides=tuple((k, v) for k, v in data.get("overrides", [])),
        )


@dataclass
class Suite:
    """A declarative run matrix: the cross-product of its axes.

    Parameters
    ----------
    benchmarks:
        Catalog names to cover.
    configurations:
        Registry configuration names.
    seeds:
        Clock seeds (one run per seed).
    overrides:
        Parameter-override sets; each produces its own copy of the
        matrix (``[{}]`` for none).
    scale:
        Workload length scale applied to every scenario (None inherits
        the executor's default).
    name:
        Label used in logs and artifacts.
    """

    benchmarks: Sequence[str]
    configurations: Sequence[str]
    seeds: Sequence[int] = (1,)
    overrides: Sequence[Mapping[str, object]] = field(default_factory=lambda: [{}])
    scale: float | None = None
    name: str = "suite"

    def expand(self) -> list[Scenario]:
        """The full run matrix, validated against catalog and registry.

        Order is deterministic: overrides, then seeds, then benchmarks,
        then configurations, varying fastest on the right.
        """
        if not self.benchmarks:
            raise ExperimentError(f"suite {self.name!r} has no benchmarks")
        if not self.configurations:
            raise ExperimentError(f"suite {self.name!r} has no configurations")
        if not self.seeds:
            raise ExperimentError(f"suite {self.name!r} has no seeds")
        unknown = [b for b in self.benchmarks if not is_known_benchmark(b)]
        if unknown:
            raise ExperimentError(f"unknown benchmarks in suite: {unknown}")
        for configuration in self.configurations:
            CONFIGURATIONS.resolve(configuration)  # raises if unknown
        matrix = []
        for override_set in self.overrides:
            for seed in self.seeds:
                for benchmark in self.benchmarks:
                    for configuration in self.configurations:
                        matrix.append(
                            Scenario(
                                benchmark=benchmark,
                                configuration=configuration,
                                seed=seed,
                                scale=self.scale,
                                overrides=_freeze_overrides(override_set),
                            )
                        )
        return matrix

    def __len__(self) -> int:
        return (
            len(self.benchmarks)
            * len(self.configurations)
            * len(self.seeds)
            * len(self.overrides)
        )

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self.expand())
