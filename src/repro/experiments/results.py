"""Run records, outcomes, and the queryable :class:`ResultSet`.

The orchestrator returns a :class:`ResultSet` — an ordered collection
of per-scenario outcomes with filter/group/aggregate queries — so
reporting, benches and the CLI consume one structured object instead of
hand-rolled nested dicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.errors import ExperimentError
from repro.metrics.aggregate import AggregateResult, aggregate
from repro.metrics.summary import Comparison, RunSummary, compare
from repro.experiments.scenario import Scenario


@dataclass(frozen=True)
class RunRecord:
    """A completed run: its identity and scalar outcome."""

    benchmark: str
    configuration: str
    summary: RunSummary

    def to_dict(self) -> dict:
        """Plain-dict form for the JSON cache."""
        return {
            "benchmark": self.benchmark,
            "configuration": self.configuration,
            "summary": self.summary.to_dict(),
        }

    @staticmethod
    def from_dict(data: dict) -> "RunRecord":
        """Inverse of :meth:`to_dict`."""
        return RunRecord(
            benchmark=data["benchmark"],
            configuration=data["configuration"],
            summary=RunSummary.from_dict(data["summary"]),
        )


@dataclass(frozen=True)
class RunOutcome:
    """One scenario's result: a record on success, an error otherwise."""

    scenario: Scenario
    record: RunRecord | None = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        """Whether the run completed."""
        return self.record is not None

    def to_dict(self) -> dict:
        """Plain-dict form for JSON artifacts."""
        return {
            "scenario": self.scenario.to_dict(),
            "record": self.record.to_dict() if self.record else None,
            "error": self.error,
        }

    @staticmethod
    def from_dict(data: dict) -> "RunOutcome":
        """Inverse of :meth:`to_dict`."""
        record = data.get("record")
        return RunOutcome(
            scenario=Scenario.from_dict(data["scenario"]),
            record=RunRecord.from_dict(record) if record else None,
            error=data.get("error"),
        )


class ResultSet:
    """An ordered, queryable collection of run outcomes."""

    def __init__(self, outcomes: list[RunOutcome]) -> None:
        self.outcomes = list(outcomes)

    # --- basic access -----------------------------------------------------
    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self) -> Iterator[RunOutcome]:
        return iter(self.outcomes)

    @property
    def records(self) -> list[RunRecord]:
        """Records of every successful run, in matrix order."""
        return [o.record for o in self.outcomes if o.record is not None]

    @property
    def errors(self) -> list[RunOutcome]:
        """Outcomes that failed (error isolated per run)."""
        return [o for o in self.outcomes if not o.ok]

    @property
    def benchmarks(self) -> list[str]:
        """Distinct benchmarks, in first-seen order."""
        return list(dict.fromkeys(o.scenario.benchmark for o in self.outcomes))

    @property
    def configurations(self) -> list[str]:
        """Distinct configuration names, in first-seen order."""
        return list(dict.fromkeys(o.scenario.configuration for o in self.outcomes))

    # --- queries ----------------------------------------------------------
    def filter(
        self,
        benchmark: str | None = None,
        configuration: str | None = None,
        seed: int | None = None,
        predicate: Callable[[RunOutcome], bool] | None = None,
    ) -> "ResultSet":
        """A sub-set matching every given criterion."""
        kept = []
        for outcome in self.outcomes:
            s = outcome.scenario
            if benchmark is not None and s.benchmark != benchmark:
                continue
            if configuration is not None and s.configuration != configuration:
                continue
            if seed is not None and s.seed != seed:
                continue
            if predicate is not None and not predicate(outcome):
                continue
            kept.append(outcome)
        return ResultSet(kept)

    def group_by(self, axis: str) -> dict[object, "ResultSet"]:
        """Partition by a scenario field (``"benchmark"``, ``"configuration"``, ``"seed"``)."""
        groups: dict[object, list[RunOutcome]] = {}
        for outcome in self.outcomes:
            key = getattr(outcome.scenario, axis)
            groups.setdefault(key, []).append(outcome)
        return {key: ResultSet(members) for key, members in groups.items()}

    def get(self, benchmark: str, configuration: str) -> RunRecord:
        """The unique successful record for one (benchmark, configuration)."""
        matches = self.filter(benchmark=benchmark, configuration=configuration).records
        if not matches:
            raise ExperimentError(
                f"no completed run for {benchmark}:{configuration}"
            )
        if len(matches) > 1:
            raise ExperimentError(
                f"{len(matches)} runs match {benchmark}:{configuration}; "
                "filter by seed/overrides first"
            )
        return matches[0]

    def summaries(self, configuration: str) -> dict[str, RunSummary]:
        """benchmark -> summary for one configuration's successful runs."""
        return {
            r.benchmark: r.summary
            for r in self.filter(configuration=configuration).records
        }

    def compare(
        self, configuration: str, reference: str
    ) -> dict[str, Comparison]:
        """Per-benchmark comparison of one configuration against another.

        Only benchmarks where both runs completed are included.
        """
        runs = self.summaries(configuration)
        refs = self.summaries(reference)
        return {
            b: compare(runs[b], refs[b]) for b in runs if b in refs
        }

    def aggregate(self, configuration: str, reference: str) -> AggregateResult:
        """Suite-average statistics of a configuration vs a reference."""
        comparisons = self.compare(configuration, reference)
        if not comparisons:
            raise ExperimentError(
                f"no common completed benchmarks between {configuration!r} "
                f"and {reference!r}"
            )
        return aggregate(comparisons)

    # --- serialisation ----------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict form for JSON artifacts."""
        return {"outcomes": [o.to_dict() for o in self.outcomes]}

    @staticmethod
    def from_dict(data: dict) -> "ResultSet":
        """Inverse of :meth:`to_dict`."""
        return ResultSet([RunOutcome.from_dict(o) for o in data["outcomes"]])

    def merged(self, other: "ResultSet") -> "ResultSet":
        """A new set with ``other``'s outcomes appended."""
        return ResultSet(self.outcomes + other.outcomes)
