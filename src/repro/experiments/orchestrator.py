"""Parallel execution of a scenario matrix.

The :class:`Orchestrator` takes a :class:`~repro.experiments.scenario.Suite`
(or a plain scenario list), fans it out across a
:mod:`multiprocessing` worker pool, and collects a
:class:`~repro.experiments.results.ResultSet`.  Properties:

* **Determinism** — simulations are seeded and deterministic, and
  outcomes are returned in matrix order regardless of completion order,
  so parallel and serial execution produce identical result sets.
* **Error isolation** — each run's failure is captured into its
  outcome (with a traceback); the rest of the matrix completes.
* **Shared cache** — workers share the content-addressed on-disk store;
  writes are atomic (:mod:`repro.experiments.cache`), so a re-run hits
  the same keys whichever process computed them.
"""

from __future__ import annotations

import logging
import multiprocessing
import time
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.experiments.executor import (
    ExecutionContext,
    benchmark_scale,
    default_workers,
    execute_scenario,
)
from repro.experiments.results import ResultSet, RunOutcome
from repro.experiments.scenario import Scenario, Suite

logger = logging.getLogger(__name__)


def _pool_entry(args: tuple) -> tuple[int, RunOutcome]:
    """Pool adapter: run one indexed scenario in a worker process."""
    index, scenario, cache_dir, use_cache, scale, seed = args
    return index, execute_scenario(scenario, cache_dir, use_cache, scale, seed)


class Orchestrator:
    """Executes scenario matrices, serially or across worker processes.

    Parameters
    ----------
    workers:
        Process count; 1 (or None with ``REPRO_WORKERS`` unset) runs
        serially in-process.
    cache_dir:
        Result cache location shared by all workers.
    scale:
        Default workload scale for scenarios that leave theirs unset.
    seed:
        Default clock seed.
    use_cache:
        Overrides ``REPRO_CACHE``.
    on_result:
        Optional callback invoked with each :class:`RunOutcome` as it
        completes (progress bars, live tables).
    """

    def __init__(
        self,
        workers: int | None = None,
        cache_dir: Path | str | None = None,
        scale: float | None = None,
        seed: int = 1,
        use_cache: bool | None = None,
        on_result: Callable[[RunOutcome], None] | None = None,
    ) -> None:
        self.workers = default_workers() if workers is None else max(1, workers)
        self.cache_dir = cache_dir
        self.scale = benchmark_scale() if scale is None else scale
        self.seed = seed
        self.use_cache = use_cache
        self.on_result = on_result

    def _context(self) -> ExecutionContext:
        return ExecutionContext(
            cache_dir=self.cache_dir,
            scale=self.scale,
            seed=self.seed,
            use_cache=self.use_cache,
        )

    def run(self, matrix: Suite | Sequence[Scenario]) -> ResultSet:
        """Execute every scenario; returns outcomes in matrix order."""
        scenarios = list(matrix.expand() if isinstance(matrix, Suite) else matrix)
        total = len(scenarios)
        label = matrix.name if isinstance(matrix, Suite) else "matrix"
        logger.info(
            "%s: %d scenario(s) across %d worker(s)", label, total, self.workers
        )
        started = time.perf_counter()
        if self.workers <= 1 or total <= 1:
            outcomes = self._run_serial(scenarios)
        else:
            outcomes = self._run_parallel(scenarios)
        elapsed = time.perf_counter() - started
        failures = sum(1 for o in outcomes if not o.ok)
        logger.info(
            "%s: %d/%d completed (%d failed) in %.1fs",
            label, total - failures, total, failures, elapsed,
        )
        return ResultSet(outcomes)

    # --- execution strategies ---------------------------------------------
    def _announce(self, outcome: RunOutcome, index: int, total: int) -> None:
        status = "ok" if outcome.ok else "FAILED"
        logger.info("[%d/%d] %s %s", index + 1, total, outcome.scenario.run_id, status)
        if not outcome.ok:
            logger.warning(
                "run %s failed:\n%s", outcome.scenario.run_id, outcome.error
            )
        if self.on_result is not None:
            self.on_result(outcome)

    def _run_serial(self, scenarios: Sequence[Scenario]) -> list[RunOutcome]:
        ctx = self._context()
        outcomes = []
        for i, scenario in enumerate(scenarios):
            outcome = ctx.run_isolated(scenario)
            self._announce(outcome, i, len(scenarios))
            outcomes.append(outcome)
        return outcomes

    def _run_parallel(self, scenarios: Sequence[Scenario]) -> list[RunOutcome]:
        cache_dir = str(self.cache_dir) if self.cache_dir is not None else None
        jobs: Iterable[tuple] = [
            (i, s, cache_dir, self.use_cache, self.scale, self.seed)
            for i, s in enumerate(scenarios)
        ]
        # Fork (where available) keeps dynamically registered
        # configurations visible to the workers; spawn would re-import
        # only the built-ins.
        try:
            mp_context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            mp_context = multiprocessing.get_context()
        ordered: list[RunOutcome | None] = [None] * len(scenarios)
        done = 0
        with mp_context.Pool(processes=min(self.workers, len(scenarios))) as pool:
            for index, outcome in pool.imap_unordered(_pool_entry, jobs):
                ordered[index] = outcome
                self._announce(outcome, done, len(scenarios))
                done += 1
        assert all(o is not None for o in ordered)
        return ordered  # type: ignore[return-value]


def run_suite(
    suite: Suite | Sequence[Scenario],
    workers: int | None = None,
    **orchestrator_kwargs,
) -> ResultSet:
    """One-call convenience: orchestrate a suite and return its results."""
    return Orchestrator(workers=workers, **orchestrator_kwargs).run(suite)
