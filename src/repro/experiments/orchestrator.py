"""Parallel execution of a scenario matrix.

The :class:`Orchestrator` takes a :class:`~repro.experiments.scenario.Suite`
(or a plain scenario list), fans it out across a worker backend, and
collects a :class:`~repro.experiments.results.ResultSet`.  Properties:

* **Determinism** — simulations are seeded and deterministic, and
  outcomes are returned in matrix order regardless of completion order,
  so every backend produces identical result sets.
* **Error isolation** — each run's failure is captured into its
  outcome (with a traceback); the rest of the matrix completes.
* **Shared cache** — workers share the content-addressed on-disk store;
  writes are atomic (:mod:`repro.experiments.cache`), so a re-run hits
  the same keys whichever worker computed them.

Backends
--------
``serial``
    Everything in the calling thread; also what a 1-worker or 1-run
    matrix degenerates to.
``thread``
    A :class:`~concurrent.futures.ThreadPoolExecutor` over one shared
    :class:`~repro.experiments.executor.ExecutionContext`.  The native
    hot loop releases the GIL for its compute stage, so runs genuinely
    overlap while sharing the process's compiled-trace cache and the
    write-through result front — no spawn cost, no per-worker npz
    reloads, no registry snapshots.
``process``
    The :mod:`multiprocessing` pool (fork/spawn/forkserver via
    ``start_method``); the right tool when the native loop is
    unavailable and runs would serialise on the GIL.
``auto``
    ``thread`` when the native loop loads, else ``process``; an
    explicit ``start_method`` also forces ``process`` (a thread pool
    has no start method to honour).

Batch cells
-----------
Every backend can execute the matrix in **batch cells** — contiguous
runs of scenarios sharing one ``(benchmark, scale)`` trace identity —
instead of one task per scenario.  A cell rides the native batch entry
point (one GIL release, one warm-up per trace/geometry, one writeback
pass; see :func:`repro.sim.engine.run_specs_batch`), so per-run
dispatch overhead amortises across the cell.  ``batch="auto"`` (the
default, via ``REPRO_BATCH``) sizes cells at roughly
``total / workers`` for pool backends and leaves the serial backend
per-run; an explicit ``--batch N`` applies to every backend.  Cell
boundaries never change results: outcomes are byte-identical to the
per-run paths and still returned in matrix order.

The process backend additionally publishes each unique trace's base
columns in POSIX shared memory before the pool starts
(:mod:`repro.uarch.shared_trace`): workers map the owner's read-only
pages instead of re-reading ``.npz`` stores or regenerating workloads.
Segments are unlinked in a ``finally`` when the sweep ends, with an
``atexit`` guard covering crashed sweeps.

Lifecycle events
----------------
Beside (and back-compatibly alongside) the bare ``on_result``
callback, the orchestrator publishes typed lifecycle events on an
:class:`~repro.execution.bus.EventBus` when one is supplied:
:class:`~repro.execution.events.CellStarted` when a cell is picked up,
then :class:`~repro.execution.events.CellFinished` or
:class:`~repro.execution.events.CellFailed` carrying the full
:class:`RunOutcome`.  The campaign journal checkpoint, the CLI
progress printer, and the ``repro serve`` daemon's job streams are all
plain subscribers — no consumer hand-wires callbacks into the run loop
any more.  Start events are best-effort per backend (the process pool
cannot observe its workers' starts, so it announces start and finish
together on arrival); per cell, started always precedes finished.

Cancellation
------------
Interruption (Ctrl-C, an ``on_result`` hook or event subscriber
raising, or a :class:`~repro.execution.cancel.CancelToken` firing) is
a first-class event, not a crash: the thread backend cancels every
queued future (running ones finish their current simulation), the
process backend terminates and joins its pool, and the shared-memory
segments are unlinked synchronously before the exception propagates.
A cancel token is checked between cells on the serial backend and at
task pickup plus every future completion on the pools, raising
:class:`~repro.execution.cancel.ExecutionCancelled` through the same
cleanup rails as Ctrl-C.  Outcomes already announced stay announced —
a checkpointing caller (:mod:`repro.campaigns`) therefore loses at
most the in-flight runs, which the content-addressed cache makes
idempotent to re-execute.
"""

from __future__ import annotations

import logging
import math
import multiprocessing
import os
import pickle
import time
from concurrent.futures import ThreadPoolExecutor, as_completed
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.errors import ExperimentError
from repro.execution.bus import EventBus
from repro.execution.cancel import CancelToken, ExecutionCancelled
from repro.execution.events import CellFailed, CellFinished, CellStarted
from repro.experiments.executor import (
    ExecutionContext,
    benchmark_scale,
    default_batch,
    default_workers,
    execute_scenario,
    execute_scenario_batch,
    parse_batch,
    parse_workers,
)
from repro.experiments.results import ResultSet, RunOutcome
from repro.experiments.scenario import Scenario, Suite

logger = logging.getLogger(__name__)

#: Recognised orchestrator backends.
BACKENDS = ("auto", "serial", "thread", "process")


def default_backend() -> str:
    """Backend from ``REPRO_BACKEND`` (default ``auto``)."""
    raw = os.environ.get("REPRO_BACKEND", "auto")
    if raw not in BACKENDS:
        raise ExperimentError(
            f"unknown REPRO_BACKEND {raw!r}; expected one of {', '.join(BACKENDS)}"
        )
    return raw


def _pool_entry(args: tuple) -> tuple[int, RunOutcome]:
    """Pool adapter: run one indexed scenario in a worker process."""
    index, scenario, cache_dir, use_cache, scale, seed = args
    return index, execute_scenario(scenario, cache_dir, use_cache, scale, seed)


def _pool_entry_batch(args: tuple) -> tuple[tuple[int, ...], list[RunOutcome]]:
    """Pool adapter: run one batch cell in a worker process.

    ``indices`` are the cell's positions in the original matrix; the
    returned outcome list is parallel to them.
    """
    indices, scenarios, cache_dir, use_cache, scale, seed = args
    return indices, execute_scenario_batch(
        scenarios, cache_dir, use_cache, scale, seed
    )


def _registry_state(require_picklable: bool) -> dict:
    """Snapshot every runtime registration a worker must reproduce.

    Import-time registrations (built-in configurations, the derived
    catalog) re-materialise in any process; this captures what does
    not: workloads registered through
    :func:`~repro.workloads.catalog.register_benchmark` and runtime
    registry additions.  With ``require_picklable`` (spawn/forkserver
    contexts, whose workers receive the snapshot by pickle), entries
    that cannot pickle — e.g. closure factories — are dropped with a
    warning rather than taking the whole pool down; scenarios needing
    them fail individually with a clear unknown-name error.
    """
    from repro.experiments.registry import (
        CLOCKING_MODES,
        CONFIGURATIONS,
        CONTROLLERS,
    )
    from repro.workloads.catalog import runtime_benchmark_snapshot

    state = {
        "benchmarks": runtime_benchmark_snapshot(),
        "configurations": CONFIGURATIONS.snapshot(),
        "controllers": CONTROLLERS.snapshot(),
        "clocking_modes": CLOCKING_MODES.snapshot(),
    }
    if not require_picklable:
        return state

    def picklable(label: str, name: str, value) -> bool:
        try:
            pickle.dumps(value)
            return True
        except Exception:  # noqa: BLE001 - any pickle failure disqualifies
            logger.warning(
                "orchestrator: %s %r cannot pickle; spawn workers will "
                "not see it", label, name,
            )
            return False

    state["benchmarks"] = {
        name: spec
        for name, spec in state["benchmarks"].items()
        if picklable("runtime benchmark", name, spec)
    }
    for key, label in (
        ("configurations", "configuration"),
        ("controllers", "controller"),
        ("clocking_modes", "clocking mode"),
    ):
        state[key] = [
            entry for entry in state[key] if picklable(label, entry[0], entry)
        ]
    return state


def _init_worker(state: dict) -> None:
    """Pool initializer: reproduce the parent's runtime registrations.

    Runs in every worker regardless of start method, so fork and spawn
    contexts execute identical scenario matrices; under fork it is a
    no-op (every name is already present).  Also attaches any
    shared-memory trace segments the owner exported — attach failures
    are logged inside :func:`~repro.uarch.shared_trace
    .install_shared_traces` and fall back to local trace builds.
    """
    import signal

    from repro.experiments.registry import (
        CLOCKING_MODES,
        CONFIGURATIONS,
        CONTROLLERS,
    )
    from repro.uarch.shared_trace import install_shared_traces
    from repro.workloads.catalog import restore_runtime_benchmarks

    # Pool teardown delivers SIGTERM; a forked worker inherits whatever
    # handler the parent installed (the serve daemon maps SIGTERM to
    # KeyboardInterrupt), which would turn every cancel into a worker
    # traceback.  Workers always die silently on terminate.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    restore_runtime_benchmarks(state["benchmarks"])
    CONFIGURATIONS.restore(state["configurations"])
    CONTROLLERS.restore(state["controllers"])
    CLOCKING_MODES.restore(state["clocking_modes"])
    install_shared_traces(state.get("shared_traces"))


class Orchestrator:
    """Executes scenario matrices across a serial/thread/process backend.

    Parameters
    ----------
    workers:
        Worker count (int, decimal string, or ``"auto"`` for all
        cores); 1 (or None with ``REPRO_WORKERS`` unset) runs serially
        in-process.
    cache_dir:
        Result cache location shared by all workers.
    scale:
        Default workload scale for scenarios that leave theirs unset.
    seed:
        Default clock seed.
    use_cache:
        Overrides ``REPRO_CACHE``.
    on_result:
        Optional callback invoked with each :class:`RunOutcome` as it
        completes (progress bars, live tables).
    backend:
        ``"auto"`` (default via ``REPRO_BACKEND``), ``"serial"``,
        ``"thread"`` or ``"process"`` — see the module docstring for
        the trade-offs.  ``auto`` picks threads when the GIL-releasing
        native loop is available and processes otherwise.
    start_method:
        Multiprocessing start method for the process backend
        (``"fork"``, ``"spawn"``, ``"forkserver"``); None defers to
        ``REPRO_START_METHOD``, then to fork where available.  Setting
        it steers an ``auto`` backend to processes.  Every method
        produces identical result sets: workers receive a snapshot of
        runtime-registered benchmarks/configurations through the pool
        initializer, so spawn contexts reproduce fork results instead
        of silently dropping registrations.
    batch:
        Batch-cell size: a positive integer, ``"auto"`` (size cells
        per backend — see the module docstring) or None to defer to
        ``REPRO_BATCH``.  Cells are clamped to the matrix, grouped by
        trace identity, and never change results.
    events:
        Optional :class:`~repro.execution.bus.EventBus` to publish
        lifecycle events on (see the module docstring).  Subscriber
        exceptions cancel the run like Ctrl-C.
    job_id:
        The job name stamped on every published event (the daemon's
        job id; ``"local"`` for direct callers).
    cancel:
        Optional :class:`~repro.execution.cancel.CancelToken`; when it
        fires, the run raises
        :class:`~repro.execution.cancel.ExecutionCancelled` at the
        next preemption point after cleaning up its backend.
    context:
        Optional shared :class:`ExecutionContext` for the serial and
        thread backends (the daemon injects one so every job shares
        one warm result/trace cache and its single-flight dedup).  The
        process backend ignores it — workers build their own contexts
        and share through the on-disk store instead.
    """

    def __init__(
        self,
        workers: int | str | None = None,
        cache_dir: Path | str | None = None,
        scale: float | None = None,
        seed: int = 1,
        use_cache: bool | None = None,
        on_result: Callable[[RunOutcome], None] | None = None,
        backend: str | None = None,
        start_method: str | None = None,
        batch: int | str | None = None,
        events: EventBus | None = None,
        job_id: str = "local",
        cancel: CancelToken | None = None,
        context: ExecutionContext | None = None,
    ) -> None:
        self.workers = (
            default_workers() if workers is None else parse_workers(workers)
        )
        self.cache_dir = cache_dir
        self.scale = benchmark_scale() if scale is None else scale
        self.seed = seed
        self.use_cache = use_cache
        self.on_result = on_result
        self.events = events
        self.job_id = job_id
        self.cancel = cancel
        self.context = context
        if backend is not None and backend not in BACKENDS:
            raise ExperimentError(
                f"unknown backend {backend!r}; expected one of {', '.join(BACKENDS)}"
            )
        # Environment defaults are resolved (and validated) *here*: a
        # bad REPRO_BACKEND/REPRO_START_METHOD/REPRO_BATCH must fail at
        # construction, before any work starts — not as an
        # ExperimentError surfacing from deep inside run().
        self.backend = backend if backend is not None else default_backend()
        self.start_method = start_method
        requested_method = start_method or os.environ.get("REPRO_START_METHOD")
        if requested_method:
            available = multiprocessing.get_all_start_methods()
            if requested_method not in available:
                source = "start method" if start_method else "REPRO_START_METHOD"
                raise ExperimentError(
                    f"unsupported {source} {requested_method!r}; "
                    f"available: {', '.join(available)}"
                )
        self.batch = default_batch() if batch is None else parse_batch(batch)

    def _resolve_backend(self, total: int) -> str:
        """The concrete backend for a ``total``-scenario matrix."""
        requested = self.backend
        if requested == "serial" or self.workers <= 1 or total <= 1:
            return "serial"
        if requested == "auto":
            if self.start_method or os.environ.get("REPRO_START_METHOD"):
                return "process"  # a start method only means processes
            from repro.uarch.native import load_hotpath

            # Threads only pay off when the C loop drops the GIL for
            # its compute stage; otherwise runs would serialise.
            return "thread" if load_hotpath() is not None else "process"
        return requested

    def _resolve_batch(self, total: int, backend: str) -> int:
        """The concrete batch-cell size for this matrix and backend.

        An explicit size (constructor or ``REPRO_BATCH``) applies to
        every backend, clamped to the matrix.  ``auto`` leaves the
        serial backend per-run (streamed announcements, no batching
        latency to hide) and gives pool backends ``ceil(total /
        workers)`` — one cell per worker — capped at 32 so huge
        matrices keep load-balancing granularity.
        """
        if total <= 0:
            return 1
        if self.batch is not None:
            return max(1, min(self.batch, total))
        if backend == "serial":
            return 1
        return max(1, min(math.ceil(total / max(1, self.workers)), 32))

    @staticmethod
    def _batch_cells(
        scenarios: Sequence[Scenario], batch: int
    ) -> list[list[int]]:
        """Matrix indices chunked into trace-coherent batch cells.

        Scenarios are grouped by ``(benchmark, scale)`` — the compiled
        trace's identity — so every cell shares one trace and the
        native batch path warms up once per geometry.  Within a group,
        cells are contiguous slices of at most ``batch`` indices, in
        matrix order; grouping is insertion-ordered, so the chunking
        is deterministic.
        """
        groups: dict[tuple, list[int]] = {}
        for index, scenario in enumerate(scenarios):
            groups.setdefault((scenario.benchmark, scenario.scale), []).append(
                index
            )
        cells: list[list[int]] = []
        for indices in groups.values():
            for start in range(0, len(indices), batch):
                cells.append(indices[start : start + batch])
        return cells

    def _context(self) -> ExecutionContext:
        if self.context is not None:
            return self.context
        return ExecutionContext(
            cache_dir=self.cache_dir,
            scale=self.scale,
            seed=self.seed,
            use_cache=self.use_cache,
        )

    # --- events and cancellation -------------------------------------------
    def _check_cancel(self) -> None:
        """Raise :class:`ExecutionCancelled` if this run's token fired."""
        if self.cancel is not None and self.cancel.cancelled:
            raise ExecutionCancelled(f"job {self.job_id!r} cancelled")

    def _emit_started(self, cell: int, total: int, scenario: Scenario) -> None:
        if self.events is not None:
            self.events.publish(
                CellStarted(
                    job=self.job_id, cell=cell, total=total, run_id=scenario.run_id
                )
            )

    def run(self, matrix: Suite | Sequence[Scenario]) -> ResultSet:
        """Execute every scenario; returns outcomes in matrix order."""
        scenarios = list(matrix.expand() if isinstance(matrix, Suite) else matrix)
        total = len(scenarios)
        label = matrix.name if isinstance(matrix, Suite) else "matrix"
        backend = self._resolve_backend(total)
        batch = self._resolve_batch(total, backend)
        logger.info(
            "%s: %d scenario(s) across %d worker(s) [%s backend, batch %d]",
            label, total, self.workers, backend, batch,
        )
        started = time.perf_counter()
        try:
            if backend == "serial":
                outcomes = self._run_serial(scenarios, batch)
            elif backend == "thread":
                outcomes = self._run_threaded(scenarios, batch)
            else:
                outcomes = self._run_parallel(scenarios, batch)
        except (KeyboardInterrupt, ExecutionCancelled):
            # Workers are already cancelled/terminated by the backend
            # and the shared segments unlinked; announce the
            # interruption and let the caller decide the exit path
            # (the CLI exits 130, campaigns checkpoint and re-raise,
            # the job manager emits a terminal JobCancelled event).
            logger.warning(
                "%s: interrupted after %.1fs; cancelled remaining runs",
                label, time.perf_counter() - started,
            )
            raise
        elapsed = time.perf_counter() - started
        failures = sum(1 for o in outcomes if not o.ok)
        logger.info(
            "%s: %d/%d completed (%d failed) in %.1fs",
            label, total - failures, total, failures, elapsed,
        )
        return ResultSet(outcomes)

    # --- execution strategies ---------------------------------------------
    def _announce(
        self, outcome: RunOutcome, cell: int, done: int, total: int
    ) -> None:
        """Publish one completed cell: log, event stream, callback.

        ``cell`` is the outcome's position in the submitted matrix
        (what events carry); ``done`` is the completion counter (what
        the progress log shows).  Events go out before the legacy
        ``on_result`` callback so a subscriber that checkpoints and a
        callback that prints observe the same order the matrix
        completes in.
        """
        status = "ok" if outcome.ok else "FAILED"
        logger.info("[%d/%d] %s %s", done + 1, total, outcome.scenario.run_id, status)
        if not outcome.ok:
            logger.warning(
                "run %s failed:\n%s", outcome.scenario.run_id, outcome.error
            )
        if self.events is not None:
            cls = CellFinished if outcome.ok else CellFailed
            self.events.publish(
                cls(job=self.job_id, cell=cell, total=total, outcome=outcome)
            )
        if self.on_result is not None:
            self.on_result(outcome)

    def _run_serial(
        self, scenarios: Sequence[Scenario], batch: int = 1
    ) -> list[RunOutcome]:
        ctx = self._context()
        total = len(scenarios)
        if batch <= 1:
            outcomes = []
            for i, scenario in enumerate(scenarios):
                self._check_cancel()
                self._emit_started(i, total, scenario)
                outcome = ctx.run_isolated(scenario)
                self._announce(outcome, i, i, total)
                outcomes.append(outcome)
            return outcomes
        ordered: list[RunOutcome | None] = [None] * total
        done = 0
        for indices in self._batch_cells(scenarios, batch):
            self._check_cancel()
            for index in indices:
                self._emit_started(index, total, scenarios[index])
            cell = ctx.run_batch([scenarios[i] for i in indices])
            for index, outcome in zip(indices, cell):
                ordered[index] = outcome
                self._announce(outcome, index, done, total)
                done += 1
        assert all(o is not None for o in ordered)
        return ordered  # type: ignore[return-value]

    def _run_threaded(
        self, scenarios: Sequence[Scenario], batch: int = 1
    ) -> list[RunOutcome]:
        """Thread-pool backend: one shared context, GIL-free native runs.

        All workers share one :class:`ExecutionContext` — and with it
        the process-wide compiled-trace cache and the write-through
        result front — so a sweep pays each trace load and each cached
        result read once for the whole pool.  ``run_isolated`` captures
        per-run failures, so a future never raises.
        """
        ctx = self._context()
        total = len(scenarios)
        ordered: list[RunOutcome | None] = [None] * total

        def run_one(index: int, scenario: Scenario) -> RunOutcome:
            # Task pickup is a preemption point: once the token fires,
            # every queued cell raises here instead of simulating, and
            # the completion loop's shutdown(cancel_futures=True) drops
            # the rest.
            self._check_cancel()
            self._emit_started(index, total, scenario)
            return ctx.run_isolated(scenario)

        def run_cell(indices: list[int]) -> list[RunOutcome]:
            self._check_cancel()
            for index in indices:
                self._emit_started(index, total, scenarios[index])
            return ctx.run_batch([scenarios[i] for i in indices])

        done = 0
        if batch <= 1:
            with ThreadPoolExecutor(
                max_workers=min(self.workers, total),
                thread_name_prefix="repro-sweep",
            ) as pool:
                try:
                    futures = {
                        pool.submit(run_one, index, scenario): index
                        for index, scenario in enumerate(scenarios)
                    }
                    for future in as_completed(futures):
                        outcome = future.result()
                        ordered[futures[future]] = outcome
                        self._announce(outcome, futures[future], done, total)
                        done += 1
                        self._check_cancel()
                except BaseException:
                    # Ctrl-C (or an on_result hook raising): without
                    # the explicit cancel, the executor's __exit__
                    # would run every queued scenario to completion
                    # before the exception could propagate.
                    pool.shutdown(wait=True, cancel_futures=True)
                    raise
            assert all(o is not None for o in ordered)
            return ordered  # type: ignore[return-value]
        cells = self._batch_cells(scenarios, batch)
        with ThreadPoolExecutor(
            max_workers=min(self.workers, len(cells)),
            thread_name_prefix="repro-sweep",
        ) as pool:
            try:
                futures = {
                    pool.submit(run_cell, indices): indices
                    for indices in cells
                }
                for future in as_completed(futures):
                    for index, outcome in zip(futures[future], future.result()):
                        ordered[index] = outcome
                        self._announce(outcome, index, done, total)
                        done += 1
                    self._check_cancel()
            except BaseException:
                pool.shutdown(wait=True, cancel_futures=True)
                raise
        assert all(o is not None for o in ordered)
        return ordered  # type: ignore[return-value]

    def _mp_context(self):
        """The multiprocessing context honouring the configured method."""
        requested = self.start_method or os.environ.get("REPRO_START_METHOD")
        if requested:
            available = multiprocessing.get_all_start_methods()
            if requested not in available:
                raise ExperimentError(
                    f"unsupported start method {requested!r}; "
                    f"available: {', '.join(available)}"
                )
            return multiprocessing.get_context(requested)
        # Fork (where available) is cheapest: workers inherit compiled
        # traces and registries directly.
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            return multiprocessing.get_context()

    def _export_shared_traces(
        self, scenarios: Sequence[Scenario]
    ) -> tuple[list[dict], list[str]]:
        """Publish every unique trace in the matrix to shared memory.

        Owner-side half of the shared-trace lifecycle: one segment per
        ``(benchmark, scale)``, exported before the pool starts so
        workers map pages instead of rebuilding traces.  Best-effort —
        a benchmark that fails to resolve or export simply ships no
        segment and workers build it locally; the scenario itself
        still runs (and reports its own error if the name is bogus).
        Returns the descriptors to ship and the segment keys to unlink
        when the sweep ends.
        """
        from repro.sim.engine import export_shared_trace
        from repro.workloads.catalog import get_benchmark

        descriptors: list[dict] = []
        seen: set[tuple] = set()
        for scenario in scenarios:
            scale = scenario.scale if scenario.scale is not None else self.scale
            identity = (scenario.benchmark, scale)
            if identity in seen:
                continue
            seen.add(identity)
            try:
                descriptors.append(
                    export_shared_trace(
                        get_benchmark(scenario.benchmark), scale=scale
                    )
                )
            except Exception:  # noqa: BLE001 - export is an optimisation
                logger.debug(
                    "shared-trace export failed for %s (scale %s); workers "
                    "will build locally", scenario.benchmark, scale,
                    exc_info=True,
                )
        return descriptors, [d["key"] for d in descriptors]

    def _run_parallel(
        self, scenarios: Sequence[Scenario], batch: int = 1
    ) -> list[RunOutcome]:
        from repro.uarch.shared_trace import unlink_exported

        cache_dir = str(self.cache_dir) if self.cache_dir is not None else None
        mp_context = self._mp_context()
        # Workers reproduce this process's runtime registrations
        # through the initializer, so every start method sees the same
        # benchmark/configuration namespace (fork used to be the only
        # one that did; spawn silently dropped them).
        state = _registry_state(
            require_picklable=mp_context.get_start_method() != "fork"
        )
        descriptors, shared_keys = self._export_shared_traces(scenarios)
        state["shared_traces"] = descriptors
        total = len(scenarios)
        ordered: list[RunOutcome | None] = [None] * total
        done = 0
        self._check_cancel()
        try:
            if batch <= 1:
                jobs: Iterable[tuple] = [
                    (i, s, cache_dir, self.use_cache, self.scale, self.seed)
                    for i, s in enumerate(scenarios)
                ]
                with mp_context.Pool(
                    processes=min(self.workers, total),
                    initializer=_init_worker,
                    initargs=(state,),
                ) as pool:
                    try:
                        for index, outcome in pool.imap_unordered(
                            _pool_entry, jobs
                        ):
                            # Worker starts are invisible across the
                            # process boundary; announce start and
                            # finish together on arrival so the
                            # per-cell ordering contract holds.
                            self._emit_started(index, total, scenarios[index])
                            ordered[index] = outcome
                            self._announce(outcome, index, done, total)
                            done += 1
                            self._check_cancel()
                    except BaseException:
                        # Ctrl-C or a fired cancel token: kill
                        # in-flight workers now and wait for them —
                        # never strand a pool behind a propagating
                        # interrupt.
                        pool.terminate()
                        pool.join()
                        raise
            else:
                cells = self._batch_cells(scenarios, batch)
                cell_jobs: Iterable[tuple] = [
                    (
                        tuple(indices),
                        [scenarios[i] for i in indices],
                        cache_dir,
                        self.use_cache,
                        self.scale,
                        self.seed,
                    )
                    for indices in cells
                ]
                with mp_context.Pool(
                    processes=min(self.workers, len(cells)),
                    initializer=_init_worker,
                    initargs=(state,),
                ) as pool:
                    try:
                        for indices, outcomes in pool.imap_unordered(
                            _pool_entry_batch, cell_jobs
                        ):
                            for index, outcome in zip(indices, outcomes):
                                self._emit_started(
                                    index, total, scenarios[index]
                                )
                                ordered[index] = outcome
                                self._announce(outcome, index, done, total)
                                done += 1
                            self._check_cancel()
                    except BaseException:
                        pool.terminate()
                        pool.join()
                        raise
        finally:
            # Owner-side unlink: segment names vanish now; worker
            # mappings (if any are somehow still alive) survive until
            # closed.  The atexit guard in repro.uarch.shared_trace
            # covers paths that never reach this finally.
            unlink_exported(shared_keys)
        assert all(o is not None for o in ordered)
        return ordered  # type: ignore[return-value]


def run_suite(
    suite: Suite | Sequence[Scenario],
    workers: int | None = None,
    **orchestrator_kwargs,
) -> ResultSet:
    """One-call convenience: orchestrate a suite and return its results."""
    return Orchestrator(workers=workers, **orchestrator_kwargs).run(suite)
