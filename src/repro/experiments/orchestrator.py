"""Parallel execution of a scenario matrix.

The :class:`Orchestrator` takes a :class:`~repro.experiments.scenario.Suite`
(or a plain scenario list), fans it out across a
:mod:`multiprocessing` worker pool, and collects a
:class:`~repro.experiments.results.ResultSet`.  Properties:

* **Determinism** — simulations are seeded and deterministic, and
  outcomes are returned in matrix order regardless of completion order,
  so parallel and serial execution produce identical result sets.
* **Error isolation** — each run's failure is captured into its
  outcome (with a traceback); the rest of the matrix completes.
* **Shared cache** — workers share the content-addressed on-disk store;
  writes are atomic (:mod:`repro.experiments.cache`), so a re-run hits
  the same keys whichever process computed them.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import pickle
import time
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.errors import ExperimentError
from repro.experiments.executor import (
    ExecutionContext,
    benchmark_scale,
    default_workers,
    execute_scenario,
)
from repro.experiments.results import ResultSet, RunOutcome
from repro.experiments.scenario import Scenario, Suite

logger = logging.getLogger(__name__)


def _pool_entry(args: tuple) -> tuple[int, RunOutcome]:
    """Pool adapter: run one indexed scenario in a worker process."""
    index, scenario, cache_dir, use_cache, scale, seed = args
    return index, execute_scenario(scenario, cache_dir, use_cache, scale, seed)


def _registry_state(require_picklable: bool) -> dict:
    """Snapshot every runtime registration a worker must reproduce.

    Import-time registrations (built-in configurations, the derived
    catalog) re-materialise in any process; this captures what does
    not: workloads registered through
    :func:`~repro.workloads.catalog.register_benchmark` and runtime
    registry additions.  With ``require_picklable`` (spawn/forkserver
    contexts, whose workers receive the snapshot by pickle), entries
    that cannot pickle — e.g. closure factories — are dropped with a
    warning rather than taking the whole pool down; scenarios needing
    them fail individually with a clear unknown-name error.
    """
    from repro.experiments.registry import (
        CLOCKING_MODES,
        CONFIGURATIONS,
        CONTROLLERS,
    )
    from repro.workloads.catalog import runtime_benchmark_snapshot

    state = {
        "benchmarks": runtime_benchmark_snapshot(),
        "configurations": CONFIGURATIONS.snapshot(),
        "controllers": CONTROLLERS.snapshot(),
        "clocking_modes": CLOCKING_MODES.snapshot(),
    }
    if not require_picklable:
        return state

    def picklable(label: str, name: str, value) -> bool:
        try:
            pickle.dumps(value)
            return True
        except Exception:  # noqa: BLE001 - any pickle failure disqualifies
            logger.warning(
                "orchestrator: %s %r cannot pickle; spawn workers will "
                "not see it", label, name,
            )
            return False

    state["benchmarks"] = {
        name: spec
        for name, spec in state["benchmarks"].items()
        if picklable("runtime benchmark", name, spec)
    }
    for key, label in (
        ("configurations", "configuration"),
        ("controllers", "controller"),
        ("clocking_modes", "clocking mode"),
    ):
        state[key] = [
            entry for entry in state[key] if picklable(label, entry[0], entry)
        ]
    return state


def _init_worker(state: dict) -> None:
    """Pool initializer: reproduce the parent's runtime registrations.

    Runs in every worker regardless of start method, so fork and spawn
    contexts execute identical scenario matrices; under fork it is a
    no-op (every name is already present).
    """
    from repro.experiments.registry import (
        CLOCKING_MODES,
        CONFIGURATIONS,
        CONTROLLERS,
    )
    from repro.workloads.catalog import restore_runtime_benchmarks

    restore_runtime_benchmarks(state["benchmarks"])
    CONFIGURATIONS.restore(state["configurations"])
    CONTROLLERS.restore(state["controllers"])
    CLOCKING_MODES.restore(state["clocking_modes"])


class Orchestrator:
    """Executes scenario matrices, serially or across worker processes.

    Parameters
    ----------
    workers:
        Process count; 1 (or None with ``REPRO_WORKERS`` unset) runs
        serially in-process.
    cache_dir:
        Result cache location shared by all workers.
    scale:
        Default workload scale for scenarios that leave theirs unset.
    seed:
        Default clock seed.
    use_cache:
        Overrides ``REPRO_CACHE``.
    on_result:
        Optional callback invoked with each :class:`RunOutcome` as it
        completes (progress bars, live tables).
    start_method:
        Multiprocessing start method for the worker pool (``"fork"``,
        ``"spawn"``, ``"forkserver"``); None defers to
        ``REPRO_START_METHOD``, then to fork where available.  Every
        method produces identical result sets: workers receive a
        snapshot of runtime-registered benchmarks/configurations
        through the pool initializer, so spawn contexts reproduce fork
        results instead of silently dropping registrations.
    """

    def __init__(
        self,
        workers: int | None = None,
        cache_dir: Path | str | None = None,
        scale: float | None = None,
        seed: int = 1,
        use_cache: bool | None = None,
        on_result: Callable[[RunOutcome], None] | None = None,
        start_method: str | None = None,
    ) -> None:
        self.workers = default_workers() if workers is None else max(1, workers)
        self.cache_dir = cache_dir
        self.scale = benchmark_scale() if scale is None else scale
        self.seed = seed
        self.use_cache = use_cache
        self.on_result = on_result
        self.start_method = start_method

    def _context(self) -> ExecutionContext:
        return ExecutionContext(
            cache_dir=self.cache_dir,
            scale=self.scale,
            seed=self.seed,
            use_cache=self.use_cache,
        )

    def run(self, matrix: Suite | Sequence[Scenario]) -> ResultSet:
        """Execute every scenario; returns outcomes in matrix order."""
        scenarios = list(matrix.expand() if isinstance(matrix, Suite) else matrix)
        total = len(scenarios)
        label = matrix.name if isinstance(matrix, Suite) else "matrix"
        logger.info(
            "%s: %d scenario(s) across %d worker(s)", label, total, self.workers
        )
        started = time.perf_counter()
        if self.workers <= 1 or total <= 1:
            outcomes = self._run_serial(scenarios)
        else:
            outcomes = self._run_parallel(scenarios)
        elapsed = time.perf_counter() - started
        failures = sum(1 for o in outcomes if not o.ok)
        logger.info(
            "%s: %d/%d completed (%d failed) in %.1fs",
            label, total - failures, total, failures, elapsed,
        )
        return ResultSet(outcomes)

    # --- execution strategies ---------------------------------------------
    def _announce(self, outcome: RunOutcome, index: int, total: int) -> None:
        status = "ok" if outcome.ok else "FAILED"
        logger.info("[%d/%d] %s %s", index + 1, total, outcome.scenario.run_id, status)
        if not outcome.ok:
            logger.warning(
                "run %s failed:\n%s", outcome.scenario.run_id, outcome.error
            )
        if self.on_result is not None:
            self.on_result(outcome)

    def _run_serial(self, scenarios: Sequence[Scenario]) -> list[RunOutcome]:
        ctx = self._context()
        outcomes = []
        for i, scenario in enumerate(scenarios):
            outcome = ctx.run_isolated(scenario)
            self._announce(outcome, i, len(scenarios))
            outcomes.append(outcome)
        return outcomes

    def _mp_context(self):
        """The multiprocessing context honouring the configured method."""
        requested = self.start_method or os.environ.get("REPRO_START_METHOD")
        if requested:
            available = multiprocessing.get_all_start_methods()
            if requested not in available:
                raise ExperimentError(
                    f"unsupported start method {requested!r}; "
                    f"available: {', '.join(available)}"
                )
            return multiprocessing.get_context(requested)
        # Fork (where available) is cheapest: workers inherit compiled
        # traces and registries directly.
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            return multiprocessing.get_context()

    def _run_parallel(self, scenarios: Sequence[Scenario]) -> list[RunOutcome]:
        cache_dir = str(self.cache_dir) if self.cache_dir is not None else None
        jobs: Iterable[tuple] = [
            (i, s, cache_dir, self.use_cache, self.scale, self.seed)
            for i, s in enumerate(scenarios)
        ]
        mp_context = self._mp_context()
        # Workers reproduce this process's runtime registrations
        # through the initializer, so every start method sees the same
        # benchmark/configuration namespace (fork used to be the only
        # one that did; spawn silently dropped them).
        state = _registry_state(
            require_picklable=mp_context.get_start_method() != "fork"
        )
        ordered: list[RunOutcome | None] = [None] * len(scenarios)
        done = 0
        with mp_context.Pool(
            processes=min(self.workers, len(scenarios)),
            initializer=_init_worker,
            initargs=(state,),
        ) as pool:
            for index, outcome in pool.imap_unordered(_pool_entry, jobs):
                ordered[index] = outcome
                self._announce(outcome, done, len(scenarios))
                done += 1
        assert all(o is not None for o in ordered)
        return ordered  # type: ignore[return-value]


def run_suite(
    suite: Suite | Sequence[Scenario],
    workers: int | None = None,
    **orchestrator_kwargs,
) -> ResultSet:
    """One-call convenience: orchestrate a suite and return its results."""
    return Orchestrator(workers=workers, **orchestrator_kwargs).run(suite)
