"""Built-in registry entries: the paper's configuration vocabulary.

Importing this module (which :mod:`repro.experiments` does) populates
the registries with every configuration of Table 6 / Figures 4-7:

* ``sync`` — fully synchronous processor, everything at 1 GHz;
* ``mcd_base`` — baseline MCD processor, all domains at 1 GHz;
* ``attack_decay`` — MCD + the on-line controller, optionally
  parameterised by the paper's legend label
  (``attack_decay[1.750_06.0_0.175_2.5]``, ``[literal]`` suffix for the
  literal Listing 1 variant) and/or per-field overrides;
* ``dynamic_<pct>`` — MCD + the off-line schedule iterated against a
  degradation target (``dynamic_1``, ``dynamic_5``);
* ``global@<mhz>`` — fully synchronous processor at one reduced global
  frequency with memory latency tracking the clock.

Clocking modes (``sync``/``mcd``/``global``) and controller factories
(``none``/``attack_decay``/``fixed``/``global_dvfs``/
``offline_profiler``) are registered alongside so custom configurations
can be composed from named pieces.
"""

from __future__ import annotations

import re

from repro.config.algorithm import AttackDecayParams
from repro.config.mcd import MCDConfig
from repro.control.attack_decay import AttackDecayController
from repro.control.fixed import FixedFrequencyController
from repro.control.global_dvfs import GlobalDVFSController
from repro.control.offline import (
    OfflineController,
    OfflineProfiler,
    build_offline_schedule,
)
from repro.experiments.registry import (
    CLOCKING_MODES,
    register_clocking_mode,
    register_configuration,
    register_controller,
)
from repro.metrics.summary import RunSummary, summarize
from repro.sim.engine import SimulationSpec, run_spec


# --- clocking modes --------------------------------------------------------
@register_clocking_mode("sync")
def sync_clocking() -> dict:
    """Fully synchronous: one chip-wide clock."""
    return {"mcd": False}


@register_clocking_mode("mcd")
def mcd_clocking() -> dict:
    """Multiple clock domains (GALS), independently clocked."""
    return {"mcd": True}


@register_clocking_mode("global")
def global_clocking() -> dict:
    """Global DVFS: synchronous with memory latency tracking the clock."""
    return {"mcd": False, "memory_tracks_global": True}


# --- controllers -----------------------------------------------------------
@register_controller("none")
def no_controller():
    """No controller: frequencies stay at their initial values."""
    return None


@register_controller("attack_decay")
def attack_decay_controller(
    params: AttackDecayParams | None = None,
    literal_listing: bool = False,
    **fields: float | int,
) -> AttackDecayController:
    """The paper's on-line Attack/Decay controller.

    ``fields`` are :class:`~repro.config.algorithm.AttackDecayParams`
    overrides applied on top of ``params`` (default operating point
    when omitted).
    """
    params = params if params is not None else AttackDecayParams()
    if fields:
        params = params.with_(**fields)
    return AttackDecayController(params, literal_listing=literal_listing)


@register_controller("fixed")
def fixed_controller(frequencies_mhz=None) -> FixedFrequencyController:
    """Pins per-domain frequencies for the whole run."""
    return FixedFrequencyController(frequencies_mhz)


@register_controller("global_dvfs")
def global_dvfs_controller(frequency_mhz: float) -> GlobalDVFSController:
    """Scales all four on-chip domains to one common frequency."""
    return GlobalDVFSController(frequency_mhz)


@register_controller("offline_profiler")
def offline_profiler_controller() -> OfflineProfiler:
    """Passive profiling pass for the off-line Dynamic algorithm."""
    return OfflineProfiler()


# --- configurations --------------------------------------------------------
@register_configuration("sync")
def sync_configuration(ctx, benchmark: str, scale: float, seed: int) -> SimulationSpec:
    """Fully synchronous processor at maximum frequency."""
    return SimulationSpec(
        benchmark=benchmark, scale=scale, seed=seed, **CLOCKING_MODES.get("sync")()
    )


@register_configuration("mcd_base")
def mcd_base_configuration(
    ctx, benchmark: str, scale: float, seed: int
) -> SimulationSpec:
    """Baseline MCD processor (all domains at maximum)."""
    return SimulationSpec(
        benchmark=benchmark, scale=scale, seed=seed, **CLOCKING_MODES.get("mcd")()
    )


#: Legend-labelled names: ``attack_decay[1.750_06.0_0.175_2.5][literal]``.
_ATTACK_DECAY_NAME = re.compile(
    r"^attack_decay\[(\d+\.\d+)_(\d+\.\d+)_(\d+\.\d+)_(\d+\.\d+)\](\[literal\])?$"
)


def _parse_attack_decay(name: str) -> dict | None:
    """Parse a legend-labelled ``attack_decay[...]`` configuration name."""
    match = _ATTACK_DECAY_NAME.match(name)
    if match is None:
        return None
    params: dict = {
        "deviation_threshold_pct": float(match.group(1)),
        "reaction_change_pct": float(match.group(2)),
        "decay_pct": float(match.group(3)),
        "perf_deg_threshold_pct": float(match.group(4)),
    }
    if match.group(5):
        params["literal_listing"] = True
    return params


@register_configuration("attack_decay", parse=_parse_attack_decay)
def attack_decay_configuration(
    ctx,
    benchmark: str,
    scale: float,
    seed: int,
    literal_listing: bool = False,
    **fields: float | int,
) -> SimulationSpec:
    """MCD processor under the Attack/Decay controller.

    ``fields`` override individual
    :class:`~repro.config.algorithm.AttackDecayParams` values (legend
    fields come pre-parsed from the configuration name).
    """
    controller = attack_decay_controller(
        literal_listing=literal_listing, **fields
    )
    return SimulationSpec(
        benchmark=benchmark,
        controller=controller,
        scale=scale,
        seed=seed,
        **CLOCKING_MODES.get("mcd")(),
    )


def attack_decay_scenario(
    benchmark: str,
    params: AttackDecayParams | None = None,
    literal_listing: bool = False,
    seed: int | None = None,
    scale: float | None = None,
):
    """Encode an Attack/Decay operating point as a registry scenario.

    The four legend fields go into the configuration name (the paper's
    labelling); anything the legend's fixed-precision format cannot
    represent exactly — a fractional sweep value, plus the non-legend
    fields (``endstop_intervals``, ``interval_instructions``) — travels
    as overrides, which win over the parsed name at execution time and
    are part of the cache identity.  The scenario therefore always runs
    the *exact* operating point given.
    """
    from repro.experiments.scenario import Scenario

    params = params if params is not None else AttackDecayParams()
    name = f"attack_decay[{params.legend()}]"
    if literal_listing:
        name += "[literal]"
    parsed = _parse_attack_decay(name)
    defaults = AttackDecayParams()
    overrides: dict[str, float | int] = {
        field: getattr(params, field)
        for field in (
            "deviation_threshold_pct",
            "reaction_change_pct",
            "decay_pct",
            "perf_deg_threshold_pct",
        )
        if parsed[field] != getattr(params, field)
    }
    overrides.update(
        {
            field: getattr(params, field)
            for field in ("endstop_intervals", "interval_instructions")
            if getattr(params, field) != getattr(defaults, field)
        }
    )
    return Scenario(benchmark, name, seed=seed, scale=scale, overrides=overrides)


_DYNAMIC_NAME = re.compile(r"^dynamic_(\d+(?:\.\d+)?)$")


def _parse_dynamic(name: str) -> dict | None:
    """Parse a ``dynamic_<pct>`` configuration name."""
    match = _DYNAMIC_NAME.match(name)
    if match is None:
        return None
    return {"target_pct": float(match.group(1))}


@register_configuration("dynamic_<pct>", parse=_parse_dynamic)
def dynamic_configuration(
    ctx,
    benchmark: str,
    scale: float,
    seed: int,
    target_pct: float,
    iterations: int = 3,
) -> RunSummary:
    """The off-line algorithm at a degradation target (1 % or 5 %).

    Profiles the benchmark at maximum frequencies, builds the
    demand-based per-interval schedule, and iterates the schedule's
    aggressiveness against *measured* degradation (relative to the
    baseline MCD processor) — the off-line algorithm's whole point is
    that it may re-analyse the complete run until its dilation budget
    is met.  Returns the best run's summary directly (a multi-run
    search, not a single spec).
    """
    profile = ctx.profile(benchmark, scale=scale, seed=seed)
    base = ctx.summary(benchmark, "mcd_base", scale=scale, seed=seed)
    target = target_pct / 100.0
    lam = 1.0
    best: RunSummary | None = None
    best_err = float("inf")
    for _ in range(max(1, iterations)):
        schedule = build_offline_schedule(
            profile, MCDConfig(), target_pct, aggressiveness=lam
        )
        spec = SimulationSpec(
            benchmark=benchmark,
            controller=OfflineController(schedule),
            scale=scale,
            seed=seed,
            **CLOCKING_MODES.get("mcd")(),
        )
        summary = summarize(run_spec(spec))
        deg = summary.wall_time_ns / base.wall_time_ns - 1.0
        err = abs(deg - target)
        if err < best_err:
            best, best_err = summary, err
        if err <= 0.3 * target + 0.002:
            break
        if deg <= 0.0:
            lam = min(lam * 1.8, 3.0)
        else:
            lam = min(3.0, max(0.1, lam * (target / deg) ** 0.7))
    assert best is not None
    return best


_GLOBAL_NAME = re.compile(r"^global@(\d+(?:\.\d+)?)$")


def _parse_global(name: str) -> dict | None:
    """Parse a ``global@<mhz>`` configuration name."""
    match = _GLOBAL_NAME.match(name)
    if match is None:
        return None
    return {"frequency_mhz": float(match.group(1))}


@register_configuration("global@<mhz>", parse=_parse_global)
def global_configuration(
    ctx, benchmark: str, scale: float, seed: int, frequency_mhz: float
) -> SimulationSpec:
    """Fully synchronous processor at one global frequency.

    Memory latency tracks the global clock (constant in processor
    cycles): the paper's global-DVFS behaviour, see
    :class:`~repro.sim.engine.SimulationSpec`.
    """
    return SimulationSpec(
        benchmark=benchmark,
        global_frequency_mhz=frequency_mhz,
        scale=scale,
        seed=seed,
        **CLOCKING_MODES.get("global")(),
    )
