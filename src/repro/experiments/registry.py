"""Decorator-based registries for the scenario API.

Three registries name the pluggable pieces of an experiment:

* :data:`CONFIGURATIONS` — full run-level factories.  An entry maps a
  configuration name (``"sync"``, ``"attack_decay"``, ``"dynamic_1"``,
  ``"global@640.000"``) to a factory called as
  ``factory(ctx, benchmark, **params)`` that returns either a
  :class:`~repro.sim.engine.SimulationSpec` (the common case) or a
  finished :class:`~repro.metrics.summary.RunSummary` (for
  configurations that search over several runs, e.g. the off-line
  Dynamic algorithm).
* :data:`CONTROLLERS` — frequency-controller factories by name,
  ``factory(**params) -> FrequencyController | None``.
* :data:`CLOCKING_MODES` — named clocking styles mapping to the
  :class:`~repro.sim.engine.SimulationSpec` keyword arguments that
  select them.

Entries may register a *parser* so parameterised names resolve too:
``dynamic_5`` or ``global@725.000`` match a pattern entry and yield the
parsed parameters.  Registering the same name twice raises
:class:`~repro.errors.ExperimentError`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.errors import ExperimentError

#: A parser: maps a requested name to factory kwargs, or None on no match.
NameParser = Callable[[str], dict | None]


class Registry:
    """A named mapping from strings to factories, with pattern support.

    Parameters
    ----------
    kind:
        Human-readable noun for error messages (``"configuration"``).
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, Callable] = {}
        self._parsers: dict[str, NameParser] = {}

    def register(
        self, name: str, *, parse: NameParser | None = None
    ) -> Callable[[Callable], Callable]:
        """Decorator registering ``factory`` under ``name``.

        ``parse`` optionally makes the entry match a family of names
        (e.g. ``dynamic_<pct>``): it receives the requested name and
        returns the factory kwargs it encodes, or None if the name is
        not of this entry's form.
        """

        def decorator(factory: Callable) -> Callable:
            if name in self._entries:
                raise ExperimentError(
                    f"duplicate {self.kind} name {name!r} in registry"
                )
            self._entries[name] = factory
            if parse is not None:
                self._parsers[name] = parse
            return factory

        return decorator

    def unregister(self, name: str) -> None:
        """Remove an entry (test hook); unknown names are ignored."""
        self._entries.pop(name, None)
        self._parsers.pop(name, None)

    def get(self, name: str) -> Callable:
        """The factory registered under exactly ``name``."""
        try:
            return self._entries[name]
        except KeyError:
            raise ExperimentError(
                f"unknown {self.kind} {name!r}; known: {', '.join(self.names())}"
            ) from None

    def resolve(self, name: str) -> tuple[Callable, dict[str, Any]]:
        """Resolve ``name`` to ``(factory, parsed_params)``.

        Exact names win; otherwise every pattern entry's parser is
        tried.  Raises :class:`~repro.errors.ExperimentError` when
        nothing matches.
        """
        if name in self._entries:
            return self._entries[name], {}
        for entry_name, parser in self._parsers.items():
            params = parser(name)
            if params is not None:
                return self._entries[entry_name], params
        raise ExperimentError(
            f"unknown {self.kind} {name!r}; known: {', '.join(self.names())}"
        )

    def names(self) -> list[str]:
        """All registered names, sorted."""
        return sorted(self._entries)

    def snapshot(self) -> list[tuple[str, Callable, NameParser | None]]:
        """Every entry as ``(name, factory, parser)`` triples.

        Used by the orchestrator to ship runtime registrations to
        worker processes whose start method does not inherit this
        process's state (spawn/forkserver).
        """
        return [
            (name, factory, self._parsers.get(name))
            for name, factory in self._entries.items()
        ]

    def restore(
        self, entries: list[tuple[str, Callable, NameParser | None]]
    ) -> None:
        """Merge snapshot ``entries``, skipping names already present.

        Import-time registrations re-run in every process, so a worker
        already has the built-ins; only the parent's *runtime*
        additions are actually missing.  Present names win (the worker
        re-imported the same module the parent did), which also makes
        the restore idempotent under fork.
        """
        for name, factory, parser in entries:
            if name in self._entries:
                continue
            self._entries[name] = factory
            if parser is not None:
                self._parsers[name] = parser

    def __contains__(self, name: str) -> bool:
        try:
            self.resolve(name)
        except ExperimentError:
            return False
        return True

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._entries))

    def __len__(self) -> int:
        return len(self._entries)


#: Run-level configuration factories (the paper's vocabulary).
CONFIGURATIONS = Registry("configuration")

#: Frequency-controller factories by name.
CONTROLLERS = Registry("controller")

#: Named clocking styles -> SimulationSpec keyword arguments.
CLOCKING_MODES = Registry("clocking mode")


def register_configuration(
    name: str, *, parse: NameParser | None = None
) -> Callable[[Callable], Callable]:
    """Register a run-level configuration factory (decorator)."""
    return CONFIGURATIONS.register(name, parse=parse)


def register_controller(name: str) -> Callable[[Callable], Callable]:
    """Register a frequency-controller factory (decorator)."""
    return CONTROLLERS.register(name)


def register_clocking_mode(name: str) -> Callable[[Callable], Callable]:
    """Register a clocking mode (decorator over a spec-kwargs factory)."""
    return CLOCKING_MODES.register(name)


def configuration_names() -> list[str]:
    """Names of every registered configuration (pattern templates included)."""
    return CONFIGURATIONS.names()
