"""Content-addressed on-disk result cache.

Every simulation outcome is stored as one small JSON file named by the
SHA-1 of its identity payload (benchmark, configuration, scale, seed,
overrides, cache version).  Writes go to a temporary file in the same
directory and are published with :func:`os.replace`, so concurrent
orchestrator workers can never leave a truncated entry behind — the
worst case under a crash is a stray ``*.tmp`` file, never a corrupt
``*.json``.  Unreadable entries are treated as misses and logged.
"""

from __future__ import annotations

import hashlib
import json
import logging
from pathlib import Path

from repro.concurrency import LockedLRU
from repro.errors import ExperimentError
from repro.ioutil import atomic_write, sweep_stale_tmp

#: Bump when a change invalidates previously cached results.  The
#: compiled-trace store joins this version into its own keys (see
#: :func:`repro.sim.engine.compiled_trace_for`), so bumping it also
#: invalidates every compiled trace.
#: v4: registry-driven scenario API — keys now include overrides.
#: (The compiled-trace fast path introduced alongside CACHE_VERSION 4
#: is byte-identical to the generator path, so it does not bump.)
CACHE_VERSION = 4

#: Default cache location, shared by every runner and orchestrator.
DEFAULT_CACHE_DIR = Path(__file__).resolve().parents[3] / "results" / "cache"

logger = logging.getLogger(__name__)


class CacheStore:
    """A concurrency-safe JSON store keyed by content hash.

    Parameters
    ----------
    directory:
        Where entries live; created on first store.
    enabled:
        When False every load misses and every store is a no-op
        (the ``REPRO_CACHE=0`` behaviour).
    memory_entries:
        Size of the optional write-through in-memory front (0 disables
        it, the default).  With a front, ``store`` publishes to memory
        *and* atomically to disk, and ``load`` serves recent keys
        without a file read — this is how thread-pool sweep workers
        share results inside one process while the on-disk store keeps
        its cross-process/cross-session role.  The front is
        thread-safe and LRU-bounded; callers must treat returned
        payloads as read-only (every repo consumer immediately
        converts them to records).
    """

    def __init__(
        self,
        directory: Path | str | None = None,
        enabled: bool = True,
        memory_entries: int = 0,
    ) -> None:
        self.directory = (
            Path(directory) if directory is not None else DEFAULT_CACHE_DIR
        )
        self.enabled = enabled
        self._memory = LockedLRU(memory_entries)
        if enabled:
            # Crashed writers leave ``*.tmp`` siblings behind; reap the
            # stale ones (age-gated, so live writers are untouched).
            sweep_stale_tmp(self.directory)

    @property
    def memory_entries(self) -> int:
        """Capacity of the write-through memory front (0 = disabled)."""
        return self._memory.entries

    def key(self, payload: dict) -> str:
        """Content-address a JSON-serialisable identity payload.

        Raises :class:`~repro.errors.ExperimentError` for payloads that
        are not JSON-serialisable.  This is deliberate: stringifying
        unknown values (``default=str``) would silently merge any two
        values with equal ``str()`` — e.g. a custom object and its repr
        — into one cache identity, serving one configuration the other
        one's results.  A loud error turns that lossy collision into a
        fixable bug in the payload builder.
        """
        try:
            text = json.dumps({"v": CACHE_VERSION, **payload}, sort_keys=True)
        except (TypeError, ValueError) as exc:
            raise ExperimentError(
                f"cache identity payload is not JSON-serialisable ({exc}); "
                "convert values to JSON-native types before keying"
            ) from None
        return hashlib.sha1(text.encode()).hexdigest()[:20]

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def load(self, key: str) -> dict | None:
        """The stored payload for ``key``, or None on miss.

        A present-but-unreadable entry (truncated file, wrong schema)
        counts as a miss and is logged at WARNING.
        """
        if not self.enabled:
            return None
        cached = self._memory.get(key)
        if cached is not None:
            return cached
        path = self._path(key)
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None
        except (OSError, UnicodeDecodeError) as exc:
            # UnicodeDecodeError: binary garbage where JSON should be
            # (bit rot, a crashed writer on a non-atomic filesystem).
            logger.warning("cache entry %s unreadable (%s); treating as miss", path, exc)
            return None
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            logger.warning("cache entry %s corrupt (%s); treating as miss", path, exc)
            return None
        if not isinstance(data, dict):
            logger.warning("cache entry %s has wrong shape; treating as miss", path)
            return None
        self._memory.put(key, data)
        return data

    def store(self, key: str, payload: dict) -> None:
        """Atomically persist ``payload`` under ``key``.

        The payload is serialised to a temporary file in the cache
        directory and renamed into place, so readers (including other
        worker processes) only ever observe complete entries.
        """
        if not self.enabled:
            return
        text = json.dumps(payload, indent=1, sort_keys=True)
        with atomic_write(self._path(key), "w") as handle:
            handle.write(text)
        self._memory.put(key, payload)
