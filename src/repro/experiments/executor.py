"""Scenario execution: registry resolution, caching, environment knobs.

:class:`ExecutionContext` is the single place a scenario becomes a
simulation: it resolves the configuration name through the registry,
checks the content-addressed cache, runs the spec, and stores the
outcome.  One context lives per process — orchestrator workers each
build their own and share results through the on-disk cache (whose
writes are atomic, see :mod:`repro.experiments.cache`).

Environment knobs
-----------------
``REPRO_SCALE``
    Scales all workload lengths (e.g. 0.2 for quick iterations).
``REPRO_BENCHMARKS``
    Comma-separated subset of the catalog.
``REPRO_CACHE``
    Set to ``0`` to disable the on-disk cache.
``REPRO_WORKERS``
    Default worker count for the orchestrator (``auto`` = all cores).
``REPRO_BACKEND``
    Default orchestrator backend (``auto``/``thread``/``process``/
    ``serial``; see :mod:`repro.experiments.orchestrator`).
``REPRO_BATCH``
    Default sweep batch-cell size (``auto`` or a positive integer;
    see ``Orchestrator._resolve_batch``).
"""

from __future__ import annotations

import os
import threading
import traceback
from pathlib import Path

from repro.concurrency import SingleFlight
from repro.errors import ExperimentError
from repro.experiments.cache import CacheStore
from repro.experiments.registry import CONFIGURATIONS
from repro.experiments.results import RunOutcome, RunRecord
from repro.experiments.scenario import Scenario
from repro.metrics.summary import RunSummary, summarize
from repro.sim.engine import SimulationSpec, run_spec
from repro.workloads.catalog import BENCHMARKS, get_benchmark, is_known_benchmark


def _runtime_workload_identity(name: str) -> dict | None:
    """Content identity for runtime-registered workloads, else None.

    Catalog and derived-catalog benchmarks are pure functions of the
    code, so their *names* identify them and cached results stay valid
    across processes.  A runtime registration
    (:func:`~repro.workloads.catalog.register_benchmark` with
    ``replace=True``, e.g. an ETF import) can bind different traces to
    the same name over time — its trace payload (phase script or
    column checksum) must therefore join the result-cache key, or a
    re-registration would be served the previous trace's numbers.
    """
    if name in BENCHMARKS:
        return None
    from repro.workloads.derived import DERIVED_BENCHMARKS

    if name in DERIVED_BENCHMARKS:
        return None
    try:
        spec = get_benchmark(name)
    except Exception:  # unknown name: let execution surface the error
        return None
    return spec.trace_payload()


def benchmark_scale() -> float:
    """The workload length scale from ``REPRO_SCALE`` (default 1.0)."""
    raw = os.environ.get("REPRO_SCALE", "1.0")
    try:
        scale = float(raw)
    except ValueError:
        raise ExperimentError(
            f"malformed REPRO_SCALE {raw!r}: expected a number"
        ) from None
    if scale <= 0:
        raise ExperimentError(f"REPRO_SCALE must be positive, got {raw!r}")
    return scale


def quick_benchmarks(default: list[str] | None = None) -> list[str]:
    """Benchmark subset from ``REPRO_BENCHMARKS`` (default: all)."""
    env = os.environ.get("REPRO_BENCHMARKS")
    if env:
        names = [n.strip() for n in env.split(",") if n.strip()]
        if not names:
            raise ExperimentError(
                f"malformed REPRO_BENCHMARKS {env!r}: no benchmark names"
            )
        unknown = [n for n in names if not is_known_benchmark(n)]
        if unknown:
            raise ExperimentError(
                f"unknown benchmarks in REPRO_BENCHMARKS={env!r}: {unknown}"
            )
        return names
    return default if default is not None else list(BENCHMARKS)


def cache_enabled() -> bool:
    """Whether the on-disk cache is enabled (``REPRO_CACHE`` != 0)."""
    return os.environ.get("REPRO_CACHE", "1") != "0"


def parse_workers(raw: int | str | None, source: str = "workers") -> int:
    """Resolve a worker-count setting to a concrete positive integer.

    Accepts an int, a decimal string, or ``"auto"`` (all cores, i.e.
    ``os.cpu_count()``); None means 1 (serial).  ``source`` names the
    knob in error messages (``REPRO_WORKERS``, ``--workers``, ...).
    """
    if raw is None:
        return 1
    if isinstance(raw, int):
        return max(1, raw)
    text = str(raw).strip()
    if text.lower() == "auto":
        return max(1, os.cpu_count() or 1)
    try:
        workers = int(text)
    except ValueError:
        raise ExperimentError(
            f"malformed {source} {raw!r}: expected an integer or 'auto'"
        ) from None
    return max(1, workers)


def default_workers() -> int:
    """Worker count from ``REPRO_WORKERS`` (default 1: serial).

    ``REPRO_WORKERS=auto`` resolves to the machine's core count
    instead of silently running serially.
    """
    return parse_workers(os.environ.get("REPRO_WORKERS", "1"), "REPRO_WORKERS")


def parse_batch(raw: int | str | None, source: str = "batch") -> int | None:
    """Resolve a batch-size setting to a positive integer or None.

    ``None``/``"auto"`` return None — the orchestrator then sizes batch
    cells per backend (see ``Orchestrator._resolve_batch``).  Anything
    else must be a positive integer; ``source`` names the knob in
    error messages (``REPRO_BATCH``, ``--batch``, ...).
    """
    if raw is None:
        return None
    if not isinstance(raw, int):
        text = str(raw).strip()
        if text.lower() == "auto":
            return None
        try:
            raw = int(text)
        except ValueError:
            raise ExperimentError(
                f"malformed {source} {text!r}: expected a positive integer or 'auto'"
            ) from None
    if raw < 1:
        raise ExperimentError(f"{source} must be >= 1, got {raw!r}")
    return raw


def default_batch() -> int | None:
    """Batch size from ``REPRO_BATCH`` (default ``auto``: per-backend)."""
    return parse_batch(os.environ.get("REPRO_BATCH", "auto"), "REPRO_BATCH")


#: Write-through memory front on each context's result store: results
#: computed by any thread of a thread-pool sweep are immediately
#: visible to the others without a disk read (entries are small result
#: dicts, so the bound is generous).
RESULT_MEMORY_ENTRIES = 4096


class ExecutionContext:
    """Runs scenarios through the registry with caching.

    A context is thread-safe and deliberately shared by every worker of
    the orchestrator's thread backend: the result store has a
    write-through in-memory front, and the profiling memo is
    single-flighted so concurrent scenarios needing one profile compute
    it once.

    Parameters
    ----------
    cache_dir:
        Where JSON results live; created on demand.
    scale:
        Default workload length scale; defaults to ``REPRO_SCALE``.
    seed:
        Default clock phase/jitter seed for scenarios that leave
        theirs unset.
    use_cache:
        Overrides ``REPRO_CACHE``.
    dedup:
        Single-flight identical scenario requests (the multi-tenant
        daemon's mode): when two callers — typically two concurrent
        jobs sharing this context — ask for the same scenario while
        neither result is cached yet, exactly one executes and the
        other waits on it, then reads the result back through the
        shared :class:`CacheStore` memory front.  With the cache
        disabled the arbitration still serialises concurrent
        duplicates (each waiter re-builds in turn, since nothing is
        published to share).  Dedup trades the native batch entry for
        per-run execution — see :meth:`run_batch`.
    """

    def __init__(
        self,
        cache_dir: Path | str | None = None,
        scale: float | None = None,
        seed: int = 1,
        use_cache: bool | None = None,
        dedup: bool = False,
    ) -> None:
        self.scale = benchmark_scale() if scale is None else scale
        self.seed = seed
        enabled = cache_enabled() if use_cache is None else use_cache
        self.cache = CacheStore(
            cache_dir, enabled=enabled, memory_entries=RESULT_MEMORY_ENTRIES
        )
        self.dedup = dedup
        #: How many scenario results this context actually computed
        #: (builds) vs served from another caller's in-flight or cached
        #: work (hits).  Only meaningful with ``dedup=True``; the serve
        #: daemon surfaces them on ``/healthz``.
        self.dedup_builds = 0
        self.dedup_hits = 0
        self._dedup_stats_lock = threading.Lock()
        self._results_flight = SingleFlight()
        self._profiles: dict[tuple[str, float, int], object] = {}
        self._profiles_flight = SingleFlight()

    # --- effective scenario parameters ------------------------------------
    def effective_scale(self, scenario: Scenario) -> float:
        """The scenario's scale, or this context's default."""
        return self.scale if scenario.scale is None else scenario.scale

    def effective_seed(self, scenario: Scenario) -> int:
        """The scenario's seed, or this context's default."""
        return self.seed if scenario.seed is None else scenario.seed

    def cache_key(self, scenario: Scenario) -> str:
        """The content-addressed cache key of one scenario.

        For catalog/derived benchmarks the name is the identity; a
        runtime-registered workload additionally contributes its trace
        payload (see :func:`_runtime_workload_identity`).
        """
        payload = {
            "benchmark": scenario.benchmark,
            "configuration": scenario.configuration,
            "scale": self.effective_scale(scenario),
            "seed": self.effective_seed(scenario),
            "overrides": [list(pair) for pair in scenario.overrides],
        }
        workload = _runtime_workload_identity(scenario.benchmark)
        if workload is not None:
            payload["workload"] = workload
        return self.cache.key(payload)

    # --- execution ---------------------------------------------------------
    def _produce(self, scenario: Scenario):
        """Resolve one scenario: ``(key, cached RunRecord | factory product)``.

        A cache hit short-circuits as a :class:`RunRecord` (factories
        never return one, so the type disambiguates); otherwise the
        configuration factory's product — a
        :class:`~repro.sim.engine.SimulationSpec` to execute or an
        already-computed :class:`~repro.metrics.summary.RunSummary` —
        comes back for the caller to run.
        """
        key = self.cache_key(scenario)
        cached = self.cache.load(key)
        if cached is not None:
            try:
                return key, RunRecord.from_dict(cached)
            except (KeyError, TypeError):
                pass  # wrong shape: recompute below
        factory, parsed = CONFIGURATIONS.resolve(scenario.configuration)
        params = {**parsed, **scenario.override_mapping()}
        produced = factory(
            self,
            scenario.benchmark,
            scale=self.effective_scale(scenario),
            seed=self.effective_seed(scenario),
            **params,
        )
        return key, produced

    def _complete(self, scenario: Scenario, key: str, summary: RunSummary) -> RunRecord:
        """Store and return one computed scenario result."""
        record = RunRecord(
            benchmark=scenario.benchmark,
            configuration=scenario.configuration,
            summary=summary,
        )
        self.cache.store(key, record.to_dict())
        return record

    def run(self, scenario: Scenario) -> RunRecord:
        """Execute one scenario (or load it from the cache).

        The configuration factory receives this context, the benchmark
        name, and the merged parsed-name/override parameters; it
        returns either a :class:`~repro.sim.engine.SimulationSpec` to
        run or an already-computed
        :class:`~repro.metrics.summary.RunSummary` (multi-run searches
        such as ``dynamic_*``).

        Under ``dedup=True`` the execution is single-flighted on the
        scenario's cache key: concurrent identical requests elect one
        builder, the rest wait and load the stored result.
        """
        if not self.dedup:
            return self._run_direct(scenario)

        def lookup():
            cached = self.cache.load(key)
            if cached is None:
                return None
            try:
                return RunRecord.from_dict(cached)
            except (KeyError, TypeError):
                return None  # wrong shape: let the builder recompute

        key = self.cache_key(scenario)
        # publish is a no-op: _run_direct already stores through
        # self.cache, which is exactly where waiters' lookup reads.
        record, hit = self._results_flight.run(
            key, lookup, lambda: self._run_direct(scenario), lambda value: None
        )
        with self._dedup_stats_lock:
            if hit:
                self.dedup_hits += 1
            else:
                self.dedup_builds += 1
        return record

    def _run_direct(self, scenario: Scenario) -> RunRecord:
        """The un-arbitrated execution path behind :meth:`run`."""
        key, produced = self._produce(scenario)
        if isinstance(produced, RunRecord):
            return produced
        if isinstance(produced, SimulationSpec):
            summary = summarize(run_spec(produced))
        elif isinstance(produced, RunSummary):
            summary = produced
        else:
            raise ExperimentError(
                f"configuration {scenario.configuration!r} returned "
                f"{type(produced).__name__}; expected SimulationSpec or RunSummary"
            )
        return self._complete(scenario, key, summary)

    def run_isolated(self, scenario: Scenario) -> RunOutcome:
        """Execute one scenario, capturing any failure as an outcome."""
        try:
            return RunOutcome(scenario=scenario, record=self.run(scenario))
        except Exception:
            return RunOutcome(scenario=scenario, error=traceback.format_exc())

    def run_batch(self, scenarios: list[Scenario]) -> list[RunOutcome]:
        """Execute a cell of scenarios, batching the native-path specs.

        Semantics match ``[self.run_isolated(s) for s in scenarios]``
        byte for byte: cache hits short-circuit, non-spec products
        (multi-run searches returning a ``RunSummary``) complete
        per scenario, and each failure is captured as that scenario's
        outcome, never the cell's.  Every scenario whose factory
        produced a :class:`~repro.sim.engine.SimulationSpec` joins one
        :func:`~repro.sim.engine.run_specs_batch` vector — one native
        entry, one GIL release and shared warm-up for the whole cell.

        Under ``dedup=True`` the batch degrades to the per-run loop:
        single-flight arbitration is per scenario, and letting a
        duplicate hide inside a batch vector would defeat it.  The
        semantics are byte-identical either way (see above).
        """
        if self.dedup:
            return [self.run_isolated(s) for s in scenarios]
        outcomes: list[RunOutcome | None] = [None] * len(scenarios)
        pending: list[tuple[int, Scenario, str, SimulationSpec]] = []
        for i, scenario in enumerate(scenarios):
            try:
                key, produced = self._produce(scenario)
                if isinstance(produced, RunRecord):
                    outcomes[i] = RunOutcome(scenario=scenario, record=produced)
                elif isinstance(produced, SimulationSpec):
                    pending.append((i, scenario, key, produced))
                elif isinstance(produced, RunSummary):
                    outcomes[i] = RunOutcome(
                        scenario=scenario,
                        record=self._complete(scenario, key, produced),
                    )
                else:
                    raise ExperimentError(
                        f"configuration {scenario.configuration!r} returned "
                        f"{type(produced).__name__}; expected SimulationSpec "
                        "or RunSummary"
                    )
            except Exception:
                outcomes[i] = RunOutcome(scenario=scenario, error=traceback.format_exc())
        if pending:
            from repro.sim.engine import run_specs_batch

            results = None
            try:
                results = run_specs_batch([spec for _, _, _, spec in pending])
            except Exception:
                # A failing spec aborts the whole batch vector; re-run
                # the cell per run below so only the failing scenario
                # records an error outcome.
                pass
            for j, (i, scenario, key, spec) in enumerate(pending):
                try:
                    result = results[j] if results is not None else run_spec(spec)
                    outcomes[i] = RunOutcome(
                        scenario=scenario,
                        record=self._complete(scenario, key, summarize(result)),
                    )
                except Exception:
                    outcomes[i] = RunOutcome(
                        scenario=scenario, error=traceback.format_exc()
                    )
        return outcomes

    def summary(
        self,
        benchmark: str,
        configuration: str,
        scale: float | None = None,
        seed: int | None = None,
    ) -> RunSummary:
        """Convenience: the summary of ``configuration`` on ``benchmark``.

        Configuration factories use this for auxiliary cached runs
        (baselines, references); scale/seed default to this context's.
        """
        return self.run(
            Scenario(benchmark, configuration, scale=scale, seed=seed)
        ).summary

    def profile(
        self, benchmark: str, scale: float | None = None, seed: int | None = None
    ):
        """Profile a benchmark at maximum frequencies (memoised).

        The profile drives the off-line Dynamic schedules; one
        profiling run per (benchmark, scale, seed) per context, even
        under the thread backend — concurrent callers for one key wait
        on the first thread's profiling run and share its result.
        """
        from repro.control.offline import OfflineProfiler

        scale = self.scale if scale is None else scale
        seed = self.seed if seed is None else seed
        key = (benchmark, scale, seed)

        def build():
            profiler = OfflineProfiler()
            spec = SimulationSpec(
                benchmark=benchmark,
                mcd=True,
                controller=profiler,
                scale=scale,
                seed=seed,
            )
            run_spec(spec)
            return profiler.profile

        profile, _ = self._profiles_flight.run(
            key, lambda: self._profiles.get(key), build,
            lambda value: self._profiles.setdefault(key, value),
        )
        return profile


#: Per-process context reuse, so a pool worker keeps its in-memory
#: memoisations (off-line profiles) across the scenarios it executes.
_WORKER_CONTEXTS: dict[tuple, ExecutionContext] = {}


def execute_scenario(
    scenario: Scenario,
    cache_dir: str | None,
    use_cache: bool | None,
    scale: float,
    seed: int,
) -> RunOutcome:
    """Worker entry point: run one scenario in this process's context.

    Module-level (picklable) so :mod:`multiprocessing` pools can map
    over the run matrix; every failure is captured into the outcome so
    one bad run never takes the pool down.  Contexts are memoised per
    (cache_dir, use_cache, scale, seed) so a worker recomputes
    profiling runs at most once, not once per scenario.
    """
    return _worker_context(cache_dir, use_cache, scale, seed).run_isolated(scenario)


def execute_scenario_batch(
    scenarios: list[Scenario],
    cache_dir: str | None,
    use_cache: bool | None,
    scale: float,
    seed: int,
) -> list[RunOutcome]:
    """Worker entry point: run one batch cell in this process's context.

    The batched sibling of :func:`execute_scenario` — one pool task per
    cell instead of one per scenario, so a sweep's pickling and
    dispatch overhead scales with the number of cells.
    """
    return _worker_context(cache_dir, use_cache, scale, seed).run_batch(scenarios)


def _worker_context(
    cache_dir: str | None,
    use_cache: bool | None,
    scale: float,
    seed: int,
) -> ExecutionContext:
    """This process's memoised context for the given knobs."""
    key = (cache_dir, use_cache, scale, seed)
    ctx = _WORKER_CONTEXTS.get(key)
    if ctx is None:
        ctx = _WORKER_CONTEXTS[key] = ExecutionContext(
            cache_dir=cache_dir, scale=scale, seed=seed, use_cache=use_cache
        )
    return ctx
