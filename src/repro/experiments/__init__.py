"""Registry-driven scenario API and parallel experiment orchestration.

The paper's evaluation is a cross-product of benchmarks x processor
configurations x controller settings.  This package names each axis and
executes the product:

* :mod:`~repro.experiments.registry` — decorator registries for
  configurations, controllers and clocking modes;
* :mod:`~repro.experiments.builtins` — the paper's configuration
  vocabulary (``sync``, ``mcd_base``, ``attack_decay``,
  ``dynamic_<pct>``, ``global@<mhz>``), registered on import;
* :mod:`~repro.experiments.scenario` — declarative
  :class:`Scenario`/:class:`Suite` matrices;
* :mod:`~repro.experiments.orchestrator` — serial/thread/process
  execution backends with per-run error isolation and a shared atomic
  cache (threads ride the GIL-releasing native hot loop);
* :mod:`~repro.experiments.results` — the queryable :class:`ResultSet`.

Quick start::

    from repro.experiments import Orchestrator, Suite

    suite = Suite(
        benchmarks=["adpcm", "gsm"],
        configurations=["sync", "mcd_base", "attack_decay"],
    )
    results = Orchestrator(workers=4).run(suite)
    print(results.aggregate("attack_decay", reference="mcd_base"))
"""

from repro.experiments.cache import CACHE_VERSION, DEFAULT_CACHE_DIR, CacheStore
from repro.experiments.executor import (
    ExecutionContext,
    benchmark_scale,
    cache_enabled,
    default_workers,
    execute_scenario,
    parse_workers,
    quick_benchmarks,
)
from repro.experiments.orchestrator import (
    BACKENDS,
    Orchestrator,
    default_backend,
    run_suite,
)
from repro.experiments.registry import (
    CLOCKING_MODES,
    CONFIGURATIONS,
    CONTROLLERS,
    Registry,
    configuration_names,
    register_clocking_mode,
    register_configuration,
    register_controller,
)
from repro.experiments.results import ResultSet, RunOutcome, RunRecord
from repro.experiments.scenario import Scenario, Suite

import repro.experiments.builtins  # noqa: F401  (populates the registries)

__all__ = [
    "BACKENDS",
    "CACHE_VERSION",
    "CLOCKING_MODES",
    "CONFIGURATIONS",
    "CONTROLLERS",
    "CacheStore",
    "DEFAULT_CACHE_DIR",
    "ExecutionContext",
    "Orchestrator",
    "Registry",
    "ResultSet",
    "RunOutcome",
    "RunRecord",
    "Scenario",
    "Suite",
    "benchmark_scale",
    "cache_enabled",
    "configuration_names",
    "default_backend",
    "default_workers",
    "execute_scenario",
    "parse_workers",
    "quick_benchmarks",
    "register_clocking_mode",
    "register_configuration",
    "register_controller",
    "run_suite",
]
