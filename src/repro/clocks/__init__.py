"""Clock-domain substrate: jitter, per-domain clocks, synchronization.

The MCD simulator tracks the relationship among domain clocks on a
cycle-by-cycle basis (paper Section 4): each domain's next edge time is
its previous edge time plus the (possibly slewing) period plus a jitter
sample drawn from N(0, 110 ps).  Inter-domain transfers respect the
Sjogren–Myers synchronization window: an edge pair closer than 300 ps
cannot transfer data and costs one extra destination cycle.
"""

from repro.clocks.domain_clock import DomainClock
from repro.clocks.jitter import GaussianJitter, JitterModel, NoJitter
from repro.clocks.synchronizer import Synchronizer, SynchronizerStats

__all__ = [
    "DomainClock",
    "GaussianJitter",
    "JitterModel",
    "NoJitter",
    "Synchronizer",
    "SynchronizerStats",
]
