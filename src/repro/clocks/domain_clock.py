"""A single clock domain's clock with cycle-by-cycle edge tracking.

Following the paper's clocking scheme (Section 4): the time of the next
clock pulse is the previous pulse time plus the domain cycle time plus
that cycle's jitter sample.  All clock starting times are randomised at
reset (phase offsets), so the relationship among the edges of different
domains is tracked exactly by simply advancing each clock.
"""

from __future__ import annotations

import math

from repro.clocks.jitter import JitterModel, NoJitter
from repro.errors import ClockError

#: Lower bound on the effective cycle time so jitter can never make
#: time stand still or run backwards, whatever the configuration.
_MIN_EFFECTIVE_PERIOD_NS = 1e-6


class DomainClock:
    """An independently clocked domain's clock.

    The clock exposes the time of its *pending* edge
    (:attr:`next_edge_ns`).  The simulator repeatedly picks the domain
    with the earliest pending edge, performs that domain's work for the
    cycle, then calls :meth:`advance` to schedule the following edge.

    The period may be changed between edges (by a DVFS regulator);
    the change takes effect for the next scheduled edge, which is how
    the XScale execute-through model behaves.

    Parameters
    ----------
    name:
        Diagnostic label.
    frequency_mhz:
        Initial frequency.
    jitter:
        Per-cycle jitter source; defaults to no jitter.
    phase_ns:
        Starting time of the first edge (the paper randomises these).
    """

    __slots__ = ("name", "period_ns", "next_edge_ns", "cycle_index", "_jitter")

    def __init__(
        self,
        name: str,
        frequency_mhz: float,
        jitter: JitterModel | None = None,
        phase_ns: float = 0.0,
    ) -> None:
        if frequency_mhz <= 0:
            raise ClockError("frequency_mhz must be positive")
        if phase_ns < 0:
            raise ClockError("phase_ns must be non-negative")
        self.name = name
        self.period_ns = 1e3 / frequency_mhz
        self.next_edge_ns = phase_ns
        self.cycle_index = 0
        self._jitter = jitter if jitter is not None else NoJitter()

    # --- frequency ---------------------------------------------------------
    @property
    def frequency_mhz(self) -> float:
        """Current frequency implied by the period."""
        return 1e3 / self.period_ns

    @property
    def jitter(self) -> JitterModel:
        """This clock's jitter source.

        The core's batched fast path draws samples from it directly
        (one per inlined edge, exactly as :meth:`advance` would), so
        both simulation paths consume the same seeded stream.
        """
        return self._jitter

    def set_frequency(self, frequency_mhz: float) -> None:
        """Change the frequency; effective from the next scheduled edge."""
        if frequency_mhz <= 0:
            raise ClockError("frequency_mhz must be positive")
        self.period_ns = 1e3 / frequency_mhz

    # --- edges ---------------------------------------------------------------
    def advance(self) -> float:
        """Consume the pending edge; schedule and return the next one.

        Returns the new pending edge time (ns).
        """
        step = self.period_ns + self._jitter.sample()
        if step < _MIN_EFFECTIVE_PERIOD_NS:
            step = _MIN_EFFECTIVE_PERIOD_NS
        self.next_edge_ns += step
        self.cycle_index += 1
        return self.next_edge_ns

    def skip_idle_until(self, time_ns: float) -> int:
        """Advance an *idle* domain's clock to the first edge >= ``time_ns``.

        Bulk-advances without drawing jitter samples: when a domain is
        idle nothing crosses its boundary, so per-edge jitter is
        unobservable and skipping it preserves every measurable
        quantity while keeping long idle stretches cheap.  Returns the
        number of cycles skipped.
        """
        if time_ns <= self.next_edge_ns:
            return 0
        missing = time_ns - self.next_edge_ns
        cycles = math.ceil(missing / self.period_ns)
        self.next_edge_ns += cycles * self.period_ns
        self.cycle_index += cycles
        return cycles
