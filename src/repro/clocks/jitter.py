"""Per-cycle clock jitter models.

The paper models independent jitter per domain per cycle, normally
distributed with zero mean and a 110 ps standard deviation (100 ps from
the external PLL plus 10 ps internal).  Jitter samples are drawn from a
seeded stream so simulations are reproducible; samples are generated in
blocks with numpy for speed and handed out one at a time.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np


class JitterModel(Protocol):
    """A source of per-cycle jitter samples (nanoseconds)."""

    def sample(self) -> float:
        """Return the jitter for the next clock cycle, in ns."""
        ...


class NoJitter:
    """Jitter-free clock (used by the fully synchronous baseline)."""

    def sample(self) -> float:
        """Always zero."""
        return 0.0


class GaussianJitter:
    """Zero-mean normal jitter, N(0, sigma), drawn from a seeded stream.

    Parameters
    ----------
    sigma_ns:
        Standard deviation in nanoseconds (paper: 0.110).
    seed:
        Seed for the underlying generator; independent clocks should
        use distinct seeds.
    block:
        Number of samples drawn per refill.  Larger blocks amortise
        numpy call overhead in the simulator's hot loop.
    clip_sigmas:
        Samples are clipped to ±``clip_sigmas``·sigma so a pathological
        tail draw can never make time run backwards for realistic
        periods (a 3-sigma clip at 110 ps is ±330 ps, well under the
        1 ns minimum period).
    """

    def __init__(
        self,
        sigma_ns: float,
        seed: int = 0,
        block: int = 16384,
        clip_sigmas: float = 3.0,
    ) -> None:
        if sigma_ns < 0:
            raise ValueError("sigma_ns must be non-negative")
        if block < 1:
            raise ValueError("block must be >= 1")
        self.sigma_ns = sigma_ns
        self._rng = np.random.default_rng(seed)
        self._block = block
        self._clip = clip_sigmas * sigma_ns
        self._buffer: list[float] = []

    def _refill(self) -> None:
        raw = self._rng.normal(0.0, self.sigma_ns, self._block)
        if self._clip > 0:
            np.clip(raw, -self._clip, self._clip, out=raw)
        # list.pop() from the tail is O(1); order within a block is iid
        # so consuming in reverse is statistically identical.
        self._buffer = raw.tolist()

    def sample(self) -> float:
        """Return the next jitter sample in ns."""
        if not self._buffer:
            self._refill()
        return self._buffer.pop()
