"""Inter-domain synchronization (Sjogren–Myers arbitration).

A value produced in a source domain at edge time ``t_w`` can be safely
clocked into a destination domain at its edge ``t_e`` only when the two
edges are far enough apart: ``t_e - t_w >= window``.  When the edges
fall inside the window the destination must wait for its next edge —
this is the synchronization penalty of an MCD design, and the paper
models it for *all* inter-domain communication.

The window is 30 % of the fastest (1 GHz) clock period: 300 ps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config.mcd import Domain


@dataclass
class SynchronizerStats:
    """Counts of attempted and deferred inter-domain transfers."""

    attempts: int = 0
    deferrals: int = 0
    by_edge: dict[tuple[str, str], int] = field(default_factory=dict)

    @property
    def deferral_rate(self) -> float:
        """Fraction of transfer attempts that had to wait a cycle."""
        if not self.attempts:
            return 0.0
        return self.deferrals / self.attempts

    def record(self, src: Domain, dst: Domain, deferred: bool) -> None:
        """Record one attempted crossing from ``src`` to ``dst``."""
        self.attempts += 1
        if deferred:
            self.deferrals += 1
            key = (src.value, dst.value)
            self.by_edge[key] = self.by_edge.get(key, 0) + 1


class Synchronizer:
    """Decides whether a cross-domain transfer may complete at an edge.

    The simulator's hot loop uses :meth:`visible` directly (a single
    comparison); :meth:`visible_recorded` additionally maintains
    per-edge statistics for reporting.

    Parameters
    ----------
    window_ns:
        The synchronization window; 0 disables all penalties (the
        fully synchronous baseline).
    """

    __slots__ = ("window_ns", "stats")

    def __init__(self, window_ns: float) -> None:
        if window_ns < 0:
            raise ValueError("window_ns must be non-negative")
        self.window_ns = window_ns
        self.stats = SynchronizerStats()

    def visible(self, write_time_ns: float, dst_edge_ns: float) -> bool:
        """Whether data written at ``write_time_ns`` is clockable at ``dst_edge_ns``.

        True when the destination edge trails the write by at least the
        synchronization window.  Writes in the destination's future are
        never visible.
        """
        return dst_edge_ns - write_time_ns >= self.window_ns

    def visible_recorded(
        self,
        write_time_ns: float,
        dst_edge_ns: float,
        src: Domain,
        dst: Domain,
    ) -> bool:
        """:meth:`visible` plus statistics on deferred crossings."""
        ok = dst_edge_ns - write_time_ns >= self.window_ns
        if dst_edge_ns >= write_time_ns:
            # Only edges at/after the write count as synchronization
            # attempts; earlier destination edges simply precede the data.
            self.stats.record(src, dst, not ok)
        return ok
