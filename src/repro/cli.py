"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``catalog``
    List the 30 benchmarks with suites and windows.
``run BENCH``
    Simulate one benchmark under a chosen configuration and print the
    headline metrics.
``compare BENCH [BENCH ...]``
    Table-6-style comparison of the algorithms on a benchmark mix.
``hardware``
    Print the Table 3 controller gate-count estimate.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.config.algorithm import AttackDecayParams, SCALED_OPERATING_POINT
from repro.control.attack_decay import AttackDecayController
from repro.control.hardware_cost import estimate_attack_decay_hardware
from repro.metrics.aggregate import aggregate
from repro.metrics.summary import compare, summarize
from repro.reporting.tables import format_table
from repro.sim.engine import SimulationSpec, run_spec
from repro.sim.experiment import ExperimentRunner
from repro.workloads.catalog import BENCHMARKS, get_benchmark


def _cmd_catalog(_: argparse.Namespace) -> int:
    rows = [
        (s.name, s.suite, s.paper_window, f"{s.sim_instructions:,}")
        for s in BENCHMARKS.values()
    ]
    print(
        format_table(
            ["Benchmark", "Suite", "Paper window", "Scaled window"],
            rows,
            title="Benchmark catalog (Table 5)",
        )
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    get_benchmark(args.benchmark)  # validate early
    controller = None
    mcd = not args.sync
    if args.algorithm == "attack-decay":
        params = SCALED_OPERATING_POINT if args.scaled else AttackDecayParams()
        controller = AttackDecayController(params)
    spec = SimulationSpec(
        benchmark=args.benchmark,
        mcd=mcd,
        controller=controller,
        scale=args.scale,
        seed=args.seed,
    )
    result = run_spec(spec)
    print(f"benchmark:      {args.benchmark}")
    print(f"configuration:  {'sync' if args.sync else 'mcd'} / {args.algorithm}")
    print(f"instructions:   {result.instructions:,}")
    print(f"wall time:      {result.wall_time_ns:,.0f} ns")
    print(f"CPI:            {result.cpi:.3f}")
    print(f"EPI:            {result.epi:.3f}")
    print(f"energy:         {result.energy:,.0f}")
    print(f"branch acc:     {result.branch_accuracy:.3f}")
    print(f"L1D miss rate:  {result.l1d_miss_rate:.3f}")
    print("final domain frequencies (MHz):")
    for domain, mhz in result.final_frequencies_mhz.items():
        print(f"  {domain.value:16s} {mhz:7.1f}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    for name in args.benchmarks:
        get_benchmark(name)
    runner = ExperimentRunner(scale=args.scale, seed=args.seed)
    rows = []
    for label, make in (
        ("Attack/Decay", lambda b: runner.attack_decay(b, SCALED_OPERATING_POINT)),
        ("Dynamic-1%", lambda b: runner.dynamic(b, 1.0)),
        ("Dynamic-5%", lambda b: runner.dynamic(b, 5.0)),
    ):
        agg = aggregate(
            {b: runner.compare_to_mcd_base(make(b)) for b in args.benchmarks}
        )
        rows.append(
            (
                label,
                f"{agg.performance_degradation:.2%}",
                f"{agg.energy_savings:.2%}",
                f"{agg.edp_improvement:.2%}",
                f"{agg.power_performance_ratio:.1f}",
            )
        )
    print(
        format_table(
            ["Algorithm", "Perf Deg", "Energy Savings", "EDP Impr", "Ratio"],
            rows,
            title=f"Comparison vs baseline MCD ({', '.join(args.benchmarks)})",
        )
    )
    return 0


def _cmd_hardware(_: argparse.Namespace) -> int:
    model = estimate_attack_decay_hardware()
    print(
        format_table(
            ["Component", "Estimation", "Gates"],
            model.table3_rows(),
            title="Table 3: Attack/Decay hardware estimate",
        )
    )
    print(
        f"\nper domain: {model.gates_per_domain}; total "
        f"({model.controlled_domains} domains): {model.total_gates} gates"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MCD dynamic frequency/voltage control reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("catalog", help="list the benchmark catalog").set_defaults(
        func=_cmd_catalog
    )

    run_p = sub.add_parser("run", help="simulate one benchmark")
    run_p.add_argument("benchmark")
    run_p.add_argument(
        "--algorithm",
        choices=["none", "attack-decay"],
        default="attack-decay",
    )
    run_p.add_argument("--sync", action="store_true", help="fully synchronous")
    run_p.add_argument("--scaled", action="store_true", default=True)
    run_p.add_argument("--scale", type=float, default=1.0)
    run_p.add_argument("--seed", type=int, default=1)
    run_p.set_defaults(func=_cmd_run)

    cmp_p = sub.add_parser("compare", help="compare algorithms on a mix")
    cmp_p.add_argument("benchmarks", nargs="+")
    cmp_p.add_argument("--scale", type=float, default=1.0)
    cmp_p.add_argument("--seed", type=int, default=1)
    cmp_p.set_defaults(func=_cmd_compare)

    sub.add_parser("hardware", help="Table 3 gate estimate").set_defaults(
        func=_cmd_hardware
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
