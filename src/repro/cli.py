"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``catalog``
    List the 30 benchmarks with suites and windows.
``list-scenarios``
    List every runnable workload — catalog, derived (workload algebra),
    and imported — with lengths and compositions.
``list-configurations``
    Show every registered configuration, controller and clocking mode.
``run BENCH``
    Simulate one benchmark under a chosen configuration and print the
    headline metrics (``--phases`` adds per-phase attribution).
``sweep``
    Expand a benchmarks x configurations x seeds matrix and execute it
    across a worker pool (the orchestrator behind the paper's tables).
``compare BENCH [BENCH ...]``
    Table-6-style comparison of the algorithms on a benchmark mix.
``export-trace BENCH PATH``
    Record a workload's instruction stream to a portable ETF file.
``import-trace PATH``
    Validate an ETF file, register it as a runnable workload, and
    optionally simulate it.
``hardware``
    Print the Table 3 controller gate-count estimate.
``record``
    Append benchmark artifacts (or a fresh perf-bench run) to the
    versioned result database with full provenance.
``report``
    Render the stored performance trajectory as comparison tables
    across versions/backends/hosts (text, CSV or HTML).
``check``
    Regression-gate the latest recorded run against the stored
    trajectory (bootstrap floors apply on an empty history); exits
    non-zero on regression.
``campaign run|status|resume FILE``
    Execute a declarative TOML campaign with checkpointed progress:
    ``run --dry-run`` prints the expanded cell plan, ``status`` reads
    the journal (``--json`` for the daemon payload shape), ``resume``
    restores completed cells and re-queues quarantined failures after
    any interruption.  Handlers live in :mod:`repro.cli_campaign`.
``serve``
    Run the HTTP sweep daemon: submit jobs, stream their typed event
    streams as NDJSON, fetch results, cancel mid-flight.  Handlers
    live in :mod:`repro.cli_serve`.

Exit codes follow one convention across verbs: 0 success, 1 completed
with failures (failed runs, quarantined cells, regressed metrics), 2
usage/configuration errors, 130 interrupted by Ctrl-C (after
checkpointing progress and releasing shared memory).
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from pathlib import Path
from typing import Sequence

from repro.cli_campaign import _interrupt_cleanup, register_campaign_parser
from repro.cli_serve import register_serve_parser
from repro.config.algorithm import AttackDecayParams, SCALED_OPERATING_POINT
from repro.control.hardware_cost import estimate_attack_decay_hardware
from repro.errors import (
    ExperimentError,
    ResultDBError,
    TraceError,
    WorkloadError,
)
from repro.experiments import (
    CLOCKING_MODES,
    CONFIGURATIONS,
    CONTROLLERS,
    Orchestrator,
    Suite,
)
from repro.metrics.aggregate import aggregate
from repro.metrics.summary import summarize_phases
from repro.reporting.tables import format_table, phase_table, resultset_table
from repro.resultdb.gate import DEFAULT_TOLERANCE
from repro.sim.engine import SimulationSpec, run_spec
from repro.sim.experiment import ExperimentRunner, quick_benchmarks
from repro.uarch.etf import export_benchmark, read_etf
from repro.version import PAPER_VENUE, __version__
from repro.workloads.catalog import (
    BENCHMARKS,
    all_benchmarks,
    get_benchmark,
    register_benchmark,
)


def _cmd_catalog(_: argparse.Namespace) -> int:
    rows = [
        (s.name, s.suite, s.paper_window, f"{s.sim_instructions:,}")
        for s in BENCHMARKS.values()
    ]
    print(
        format_table(
            ["Benchmark", "Suite", "Paper window", "Scaled window"],
            rows,
            title="Benchmark catalog (Table 5)",
        )
    )
    return 0


def _cmd_list_scenarios(args: argparse.Namespace) -> int:
    rows = []
    for spec in all_benchmarks().values():
        if args.family and args.family.lower() not in (
            spec.suite.lower() + " " + spec.name.lower()
        ):
            continue
        rows.append(
            (
                spec.name,
                spec.suite,
                f"{spec.sim_instructions:,}",
                str(len(spec.phases)),
                spec.datasets,
            )
        )
    print(
        format_table(
            ["Scenario", "Family", "Instructions", "Phases", "Composition"],
            rows,
            title="Runnable scenarios (catalog + derived + registered)",
        )
    )
    print(f"\n{len(rows)} scenarios; compose more with repro.workloads.algebra.")
    return 0


def _first_doc_line(obj: object) -> str:
    doc = (getattr(obj, "__doc__", None) or "").strip()
    return doc.splitlines()[0] if doc else ""


def _cmd_list_configurations(_: argparse.Namespace) -> int:
    for title, registry in (
        ("Configurations", CONFIGURATIONS),
        ("Controllers", CONTROLLERS),
        ("Clocking modes", CLOCKING_MODES),
    ):
        rows = [(name, _first_doc_line(registry.get(name))) for name in registry]
        print(format_table(["Name", "Description"], rows, title=title))
        print()
    print(
        "Parameterised names resolve too: dynamic_1, dynamic_5, "
        "global@725.000, attack_decay[1.750_06.0_0.175_2.5][literal]."
    )
    return 0


def _controller_from_args(args: argparse.Namespace):
    """Build the controller selected by run-style CLI arguments."""
    algorithm = args.algorithm.replace("-", "_")
    controller_factory = CONTROLLERS.get(algorithm)
    if algorithm == "attack_decay":
        params = SCALED_OPERATING_POINT if args.scaled else AttackDecayParams()
        return controller_factory(params)
    if algorithm == "global_dvfs":
        return controller_factory(args.frequency_mhz)
    return controller_factory()


def _print_headline_metrics(result) -> None:
    """The shared instructions/time/CPI/EPI/energy block of run output."""
    print(f"instructions:   {result.instructions:,}")
    print(f"wall time:      {result.wall_time_ns:,.0f} ns")
    print(f"CPI:            {result.cpi:.3f}")
    print(f"EPI:            {result.epi:.3f}")
    print(f"energy:         {result.energy:,.0f}")


def _cmd_run(args: argparse.Namespace) -> int:
    bench = get_benchmark(args.benchmark)  # validate early
    controller = _controller_from_args(args)
    mcd = not args.sync
    spec = SimulationSpec(
        benchmark=args.benchmark,
        mcd=mcd,
        controller=controller,
        scale=args.scale,
        seed=args.seed,
        record_intervals=args.phases,
    )
    result = run_spec(spec)
    print(f"benchmark:      {args.benchmark}")
    print(f"configuration:  {'sync' if args.sync else 'mcd'} / {args.algorithm}")
    _print_headline_metrics(result)
    print(f"branch acc:     {result.branch_accuracy:.3f}")
    print(f"L1D miss rate:  {result.l1d_miss_rate:.3f}")
    print("final domain frequencies (MHz):")
    for domain, mhz in result.final_frequencies_mhz.items():
        print(f"  {domain.value:16s} {mhz:7.1f}")
    if args.phases:
        phased = summarize_phases(result, bench.phase_marks(args.scale))
        print()
        print(phase_table(phased.phases, title="Per-phase attribution"))
        dominant = phased.dominant_phase()
        print(
            f"\ndominant phase (energy): {dominant.name} "
            f"({dominant.energy_share:.1%} of energy, "
            f"{dominant.time_share:.1%} of time)"
        )
    return 0


def _parse_csv(text: str) -> list[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.verbose:
        logging.basicConfig(
            level=logging.INFO, format="%(levelname)s %(message)s"
        )
    try:
        benchmarks = (
            quick_benchmarks()
            if args.benchmarks == "all"
            else _parse_csv(args.benchmarks)
        )
        suite = Suite(
            benchmarks=benchmarks,
            configurations=_parse_csv(args.configurations),
            seeds=[int(s) for s in _parse_csv(args.seeds)],
            scale=args.scale,
            name="sweep",
        )
        orchestrator = Orchestrator(
            workers=args.workers,
            backend=args.backend,
            cache_dir=args.cache_dir,
            use_cache=False if args.no_cache else None,
            batch=args.batch,
        )
        results = orchestrator.run(suite)
    except ExperimentError as exc:
        # Bad matrix axes or environment knobs are user errors, not
        # tracebacks: name the problem and exit like argparse would.
        print(f"sweep: error: {exc}", file=sys.stderr)
        return 2
    print(resultset_table(results, title="Sweep results"))
    for outcome in results.errors:
        print(f"\nFAILED {outcome.scenario.run_id}:\n{outcome.error}")
    if args.reference and args.reference not in results.configurations:
        print(
            f"\n(no suite averages: reference {args.reference!r} is not in "
            "this sweep's configurations)"
        )
    elif args.reference:
        rows = []
        for configuration in results.configurations:
            if configuration == args.reference:
                continue
            agg = results.aggregate(configuration, args.reference)
            rows.append(
                (
                    configuration,
                    f"{agg.performance_degradation:.2%}",
                    f"{agg.energy_savings:.2%}",
                    f"{agg.edp_improvement:.2%}",
                    f"{agg.power_performance_ratio:.1f}",
                )
            )
        print()
        print(
            format_table(
                ["Configuration", "Perf Deg", "Energy Savings", "EDP Impr", "Ratio"],
                rows,
                title=f"Suite averages vs {args.reference}",
            )
        )
    if args.json:
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(results.to_dict(), indent=1))
        print(f"\nwrote {path}")
    return 1 if results.errors else 0


def _cmd_compare(args: argparse.Namespace) -> int:
    for name in args.benchmarks:
        get_benchmark(name)
    runner = ExperimentRunner(scale=args.scale, seed=args.seed)
    rows = []
    for label, make in (
        ("Attack/Decay", lambda b: runner.attack_decay(b, SCALED_OPERATING_POINT)),
        ("Dynamic-1%", lambda b: runner.dynamic(b, 1.0)),
        ("Dynamic-5%", lambda b: runner.dynamic(b, 5.0)),
    ):
        agg = aggregate(
            {b: runner.compare_to_mcd_base(make(b)) for b in args.benchmarks}
        )
        rows.append(
            (
                label,
                f"{agg.performance_degradation:.2%}",
                f"{agg.energy_savings:.2%}",
                f"{agg.edp_improvement:.2%}",
                f"{agg.power_performance_ratio:.1f}",
            )
        )
    print(
        format_table(
            ["Algorithm", "Perf Deg", "Energy Savings", "EDP Impr", "Ratio"],
            rows,
            title=f"Comparison vs baseline MCD ({', '.join(args.benchmarks)})",
        )
    )
    return 0


def _cmd_export_trace(args: argparse.Namespace) -> int:
    bench = get_benchmark(args.benchmark)
    checksum = export_benchmark(
        bench, args.path, scale=args.scale, seed_offset=args.seed_offset
    )
    size = Path(args.path).stat().st_size
    # Per-phase rounding means the true length is the last phase mark,
    # not round(total * scale).
    instructions = bench.phase_marks(args.scale)[-1][1]
    print(f"exported {args.benchmark} -> {args.path}")
    print(f"instructions: {instructions:,}  size: {size:,} bytes")
    print(f"checksum:     {checksum}")
    return 0


def _cmd_import_trace(args: argparse.Namespace) -> int:
    from dataclasses import replace as dc_replace

    try:
        external = read_etf(args.path)
    except TraceError as exc:
        print(f"import-trace: error: {exc}", file=sys.stderr)
        return 2
    name = args.register_as or f"{external.name}@etf"
    try:
        external = register_benchmark(dc_replace(external, name=name), replace=True)
    except WorkloadError as exc:
        print(f"import-trace: error: {exc}", file=sys.stderr)
        return 2
    print(f"imported {args.path} as {name!r}")
    print(f"instructions: {external.sim_instructions:,}")
    print(f"phases:       {len(external.phases)}")
    print(f"interval:     {external.interval_instructions} instructions")
    print(f"checksum:     {external.checksum}")
    if external.meta:
        provenance = ", ".join(f"{k}={v}" for k, v in sorted(external.meta.items()))
        print(f"provenance:   {provenance}")
    if not args.run:
        return 0
    spec = SimulationSpec(
        benchmark=name,
        mcd=not args.sync,
        controller=_controller_from_args(args),
        seed=args.seed,
        record_intervals=args.phases,
    )
    result = run_spec(spec)
    print()
    print(f"benchmark:      {name}")
    _print_headline_metrics(result)
    if args.phases and external.phases:
        phased = summarize_phases(result, external.phase_marks())
        print()
        print(phase_table(phased.phases, title="Per-phase attribution"))
    return 0


#: ``record --run`` names -> perf-bench modules under ``benchmarks/``.
PERF_BENCHES = {
    "hotpath": "bench_engine_hotpath",
    "control-loop": "bench_control_loop",
    "sweep": "bench_sweep_throughput",
}


def _resultdb(args: argparse.Namespace):
    """The :class:`~repro.resultdb.ResultDB` selected by ``--db``."""
    from repro.resultdb import ResultDB

    return ResultDB(args.db)


def _run_perf_bench(name: str, db_dir: str | None) -> None:
    """Run one perf bench from the repo's ``benchmarks/`` harness.

    The bench records itself through the shared ``save_results`` write
    path, so pointing ``REPRO_RESULTDB_DIR`` at the requested database
    is all the plumbing needed.
    """
    import importlib
    import os

    bench_dir = Path(__file__).resolve().parents[2] / "benchmarks"
    if not (bench_dir / f"{PERF_BENCHES[name]}.py").is_file():
        raise ResultDBError(
            f"benchmark harness not found at {bench_dir}; `record --run` "
            "needs a repository checkout (ingest an artifact JSON instead)"
        )
    if db_dir is not None:
        os.environ["REPRO_RESULTDB_DIR"] = str(db_dir)
    if str(bench_dir) not in sys.path:
        sys.path.insert(0, str(bench_dir))
    module = importlib.import_module(PERF_BENCHES[name])
    module.run_bench()


def _cmd_record(args: argparse.Namespace) -> int:
    if not args.paths and not args.run:
        print(
            "record: error: nothing to record — give artifact JSON paths "
            "or --run {hotpath,control-loop,sweep}",
            file=sys.stderr,
        )
        return 2
    try:
        if args.run:
            _run_perf_bench(args.run, args.db)
            print(f"recorded a fresh {PERF_BENCHES[args.run]} run")
        db = _resultdb(args)
        for path in args.paths:
            run = db.ingest(path, bench=args.bench, backend=args.backend)
            print(
                f"recorded {run.bench} run {run.run_id} "
                f"({len(run.metrics)} metrics, host {run.host_id}, "
                f"version {run.version})"
            )
    except ResultDBError as exc:
        print(f"record: error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.resultdb import query
    from repro.resultdb.report import comparison_rows, overview_rows, render

    db = _resultdb(args)
    runs = db.runs()
    runs = query.filter_runs(
        runs, backend=args.backend, version=args.version_filter
    )
    if not runs:
        print(
            f"report: error: no readable runs in {db.directory} "
            "(record some first)",
            file=sys.stderr,
        )
        return 2
    metrics = _parse_csv(args.metrics) if args.metrics else None
    try:
        if args.bench:
            headers, rows = comparison_rows(runs, args.bench, metrics=metrics)
            title = f"Trajectory of {args.bench} ({len(rows)} runs)"
        else:
            headers, rows = overview_rows(runs)
            title = f"Result database overview ({db.directory})"
        print(render(headers, rows, args.format, title=title))
    except ResultDBError as exc:
        print(f"report: error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.resultdb import check_bench, gated_metrics, query

    db = _resultdb(args)
    runs = db.runs()
    try:
        if args.bench:
            targets = [args.bench]
        else:
            targets = [b for b in query.benches(runs) if gated_metrics(b)]
            if not targets:
                raise ResultDBError(
                    f"nothing to gate: no runs of a registered perf bench in "
                    f"{db.directory}"
                )
        metrics = _parse_csv(args.metrics) if args.metrics else None
        failed = 0
        for bench in targets:
            for result in check_bench(
                runs, bench, metrics=metrics, tolerance=args.tolerance
            ):
                status = "PASS" if result.passed else "FAIL"
                print(f"{status} {bench}: {result.message}")
                failed += 0 if result.passed else 1
    except ResultDBError as exc:
        print(f"check: error: {exc}", file=sys.stderr)
        return 2
    if failed:
        print(f"\ncheck: {failed} metric(s) regressed", file=sys.stderr)
        return 1
    return 0


def _cmd_hardware(_: argparse.Namespace) -> int:
    model = estimate_attack_decay_hardware()
    print(
        format_table(
            ["Component", "Estimation", "Gates"],
            model.table3_rows(),
            title="Table 3: Attack/Decay hardware estimate",
        )
    )
    print(
        f"\nper domain: {model.gates_per_domain}; total "
        f"({model.controlled_domains} domains): {model.total_gates} gates"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MCD dynamic frequency/voltage control reproduction",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"repro {__version__} ({PAPER_VENUE} reproduction)",
    )
    # required=False so a bare ``python -m repro`` prints usage and
    # exits cleanly instead of erroring (main() handles the None case).
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("catalog", help="list the benchmark catalog").set_defaults(
        func=_cmd_catalog
    )

    sub.add_parser(
        "list-configurations",
        help="show the configuration/controller/clocking registries",
    ).set_defaults(func=_cmd_list_configurations)

    scen_p = sub.add_parser(
        "list-scenarios",
        help="list every runnable workload (catalog + derived + registered)",
    )
    scen_p.add_argument(
        "--family",
        default=None,
        help="substring filter on the family/name (e.g. 'Derived', 'thrash')",
    )
    scen_p.set_defaults(func=_cmd_list_scenarios)

    def add_run_arguments(parser_: argparse.ArgumentParser) -> None:
        """Controller/clocking options shared by run and import-trace."""
        parser_.add_argument(
            "--algorithm",
            # Registry names, minus the passive profiling pass (not a
            # run configuration) and the underscore alias of the default.
            choices=sorted(
                {"attack-decay", *CONTROLLERS.names()}
                - {"attack_decay", "offline_profiler"}
            ),
            default="attack-decay",
            help="controller registry name ('none' for fixed frequencies)",
        )
        parser_.add_argument("--sync", action="store_true", help="fully synchronous")
        parser_.add_argument(
            "--frequency-mhz",
            type=float,
            default=1000.0,
            help="target frequency for --algorithm global_dvfs",
        )
        parser_.add_argument("--scaled", action="store_true", default=True)
        parser_.add_argument("--seed", type=int, default=1)
        parser_.add_argument(
            "--phases",
            action="store_true",
            help="record intervals and print per-phase attribution",
        )

    run_p = sub.add_parser("run", help="simulate one benchmark")
    run_p.add_argument("benchmark")
    add_run_arguments(run_p)
    run_p.add_argument("--scale", type=float, default=1.0)
    run_p.set_defaults(func=_cmd_run)

    sweep_p = sub.add_parser(
        "sweep", help="run a benchmarks x configurations x seeds matrix"
    )
    sweep_p.add_argument(
        "--benchmarks",
        default="all",
        help="comma-separated catalog names, or 'all' (REPRO_BENCHMARKS aware)",
    )
    sweep_p.add_argument(
        "--configurations",
        default="sync,mcd_base,attack_decay",
        help="comma-separated registry names (see list-configurations)",
    )
    sweep_p.add_argument("--seeds", default="1", help="comma-separated clock seeds")
    sweep_p.add_argument(
        "--workers",
        default=None,
        help="worker count, or 'auto' for every core (REPRO_WORKERS)",
    )
    sweep_p.add_argument(
        "--backend",
        choices=["auto", "thread", "process", "serial"],
        default=None,
        help=(
            "execution backend (REPRO_BACKEND); auto uses threads when "
            "the GIL-releasing native loop is available, else processes"
        ),
    )
    sweep_p.add_argument(
        "--batch",
        default=None,
        help=(
            "batch-cell size: a positive integer or 'auto' (REPRO_BATCH); "
            "auto sizes cells per backend, batched runs stay byte-identical"
        ),
    )
    sweep_p.add_argument("--scale", type=float, default=None)
    sweep_p.add_argument("--cache-dir", default=None)
    sweep_p.add_argument("--no-cache", action="store_true")
    sweep_p.add_argument(
        "--reference",
        default="mcd_base",
        help="aggregate vs this configuration ('' to skip)",
    )
    sweep_p.add_argument(
        "--json", default=None, help="write the ResultSet to this path"
    )
    sweep_p.add_argument("--verbose", action="store_true", help="progress logging")
    sweep_p.set_defaults(func=_cmd_sweep)

    cmp_p = sub.add_parser("compare", help="compare algorithms on a mix")
    cmp_p.add_argument("benchmarks", nargs="+")
    cmp_p.add_argument("--scale", type=float, default=1.0)
    cmp_p.add_argument("--seed", type=int, default=1)
    cmp_p.set_defaults(func=_cmd_compare)

    exp_p = sub.add_parser(
        "export-trace", help="record a workload to a portable ETF file"
    )
    exp_p.add_argument("benchmark")
    exp_p.add_argument("path")
    exp_p.add_argument("--scale", type=float, default=1.0)
    exp_p.add_argument("--seed-offset", type=int, default=0)
    exp_p.set_defaults(func=_cmd_export_trace)

    imp_p = sub.add_parser(
        "import-trace", help="validate/register an ETF file, optionally run it"
    )
    imp_p.add_argument("path")
    imp_p.add_argument(
        "--register-as",
        default=None,
        help="name to register under (default: '<header name>@etf')",
    )
    imp_p.add_argument(
        "--run", action="store_true", help="simulate the imported trace"
    )
    add_run_arguments(imp_p)
    imp_p.set_defaults(func=_cmd_import_trace)

    sub.add_parser("hardware", help="Table 3 gate estimate").set_defaults(
        func=_cmd_hardware
    )

    def add_db_argument(parser_: argparse.ArgumentParser) -> None:
        """The shared --db option of the result-database verbs."""
        parser_.add_argument(
            "--db",
            default=None,
            help="result database directory (default results/db, "
            "REPRO_RESULTDB_DIR aware)",
        )

    rec_p = sub.add_parser(
        "record", help="append benchmark runs to the result database"
    )
    rec_p.add_argument(
        "paths", nargs="*", help="bench artifact JSON files to ingest"
    )
    rec_p.add_argument(
        "--bench",
        default=None,
        help="bench name for ingested files (default: the file stem)",
    )
    rec_p.add_argument(
        "--backend", default=None, help="execution backend to stamp, if any"
    )
    rec_p.add_argument(
        "--run",
        choices=sorted(PERF_BENCHES),
        default=None,
        help="run this perf bench now and record it (REPRO_SCALE aware)",
    )
    add_db_argument(rec_p)
    rec_p.set_defaults(func=_cmd_record)

    rep_p = sub.add_parser(
        "report", help="render the stored performance trajectory"
    )
    rep_p.add_argument(
        "--bench",
        default=None,
        help="compare this bench across runs (default: database overview)",
    )
    rep_p.add_argument(
        "--metrics",
        default=None,
        help="comma-separated metric columns (default: the gated metrics)",
    )
    rep_p.add_argument(
        "--format",
        choices=["text", "csv", "html"],
        default="text",
        help="output format",
    )
    rep_p.add_argument("--backend", default=None, help="only runs on this backend")
    rep_p.add_argument(
        "--version-filter", default=None, help="only runs of this repro version"
    )
    add_db_argument(rep_p)
    rep_p.set_defaults(func=_cmd_report)

    chk_p = sub.add_parser(
        "check", help="regression-gate the latest run against the trajectory"
    )
    chk_p.add_argument(
        "--bench",
        default=None,
        help="bench to gate (default: every recorded bench with a "
        "registered bootstrap floor)",
    )
    chk_p.add_argument(
        "--metrics",
        default=None,
        help="comma-separated metrics to gate (default: the registered ones)",
    )
    chk_p.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional drop below the historical best "
        f"(default {DEFAULT_TOLERANCE})",
    )
    add_db_argument(chk_p)
    chk_p.set_defaults(func=_cmd_check)

    register_campaign_parser(sub)
    register_serve_parser(sub)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point.

    Invoked with no subcommand, prints usage and returns 2 (the
    argparse convention) rather than dying with an error.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    try:
        return args.func(args)
    except KeyboardInterrupt:
        # One boundary for every verb: no raw traceback on Ctrl-C.
        # The orchestrator has already cancelled its backends by the
        # time the interrupt propagates here; release any exported
        # shared-memory segments and exit with the SIGINT convention.
        _interrupt_cleanup()
        print(f"\n{args.command}: interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
