"""Aggregation of per-benchmark comparisons into suite-level averages.

The paper's "average" bars are means of per-application percentages
across the 30 benchmarks (multiple datasets of one benchmark were
already folded into the per-application number, weighted by instruction
count — our catalog folds datasets into one workload per application).
The power-savings-to-performance-degradation ratio is computed from the
*averages* (Section 5), not averaged per application.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import SimulationError
from repro.metrics.summary import Comparison


@dataclass(frozen=True)
class AggregateResult:
    """Averaged comparison statistics over a benchmark set."""

    count: int
    performance_degradation: float
    energy_savings: float
    epi_reduction: float
    edp_improvement: float
    power_savings: float

    @property
    def power_performance_ratio(self) -> float:
        """Average percent power saved per average percent perf lost."""
        if self.performance_degradation <= 0.0:
            return float("inf") if self.power_savings > 0 else 0.0
        return self.power_savings / self.performance_degradation


def aggregate(
    comparisons: Sequence[Comparison] | Mapping[str, Comparison],
    weights: Mapping[str, float] | None = None,
) -> AggregateResult:
    """Average comparisons, optionally weighting by benchmark name.

    Parameters
    ----------
    comparisons:
        Per-benchmark comparison statistics.
    weights:
        Optional per-name weights (e.g. the paper's instruction
        counts).  Only usable when ``comparisons`` is a mapping.
    """
    if isinstance(comparisons, Mapping):
        names = list(comparisons)
        items = [comparisons[n] for n in names]
        if weights is not None:
            w = [weights[n] for n in names]
        else:
            w = [1.0] * len(items)
    else:
        if weights is not None:
            raise SimulationError("weights require named comparisons")
        items = list(comparisons)
        w = [1.0] * len(items)
    if not items:
        raise SimulationError("nothing to aggregate")
    total = sum(w)

    def mean(attr: str) -> float:
        return sum(getattr(c, attr) * wi for c, wi in zip(items, w)) / total

    return AggregateResult(
        count=len(items),
        performance_degradation=mean("performance_degradation"),
        energy_savings=mean("energy_savings"),
        epi_reduction=mean("epi_reduction"),
        edp_improvement=mean("edp_improvement"),
        power_savings=mean("power_savings"),
    )
