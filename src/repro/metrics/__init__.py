"""Metrics of Section 5: CPI, EPI, EDP and the comparison statistics.

The paper reports every result *relative* to a reference configuration
(fully synchronous processor, or baseline MCD processor):

* performance degradation — relative increase in run time;
* energy savings — relative decrease in total energy;
* energy-delay product improvement — relative decrease in E·D;
* power-savings-to-performance-degradation ratio — average percent
  power saved per percent of performance lost (Section 5).
"""

from repro.metrics.aggregate import AggregateResult, aggregate
from repro.metrics.phases import PhaseSlice, attribute_phases
from repro.metrics.summary import (
    Comparison,
    PhasedSummary,
    RunSummary,
    compare,
    summarize,
    summarize_phases,
)

__all__ = [
    "AggregateResult",
    "Comparison",
    "PhaseSlice",
    "PhasedSummary",
    "RunSummary",
    "aggregate",
    "attribute_phases",
    "compare",
    "summarize",
    "summarize_phases",
]
