"""Per-run summaries, per-phase breakdowns, and pairwise comparisons."""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.errors import SimulationError
from repro.metrics.phases import PhaseSlice, attribute_phases
from repro.uarch.core import CoreResult


@dataclass(frozen=True)
class RunSummary:
    """The scalar outcome of one simulation run."""

    instructions: int
    wall_time_ns: float
    energy: float
    cpi: float
    epi: float
    power: float
    edp: float

    def to_dict(self) -> dict:
        """Plain-dict form (JSON caching)."""
        return asdict(self)

    @staticmethod
    def from_dict(data: dict) -> "RunSummary":
        """Inverse of :meth:`to_dict`."""
        return RunSummary(**data)


def summarize(result: CoreResult) -> RunSummary:
    """Collapse a :class:`CoreResult` into its headline scalars."""
    return RunSummary(
        instructions=result.instructions,
        wall_time_ns=result.wall_time_ns,
        energy=result.energy,
        cpi=result.cpi,
        epi=result.epi,
        power=result.power,
        edp=result.energy_delay_product,
    )


@dataclass(frozen=True)
class PhasedSummary:
    """A run's headline scalars plus their per-phase attribution."""

    summary: RunSummary
    phases: tuple[PhaseSlice, ...]

    def dominant_phase(self, by: str = "energy") -> PhaseSlice:
        """The phase contributing most of ``by`` ('energy' or 'time')."""
        if by not in ("energy", "time"):
            raise SimulationError(f"dominant_phase: unknown metric {by!r}")
        key = (lambda s: s.energy) if by == "energy" else (lambda s: s.wall_time_ns)
        return max(self.phases, key=key)

    def to_dict(self) -> dict:
        """Plain-dict form (JSON artifacts)."""
        return {
            "summary": self.summary.to_dict(),
            "phases": [asdict(s) for s in self.phases],
        }


def summarize_phases(
    result: CoreResult, marks: list[tuple[str, int]]
) -> PhasedSummary:
    """Collapse a run into headline scalars plus a per-phase breakdown.

    ``marks`` come from the workload's
    :meth:`~repro.workloads.catalog.BenchmarkSpec.phase_marks` (at the
    run's scale); the run should have been executed with
    ``record_intervals=True`` for interval-granular attribution (see
    :mod:`repro.metrics.phases`).
    """
    return PhasedSummary(
        summary=summarize(result), phases=tuple(attribute_phases(result, marks))
    )


@dataclass(frozen=True)
class Comparison:
    """A run measured against a reference run (Section 5 statistics).

    All values are fractions: 0.032 means 3.2 %.
    """

    performance_degradation: float
    energy_savings: float
    epi_reduction: float
    edp_improvement: float
    power_savings: float

    @property
    def power_performance_ratio(self) -> float:
        """Percent power saved per percent performance lost.

        Infinite when there is no degradation but positive savings;
        zero when there are no savings.
        """
        if self.performance_degradation <= 0.0:
            return float("inf") if self.power_savings > 0 else 0.0
        return self.power_savings / self.performance_degradation


def compare(run: RunSummary, reference: RunSummary) -> Comparison:
    """Compare ``run`` against ``reference`` (same workload).

    >>> base = RunSummary(instructions=1000, wall_time_ns=1000.0,
    ...                   energy=2000.0, cpi=1.0, epi=2.0, power=2.0,
    ...                   edp=2_000_000.0)
    >>> slower = RunSummary(instructions=1000, wall_time_ns=1100.0,
    ...                     energy=1500.0, cpi=1.1, epi=1.5,
    ...                     power=1500.0 / 1100.0, edp=1_650_000.0)
    >>> c = compare(slower, base)
    >>> round(c.performance_degradation, 3), round(c.energy_savings, 3)
    (0.1, 0.25)
    """
    if reference.wall_time_ns <= 0 or reference.energy <= 0:
        raise SimulationError("reference run has no time/energy")
    if run.instructions != reference.instructions:
        raise SimulationError(
            "comparing runs over different instruction counts "
            f"({run.instructions} vs {reference.instructions})"
        )
    perf_deg = run.wall_time_ns / reference.wall_time_ns - 1.0
    energy_savings = 1.0 - run.energy / reference.energy
    epi_reduction = 1.0 - run.epi / reference.epi
    edp_improvement = 1.0 - run.edp / reference.edp
    power_savings = 1.0 - run.power / reference.power
    return Comparison(
        performance_degradation=perf_deg,
        energy_savings=energy_savings,
        epi_reduction=epi_reduction,
        edp_improvement=edp_improvement,
        power_savings=power_savings,
    )
