"""Per-phase attribution of a run's delay and energy.

A workload is a phase script; its :class:`~repro.metrics.summary.RunSummary`
is one number per metric.  This module splits those numbers *by phase*,
answering the question every composed scenario raises: which region of
the script drove the energy/delay result?

Attribution works on the per-interval samples the core records
(:class:`~repro.uarch.core.IntervalRecord` carries cumulative wall time
and cumulative energy at each control-interval edge, identically on all
three execution paths).  Phase boundaries rarely coincide with interval
edges, so cumulative time/energy at each boundary is interpolated
linearly in retired instructions between the bracketing samples; slices
are then adjacent differences.  Granularity is therefore the control
interval (hundreds of samples per catalog run) — attribution error is
bounded by one interval's worth of time/energy per boundary, and the
slices always sum exactly to the run totals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import SimulationError
from repro.uarch.core import CoreResult

__all__ = ["PhaseSlice", "attribute_phases"]


@dataclass(frozen=True)
class PhaseSlice:
    """One phase's share of a run.

    ``time_share``/``energy_share`` are fractions of the run totals;
    shares over a breakdown sum to 1.0 (up to float addition).
    """

    name: str
    start_instruction: int
    end_instruction: int
    wall_time_ns: float
    energy: float
    time_share: float
    energy_share: float

    @property
    def instructions(self) -> int:
        """Dynamic length of the phase."""
        return self.end_instruction - self.start_instruction

    @property
    def epi(self) -> float:
        """Energy per instruction within the phase."""
        return self.energy / self.instructions if self.instructions else 0.0

    @property
    def cpi(self) -> float:
        """Nanoseconds per instruction within the phase (1 GHz CPI)."""
        return self.wall_time_ns / self.instructions if self.instructions else 0.0

    @property
    def power(self) -> float:
        """Average power over the phase (energy units per ns)."""
        return self.energy / self.wall_time_ns if self.wall_time_ns > 0 else 0.0


def _cumulative_samples(result: CoreResult) -> tuple[list[int], list[float], list[float]]:
    """Monotonic (instructions, time, energy) samples incl. both ends."""
    xs = [0]
    ts = [0.0]
    es = [0.0]
    for record in result.intervals:
        if 0 < record.end_instruction < result.instructions:
            xs.append(record.end_instruction)
            ts.append(record.end_time_ns)
            es.append(record.energy)
    xs.append(result.instructions)
    ts.append(result.wall_time_ns)
    es.append(result.energy)
    return xs, ts, es


def attribute_phases(
    result: CoreResult, marks: Sequence[tuple[str, int]]
) -> list[PhaseSlice]:
    """Split ``result``'s wall time and energy across its phases.

    Parameters
    ----------
    result:
        A finished run.  Interval records
        (``record_intervals=True``) give interval-granular attribution;
        without them the split degrades to proportional-in-instructions
        (one linear segment over the whole run).
    marks:
        The workload's ``(name, end_instruction)`` boundaries — from
        :meth:`~repro.workloads.catalog.BenchmarkSpec.phase_marks`
        with the run's scale, or an imported trace's recorded marks.

    Raises
    ------
    SimulationError
        When the marks do not partition ``result.instructions``.
    """
    if not marks:
        raise SimulationError("attribute_phases needs at least one phase mark")
    ends = [int(end) for _, end in marks]
    if ends != sorted(ends) or len(set(ends)) != len(ends):
        raise SimulationError(f"phase marks must strictly ascend, got {ends}")
    if ends[-1] != result.instructions:
        raise SimulationError(
            f"phase marks cover {ends[-1]} instructions but the run retired "
            f"{result.instructions} - did the marks use the run's scale?"
        )
    xs, ts, es = _cumulative_samples(result)

    def interpolate(boundary: int) -> tuple[float, float]:
        """Cumulative (time, energy) at an instruction boundary."""
        # xs is short (hundreds); a linear scan keeps this dependency-free.
        for i in range(1, len(xs)):
            if boundary <= xs[i]:
                x0, x1 = xs[i - 1], xs[i]
                fraction = (boundary - x0) / (x1 - x0) if x1 > x0 else 1.0
                return (
                    ts[i - 1] + fraction * (ts[i] - ts[i - 1]),
                    es[i - 1] + fraction * (es[i] - es[i - 1]),
                )
        return ts[-1], es[-1]

    total_time = result.wall_time_ns
    total_energy = result.energy
    slices: list[PhaseSlice] = []
    prev_end = 0
    prev_time = 0.0
    prev_energy = 0.0
    for name, end in marks:
        time_at, energy_at = interpolate(int(end))
        slices.append(
            PhaseSlice(
                name=name,
                start_instruction=prev_end,
                end_instruction=int(end),
                wall_time_ns=time_at - prev_time,
                energy=energy_at - prev_energy,
                time_share=(time_at - prev_time) / total_time if total_time else 0.0,
                energy_share=(
                    (energy_at - prev_energy) / total_energy if total_energy else 0.0
                ),
            )
        )
        prev_end, prev_time, prev_energy = int(end), time_at, energy_at
    return slices
